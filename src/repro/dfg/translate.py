"""The Translator: DSL AST -> dataflow graph (Figure 4(b)).

The translation is axis-aware: subscripted references bind array dimensions
to iterator axes, reductions consume an axis, and binary operations align
operands by axis name. Each array variable must be subscripted with the
same iterators everywhere it appears (true of all TABLA-lineage programs);
violations raise :class:`TranslationError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..dsl import ast
from ..dsl.errors import DslError
from ..dsl.semantic import SymbolTable, analyze, iterator_extent, resolve_dims
from . import ir
from .ops import REDUCE_OPS


class TranslationError(DslError):
    """The program is semantically valid but not translatable."""


@dataclass
class AggregatorSpec:
    """How partial gradients are combined across threads/nodes (Eq. 3b).

    ``kind`` is ``"mean"`` (parallelized SGD averaging) or ``"sum"``
    (batched gradient descent summation). ``pairs`` maps each aggregated
    source variable (usually a ``gradient``) to the model variable it
    updates.
    """

    kind: str = "mean"
    pairs: Tuple[Tuple[str, str], ...] = ()  # (target_model, source_gradient)

    def describe(self) -> str:
        ops = ", ".join(f"{t} <- {self.kind}({s})" for t, s in self.pairs)
        return ops or f"{self.kind} over all gradients"


@dataclass
class Translation:
    """Result of translating one DSL program."""

    dfg: ir.Dfg
    table: SymbolTable
    bindings: Dict[str, int]
    aggregator: AggregatorSpec
    program: ast.Program

    @property
    def learning_rate(self) -> float:
        return float(self.program.params.get("mu", 0.01))

    @property
    def minibatch(self) -> int:
        return self.program.minibatch


def translate(
    program: ast.Program, bindings: Optional[Mapping[str, int]] = None
) -> Translation:
    """Translate a parsed DSL program into a :class:`repro.dfg.ir.Dfg`.

    Args:
        program: output of :func:`repro.dsl.parse`.
        bindings: concrete sizes for symbolic dimensions (e.g. ``{"n": 784}``).
    """
    bindings = dict(bindings or {})
    table = analyze(program)
    builder = _Builder(program, table, bindings)
    dfg = builder.build()
    aggregator = _extract_aggregator(program, table)
    return Translation(dfg, table, bindings, aggregator, program)


class _Builder:
    def __init__(self, program: ast.Program, table: SymbolTable, bindings):
        self._program = program
        self._table = table
        self._bindings = bindings
        extents = {}
        for symbol in table.of_kind("iterator"):
            try:
                lo, hi = iterator_extent(symbol, bindings)
            except DslError:
                continue  # aggregator-only iterators (e.g. over "nodes")
            extents[symbol.name] = hi - lo
        self._dfg = ir.Dfg(extents)
        self._env: Dict[str, ir.Value] = {}
        self._axes_of: Dict[str, Tuple[str, ...]] = {}
        self._temp = 0

    def build(self) -> ir.Dfg:
        for stmt in self._program.statements:
            self._assignment(stmt)
        self._dfg.validate()
        return self._dfg

    # -- statements --------------------------------------------------------
    def _assignment(self, stmt: ast.Assignment):
        value = self._expr(stmt.expr)
        target_axes = tuple(stmt.indices)
        self._check_axes_declared(target_axes, stmt.line)
        if not set(value.axes) <= set(target_axes):
            loose = set(value.axes) - set(target_axes)
            raise TranslationError(
                f"assignment to {stmt.target!r} leaves iterator(s) "
                f"{sorted(loose)} unbound; subscript the target or reduce",
                stmt.line,
            )
        symbol = self._table.get(stmt.target)
        is_gradient = symbol.kind == "gradient"
        if set(value.axes) != set(target_axes) or value.category == ir.CONST:
            # Broadcast (or materialise a constant) to the target's axes.
            value = self._dfg.add_node(
                "identity", [value], stmt.target, target_axes,
                is_gradient=is_gradient,
            )
        elif value.axes != target_axes or value.producer is None:
            # Same axes, possibly different order; tag with the target name.
            value = self._dfg.add_node(
                "identity", [value], stmt.target, target_axes,
                is_gradient=is_gradient,
            )
        else:
            value.name = stmt.target
            value.is_gradient = is_gradient
        self._env[stmt.target] = value
        self._axes_of[stmt.target] = target_axes
        if is_gradient or symbol.kind == "model":
            self._dfg.outputs[stmt.target] = value.vid

    def _check_axes_declared(self, axes: Tuple[str, ...], line: int):
        for axis in axes:
            if axis not in self._dfg.extents:
                raise TranslationError(
                    f"iterator {axis!r} has an unbound extent", line
                )

    # -- expressions ---------------------------------------------------------
    def _expr(self, expr: ast.Expr) -> ir.Value:
        if isinstance(expr, ast.Number):
            return self._dfg.add_value(
                self._fresh("const"), ir.CONST, (), const_value=expr.value
            )
        if isinstance(expr, ast.Name):
            return self._name(expr)
        if isinstance(expr, ast.Subscript):
            return self._subscript(expr)
        if isinstance(expr, ast.UnaryOp):
            operand = self._expr(expr.operand)
            return self._dfg.add_node(
                expr.op, [operand], self._fresh(expr.op), operand.axes
            )
        if isinstance(expr, ast.BinaryOp):
            left = self._expr(expr.left)
            right = self._expr(expr.right)
            axes = _union_axes(left.axes, right.axes)
            return self._dfg.add_node(
                expr.op, [left, right], self._fresh(expr.op), axes
            )
        if isinstance(expr, ast.Ternary):
            cond = self._expr(expr.cond)
            if_true = self._expr(expr.if_true)
            if_false = self._expr(expr.if_false)
            axes = _union_axes(
                cond.axes, _union_axes(if_true.axes, if_false.axes)
            )
            return self._dfg.add_node(
                "select", [cond, if_true, if_false], self._fresh("select"), axes
            )
        if isinstance(expr, ast.Reduce):
            return self._reduce(expr)
        if isinstance(expr, ast.Call):
            return self._call(expr)
        raise TranslationError(f"cannot translate expression {expr!r}")

    def _name(self, expr: ast.Name) -> ir.Value:
        symbol = self._table.get(expr.ident)
        if symbol.kind == "param":
            return self._dfg.add_value(
                expr.ident, ir.CONST, (),
                const_value=self._program.params[expr.ident],
            )
        if expr.ident in self._env:
            return self._env[expr.ident]
        value = self._dfg.add_value(
            expr.ident, _category_for(symbol.kind), ()
        )
        self._env[expr.ident] = value
        self._axes_of[expr.ident] = ()
        return value

    def _subscript(self, expr: ast.Subscript) -> ir.Value:
        symbol = self._table.get(expr.ident)
        axes = tuple(expr.indices)
        self._check_axes_declared(axes, expr.line)
        if expr.ident in self._env:
            known = self._axes_of[expr.ident]
            if known != axes:
                raise TranslationError(
                    f"{expr.ident!r} subscripted as {axes} but previously "
                    f"as {known}; use consistent iterators",
                    expr.line,
                )
            return self._env[expr.ident]
        if symbol.kind == "interim":
            raise TranslationError(
                f"interim {expr.ident!r} used before assignment", expr.line
            )
        dims = resolve_dims(symbol.dims, self._bindings)
        if len(dims) != len(axes):
            raise TranslationError(
                f"{expr.ident!r} has {len(dims)} dims, subscripted with "
                f"{len(axes)}",
                expr.line,
            )
        for axis, dim in zip(axes, dims):
            if self._dfg.extents[axis] != dim:
                raise TranslationError(
                    f"iterator {axis!r} (extent {self._dfg.extents[axis]}) "
                    f"does not span dimension of size {dim} of {expr.ident!r}",
                    expr.line,
                )
        value = self._dfg.add_value(expr.ident, _category_for(symbol.kind), axes)
        self._env[expr.ident] = value
        self._axes_of[expr.ident] = axes
        return value

    def _reduce(self, expr: ast.Reduce) -> ir.Value:
        body = self._expr(expr.body)
        axis = expr.iterator
        if axis not in body.axes:
            raise TranslationError(
                f"reduction over {axis!r} but body does not vary with it",
                expr.line,
            )
        if expr.kind == "norm":
            body = self._dfg.add_node(
                "mul", [body, body], self._fresh("sq"), body.axes
            )
        out_axes = tuple(a for a in body.axes if a != axis)
        value = self._dfg.add_node(
            REDUCE_OPS[expr.kind], [body], self._fresh(expr.kind), out_axes,
            reduce_axes=(axis,),
        )
        if expr.kind == "norm":
            value = self._dfg.add_node(
                "sqrt", [value], self._fresh("norm"), value.axes
            )
        return value

    def _call(self, expr: ast.Call) -> ir.Value:
        args = [self._expr(a) for a in expr.args]
        if expr.func in ("min", "max") and len(args) == 2:
            axes = _union_axes(args[0].axes, args[1].axes)
            return self._dfg.add_node(
                expr.func, args, self._fresh(expr.func), axes
            )
        if len(args) != 1:
            raise TranslationError(
                f"{expr.func} expects 1 argument, got {len(args)}", expr.line
            )
        return self._dfg.add_node(
            expr.func, args, self._fresh(expr.func), args[0].axes
        )

    def _fresh(self, hint: str) -> str:
        self._temp += 1
        return f"%{hint}{self._temp}"


def _category_for(kind: str) -> str:
    if kind in ("model_input", "model_output"):
        return ir.DATA
    if kind == "model":
        return ir.MODEL
    return ir.INTERIM


def _union_axes(a: Tuple[str, ...], b: Tuple[str, ...]) -> Tuple[str, ...]:
    merged: List[str] = list(a)
    for axis in b:
        if axis not in merged:
            merged.append(axis)
    return tuple(merged)


def _extract_aggregator(
    program: ast.Program, table: SymbolTable
) -> AggregatorSpec:
    """Classify the aggregator section as mean or sum aggregation.

    Recognised pattern per statement::

        target[idx...] = sum[j](source[j, idx...]) ;          # sum
        target[idx...] = sum[j](source[j, idx...]) / nodes ;  # mean

    With no aggregator section, defaults to averaging every gradient into
    the like-named or sole model variable (parallelized SGD, Eq. 3b).
    """
    gradients = [s.name for s in table.of_kind("gradient")]
    models = [s.name for s in table.of_kind("model")]
    if not program.aggregator:
        pairs = tuple((_matching_model(g, models), g) for g in gradients)
        return AggregatorSpec("mean", pairs)

    kind = None
    pairs: List[Tuple[str, str]] = []
    for stmt in program.aggregator:
        expr = stmt.expr
        stmt_kind = "sum"
        if isinstance(expr, ast.BinaryOp) and expr.op == "div":
            expr = expr.left
            stmt_kind = "mean"
        if not (isinstance(expr, ast.Reduce) and expr.kind == "sum"):
            raise TranslationError(
                "aggregator must be a sum[...] reduction, optionally "
                "divided by the node count",
                stmt.line,
            )
        body = expr.body
        if not isinstance(body, ast.Subscript):
            raise TranslationError(
                "aggregator body must reference the partial results directly",
                stmt.line,
            )
        if body.indices[0] != expr.iterator:
            raise TranslationError(
                "first subscript of the aggregated variable must be the "
                "node iterator",
                stmt.line,
            )
        if kind is not None and stmt_kind != kind:
            raise TranslationError(
                "mixed sum/mean aggregation is not supported", stmt.line
            )
        kind = stmt_kind
        pairs.append((stmt.target, body.ident))
    return AggregatorSpec(kind or "mean", tuple(pairs))


def _matching_model(gradient: str, models: List[str]) -> str:
    """Pair a gradient with its model variable by naming convention.

    Accepts ``g_w``/``gw``/``grad_w`` for model ``w`` and suffix matches
    such as gradient ``g1`` for model ``w1``.
    """
    for model in models:
        if gradient in (f"g_{model}", f"g{model}", f"grad_{model}"):
            return model
    tail = gradient[1:].lstrip("_") if gradient.startswith("g") else None
    if tail:
        for model in models:
            if model[1:].lstrip("_") == tail:
                return model
    if len(models) == 1:
        return models[0]
    raise TranslationError(
        f"cannot infer which model variable gradient {gradient!r} updates; "
        "write an aggregator section"
    )
