"""CoSMIC compilation layer, part 1: the Translator and the DFG IR.

``translate`` lowers a parsed DSL program to a named-axis dataflow graph;
``Interpreter`` executes graphs functionally with NumPy; ``scalarize``
unrolls small graphs to the scalar form consumed by Algorithm 1 and the
cycle simulator.
"""

from .dot import program_to_dot, to_dot
from .differentiate import (
    DifferentiationError,
    derive_gradients,
    differentiate,
)
from .interpreter import Interpreter, InterpreterError
from .ir import CATEGORIES, CONST, DATA, INTERIM, MODEL, Dfg, Node, Value
from .ops import OpInfo, all_ops, is_known_op, op_info
from .optimize import OptimizationReport, optimize
from .scalarize import ExpansionTooLarge, ScalarExpansion, scalarize
from .translate import (
    AggregatorSpec,
    Translation,
    TranslationError,
    translate,
)

__all__ = [
    "AggregatorSpec",
    "CATEGORIES",
    "CONST",
    "DATA",
    "Dfg",
    "DifferentiationError",
    "derive_gradients",
    "differentiate",
    "program_to_dot",
    "to_dot",
    "ExpansionTooLarge",
    "INTERIM",
    "Interpreter",
    "InterpreterError",
    "MODEL",
    "Node",
    "OpInfo",
    "OptimizationReport",
    "optimize",
    "ScalarExpansion",
    "Translation",
    "TranslationError",
    "Value",
    "all_ops",
    "is_known_op",
    "op_info",
    "scalarize",
    "translate",
]
