"""Scalar expansion of macro dataflow graphs.

The Compiler's Algorithm 1 (Section 6) and the cycle-level simulator
operate on *scalar* DFGs — one vertex per arithmetic operation, one edge
per operand, exactly as in the paper. This module unrolls a macro
(named-axis) graph into that form. Reductions expand into balanced binary
trees, which is both the minimum-depth schedule and what the tree bus's
reduction ALUs implement in hardware.

Expansion is intended for small instances (unit tests, estimator
validation); a guard refuses to materialise graphs beyond ``max_nodes``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from . import ir
from .ops import op_info

#: (variable name, element index) -> scalar value id
ElementMap = Dict[Tuple[str, Tuple[int, ...]], int]


class ExpansionTooLarge(ValueError):
    """The macro graph would expand past the configured node budget."""


@dataclass
class ScalarExpansion:
    """A fully unrolled DFG plus the element bookkeeping the mapper needs."""

    dfg: ir.Dfg
    #: scalar ids of every input element, by (var, index)
    elements: ElementMap = field(default_factory=dict)

    def input_elements(self, category: str) -> List[Tuple[str, Tuple[int, ...], int]]:
        """(var, index, vid) for inputs of ``category`` in layout order."""
        out = []
        for (name, index), vid in sorted(self.elements.items()):
            value = self.dfg.values[vid]
            if value.producer is None and value.category == category:
                out.append((name, index, vid))
        return out


def scalarize(macro: ir.Dfg, max_nodes: int = 50_000) -> ScalarExpansion:
    """Unroll ``macro`` into a scalar DFG.

    Raises :class:`ExpansionTooLarge` if the expansion would exceed
    ``max_nodes`` scalar operations.
    """
    estimated = macro.total_scalar_ops()
    if estimated > max_nodes:
        raise ExpansionTooLarge(
            f"{estimated} scalar ops exceed the budget of {max_nodes}; "
            "use the macro-level estimator for graphs this large"
        )
    return _Expander(macro).run()


class _Expander:
    def __init__(self, macro: ir.Dfg):
        self._macro = macro
        self._scalar = ir.Dfg()
        # macro vid -> {index tuple -> scalar Value}
        self._grid: Dict[int, Dict[Tuple[int, ...], ir.Value]] = {}
        self._elements: ElementMap = {}

    def run(self) -> ScalarExpansion:
        for value in self._macro.values.values():
            if value.producer is None:
                self._expand_input(value)
        for node in self._macro.topo_order():
            self._expand_node(node)
        for name, vid in self._macro.outputs.items():
            # Keep one representative output binding (index () if scalar).
            grid = self._grid[vid]
            first = grid[min(grid)]
            self._scalar.outputs[name] = first.vid
        self._scalar.validate()
        return ScalarExpansion(self._scalar, self._elements)

    # -- helpers -------------------------------------------------------------
    def _indices(self, axes: Tuple[str, ...]):
        ranges = [range(self._macro.extents[a]) for a in axes]
        return itertools.product(*ranges)

    def _expand_input(self, value: ir.Value):
        grid: Dict[Tuple[int, ...], ir.Value] = {}
        for index in self._indices(value.axes):
            if value.category == ir.CONST:
                scalar = self._scalar.add_value(
                    value.name, ir.CONST, (), const_value=value.const_value
                )
            else:
                scalar = self._scalar.add_value(
                    _element_name(value.name, index), value.category, ()
                )
                self._elements[(value.name, index)] = scalar.vid
            grid[index] = scalar
        self._grid[value.vid] = grid

    def _expand_node(self, node: ir.Node):
        info = op_info(node.op)
        out_value = self._macro.values[node.output]
        if info.reduce:
            self._expand_reduce(node, out_value)
            return
        grid: Dict[Tuple[int, ...], ir.Value] = {}
        out_axes = out_value.axes
        for index in self._indices(out_axes):
            operands = []
            for vid in node.inputs:
                in_value = self._macro.values[vid]
                sub = tuple(
                    index[out_axes.index(a)] for a in in_value.axes
                )
                operands.append(self._grid[vid][sub])
            grid[index] = self._scalar.add_node(
                node.op,
                operands,
                _element_name(out_value.name, index),
                (),
                is_gradient=out_value.is_gradient,
            )
        self._grid[node.output] = grid

    def _expand_reduce(self, node: ir.Node, out_value: ir.Value):
        in_value = self._macro.values[node.inputs[0]]
        in_axes = in_value.axes
        out_axes = out_value.axes
        combine = {
            "reduce_sum": "add",
            "reduce_prod": "mul",
            "reduce_min": "min",
            "reduce_max": "max",
        }[node.op]
        grid: Dict[Tuple[int, ...], ir.Value] = {}
        for index in self._indices(out_axes):
            leaves: List[ir.Value] = []
            for reduced in self._indices(node.reduce_axes):
                sub = tuple(
                    index[out_axes.index(a)]
                    if a in out_axes
                    else reduced[node.reduce_axes.index(a)]
                    for a in in_axes
                )
                leaves.append(self._grid[node.inputs[0]][sub])
            grid[index] = self._tree(
                combine, leaves, out_value, index
            )
        self._grid[node.output] = grid

    def _tree(
        self,
        combine: str,
        leaves: List[ir.Value],
        out_value: ir.Value,
        index: Tuple[int, ...],
    ) -> ir.Value:
        """Balanced binary reduction tree (minimum dependence depth)."""
        if len(leaves) == 1:
            return self._scalar.add_node(
                "identity",
                leaves,
                _element_name(out_value.name, index),
                (),
                is_gradient=out_value.is_gradient,
            )
        level = leaves
        while len(level) > 1:
            nxt: List[ir.Value] = []
            for i in range(0, len(level) - 1, 2):
                name = (
                    _element_name(out_value.name, index)
                    if len(level) == 2
                    else f"%{combine}"
                )
                nxt.append(
                    self._scalar.add_node(
                        combine,
                        [level[i], level[i + 1]],
                        name,
                        (),
                        is_gradient=out_value.is_gradient and len(level) == 2,
                    )
                )
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]


def _element_name(name: str, index: Tuple[int, ...]) -> str:
    if not index:
        return name
    return f"{name}[{','.join(str(i) for i in index)}]"
