"""Functional (NumPy) execution of CoSMIC dataflow graphs.

The accelerator's arithmetic is deterministic and order-independent at the
macro-op level, so executing the DFG with NumPy yields bit-comparable
results to the cycle simulator while being fast enough to actually *train*
the benchmarks. The runtime layer uses this interpreter as the compute
kernel of every simulated accelerator thread.

A leading batch axis lets one call evaluate the DFG for a whole data
sub-partition at once, mirroring how a worker thread iterates its
sub-partition ``D_ij`` (Figure 1).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from . import ir
from .ops import op_info


class InterpreterError(ValueError):
    """Bad feeds or an inconsistent graph at execution time."""


class _Step:
    """One precompiled macro-op: resolved op function plus the operand
    alignment the generic path would recompute on every call."""

    __slots__ = (
        "output", "fn", "reduce_args", "inputs", "shape_suffix",
    )

    def __init__(self, output, fn, reduce_args, inputs, shape_suffix):
        self.output = output
        self.fn = fn
        #: (vid, expand0, axis_positions) for reductions, else None.
        self.reduce_args = reduce_args
        #: [(vid, expand0, perm, index), ...] for elementwise ops.
        self.inputs = inputs
        self.shape_suffix = shape_suffix


class Interpreter:
    """Evaluates a :class:`repro.dfg.ir.Dfg` on NumPy arrays.

    Construction precompiles an execution plan — topological order, op
    dispatch, and operand-alignment transforms — so the per-call cost of
    :meth:`run` is the NumPy arithmetic itself. The un-compiled per-node
    path survives as :meth:`run_reference` and the two are cross-validated
    bit-for-bit in tests.
    """

    def __init__(self, dfg: ir.Dfg):
        dfg.validate()
        self._dfg = dfg
        self._topo = dfg.topo_order()
        self._plans = {
            False: [self._compile_step(n, batch=False) for n in self._topo],
            True: [self._compile_step(n, batch=True) for n in self._topo],
        }

    @property
    def dfg(self) -> ir.Dfg:
        return self._dfg

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        batch: bool = False,
    ) -> Dict[str, np.ndarray]:
        """Evaluate the graph.

        Args:
            feeds: input name -> array. Every DATA and MODEL input must be
                fed. Array dims must match the value's axes — with one
                extra leading batch dimension everywhere on DATA inputs
                when ``batch=True``.
            batch: evaluate for a whole batch of samples at once. MODEL
                inputs are shared (no batch dim); all DATA inputs must
                carry the same leading batch size.

        Returns:
            name -> array for every named output (gradients and assigned
            model variables). Batch mode keeps the leading batch dim.
        """
        env: Dict[int, np.ndarray] = {}
        batch_size = self._bind_inputs(feeds, env, batch)
        prefix = (batch_size,) if batch else ()
        for step in self._plans[batch]:
            if step.reduce_args is not None:
                vid, expand0, positions = step.reduce_args
                arr = env[vid]
                if expand0:
                    arr = np.expand_dims(arr, 0)
                result = step.fn(arr, axis=positions)
            else:
                aligned = []
                for vid, expand0, perm, index in step.inputs:
                    arr = env[vid]
                    if expand0:
                        arr = np.expand_dims(arr, 0)
                    if perm is not None:
                        arr = np.transpose(arr, perm)[index]
                    aligned.append(arr)
                result = step.fn(*aligned)
            shape = prefix + step.shape_suffix
            if np.shape(result) != shape:
                result = np.broadcast_to(result, shape)
            env[step.output] = result
        return self._collect_outputs(env)

    def run_reference(
        self,
        feeds: Mapping[str, np.ndarray],
        batch: bool = False,
    ) -> Dict[str, np.ndarray]:
        """:meth:`run` without the precompiled plan (reference path)."""
        env: Dict[int, np.ndarray] = {}
        batch_size = self._bind_inputs(feeds, env, batch)
        for node in self._topo:
            env[node.output] = self._execute(node, env, batch, batch_size)
        return self._collect_outputs(env)

    def _collect_outputs(
        self, env: Dict[int, np.ndarray]
    ) -> Dict[str, np.ndarray]:
        results: Dict[str, np.ndarray] = {}
        for name, vid in self._dfg.outputs.items():
            # Materialise broadcast views; np.array keeps 0-d scalars 0-d
            # (np.ascontiguousarray would promote them to shape (1,)).
            results[name] = np.array(env[vid], dtype=np.float64)
        return results

    def _compile_step(self, node: ir.Node, batch: bool) -> _Step:
        """Resolve op dispatch and operand alignment for one node.

        In batch mode a value's rank is static: DATA inputs and every
        produced value carry the leading batch dim; MODEL and CONST
        operands do not and get expanded — the same decisions
        :meth:`_with_batch`/:func:`_align` make dynamically.
        """
        info = op_info(node.op)
        out_value = self._dfg.values[node.output]
        shape_suffix = self._dfg.shape(out_value)
        offset = 1 if batch else 0

        def has_batch(value: ir.Value) -> bool:
            return batch and (
                value.category == ir.DATA or value.producer is not None
            )

        if info.reduce:
            in_value = self._dfg.values[node.inputs[0]]
            positions = tuple(
                offset + in_value.axes.index(a) for a in node.reduce_axes
            )
            reduce_args = (
                in_value.vid, batch and not has_batch(in_value), positions
            )
            return _Step(
                node.output, info.numpy_fn, reduce_args, None, shape_suffix
            )
        inputs = []
        out_axes = out_value.axes
        for vid in node.inputs:
            value = self._dfg.values[vid]
            expand0 = batch and not has_batch(value)
            in_axes = value.axes
            if in_axes == out_axes:
                perm, index = None, None
            else:
                present = [a for a in out_axes if a in in_axes]
                perm = tuple(
                    list(range(offset))
                    + [offset + in_axes.index(a) for a in present]
                )
                index = tuple(
                    [slice(None)] * offset
                    + [slice(None) if a in in_axes else None for a in out_axes]
                )
            inputs.append((vid, expand0, perm, index))
        return _Step(node.output, info.numpy_fn, None, inputs, shape_suffix)

    def gradients(
        self, feeds: Mapping[str, np.ndarray], batch: bool = False
    ) -> Dict[str, np.ndarray]:
        """Like :meth:`run` but restricted to gradient outputs."""
        out = self.run(feeds, batch=batch)
        grad_names = {v.name for v in self._dfg.gradient_outputs()}
        return {k: v for k, v in out.items() if k in grad_names}

    # -- internals ---------------------------------------------------------
    def _bind_inputs(
        self, feeds: Mapping[str, np.ndarray], env: Dict[int, np.ndarray],
        batch: bool,
    ) -> Optional[int]:
        batch_size: Optional[int] = None
        for value in self._dfg.values.values():
            if value.producer is not None:
                continue
            if value.category == ir.CONST:
                env[value.vid] = np.float64(value.const_value)
                continue
            if value.name not in feeds:
                raise InterpreterError(f"missing feed for input {value.name!r}")
            arr = np.asarray(feeds[value.name], dtype=np.float64)
            expect = self._dfg.shape(value)
            if batch and value.category == ir.DATA:
                if arr.shape[1:] != expect:
                    raise InterpreterError(
                        f"feed {value.name!r} has shape {arr.shape}, expected "
                        f"(batch,) + {expect}"
                    )
                if batch_size is None:
                    batch_size = arr.shape[0]
                elif arr.shape[0] != batch_size:
                    raise InterpreterError(
                        "all DATA feeds must share one batch size"
                    )
            elif arr.shape != expect:
                raise InterpreterError(
                    f"feed {value.name!r} has shape {arr.shape}, expected {expect}"
                )
            env[value.vid] = arr
        if batch and batch_size is None:
            raise InterpreterError("batch mode requires at least one DATA feed")
        return batch_size

    def _execute(
        self, node: ir.Node, env: Dict[int, np.ndarray], batch: bool,
        batch_size: Optional[int],
    ) -> np.ndarray:
        info = op_info(node.op)
        out_value = self._dfg.values[node.output]
        out_axes = out_value.axes
        if info.reduce:
            in_value = self._dfg.values[node.inputs[0]]
            arr = env[node.inputs[0]]
            arr = self._with_batch(arr, in_value, batch, batch_size)
            offset = 1 if batch else 0
            positions = tuple(
                offset + in_value.axes.index(a) for a in node.reduce_axes
            )
            return info.numpy_fn(arr, axis=positions)
        aligned = []
        for vid in node.inputs:
            value = self._dfg.values[vid]
            arr = self._with_batch(env[vid], value, batch, batch_size)
            aligned.append(_align(arr, value.axes, out_axes, batch))
        result = info.numpy_fn(*aligned)
        # Materialise broadcasts so the output has its declared shape.
        shape = self._dfg.shape(out_value)
        if batch:
            shape = (batch_size,) + shape
        if np.shape(result) != shape:
            result = np.broadcast_to(result, shape)
        return result

    def _with_batch(
        self, arr: np.ndarray, value: ir.Value, batch: bool,
        batch_size: Optional[int],
    ) -> np.ndarray:
        """Give every operand a leading batch dim in batch mode."""
        if not batch:
            return arr
        has_batch = (
            value.category == ir.DATA
            or np.ndim(arr) == len(value.axes) + 1
        )
        if has_batch:
            return arr
        return np.expand_dims(arr, 0)


def _align(
    arr: np.ndarray, in_axes: Tuple[str, ...], out_axes: Tuple[str, ...],
    batch: bool,
) -> np.ndarray:
    """Permute/expand ``arr`` so its trailing dims follow ``out_axes``."""
    offset = 1 if batch else 0
    if in_axes == out_axes:
        return arr
    present = [a for a in out_axes if a in in_axes]
    perm = list(range(offset)) + [offset + in_axes.index(a) for a in present]
    if np.ndim(arr) != offset + len(in_axes):
        raise InterpreterError(
            f"operand rank {np.ndim(arr)} does not match axes {in_axes}"
        )
    arr = np.transpose(arr, perm)
    index = [slice(None)] * offset + [
        slice(None) if a in in_axes else None for a in out_axes
    ]
    return arr[tuple(index)]
