"""Functional (NumPy) execution of CoSMIC dataflow graphs.

The accelerator's arithmetic is deterministic and order-independent at the
macro-op level, so executing the DFG with NumPy yields bit-comparable
results to the cycle simulator while being fast enough to actually *train*
the benchmarks. The runtime layer uses this interpreter as the compute
kernel of every simulated accelerator thread.

A leading batch axis lets one call evaluate the DFG for a whole data
sub-partition at once, mirroring how a worker thread iterates its
sub-partition ``D_ij`` (Figure 1).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from . import ir
from .ops import op_info


class InterpreterError(ValueError):
    """Bad feeds or an inconsistent graph at execution time."""


class Interpreter:
    """Evaluates a :class:`repro.dfg.ir.Dfg` on NumPy arrays."""

    def __init__(self, dfg: ir.Dfg):
        dfg.validate()
        self._dfg = dfg

    @property
    def dfg(self) -> ir.Dfg:
        return self._dfg

    def run(
        self,
        feeds: Mapping[str, np.ndarray],
        batch: bool = False,
    ) -> Dict[str, np.ndarray]:
        """Evaluate the graph.

        Args:
            feeds: input name -> array. Every DATA and MODEL input must be
                fed. Array dims must match the value's axes — with one
                extra leading batch dimension everywhere on DATA inputs
                when ``batch=True``.
            batch: evaluate for a whole batch of samples at once. MODEL
                inputs are shared (no batch dim); all DATA inputs must
                carry the same leading batch size.

        Returns:
            name -> array for every named output (gradients and assigned
            model variables). Batch mode keeps the leading batch dim.
        """
        env: Dict[int, np.ndarray] = {}
        batch_size = self._bind_inputs(feeds, env, batch)
        for node in self._dfg.topo_order():
            env[node.output] = self._execute(node, env, batch, batch_size)
        results: Dict[str, np.ndarray] = {}
        for name, vid in self._dfg.outputs.items():
            # Materialise broadcast views; np.array keeps 0-d scalars 0-d
            # (np.ascontiguousarray would promote them to shape (1,)).
            results[name] = np.array(env[vid], dtype=np.float64)
        return results

    def gradients(
        self, feeds: Mapping[str, np.ndarray], batch: bool = False
    ) -> Dict[str, np.ndarray]:
        """Like :meth:`run` but restricted to gradient outputs."""
        out = self.run(feeds, batch=batch)
        grad_names = {v.name for v in self._dfg.gradient_outputs()}
        return {k: v for k, v in out.items() if k in grad_names}

    # -- internals ---------------------------------------------------------
    def _bind_inputs(
        self, feeds: Mapping[str, np.ndarray], env: Dict[int, np.ndarray],
        batch: bool,
    ) -> Optional[int]:
        batch_size: Optional[int] = None
        for value in self._dfg.values.values():
            if value.producer is not None:
                continue
            if value.category == ir.CONST:
                env[value.vid] = np.float64(value.const_value)
                continue
            if value.name not in feeds:
                raise InterpreterError(f"missing feed for input {value.name!r}")
            arr = np.asarray(feeds[value.name], dtype=np.float64)
            expect = self._dfg.shape(value)
            if batch and value.category == ir.DATA:
                if arr.shape[1:] != expect:
                    raise InterpreterError(
                        f"feed {value.name!r} has shape {arr.shape}, expected "
                        f"(batch,) + {expect}"
                    )
                if batch_size is None:
                    batch_size = arr.shape[0]
                elif arr.shape[0] != batch_size:
                    raise InterpreterError(
                        "all DATA feeds must share one batch size"
                    )
            elif arr.shape != expect:
                raise InterpreterError(
                    f"feed {value.name!r} has shape {arr.shape}, expected {expect}"
                )
            env[value.vid] = arr
        if batch and batch_size is None:
            raise InterpreterError("batch mode requires at least one DATA feed")
        return batch_size

    def _execute(
        self, node: ir.Node, env: Dict[int, np.ndarray], batch: bool,
        batch_size: Optional[int],
    ) -> np.ndarray:
        info = op_info(node.op)
        out_value = self._dfg.values[node.output]
        out_axes = out_value.axes
        if info.reduce:
            in_value = self._dfg.values[node.inputs[0]]
            arr = env[node.inputs[0]]
            arr = self._with_batch(arr, in_value, batch, batch_size)
            offset = 1 if batch else 0
            positions = tuple(
                offset + in_value.axes.index(a) for a in node.reduce_axes
            )
            return info.numpy_fn(arr, axis=positions)
        aligned = []
        for vid in node.inputs:
            value = self._dfg.values[vid]
            arr = self._with_batch(env[vid], value, batch, batch_size)
            aligned.append(_align(arr, value.axes, out_axes, batch))
        result = info.numpy_fn(*aligned)
        # Materialise broadcasts so the output has its declared shape.
        shape = self._dfg.shape(out_value)
        if batch:
            shape = (batch_size,) + shape
        if np.shape(result) != shape:
            result = np.broadcast_to(result, shape)
        return result

    def _with_batch(
        self, arr: np.ndarray, value: ir.Value, batch: bool,
        batch_size: Optional[int],
    ) -> np.ndarray:
        """Give every operand a leading batch dim in batch mode."""
        if not batch:
            return arr
        has_batch = (
            value.category == ir.DATA
            or np.ndim(arr) == len(value.axes) + 1
        )
        if has_batch:
            return arr
        return np.expand_dims(arr, 0)


def _align(
    arr: np.ndarray, in_axes: Tuple[str, ...], out_axes: Tuple[str, ...],
    batch: bool,
) -> np.ndarray:
    """Permute/expand ``arr`` so its trailing dims follow ``out_axes``."""
    offset = 1 if batch else 0
    if in_axes == out_axes:
        return arr
    present = [a for a in out_axes if a in in_axes]
    perm = list(range(offset)) + [offset + in_axes.index(a) for a in present]
    if np.ndim(arr) != offset + len(in_axes):
        raise InterpreterError(
            f"operand rank {np.ndim(arr)} does not match axes {in_axes}"
        )
    arr = np.transpose(arr, perm)
    index = [slice(None)] * offset + [
        slice(None) if a in in_axes else None for a in out_axes
    ]
    return arr[tuple(index)]
