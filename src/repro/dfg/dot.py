"""Graphviz (DOT) export of dataflow graphs.

Figure 4(b) of the paper shows the Translator's DFG as a picture; this
module produces that picture's source for any graph — macro or scalar —
with operand categories colour-coded the way the Compiler treats them
(DATA / MODEL / INTERIM / CONST). Optionally annotates each node with its
mapped PE and scheduled cycle, turning a compiled program into a
reviewable placement diagram.
"""

from __future__ import annotations

from typing import Dict, Optional

from . import ir

_CATEGORY_STYLE = {
    ir.DATA: ("box", "#cfe8ff"),
    ir.MODEL: ("box", "#d8f5d0"),
    ir.INTERIM: ("ellipse", "#ffffff"),
    ir.CONST: ("plaintext", "#f0f0f0"),
}


def to_dot(
    dfg: ir.Dfg,
    name: str = "dfg",
    pe_of_node: Optional[Dict[int, int]] = None,
    cycle_of_node: Optional[Dict[int, int]] = None,
) -> str:
    """Render ``dfg`` as DOT text.

    Args:
        dfg: the graph.
        name: the digraph's name.
        pe_of_node: optional node id -> PE annotation (from a Mapping).
        cycle_of_node: optional node id -> start cycle (from a Schedule).
    """
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [fontsize=10];"]
    for value in dfg.values.values():
        if value.producer is not None:
            continue
        shape, fill = _CATEGORY_STYLE[value.category]
        label = value.name
        if value.category == ir.CONST and value.const_value is not None:
            label = _fmt_const(value.const_value)
        elif value.axes:
            label += f"[{','.join(value.axes)}]"
        lines.append(
            f'  v{value.vid} [label="{label}", shape={shape}, '
            f'style=filled, fillcolor="{fill}"];'
        )
    for node in dfg.topo_order():
        out = dfg.values[node.output]
        label = node.op
        if node.reduce_axes:
            label += f"[{','.join(node.reduce_axes)}]"
        extras = []
        if pe_of_node and node.nid in pe_of_node:
            extras.append(f"pe{pe_of_node[node.nid]}")
        if cycle_of_node and node.nid in cycle_of_node:
            extras.append(f"t={cycle_of_node[node.nid]}")
        if extras:
            label += "\\n" + " ".join(extras)
        color = "#ffe2b8" if out.is_gradient else "#ffffff"
        lines.append(
            f'  n{node.nid} [label="{label}", shape=ellipse, '
            f'style=filled, fillcolor="{color}"];'
        )
        for vid in node.inputs:
            src = dfg.values[vid]
            origin = f"v{vid}" if src.producer is None else f"n{src.producer}"
            lines.append(f"  {origin} -> n{node.nid};")
    for out_name, vid in dfg.outputs.items():
        value = dfg.values[vid]
        if value.producer is not None:
            lines.append(
                f'  out_{_safe(out_name)} [label="{out_name}", '
                'shape=doubleoctagon];'
            )
            lines.append(f"  n{value.producer} -> out_{_safe(out_name)};")
    lines.append("}")
    return "\n".join(lines)


def program_to_dot(program, name: str = "compiled") -> str:
    """DOT of a compiled program with PE placement and cycle annotations."""
    cycles = {nid: op.start for nid, op in program.schedule.ops.items()}
    return to_dot(
        program.expansion.dfg,
        name=name,
        pe_of_node=program.mapping.pe_of_node,
        cycle_of_node=cycles,
    )


def _fmt_const(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


def _safe(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)
