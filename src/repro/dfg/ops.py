"""Operation registry for the CoSMIC dataflow graph.

Each DFG operation corresponds to a PE capability (Section 5.1): the ALU
executes linear operations on DSP slices, while sigmoid/gaussian/log/exp
and friends go through the non-linear look-up-table unit that the
Constructor only instantiates when the Compiler schedules one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one DFG operation."""

    name: str
    arity: int
    numpy_fn: Callable
    #: ALU cycles for one scalar application on a PE (pipelined issue rate).
    cycles: int = 1
    #: True if the op needs the PE's non-linear LUT unit.
    nonlinear: bool = False
    #: True for reduction ops (consume an axis).
    reduce: bool = False


def _select(cond, if_true, if_false):
    return np.where(cond != 0, if_true, if_false)


def _gaussian(x):
    return np.exp(-np.square(x))


def _sigmoid(x):
    # Clip to keep exp() finite in fixed-range LUT fashion.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


_REGISTRY: Dict[str, OpInfo] = {}


def _register(info: OpInfo):
    _REGISTRY[info.name] = info


# Element-wise binary ALU ops.
_register(OpInfo("add", 2, np.add))
_register(OpInfo("sub", 2, np.subtract))
_register(OpInfo("mul", 2, np.multiply))
_register(OpInfo("div", 2, np.divide, cycles=4, nonlinear=True))
_register(OpInfo("gt", 2, lambda a, b: np.asarray(a > b, dtype=np.float64)))
_register(OpInfo("lt", 2, lambda a, b: np.asarray(a < b, dtype=np.float64)))
_register(OpInfo("ge", 2, lambda a, b: np.asarray(a >= b, dtype=np.float64)))
_register(OpInfo("le", 2, lambda a, b: np.asarray(a <= b, dtype=np.float64)))
_register(OpInfo("eq", 2, lambda a, b: np.asarray(a == b, dtype=np.float64)))
_register(OpInfo("ne", 2, lambda a, b: np.asarray(a != b, dtype=np.float64)))
_register(OpInfo("min", 2, np.minimum))
_register(OpInfo("max", 2, np.maximum))

# Element-wise unary ops.
_register(OpInfo("neg", 1, np.negative))
_register(OpInfo("identity", 1, lambda a: a))
_register(OpInfo("abs", 1, np.abs))
_register(OpInfo("sign", 1, np.sign))
_register(OpInfo("sigmoid", 1, _sigmoid, cycles=2, nonlinear=True))
_register(OpInfo("gaussian", 1, _gaussian, cycles=2, nonlinear=True))
_register(OpInfo("log", 1, lambda a: np.log(np.maximum(a, 1e-30)), cycles=2, nonlinear=True))
_register(OpInfo("exp", 1, lambda a: np.exp(np.clip(a, -30.0, 30.0)), cycles=2, nonlinear=True))
_register(OpInfo("sqrt", 1, lambda a: np.sqrt(np.maximum(a, 0.0)), cycles=2, nonlinear=True))

# Three-input select implements the DSL ternary.
_register(OpInfo("select", 3, _select))

# Reductions over named axes (executed on PEs + tree-bus ALUs).
_register(OpInfo("reduce_sum", 1, np.sum, reduce=True))
_register(OpInfo("reduce_prod", 1, np.prod, reduce=True))
_register(OpInfo("reduce_min", 1, np.min, reduce=True))
_register(OpInfo("reduce_max", 1, np.max, reduce=True))

#: Map from DSL reduce keyword to DFG op name. ``norm`` is sum-of-squares.
REDUCE_OPS = {"sum": "reduce_sum", "pi": "reduce_prod", "norm": "reduce_sum"}

#: Binary comparison ops (produce 0/1 masks consumed by select).
COMPARISON_OPS = frozenset({"gt", "lt", "ge", "le", "eq", "ne"})


def op_info(name: str) -> OpInfo:
    """Metadata for op ``name``; raises KeyError for unknown ops."""
    return _REGISTRY[name]


def is_known_op(name: str) -> bool:
    return name in _REGISTRY


def all_ops() -> Dict[str, OpInfo]:
    """A copy of the full registry (for documentation and tests)."""
    return dict(_REGISTRY)
