"""Optimisation passes over the dataflow graph.

The Translator emits a literal rendering of the programmer's formula;
before mapping, the Compiler can clean it up:

* **constant folding** — operations whose inputs are all constants are
  evaluated at compile time (the DSL's ``1 - out[k]``-style arithmetic
  produces plenty of these);
* **common-subexpression elimination** — structurally identical
  operations compute once (``sum[i](w[i]*x[i])`` reused across
  statements);
* **dead-code elimination** — values that cannot reach a gradient or
  named output are dropped.

Every pass is semantics-preserving: the optimised graph produces
bit-identical results through the interpreter, which the test suite
checks property-style. Passes run at the macro (named-axis) level so the
savings multiply through scalarization.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from . import ir
from .ops import op_info


@dataclass
class OptimizationReport:
    """What the pipeline changed."""

    nodes_before: int
    nodes_after: int
    folded: int
    cse_merged: int
    dead_removed: int

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


def optimize(
    dfg: ir.Dfg, passes: Tuple[str, ...] = ("fold", "cse", "dce")
) -> Tuple[ir.Dfg, OptimizationReport]:
    """Run the optimisation pipeline; returns (new graph, report)."""
    for name in passes:
        if name not in ("fold", "cse", "dce"):
            raise ValueError(f"unknown pass {name!r}")
    builder = _Rebuilder(dfg, set(passes))
    return builder.run()


class _Rebuilder:
    """Single rebuilding walk applying fold + CSE, then a DCE sweep."""

    def __init__(self, src: ir.Dfg, passes):
        self._src = src
        self._passes = passes
        self._out = ir.Dfg(dict(src.extents))
        self._map: Dict[int, ir.Value] = {}  # src vid -> new value
        self._cse: Dict[tuple, ir.Value] = {}
        self._const_cache: Dict[float, ir.Value] = {}
        self.folded = 0
        self.cse_merged = 0

    def run(self) -> Tuple[ir.Dfg, OptimizationReport]:
        for value in self._src.values.values():
            if value.producer is None:
                self._map[value.vid] = self._copy_input(value)
        for node in self._src.topo_order():
            self._map[node.output] = self._rebuild(node)
        for name, vid in self._src.outputs.items():
            self._out.outputs[name] = self._map[vid].vid
        result = self._out
        dead_removed = 0
        if "dce" in self._passes:
            result, dead_removed = _eliminate_dead(result)
        result.validate()
        return result, OptimizationReport(
            nodes_before=len(self._src.nodes),
            nodes_after=len(result.nodes),
            folded=self.folded,
            cse_merged=self.cse_merged,
            dead_removed=dead_removed,
        )

    def _copy_input(self, value: ir.Value) -> ir.Value:
        if value.category == ir.CONST:
            return self._const(value.const_value)
        return self._out.add_value(
            value.name, value.category, value.axes,
            const_value=value.const_value,
        )

    def _const(self, literal: float) -> ir.Value:
        key = float(literal)
        if key not in self._const_cache:
            self._const_cache[key] = self._out.add_value(
                "%c", ir.CONST, (), const_value=key
            )
        return self._const_cache[key]

    def _rebuild(self, node: ir.Node) -> ir.Value:
        inputs = [self._map[vid] for vid in node.inputs]
        out_src = self._src.values[node.output]

        if "fold" in self._passes and self._foldable(node, inputs):
            literal = self._evaluate(node, inputs)
            if literal is not None:
                self.folded += 1
                return self._const(literal)

        if "cse" in self._passes:
            key = (
                node.op,
                tuple(v.vid for v in inputs),
                out_src.axes,
                node.reduce_axes,
            )
            hit = self._cse.get(key)
            if hit is not None:
                self.cse_merged += 1
                # Preserve gradient visibility: if this duplicate was a
                # gradient output, expose the shared value under its name.
                if out_src.is_gradient and not hit.is_gradient:
                    alias = self._out.add_node(
                        "identity", [hit], out_src.name, out_src.axes,
                        is_gradient=True,
                    )
                    return alias
                return hit

        rebuilt = self._out.add_node(
            node.op,
            inputs,
            out_src.name,
            out_src.axes,
            reduce_axes=node.reduce_axes,
            is_gradient=out_src.is_gradient,
        )
        if "cse" in self._passes:
            key = (
                node.op,
                tuple(v.vid for v in inputs),
                out_src.axes,
                node.reduce_axes,
            )
            self._cse[key] = rebuilt
        return rebuilt

    def _foldable(self, node: ir.Node, inputs) -> bool:
        out = self._src.values[node.output]
        if out.axes or out.is_gradient:
            return False  # fold scalars only; keep named outputs
        return all(
            v.category == ir.CONST and v.const_value is not None
            for v in inputs
        )

    def _evaluate(self, node: ir.Node, inputs) -> Optional[float]:
        info = op_info(node.op)
        try:
            if info.reduce:
                return None  # scalar reduce over consts cannot occur
            operands = [np.float64(v.const_value) for v in inputs]
            result = float(info.numpy_fn(*operands))
        except Exception:
            return None
        if not np.isfinite(result):
            return None
        return result


def _eliminate_dead(dfg: ir.Dfg) -> Tuple[ir.Dfg, int]:
    """Drop every node that cannot reach a gradient or named output."""
    live: set = set(dfg.outputs.values())
    live |= {v.vid for v in dfg.gradient_outputs()}
    for node in reversed(dfg.topo_order()):
        if node.output in live:
            live |= set(node.inputs)
    out = ir.Dfg(dict(dfg.extents))
    mapping: Dict[int, ir.Value] = {}
    removed = 0
    for value in dfg.values.values():
        if value.producer is None:
            # Keep all non-const inputs: feeds are part of the interface.
            if value.category == ir.CONST and value.vid not in live:
                continue
            mapping[value.vid] = out.add_value(
                value.name, value.category, value.axes,
                const_value=value.const_value,
            )
    for node in dfg.topo_order():
        if node.output not in live:
            removed += 1
            continue
        src_out = dfg.values[node.output]
        mapping[node.output] = out.add_node(
            node.op,
            [mapping[vid] for vid in node.inputs],
            src_out.name,
            src_out.axes,
            reduce_axes=node.reduce_axes,
            is_gradient=src_out.is_gradient,
        )
    for name, vid in dfg.outputs.items():
        out.outputs[name] = mapping[vid].vid
    return out, removed
