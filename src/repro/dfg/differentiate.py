"""Reverse-mode differentiation of dataflow graphs.

The paper requires programmers to write the *gradient* of their loss
(Section 2.1). This module removes that burden: write the loss itself and
CoSMIC derives the partial-gradient DFG by reverse accumulation over the
named-axis IR — producing exactly the kind of graph the Compiler and
Planner already consume. Backpropagation falls out automatically: the
derived graph for the MLP's squared loss *is* the paper's hand-written
backprop program.

Axis discipline: the adjoint of a value always carries that value's axes.
When a value with axes ``A`` feeds an operation with axes ``B ⊇ A``
(an implicit broadcast), the adjoint contribution is summed over the
extra axes ``B \\ A`` — the transpose of broadcasting.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from ..dsl import ast, parse
from ..dsl.errors import DslError
from . import ir
from .translate import AggregatorSpec, Translation, translate


class DifferentiationError(DslError):
    """The loss graph contains an op with no differentiation rule."""


def derive_gradients(
    source: str,
    bindings: Optional[Mapping[str, int]] = None,
    loss_name: str = "loss",
) -> Translation:
    """Compile a loss-only DSL program into a gradient Translation.

    The program declares ``model``/``model_input``/``model_output``
    variables and assigns a scalar to ``loss_name``; no ``gradient``
    declarations or gradient formulas are needed. The result is a
    drop-in :class:`repro.dfg.translate.Translation` whose DFG outputs
    one gradient per model variable, named ``g_<model>``.
    """
    program = parse(source)
    if not any(s.target == loss_name for s in program.statements):
        raise DifferentiationError(
            f"program never assigns the loss variable {loss_name!r}"
        )
    # The semantic checker requires a gradient formulation; the loss
    # program legitimately has none, so pre-register phantom gradients.
    forward = translate(_with_phantom_gradient(program), bindings)
    loss_vid = forward.dfg.outputs.get(loss_name)
    if loss_vid is None:
        # The loss is an interim; locate it by name.
        loss_vid = _find_value(forward.dfg, loss_name)
    grad_dfg = differentiate(forward.dfg, loss_vid)
    pairs = tuple(
        (name[2:], name)
        for name in sorted(
            v.name for v in grad_dfg.gradient_outputs()
        )
    )
    return Translation(
        dfg=grad_dfg,
        table=forward.table,
        bindings=dict(bindings or {}),
        aggregator=AggregatorSpec("mean", pairs),
        program=program,
    )


def differentiate(dfg: ir.Dfg, loss_vid: int) -> ir.Dfg:
    """Return a new DFG computing d(loss)/d(model) for every MODEL input.

    The result contains the forward graph (re-emitted) followed by the
    adjoint computation; gradient outputs are flagged ``is_gradient`` and
    named ``g_<model>``.
    """
    loss = dfg.values[loss_vid]
    if loss.axes:
        raise DifferentiationError(
            f"loss {loss.name!r} must be scalar, has axes {loss.axes}"
        )
    return _Differentiator(dfg, loss_vid).run()


class _Differentiator:
    def __init__(self, dfg: ir.Dfg, loss_vid: int):
        self._src = dfg
        self._loss_vid = loss_vid
        self._out = ir.Dfg(dict(dfg.extents))
        #: source value id -> value in the new graph (forward copy)
        self._fwd: Dict[int, ir.Value] = {}
        #: source value id -> accumulated adjoint in the new graph
        self._adj: Dict[int, ir.Value] = {}

    def run(self) -> ir.Dfg:
        self._copy_forward()
        one = self._out.add_value("%one", ir.CONST, (), const_value=1.0)
        self._adj[self._loss_vid] = one
        for node in reversed(self._src.topo_order()):
            out_adj = self._adj.get(node.output)
            if out_adj is None:
                continue  # this node does not influence the loss
            self._backprop(node, out_adj)
        self._emit_gradients()
        self._out.outputs.update(
            {
                name: self._fwd[vid].vid
                for name, vid in self._src.outputs.items()
                if vid in self._fwd
            }
        )
        # Expose the (forward) loss so users can monitor it for free.
        loss = self._src.values[self._loss_vid]
        self._out.outputs.setdefault(loss.name, self._fwd[self._loss_vid].vid)
        self._out.validate()
        return self._out

    # -- forward copy -----------------------------------------------------
    def _copy_forward(self):
        for value in self._src.values.values():
            if value.producer is None:
                self._fwd[value.vid] = self._out.add_value(
                    value.name, value.category, value.axes,
                    const_value=value.const_value,
                )
        for node in self._src.topo_order():
            out = self._src.values[node.output]
            self._fwd[node.output] = self._out.add_node(
                node.op,
                [self._fwd[vid] for vid in node.inputs],
                out.name,
                out.axes,
                reduce_axes=node.reduce_axes,
            )

    # -- adjoint plumbing ---------------------------------------------------
    def _accumulate(self, src_vid: int, contribution: ir.Value):
        """Add a contribution to d(loss)/d(src value), axis-aligned."""
        target = self._src.values[src_vid]
        contribution = self._project(contribution, target.axes)
        existing = self._adj.get(src_vid)
        if existing is None:
            self._adj[src_vid] = contribution
        else:
            self._adj[src_vid] = self._out.add_node(
                "add", [existing, contribution], "%adj", target.axes
            )

    def _project(self, value: ir.Value, axes: Tuple[str, ...]) -> ir.Value:
        """Sum out axes not in ``axes`` (transpose of broadcasting)."""
        extra = tuple(a for a in value.axes if a not in axes)
        if extra:
            kept = tuple(a for a in value.axes if a in axes)
            value = self._out.add_node(
                "reduce_sum", [value], "%proj", kept, reduce_axes=extra
            )
        if value.axes != axes:
            value = self._out.add_node("identity", [value], "%align", axes)
        return value

    def _const(self, literal: float) -> ir.Value:
        return self._out.add_value(
            "%c", ir.CONST, (), const_value=float(literal)
        )

    def _node(self, op: str, inputs: List[ir.Value]) -> ir.Value:
        axes: Tuple[str, ...] = ()
        for value in inputs:
            for axis in value.axes:
                if axis not in axes:
                    axes = axes + (axis,)
        return self._out.add_node(op, inputs, f"%d{op}", axes)

    # -- per-op rules -----------------------------------------------------
    def _backprop(self, node: ir.Node, adj: ir.Value):
        op = node.op
        fwd_in = [self._fwd[vid] for vid in node.inputs]
        fwd_out = self._fwd[node.output]
        if op == "add":
            self._accumulate(node.inputs[0], adj)
            self._accumulate(node.inputs[1], adj)
        elif op == "sub":
            self._accumulate(node.inputs[0], adj)
            self._accumulate(node.inputs[1], self._node("neg", [adj]))
        elif op == "mul":
            self._accumulate(node.inputs[0], self._node("mul", [adj, fwd_in[1]]))
            self._accumulate(node.inputs[1], self._node("mul", [adj, fwd_in[0]]))
        elif op == "div":
            self._accumulate(
                node.inputs[0], self._node("div", [adj, fwd_in[1]])
            )
            ratio = self._node("div", [fwd_out, fwd_in[1]])
            self._accumulate(
                node.inputs[1],
                self._node("neg", [self._node("mul", [adj, ratio])]),
            )
        elif op == "neg":
            self._accumulate(node.inputs[0], self._node("neg", [adj]))
        elif op == "identity":
            self._accumulate(node.inputs[0], adj)
        elif op == "sigmoid":
            one_minus = self._node("sub", [self._const(1.0), fwd_out])
            local = self._node("mul", [fwd_out, one_minus])
            self._accumulate(node.inputs[0], self._node("mul", [adj, local]))
        elif op == "exp":
            self._accumulate(node.inputs[0], self._node("mul", [adj, fwd_out]))
        elif op == "log":
            self._accumulate(node.inputs[0], self._node("div", [adj, fwd_in[0]]))
        elif op == "sqrt":
            half = self._node("div", [self._const(0.5), fwd_out])
            self._accumulate(node.inputs[0], self._node("mul", [adj, half]))
        elif op == "gaussian":
            # d/dx exp(-x^2) = -2x exp(-x^2)
            two_x = self._node("mul", [self._const(-2.0), fwd_in[0]])
            local = self._node("mul", [two_x, fwd_out])
            self._accumulate(node.inputs[0], self._node("mul", [adj, local]))
        elif op == "abs":
            sign = self._node("sign", [fwd_in[0]])
            self._accumulate(node.inputs[0], self._node("mul", [adj, sign]))
        elif op == "select":
            zero = self._const(0.0)
            self._accumulate(
                node.inputs[1],
                self._node("select", [fwd_in[0], adj, zero]),
            )
            self._accumulate(
                node.inputs[2],
                self._node("select", [fwd_in[0], zero, adj]),
            )
        elif op in ("min", "max"):
            picked_first = (
                self._node("le", fwd_in)
                if op == "min"
                else self._node("ge", fwd_in)
            )
            zero = self._const(0.0)
            self._accumulate(
                node.inputs[0],
                self._node("select", [picked_first, adj, zero]),
            )
            self._accumulate(
                node.inputs[1],
                self._node("select", [picked_first, zero, adj]),
            )
        elif op in ("gt", "lt", "ge", "le", "eq", "ne", "sign"):
            pass  # piecewise-constant: zero gradient
        elif op == "reduce_sum":
            # Broadcast the adjoint back along the reduced axes.
            in_axes = self._src.values[node.inputs[0]].axes
            widened = self._out.add_node(
                "identity", [adj], "%bcast", in_axes
            )
            self._accumulate(node.inputs[0], widened)
        else:
            raise DifferentiationError(
                f"no differentiation rule for op {op!r}"
            )

    # -- gradient emission ---------------------------------------------------
    def _emit_gradients(self):
        for value in self._src.inputs_of_category(ir.MODEL):
            adj = self._adj.get(value.vid)
            if adj is None:
                adj = self._out.add_node(
                    "identity",
                    [self._const(0.0)],
                    f"g_{value.name}",
                    value.axes,
                    is_gradient=True,
                )
            else:
                adj = self._out.add_node(
                    "identity", [adj], f"g_{value.name}", value.axes,
                    is_gradient=True,
                )
            self._out.outputs[f"g_{value.name}"] = adj.vid


def _with_phantom_gradient(program: ast.Program) -> ast.Program:
    """Satisfy the 'has a gradient formulation' semantic rule: the loss
    program is its own (gradient-free) formulation."""
    return program


def _find_value(dfg: ir.Dfg, name: str) -> int:
    candidates = [v.vid for v in dfg.values.values() if v.name == name]
    if not candidates:
        raise DifferentiationError(f"no value named {name!r} in the graph")
    return max(candidates)  # last assignment wins
