"""Dataflow-graph IR for CoSMIC.

The Translator (Section 4.2) lowers a DSL program to this IR. Values carry
the operand categories the Compiler's Algorithm 1 dispatches on — DATA
(training vectors), MODEL (parameters), INTERIM (intermediate results) and
CONST — plus *named axes*: instead of fully unrolling a 784x784 weight
matrix into hundreds of thousands of scalar nodes, a value keeps symbolic
axes (iterator names) with known extents, and each node is a shaped
macro-operation. ``repro.dfg.scalarize`` expands small graphs to the scalar
form used by the mapping algorithm and the cycle simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .ops import op_info

# Operand categories of Section 6 ("segregates the DFG operands into DATA,
# MODEL, and INTERIM categories"); CONST covers literals and meta-params.
DATA = "DATA"
MODEL = "MODEL"
INTERIM = "INTERIM"
CONST = "CONST"
CATEGORIES = (DATA, MODEL, INTERIM, CONST)


@dataclass
class Value:
    """An edge of the DFG: a (possibly shaped) operand.

    Attributes:
        vid: unique id within the graph.
        name: source-level name, or a generated ``%N`` temporary.
        category: one of :data:`CATEGORIES`.
        axes: named axes, e.g. ``("i", "j")``; ``()`` for scalars.
        producer: id of the node that computes this value (None for inputs).
        const_value: literal payload for CONST scalars.
        is_gradient: True for values bound to ``gradient`` DSL variables —
            the outputs shipped to the aggregation stage.
    """

    vid: int
    name: str
    category: str
    axes: Tuple[str, ...] = ()
    producer: Optional[int] = None
    const_value: Optional[float] = None
    is_gradient: bool = False

    @property
    def is_input(self) -> bool:
        return self.producer is None and self.category in (DATA, MODEL)


@dataclass
class Node:
    """A vertex of the DFG: one (macro-)operation.

    ``reduce_axes`` is non-empty only for ``reduce_*`` ops and names the
    axes consumed by the reduction.
    """

    nid: int
    op: str
    inputs: Tuple[int, ...]
    output: int
    reduce_axes: Tuple[str, ...] = ()

    def __post_init__(self):
        op_info(self.op)  # fail fast on unknown operations


class Dfg:
    """A dataflow graph with named-axis macro operations.

    Nodes are stored in the order they were created, which is a valid
    topological order because values must exist before they are consumed.
    """

    def __init__(self, extents: Optional[Dict[str, int]] = None):
        self.values: Dict[int, Value] = {}
        self.nodes: Dict[int, Node] = {}
        self._order: List[int] = []
        #: axis name -> extent (iterator range length)
        self.extents: Dict[str, int] = dict(extents or {})
        #: source-level outputs: variable name -> value id
        self.outputs: Dict[str, int] = {}

    # -- construction ----------------------------------------------------
    def add_value(
        self,
        name: str,
        category: str,
        axes: Tuple[str, ...] = (),
        producer: Optional[int] = None,
        const_value: Optional[float] = None,
        is_gradient: bool = False,
    ) -> Value:
        if category not in CATEGORIES:
            raise ValueError(f"unknown operand category {category!r}")
        for axis in axes:
            if axis not in self.extents:
                raise ValueError(f"axis {axis!r} has no declared extent")
        vid = len(self.values)
        value = Value(vid, name, category, tuple(axes), producer, const_value, is_gradient)
        self.values[vid] = value
        return value

    def add_node(
        self,
        op: str,
        inputs: Iterable[Value],
        out_name: str,
        out_axes: Tuple[str, ...],
        out_category: str = INTERIM,
        reduce_axes: Tuple[str, ...] = (),
        is_gradient: bool = False,
    ) -> Value:
        """Create a node and its output value; returns the output value."""
        input_ids = tuple(v.vid for v in inputs)
        nid = len(self.nodes)
        out = self.add_value(
            out_name, out_category, out_axes, producer=nid, is_gradient=is_gradient
        )
        node = Node(nid, op, input_ids, out.vid, tuple(reduce_axes))
        self.nodes[nid] = node
        self._order.append(nid)
        return out

    # -- shape helpers ---------------------------------------------------
    def shape(self, value: Value) -> Tuple[int, ...]:
        return tuple(self.extents[a] for a in value.axes)

    def size(self, value: Value) -> int:
        return int(math.prod(self.shape(value)))

    def node_iter_space(self, node: Node) -> int:
        """Number of scalar applications this macro-node performs."""
        axes = self._node_axes(node)
        return int(math.prod(self.extents[a] for a in axes))

    def _node_axes(self, node: Node) -> Tuple[str, ...]:
        """Union of input axes plus reduced axes, in first-seen order."""
        seen: List[str] = []
        for vid in node.inputs:
            for axis in self.values[vid].axes:
                if axis not in seen:
                    seen.append(axis)
        return tuple(seen)

    # -- traversal -------------------------------------------------------
    def topo_order(self) -> List[Node]:
        return [self.nodes[nid] for nid in self._order]

    def inputs_of_category(self, category: str) -> List[Value]:
        return [
            v
            for v in self.values.values()
            if v.producer is None and v.category == category
        ]

    def gradient_outputs(self) -> List[Value]:
        return [v for v in self.values.values() if v.is_gradient]

    def consumers(self, value: Value) -> List[Node]:
        return [n for n in self.nodes.values() if value.vid in n.inputs]

    # -- aggregate statistics used by the Planner/estimator ---------------
    def total_scalar_ops(self) -> int:
        """Total scalar ALU applications for one evaluation of the graph."""
        return sum(self.node_iter_space(n) for n in self.topo_order())

    def total_alu_cycles(self) -> int:
        """Scalar applications weighted by per-op ALU cost."""
        return sum(
            self.node_iter_space(n) * op_info(n.op).cycles for n in self.topo_order()
        )

    def data_words(self) -> int:
        """Scalar words of DATA streamed from memory per evaluation."""
        return sum(self.size(v) for v in self.inputs_of_category(DATA))

    def model_words(self) -> int:
        """Scalar words of MODEL parameters the graph reads."""
        return sum(self.size(v) for v in self.inputs_of_category(MODEL))

    def gradient_words(self) -> int:
        """Scalar words of gradient produced per evaluation."""
        return sum(self.size(v) for v in self.gradient_outputs())

    def interim_words(self) -> int:
        """Scalar words of intermediate storage (peak, conservatively total)."""
        return sum(
            self.size(self.values[n.output])
            for n in self.topo_order()
            if not self.values[n.output].is_gradient
        )

    def live_interim_words(self) -> int:
        """Interim words that must be buffered in PE SRAM.

        Values that only feed reductions are accumulated on the fly by the
        tree-bus ALUs and never materialised; gradient outputs are written
        back over the thread's model replica (the local SGD update).
        """
        words = 0
        for node in self.topo_order():
            out = self.values[node.output]
            if out.is_gradient:
                continue
            consumers = self.consumers(out)
            if consumers and all(
                op_info(c.op).reduce or c.op == "identity" for c in consumers
            ):
                # Streamed into a reduction, or merely renamed/permuted
                # (identity aliases the same buffer).
                continue
            words += self.size(out)
        return words

    def uses_nonlinear(self) -> bool:
        """True if any scheduled op needs the non-linear LUT unit."""
        return any(op_info(n.op).nonlinear for n in self.topo_order())

    def depth(self) -> int:
        """Length of the longest dependence chain (macro-node granularity)."""
        level: Dict[int, int] = {}
        best = 0
        for node in self.topo_order():
            dep = 0
            for vid in node.inputs:
                producer = self.values[vid].producer
                if producer is not None:
                    dep = max(dep, level[producer])
            level[node.nid] = dep + 1
            best = max(best, level[node.nid])
        return best

    def critical_path_cycles(self) -> int:
        """Longest dependence chain weighted by per-op ALU cost."""
        level: Dict[int, int] = {}
        best = 0
        for node in self.topo_order():
            dep = 0
            for vid in node.inputs:
                producer = self.values[vid].producer
                if producer is not None:
                    dep = max(dep, level[producer])
            level[node.nid] = dep + op_info(node.op).cycles
            best = max(best, level[node.nid])
        return best

    # -- validation --------------------------------------------------------
    def validate(self):
        """Structural invariants; raises ValueError when violated."""
        for node in self.nodes.values():
            info = op_info(node.op)
            if not info.reduce and len(node.inputs) != info.arity:
                raise ValueError(
                    f"node {node.nid} ({node.op}) has {len(node.inputs)} inputs, "
                    f"expected {info.arity}"
                )
            if info.reduce and not node.reduce_axes:
                raise ValueError(f"reduce node {node.nid} has no reduce axes")
            if not info.reduce and node.reduce_axes:
                raise ValueError(f"non-reduce node {node.nid} has reduce axes")
            out = self.values[node.output]
            if out.producer != node.nid:
                raise ValueError(f"output of node {node.nid} has wrong producer")
            for vid in node.inputs:
                value = self.values[vid]
                if value.producer is not None and value.producer >= node.nid:
                    raise ValueError(
                        f"node {node.nid} consumes value produced later"
                    )
            if info.reduce:
                in_axes = set(self.values[node.inputs[0]].axes)
                if not set(node.reduce_axes) <= in_axes:
                    raise ValueError(
                        f"node {node.nid} reduces axes not present in its input"
                    )
                expect = tuple(
                    a for a in self.values[node.inputs[0]].axes
                    if a not in node.reduce_axes
                )
                if out.axes != expect:
                    raise ValueError(f"node {node.nid} output axes mismatch")
        for name, vid in self.outputs.items():
            if vid not in self.values:
                raise ValueError(f"output {name!r} refers to missing value")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dfg(nodes={len(self.nodes)}, values={len(self.values)}, "
            f"axes={self.extents})"
        )
