"""Tokenizer for the CoSMIC DSL.

The language is the TABLA-lineage mathematical DSL described in Section 4.1
of the paper: declarations with five data types, assignment statements over
mathematical expressions, group operators (``sum``/``pi``/``norm``) indexed
by iterators, and an ``aggregator`` section describing how partial gradients
from the scale-out nodes are combined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from .errors import LexError

KEYWORDS = frozenset(
    {
        "model_input",
        "model_output",
        "model",
        "gradient",
        "iterator",
        "aggregator",
        "minibatch",
        "sum",
        "pi",
        "norm",
    }
)

#: Built-in scalar functions implemented by the PE's non-linear LUT unit
#: (Section 5.1: "sigmoid, gaussian, divide, and logarithm").
FUNCTIONS = frozenset(
    {"sigmoid", "gaussian", "log", "exp", "sqrt", "abs", "min", "max", "sign"}
)

_TWO_CHAR_OPS = (">=", "<=", "==", "!=")
_ONE_CHAR_OPS = "+-*/<>?:=()[],;"


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position (1-based)."""

    kind: str  # NUMBER | IDENT | KEYWORD | FUNC | OP | EOF
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Convert DSL source text into a token list ending with an EOF token.

    Comments run from ``#`` or ``//`` to end of line. Whitespace is
    insignificant. Raises :class:`LexError` on unknown characters.
    """
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    line = 1
    col = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start = i
            start_col = col
            seen_dot = False
            seen_exp = False
            while i < n:
                c = source[i]
                if c.isdigit():
                    i += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    i += 1
                elif c in "eE" and not seen_exp and i + 1 < n and (
                    source[i + 1].isdigit() or source[i + 1] in "+-"
                ):
                    seen_exp = True
                    i += 1
                    if source[i] in "+-":
                        i += 1
                else:
                    break
            text = source[start:i]
            col = start_col + len(text)
            yield Token("NUMBER", text, line, start_col)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            start_col = col
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            col = start_col + len(text)
            if text in KEYWORDS:
                yield Token("KEYWORD", text, line, start_col)
            elif text in FUNCTIONS:
                yield Token("FUNC", text, line, start_col)
            else:
                yield Token("IDENT", text, line, start_col)
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            yield Token("OP", two, line, col)
            i += 2
            col += 2
            continue
        if ch in _ONE_CHAR_OPS:
            yield Token("OP", ch, line, col)
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line, col)
    yield Token("EOF", "", line, col)
