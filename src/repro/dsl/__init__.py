"""CoSMIC programming layer: the TABLA-lineage mathematical DSL.

Programmers express a learning algorithm as (1) the partial-gradient
formula, (2) the aggregation operator, and (3) the mini-batch size
(Section 4.1 of the paper). This package provides the lexer, parser, AST,
and semantic analysis for that language.
"""

from .ast import (
    Assignment,
    BinaryOp,
    Call,
    Declaration,
    Name,
    Number,
    Program,
    Reduce,
    Subscript,
    Ternary,
    UnaryOp,
    walk,
)
from .errors import DslError, LexError, ParseError, SemanticError
from .lexer import Token, tokenize
from .parser import parse
from .semantic import NODES_SYMBOL, Symbol, SymbolTable, analyze, resolve_dims

__all__ = [
    "Assignment",
    "BinaryOp",
    "Call",
    "Declaration",
    "DslError",
    "LexError",
    "Name",
    "NODES_SYMBOL",
    "Number",
    "ParseError",
    "Program",
    "Reduce",
    "SemanticError",
    "Subscript",
    "Symbol",
    "SymbolTable",
    "Ternary",
    "Token",
    "UnaryOp",
    "analyze",
    "parse",
    "resolve_dims",
    "tokenize",
    "walk",
]
