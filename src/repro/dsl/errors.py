"""Errors raised by the CoSMIC DSL front end.

Every error carries a source position so that programmer mistakes in the
22-55 line DSL programs (Table 1) are reported the way a production
compiler would report them.
"""

from __future__ import annotations


class DslError(Exception):
    """Base class for all DSL front-end errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        super().__init__(self._format())

    def _format(self) -> str:
        if self.line:
            return f"{self.message} (line {self.line}, column {self.column})"
        return self.message


class LexError(DslError):
    """An unrecognised character or malformed literal in the source."""


class ParseError(DslError):
    """The token stream does not match the DSL grammar."""


class SemanticError(DslError):
    """The program parses but violates a typing or usage rule."""
