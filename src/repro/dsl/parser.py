"""Recursive-descent parser for the CoSMIC DSL.

Grammar (EBNF, ``;`` terminates statements)::

    program     := item* ("aggregator" ":" item*)?
    item        := declaration | param | assignment
    declaration := dtype IDENT dims? ";"
    dtype       := "model_input" | "model_output" | "model"
                 | "gradient"    | "iterator"
    dims        := ("[" dim "]")+ | "[" dim ":" dim "]"     # range: iterators
    param       := IDENT "=" NUMBER ";" | "minibatch" "=" NUMBER ";"
    assignment  := IDENT subscripts? "=" expr ";"
    subscripts  := ("[" IDENT ("," IDENT)* "]")+
    expr        := ternary
    ternary     := compare ("?" expr ":" expr)?
    compare     := additive ((">" | "<" | ">=" | "<=" | "==" | "!=") additive)?
    additive    := term (("+" | "-") term)*
    term        := unary (("*" | "/") unary)*
    unary       := "-" unary | primary
    primary     := NUMBER | reduce | call | ref | "(" expr ")"
    reduce      := ("sum" | "pi" | "norm") "[" IDENT "]" "(" expr ")"
    call        := FUNC "(" expr ("," expr)* ")"
    ref         := IDENT subscripts?
"""

from __future__ import annotations

from typing import List, Tuple

from . import ast
from .errors import ParseError
from .lexer import Token, tokenize

_COMPARE_OPS = {">": "gt", "<": "lt", ">=": "ge", "<=": "le", "==": "eq", "!=": "ne"}
_ADD_OPS = {"+": "add", "-": "sub"}
_MUL_OPS = {"*": "mul", "/": "div"}


def parse(source: str) -> ast.Program:
    """Parse DSL source text into a :class:`repro.dsl.ast.Program`."""
    return _Parser(tokenize(source), source).parse_program()


class _Parser:
    def __init__(self, tokens: List[Token], source: str):
        self._tokens = tokens
        self._pos = 0
        self._source = source

    # -- token helpers ---------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def _check(self, kind: str, text: str = None) -> bool:
        tok = self._cur
        return tok.kind == kind and (text is None or tok.text == text)

    def _match(self, kind: str, text: str = None) -> bool:
        if self._check(kind, text):
            self._advance()
            return True
        return False

    def _expect(self, kind: str, text: str = None) -> Token:
        if not self._check(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self._cur.text!r}",
                self._cur.line,
                self._cur.column,
            )
        return self._advance()

    # -- grammar ---------------------------------------------------------
    def parse_program(self) -> ast.Program:
        program = ast.Program(source=self._source)
        section = program.statements
        while not self._check("EOF"):
            if self._check("KEYWORD", "aggregator"):
                self._advance()
                self._expect("OP", ":")
                section = program.aggregator
                continue
            self._parse_item(program, section)
        return program

    def _parse_item(self, program: ast.Program, section: List[ast.Assignment]):
        tok = self._cur
        if tok.kind == "KEYWORD" and tok.text in ast.DATA_TYPES:
            program.declarations.append(self._parse_declaration())
            return
        if tok.kind == "KEYWORD" and tok.text == "minibatch":
            self._advance()
            self._expect("OP", "=")
            num = self._expect("NUMBER")
            self._expect("OP", ";")
            program.params["minibatch"] = float(num.text)
            return
        if tok.kind == "IDENT":
            # Either a scalar param (IDENT = NUMBER ;) or an assignment.
            if self._is_scalar_param():
                name = self._advance().text
                self._expect("OP", "=")
                sign = -1.0 if self._match("OP", "-") else 1.0
                num = self._expect("NUMBER")
                self._expect("OP", ";")
                program.params[name] = sign * float(num.text)
                return
            section.append(self._parse_assignment())
            return
        raise ParseError(
            f"unexpected token {tok.text!r} at top level", tok.line, tok.column
        )

    def _is_scalar_param(self) -> bool:
        """Lookahead: IDENT '=' ['-'] NUMBER ';' is a meta-parameter."""
        toks = self._tokens
        i = self._pos
        if toks[i + 1].kind != "OP" or toks[i + 1].text != "=":
            return False
        j = i + 2
        if toks[j].kind == "OP" and toks[j].text == "-":
            j += 1
        return (
            toks[j].kind == "NUMBER"
            and toks[j + 1].kind == "OP"
            and toks[j + 1].text == ";"
        )

    def _parse_declaration(self) -> ast.Declaration:
        dtype_tok = self._advance()
        name_tok = self._expect("IDENT")
        dims: List[ast.Dim] = []
        while self._match("OP", "["):
            dims.append(self._parse_dim())
            if dtype_tok.text == "iterator" and self._match("OP", ":"):
                dims.append(self._parse_dim())
            while self._match("OP", ","):
                dims.append(self._parse_dim())
            self._expect("OP", "]")
        self._expect("OP", ";")
        return ast.Declaration(
            line=dtype_tok.line,
            data_type=dtype_tok.text,
            ident=name_tok.text,
            dims=tuple(dims),
        )

    def _parse_dim(self) -> ast.Dim:
        tok = self._cur
        if tok.kind == "NUMBER":
            self._advance()
            return int(float(tok.text))
        if tok.kind == "IDENT":
            self._advance()
            return tok.text
        raise ParseError(
            f"expected dimension, found {tok.text!r}", tok.line, tok.column
        )

    def _parse_subscripts(self) -> Tuple[str, ...]:
        indices: List[str] = []
        while self._match("OP", "["):
            indices.append(self._expect("IDENT").text)
            while self._match("OP", ","):
                indices.append(self._expect("IDENT").text)
            self._expect("OP", "]")
        return tuple(indices)

    def _parse_assignment(self) -> ast.Assignment:
        name_tok = self._expect("IDENT")
        indices = self._parse_subscripts()
        self._expect("OP", "=")
        expr = self._parse_expr()
        self._expect("OP", ";")
        return ast.Assignment(
            line=name_tok.line, target=name_tok.text, indices=indices, expr=expr
        )

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_compare()
        if self._match("OP", "?"):
            if_true = self._parse_expr()
            self._expect("OP", ":")
            if_false = self._parse_expr()
            return ast.Ternary(
                line=cond.line, cond=cond, if_true=if_true, if_false=if_false
            )
        return cond

    def _parse_compare(self) -> ast.Expr:
        left = self._parse_additive()
        if self._cur.kind == "OP" and self._cur.text in _COMPARE_OPS:
            op = _COMPARE_OPS[self._advance().text]
            right = self._parse_additive()
            return ast.BinaryOp(line=left.line, op=op, left=left, right=right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_term()
        while self._cur.kind == "OP" and self._cur.text in _ADD_OPS:
            op = _ADD_OPS[self._advance().text]
            right = self._parse_term()
            left = ast.BinaryOp(line=left.line, op=op, left=left, right=right)
        return left

    def _parse_term(self) -> ast.Expr:
        left = self._parse_unary()
        while self._cur.kind == "OP" and self._cur.text in _MUL_OPS:
            op = _MUL_OPS[self._advance().text]
            right = self._parse_unary()
            left = ast.BinaryOp(line=left.line, op=op, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._check("OP", "-"):
            tok = self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Number):
                return ast.Number(line=tok.line, value=-operand.value)
            return ast.UnaryOp(line=tok.line, op="neg", operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._cur
        if tok.kind == "NUMBER":
            self._advance()
            return ast.Number(line=tok.line, value=float(tok.text))
        if tok.kind == "KEYWORD" and tok.text in ("sum", "pi", "norm"):
            self._advance()
            self._expect("OP", "[")
            iterator = self._expect("IDENT").text
            self._expect("OP", "]")
            self._expect("OP", "(")
            body = self._parse_expr()
            self._expect("OP", ")")
            return ast.Reduce(line=tok.line, kind=tok.text, iterator=iterator, body=body)
        if tok.kind == "FUNC":
            self._advance()
            self._expect("OP", "(")
            args = [self._parse_expr()]
            while self._match("OP", ","):
                args.append(self._parse_expr())
            self._expect("OP", ")")
            return ast.Call(line=tok.line, func=tok.text, args=tuple(args))
        if tok.kind == "IDENT":
            self._advance()
            indices = self._parse_subscripts()
            if indices:
                return ast.Subscript(line=tok.line, ident=tok.text, indices=indices)
            return ast.Name(line=tok.line, ident=tok.text)
        if self._match("OP", "("):
            expr = self._parse_expr()
            self._expect("OP", ")")
            return expr
        raise ParseError(
            f"unexpected token {tok.text!r} in expression", tok.line, tok.column
        )
