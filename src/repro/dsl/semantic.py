"""Semantic analysis for the CoSMIC DSL.

Builds a symbol table and enforces the usage rules implied by Section 4.1:
the five data types have fixed roles (training data in, gradient out), all
subscripts must be declared iterators, and the aggregator section may only
combine partial results into ``model``/``gradient`` variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Tuple

from . import ast
from .errors import SemanticError

#: The symbolic dimension the aggregator section iterates over; bound by the
#: runtime to the number of worker threads/nodes participating (Eq. 3b).
NODES_SYMBOL = "nodes"


@dataclass
class Symbol:
    """A declared or inferred program symbol."""

    name: str
    kind: str  # one of ast.DATA_TYPES, or "param", or "interim"
    dims: Tuple[ast.Dim, ...] = ()
    line: int = 0

    @property
    def is_iterator(self) -> bool:
        return self.kind == "iterator"


@dataclass
class SymbolTable:
    """Name → :class:`Symbol` mapping with typed accessors."""

    symbols: Dict[str, Symbol] = field(default_factory=dict)

    def add(self, symbol: Symbol):
        if symbol.name in self.symbols:
            raise SemanticError(
                f"duplicate declaration of {symbol.name!r}", symbol.line
            )
        self.symbols[symbol.name] = symbol

    def get(self, name: str) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError:
            raise SemanticError(f"use of undeclared identifier {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.symbols

    def of_kind(self, kind: str) -> List[Symbol]:
        return [s for s in self.symbols.values() if s.kind == kind]


def analyze(program: ast.Program) -> SymbolTable:
    """Validate ``program`` and return its symbol table.

    Raises :class:`SemanticError` on any rule violation.
    """
    table = SymbolTable()
    # The node count is implicitly available to the aggregator section;
    # the runtime binds it to the number of participating workers (Eq. 3b).
    table.add(Symbol(NODES_SYMBOL, "param", (), 0))
    for decl in program.declarations:
        _check_declaration(decl)
        table.add(Symbol(decl.ident, decl.data_type, decl.dims, decl.line))
    for name, value in program.params.items():
        if name in table:
            raise SemanticError(f"parameter {name!r} shadows a declaration")
        table.add(Symbol(name, "param", (), 0))

    if not table.of_kind("model"):
        raise SemanticError("program declares no 'model' variable")
    if not table.of_kind("gradient") and not program.statements:
        raise SemanticError("program has no gradient formulation")

    _check_section(program.statements, table, section="gradient")
    _check_aggregator(program.aggregator, table)
    return table


def resolve_dims(
    dims: Tuple[ast.Dim, ...], bindings: Mapping[str, int]
) -> Tuple[int, ...]:
    """Substitute symbolic dimensions (e.g. ``n``) with concrete sizes."""
    resolved = []
    for dim in dims:
        if isinstance(dim, int):
            resolved.append(dim)
        elif dim in bindings:
            resolved.append(int(bindings[dim]))
        else:
            raise SemanticError(f"unbound symbolic dimension {dim!r}")
    return tuple(resolved)


def iterator_extent(
    symbol: Symbol, bindings: Mapping[str, int]
) -> Tuple[int, int]:
    """The (lo, hi) half-open range of an iterator, with symbols resolved."""
    if not symbol.is_iterator:
        raise SemanticError(f"{symbol.name!r} is not an iterator")
    dims = resolve_dims(symbol.dims, bindings)
    if len(dims) == 1:
        return (0, dims[0])
    if len(dims) == 2:
        return (dims[0], dims[1])
    raise SemanticError(
        f"iterator {symbol.name!r} must have a range [lo:hi] or a size [n]"
    )


# -- internal checks -----------------------------------------------------


def _check_declaration(decl: ast.Declaration):
    if decl.data_type == "iterator":
        if not decl.dims or len(decl.dims) > 2:
            raise SemanticError(
                f"iterator {decl.ident!r} needs a range [lo:hi] or size [n]",
                decl.line,
            )
        lo_hi = [d for d in decl.dims if isinstance(d, int)]
        if len(lo_hi) == 2 and lo_hi[0] >= lo_hi[1]:
            raise SemanticError(
                f"iterator {decl.ident!r} has an empty range", decl.line
            )


def _check_section(
    statements: List[ast.Assignment], table: SymbolTable, section: str
):
    assigned: List[str] = []
    for stmt in statements:
        _check_assignment(stmt, table, assigned, section)
        assigned.append(stmt.target)
    if section == "gradient":
        for grad in table.of_kind("gradient"):
            if grad.name not in assigned:
                raise SemanticError(
                    f"gradient variable {grad.name!r} is never assigned"
                )


def _check_assignment(
    stmt: ast.Assignment, table: SymbolTable, assigned: List[str], section: str
):
    if stmt.target in table:
        target = table.get(stmt.target)
        if target.kind in ("model_input", "iterator"):
            raise SemanticError(
                f"cannot assign to {target.kind} variable {stmt.target!r}",
                stmt.line,
            )
        if len(stmt.indices) not in (0, len(target.dims)):
            raise SemanticError(
                f"{stmt.target!r} has {len(target.dims)} dimension(s), "
                f"subscripted with {len(stmt.indices)}",
                stmt.line,
            )
    else:
        # First assignment to an undeclared name creates an interim value.
        table.add(Symbol(stmt.target, "interim", (), stmt.line))
    for index in stmt.indices:
        if index not in table or not table.get(index).is_iterator:
            raise SemanticError(
                f"subscript {index!r} of {stmt.target!r} is not an iterator",
                stmt.line,
            )
    bound = set(stmt.indices)
    _check_expr(stmt.expr, table, bound, assigned, stmt.line)


def _check_expr(expr, table: SymbolTable, bound, assigned, line: int):
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            if node.ident not in table:
                raise SemanticError(
                    f"use of undeclared identifier {node.ident!r}",
                    node.line or line,
                )
            symbol = table.get(node.ident)
            if symbol.is_iterator and node.ident not in bound:
                # Iterators may appear as values only where bound by a
                # reduce or the assignment target's subscripts.
                raise SemanticError(
                    f"iterator {node.ident!r} used outside its binding",
                    node.line or line,
                )
        elif isinstance(node, ast.Subscript):
            if node.ident not in table:
                raise SemanticError(
                    f"use of undeclared identifier {node.ident!r}",
                    node.line or line,
                )
            for index in node.indices:
                if index not in table or not table.get(index).is_iterator:
                    raise SemanticError(
                        f"subscript {index!r} is not an iterator",
                        node.line or line,
                    )
        elif isinstance(node, ast.Reduce):
            if node.iterator not in table or not table.get(node.iterator).is_iterator:
                raise SemanticError(
                    f"reduce over {node.iterator!r}, which is not an iterator",
                    node.line or line,
                )
            bound = bound | {node.iterator}


def _check_aggregator(statements: List[ast.Assignment], table: SymbolTable):
    for stmt in statements:
        if stmt.target in table:
            target = table.get(stmt.target)
            if target.kind not in ("model", "gradient", "interim"):
                raise SemanticError(
                    "aggregator may only assign model/gradient variables, "
                    f"not {target.kind} {stmt.target!r}",
                    stmt.line,
                )
    # Reuse the generic per-statement checks (creates interims as needed).
    _check_section(statements, table, section="aggregator")
