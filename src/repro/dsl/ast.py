"""Abstract syntax tree for the CoSMIC DSL.

The tree mirrors the three segments a programmer writes (Section 4.1):
data declarations, gradient formulation, and aggregator specification —
plus scalar meta-parameters such as the mini-batch size and learning rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

#: The five DSL data types of Section 4.1.
DATA_TYPES = ("model_input", "model_output", "model", "gradient", "iterator")

Dim = Union[int, str]  # a dimension is a literal or a symbolic size like "n"


@dataclass(frozen=True)
class Node:
    """Base class for AST nodes; carries the source line for diagnostics."""

    line: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Number(Node):
    value: float = 0.0


@dataclass(frozen=True)
class Name(Node):
    """A scalar reference or iterator name."""

    ident: str = ""


@dataclass(frozen=True)
class Subscript(Node):
    """An indexed reference such as ``w[i][j]`` or ``w[i, j]``."""

    ident: str = ""
    indices: Tuple[str, ...] = ()


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str = ""  # "neg"
    operand: "Expr" = None


@dataclass(frozen=True)
class BinaryOp(Node):
    op: str = ""  # add sub mul div gt lt ge le eq ne
    left: "Expr" = None
    right: "Expr" = None


@dataclass(frozen=True)
class Ternary(Node):
    """``cond ? if_true : if_false`` — maps to the PE select operation."""

    cond: "Expr" = None
    if_true: "Expr" = None
    if_false: "Expr" = None


@dataclass(frozen=True)
class Reduce(Node):
    """A group operator: ``sum[i](body)``, ``pi[i](body)``, ``norm[i](body)``."""

    kind: str = "sum"  # sum | pi | norm
    iterator: str = ""
    body: "Expr" = None


@dataclass(frozen=True)
class Call(Node):
    """A built-in non-linear function call, e.g. ``sigmoid(u)``."""

    func: str = ""
    args: Tuple["Expr", ...] = ()


Expr = Union[Number, Name, Subscript, UnaryOp, BinaryOp, Ternary, Reduce, Call]


@dataclass(frozen=True)
class Declaration(Node):
    """``model w[n][m];`` — dims empty for scalars.

    For iterators, ``dims`` holds (lo, hi) of the half-open range.
    """

    data_type: str = ""
    ident: str = ""
    dims: Tuple[Dim, ...] = ()


@dataclass(frozen=True)
class Assignment(Node):
    """``target[indices] = expr;``"""

    target: str = ""
    indices: Tuple[str, ...] = ()
    expr: Expr = None


@dataclass(frozen=True)
class ParamDecl(Node):
    """A scalar meta-parameter, e.g. ``mu = 0.1;`` or ``minibatch = 10000;``"""

    ident: str = ""
    value: float = 0.0


@dataclass
class Program:
    """A parsed DSL program.

    Attributes:
        declarations: all data declarations in source order.
        statements: the gradient-formulation assignments.
        aggregator: assignments in the ``aggregator:`` section (how the
            runtime combines partial gradients across nodes/threads).
        params: scalar meta-parameters (learning rate, minibatch, ...).
        source: original text, kept for line-of-code accounting (Table 1).
    """

    declarations: List[Declaration] = field(default_factory=list)
    statements: List[Assignment] = field(default_factory=list)
    aggregator: List[Assignment] = field(default_factory=list)
    params: Dict[str, float] = field(default_factory=dict)
    source: str = ""

    def declaration(self, ident: str) -> Optional[Declaration]:
        """Return the declaration for ``ident`` or None."""
        for decl in self.declarations:
            if decl.ident == ident:
                return decl
        return None

    def idents_of_type(self, data_type: str) -> List[str]:
        """All identifiers declared with the given DSL data type."""
        return [d.ident for d in self.declarations if d.data_type == data_type]

    @property
    def minibatch(self) -> int:
        """Programmer-declared mini-batch size (Section 2.2), default 10000."""
        return int(self.params.get("minibatch", 10_000))

    @property
    def lines_of_code(self) -> int:
        """Non-blank, non-comment source lines — the Table 1 LoC metric."""
        count = 0
        for raw in self.source.splitlines():
            stripped = raw.strip()
            if stripped and not stripped.startswith(("#", "//")):
                count += 1
        return count


def walk(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth first."""
    yield expr
    if isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, Ternary):
        yield from walk(expr.cond)
        yield from walk(expr.if_true)
        yield from walk(expr.if_false)
    elif isinstance(expr, Reduce):
        yield from walk(expr.body)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk(arg)
