"""Canonical pretty-printer for DSL programs.

Formats an AST back into source text that re-parses to an equivalent
program — the basis for program canonicalisation, diffing generated
programs (e.g. autodiff output), and the LoC accounting used by Table 1.
Operator precedence is respected so no redundant parentheses are emitted.
"""

from __future__ import annotations

from typing import List

from . import ast

# Precedence levels, loosest binding first.
_PRECEDENCE = {
    "ternary": 0,
    "gt": 1, "lt": 1, "ge": 1, "le": 1, "eq": 1, "ne": 1,
    "add": 2, "sub": 2,
    "mul": 3, "div": 3,
    "neg": 4,
    "atom": 5,
}
_OP_TEXT = {
    "add": "+", "sub": "-", "mul": "*", "div": "/",
    "gt": ">", "lt": "<", "ge": ">=", "le": "<=", "eq": "==", "ne": "!=",
}
#: Operators where (a op b) op c != a op (b op c): right operand at equal
#: precedence needs parentheses.
_NON_ASSOCIATIVE = {"sub", "div"}


def format_program(program: ast.Program) -> str:
    """Render a full program in canonical form."""
    lines: List[str] = []
    for name, value in sorted(program.params.items()):
        if name == "minibatch":
            lines.append(f"minibatch = {_num(value)};")
        else:
            lines.append(f"{name} = {_num(value)};")
    for decl in program.declarations:
        lines.append(format_declaration(decl))
    if program.params or program.declarations:
        lines.append("")
    for stmt in program.statements:
        lines.append(format_statement(stmt))
    if program.aggregator:
        lines.append("")
        lines.append("aggregator:")
        for stmt in program.aggregator:
            lines.append(format_statement(stmt))
    return "\n".join(lines).strip() + "\n"


def format_declaration(decl: ast.Declaration) -> str:
    if not decl.dims:
        return f"{decl.data_type} {decl.ident};"
    if decl.data_type == "iterator" and len(decl.dims) == 2:
        lo, hi = decl.dims
        return f"{decl.data_type} {decl.ident}[{lo}:{hi}];"
    dims = ", ".join(str(d) for d in decl.dims)
    return f"{decl.data_type} {decl.ident}[{dims}];"


def format_statement(stmt: ast.Assignment) -> str:
    target = stmt.target
    if stmt.indices:
        target += "[" + ", ".join(stmt.indices) + "]"
    return f"{target} = {format_expr(stmt.expr)};"


def format_expr(expr: ast.Expr, parent_level: int = 0,
                is_right: bool = False) -> str:
    text, level = _render(expr)
    needs_parens = level < parent_level or (
        is_right and level == parent_level
    )
    return f"({text})" if needs_parens else text


def _render(expr: ast.Expr):
    if isinstance(expr, ast.Number):
        return _num(expr.value), _PRECEDENCE["atom"]
    if isinstance(expr, ast.Name):
        return expr.ident, _PRECEDENCE["atom"]
    if isinstance(expr, ast.Subscript):
        return (
            expr.ident + "[" + ", ".join(expr.indices) + "]",
            _PRECEDENCE["atom"],
        )
    if isinstance(expr, ast.UnaryOp):
        level = _PRECEDENCE["neg"]
        inner = format_expr(expr.operand, level)
        return f"-{inner}", level
    if isinstance(expr, ast.BinaryOp):
        level = _PRECEDENCE[expr.op]
        assoc_right = expr.op in _NON_ASSOCIATIVE
        left = format_expr(expr.left, level)
        right = format_expr(expr.right, level, is_right=assoc_right)
        # Comparisons do not chain in the grammar: both sides must bind
        # tighter.
        if level == 1:
            left = format_expr(expr.left, level + 1)
            right = format_expr(expr.right, level + 1)
        return f"{left} {_OP_TEXT[expr.op]} {right}", level
    if isinstance(expr, ast.Ternary):
        level = _PRECEDENCE["ternary"]
        cond = format_expr(expr.cond, level + 1)
        if_true = format_expr(expr.if_true, level)
        if_false = format_expr(expr.if_false, level)
        return f"{cond} ? {if_true} : {if_false}", level
    if isinstance(expr, ast.Reduce):
        body = format_expr(expr.body)
        return f"{expr.kind}[{expr.iterator}]({body})", _PRECEDENCE["atom"]
    if isinstance(expr, ast.Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})", _PRECEDENCE["atom"]
    raise TypeError(f"cannot format {expr!r}")


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
