"""Experiment harness: one function per table/figure of Section 7.

Every function regenerates the corresponding result from the models —
same workloads, same sweeps, same normalisations — and returns an
:class:`repro.bench.results.ExperimentResult` whose summary rows carry the
paper-reported values for side-by-side comparison. ``benchmarks/`` wraps
these in pytest-benchmark entry points; ``EXPERIMENTS.md`` records the
outcomes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..baselines import SparkModel, cosmic_vs_tabla_speedup
from ..core.system import CosmicSystem, platform_for
from ..hw.spec import XILINX_VU9P
from ..ml.benchmarks import BENCHMARKS, Benchmark, benchmark
from ..perf.parallel import default_executor
from ..perf.tasks import sweep_task, task_call
from ..planner import Planner
from .results import ExperimentResult, geomean

DEFAULT_NODES = (4, 8, 16)
PLATFORMS = ("fpga", "pasic-f", "pasic-g", "gpu")


def _benches(names: Optional[Iterable[str]] = None) -> List[Benchmark]:
    if names is None:
        return list(BENCHMARKS)
    return [benchmark(n) for n in names]


def _per_bench(names: Optional[Iterable[str]], point_fn, *args) -> List:
    """Evaluate the registered ``point_fn`` for every benchmark, fanned
    out over the default sweep executor; results keep benchmark order, so
    parallel and serial runs build identical tables. Sweep items are
    benchmark *names* and ``point_fn`` a module-level sweep task, so the
    fan-out also works under a process-pool executor — and, with
    ``REPRO_SWEEP_MODE=queue``, across ``python -m repro worker``
    processes on any number of hosts (each worker imports this module
    to resolve the task and caches its own artifacts)."""
    return default_executor().map(
        task_call(point_fn, *args), [b.name for b in _benches(names)]
    )


def _system(bench: Benchmark, kind: str, nodes: int,
            ingest_cap: bool = True) -> CosmicSystem:
    """One reusable system per (bench, platform): the platform (and the
    Planner run behind it) is derived once; node counts and mini-batch
    sizes vary per call afterwards."""
    return CosmicSystem(
        bench, platform_for(bench, kind, ingest_cap=ingest_cap), nodes
    )


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------


def table1() -> ExperimentResult:
    """Table 1: benchmarks, model sizes, dataset shapes, DSL LoC."""
    result = ExperimentResult(
        "Table 1",
        "Benchmarks, algorithms, application domains, and datasets",
        [
            "name", "algorithm", "domain", "features", "topology",
            "model_kb", "loc_paper", "loc_ours", "vectors", "data_gb",
        ],
    )
    for b in BENCHMARKS:
        result.add_row(
            name=b.name,
            algorithm=b.algorithm,
            domain=b.domain,
            features=b.features,
            topology=b.topology,
            model_kb=round(b.model_bytes() / 1024),
            loc_paper=b.loc,
            loc_ours=b.translate().program.lines_of_code,
            vectors=b.input_vectors,
            data_gb=b.data_gb,
        )
    return result


def table2() -> ExperimentResult:
    """Table 2: the evaluated platforms (model inputs, echoed for the
    record alongside the derived geometry)."""
    from ..baselines.calibration import TESLA_K40C, XEON_E3
    from ..hw.spec import PASIC_F, PASIC_G

    result = ExperimentResult(
        "Table 2",
        "CPU, GPU, FPGA, and P-ASICs",
        [
            "platform", "compute_units", "frequency_mhz", "bandwidth_gbps",
            "power_w", "technology_nm", "columns", "rows",
        ],
    )
    result.add_row(
        platform=XEON_E3.name, compute_units=XEON_E3.cores,
        frequency_mhz=XEON_E3.frequency_hz / 1e6,
        bandwidth_gbps=XEON_E3.memory_bandwidth_bytes * 8 / 1e9,
        power_w=XEON_E3.tdp_watts, technology_nm=14, columns="-", rows="-",
    )
    result.add_row(
        platform=TESLA_K40C.name, compute_units=TESLA_K40C.cores,
        frequency_mhz=TESLA_K40C.frequency_hz / 1e6,
        bandwidth_gbps=TESLA_K40C.memory_bandwidth_bytes * 8 / 1e9,
        power_w=TESLA_K40C.tdp_watts, technology_nm=28,
        columns="-", rows="-",
    )
    for chip, nm in ((XILINX_VU9P, 16), (PASIC_F, 45), (PASIC_G, 45)):
        result.add_row(
            platform=chip.name, compute_units=chip.max_pes,
            frequency_mhz=chip.frequency_hz / 1e6,
            bandwidth_gbps=chip.bandwidth_bytes * 8 / 1e9,
            power_w=chip.tdp_watts, technology_nm=nm,
            columns=chip.columns, rows=chip.row_max,
        )
    return result


def table3() -> ExperimentResult:
    """Table 3: chosen thread counts and FPGA resource utilisation."""
    result = ExperimentResult(
        "Table 3",
        "Number of threads and FPGA resource utilization",
        [
            "name", "threads", "rows_per_thread", "luts_pct", "ffs_pct",
            "bram_pct", "dsp_pct",
        ],
        paper={"mnist_threads": 2, "stock_threads": 8},
    )
    for b in BENCHMARKS:
        plan = Planner(XILINX_VU9P).plan(b.translate().dfg, 10_000, b.density)
        util = plan.resources().utilization(XILINX_VU9P)
        result.add_row(
            name=b.name,
            threads=plan.design.threads,
            rows_per_thread=plan.design.rows_per_thread,
            luts_pct=100 * util["luts"],
            ffs_pct=100 * util["flip_flops"],
            bram_pct=100 * util["bram"],
            dsp_pct=100 * util["dsp"],
        )
    return result


# ---------------------------------------------------------------------------
# Figures 7 & 8: CoSMIC vs Spark at scale
# ---------------------------------------------------------------------------


@sweep_task("figures.epoch_grid")
def _epoch_point(name: str, nodes: Tuple[int, ...]):
    b = benchmark(name)
    spark_b = {n: SparkModel(n).epoch_seconds(b) for n in nodes}
    system = _system(b, "fpga", nodes[0])
    cosmic_b = {n: system.epoch_seconds(nodes=n) for n in nodes}
    return b.name, spark_b, cosmic_b


def _epoch_grid(
    names: Optional[Iterable[str]], nodes: Sequence[int]
) -> Tuple[Dict[str, Dict[int, float]], Dict[str, Dict[int, float]]]:
    spark: Dict[str, Dict[int, float]] = {}
    cosmic: Dict[str, Dict[int, float]] = {}
    for name, spark_b, cosmic_b in _per_bench(
        names, _epoch_point, tuple(nodes)
    ):
        spark[name] = spark_b
        cosmic[name] = cosmic_b
    return spark, cosmic


def figure7(
    names: Optional[Iterable[str]] = None,
    nodes: Sequence[int] = DEFAULT_NODES,
) -> ExperimentResult:
    """Figure 7: speedup over the 4-node Spark baseline."""
    spark, cosmic = _epoch_grid(names, nodes)
    result = ExperimentResult(
        "Figure 7",
        "Speedup over 4-CPU-Spark as nodes scale",
        ["name"]
        + [f"spark{n}x" for n in nodes]
        + [f"cosmic{n}x" for n in nodes],
        paper={
            "geomean_cosmic4x": 12.6,
            "geomean_cosmic8x": 23.1,
            "geomean_cosmic16x": 33.8,
            "geomean_spark16x": 1.8,
        },
    )
    base_nodes = nodes[0]
    for name in spark:
        base = spark[name][base_nodes]
        result.add_row(
            name=name,
            **{f"spark{n}x": base / spark[name][n] for n in nodes},
            **{f"cosmic{n}x": base / cosmic[name][n] for n in nodes},
        )
    for n in nodes:
        result.summary[f"geomean_cosmic{n}x"] = geomean(
            result.column(f"cosmic{n}x")
        )
    result.summary[f"geomean_spark{nodes[-1]}x"] = geomean(
        result.column(f"spark{nodes[-1]}x")
    )
    return result


def figure8(
    names: Optional[Iterable[str]] = None,
    nodes: Sequence[int] = DEFAULT_NODES,
) -> ExperimentResult:
    """Figure 8: each system's scalability against its own 4-node setup."""
    spark, cosmic = _epoch_grid(names, nodes)
    result = ExperimentResult(
        "Figure 8",
        "Self-relative scalability, 4 -> 8 -> 16 nodes",
        ["name"]
        + [f"cosmic{n}x" for n in nodes[1:]]
        + [f"spark{n}x" for n in nodes[1:]],
        paper={
            "geomean_cosmic8x": 1.8,
            "geomean_cosmic16x": 2.7,
            "geomean_spark8x": 1.3,
            "geomean_spark16x": 1.8,
        },
    )
    base = nodes[0]
    for name in spark:
        result.add_row(
            name=name,
            **{
                f"cosmic{n}x": cosmic[name][base] / cosmic[name][n]
                for n in nodes[1:]
            },
            **{
                f"spark{n}x": spark[name][base] / spark[name][n]
                for n in nodes[1:]
            },
        )
    for n in nodes[1:]:
        result.summary[f"geomean_cosmic{n}x"] = geomean(
            result.column(f"cosmic{n}x")
        )
        result.summary[f"geomean_spark{n}x"] = geomean(
            result.column(f"spark{n}x")
        )
    return result


# ---------------------------------------------------------------------------
# Figures 9-11: acceleration platforms
# ---------------------------------------------------------------------------


@sweep_task("figures.figure9")
def _figure9_point(name: str, nodes: int):
    b = benchmark(name)
    epochs = {
        kind: _system(b, kind, nodes).epoch_seconds()
        for kind in PLATFORMS
    }
    return {
        "name": b.name,
        "pasic_f_x": epochs["fpga"] / epochs["pasic-f"],
        "pasic_g_x": epochs["fpga"] / epochs["pasic-g"],
        "gpu_x": epochs["fpga"] / epochs["gpu"],
    }


def figure9(
    names: Optional[Iterable[str]] = None, nodes: int = 3
) -> ExperimentResult:
    """Figure 9: system-wide speedup over the 3-FPGA-CoSMIC system."""
    result = ExperimentResult(
        "Figure 9",
        "System-wide speedup over 3-FPGA-CoSMIC",
        ["name", "pasic_f_x", "pasic_g_x", "gpu_x"],
        paper={
            "geomean_pasic_f_x": 1.2,
            "geomean_pasic_g_x": 2.3,
            "geomean_gpu_x": 1.5,
        },
    )
    for row in _per_bench(names, _figure9_point, nodes):
        result.add_row(**row)
    for col in ("pasic_f_x", "pasic_g_x", "gpu_x"):
        result.summary[f"geomean_{col}"] = geomean(result.column(col))
    return result


@sweep_task("figures.figure10")
def _figure10_point(name: str, samples: int):
    b = benchmark(name)
    # Computation-only: each chip streams from its own off-chip memory at
    # full rate (no host/PCIe ceiling — that belongs to the system-level
    # Figure 9).
    times = {
        kind: platform_for(b, kind, ingest_cap=False).compute_seconds(
            samples
        )
        for kind in PLATFORMS
    }
    return {
        "name": b.name,
        "pasic_f_x": times["fpga"] / times["pasic-f"],
        "pasic_g_x": times["fpga"] / times["pasic-g"],
        "gpu_x": times["fpga"] / times["gpu"],
    }


def figure10(
    names: Optional[Iterable[str]] = None, samples: int = 10_000
) -> ExperimentResult:
    """Figure 10: computation-only speedup over the FPGA."""
    result = ExperimentResult(
        "Figure 10",
        "Computation speedup over FPGA (no system software)",
        ["name", "pasic_f_x", "pasic_g_x", "gpu_x"],
        paper={
            "geomean_pasic_f_x": 1.5,
            "geomean_pasic_g_x": 11.4,
            "geomean_gpu_x": 1.9,
            "mnist_gpu_x": 20.3,
            "acoustic_gpu_x": 12.8,
        },
    )
    for row in _per_bench(names, _figure10_point, samples):
        result.add_row(**row)
        if row["name"] in ("mnist", "acoustic"):
            result.summary[f"{row['name']}_gpu_x"] = row["gpu_x"]
    for col in ("pasic_f_x", "pasic_g_x", "gpu_x"):
        result.summary[f"geomean_{col}"] = geomean(result.column(col))
    return result


@sweep_task("figures.figure11")
def _figure11_point(name: str, nodes: int):
    b = benchmark(name)
    perf_per_watt = {}
    for kind in PLATFORMS:
        system = _system(b, kind, nodes)
        epoch = system.epoch_seconds()
        perf_per_watt[kind] = 1.0 / (epoch * system.system_power_watts())
    gpu = perf_per_watt["gpu"]
    return {
        "name": b.name,
        "fpga_x": perf_per_watt["fpga"] / gpu,
        "pasic_f_x": perf_per_watt["pasic-f"] / gpu,
        "pasic_g_x": perf_per_watt["pasic-g"] / gpu,
    }


def figure11(
    names: Optional[Iterable[str]] = None, nodes: int = 3
) -> ExperimentResult:
    """Figure 11: Performance-per-Watt relative to the 3-GPU system."""
    result = ExperimentResult(
        "Figure 11",
        "Performance-per-Watt vs 3-GPU-CoSMIC",
        ["name", "fpga_x", "pasic_f_x", "pasic_g_x"],
        paper={
            "geomean_fpga_x": 4.2,
            "geomean_pasic_f_x": 6.9,
            "geomean_pasic_g_x": 8.2,
        },
    )
    for row in _per_bench(names, _figure11_point, nodes):
        result.add_row(**row)
    for col in ("fpga_x", "pasic_f_x", "pasic_g_x"):
        result.summary[f"geomean_{col}"] = geomean(result.column(col))
    return result


# ---------------------------------------------------------------------------
# Figures 12-14: mini-batch sensitivity and speedup sources
# ---------------------------------------------------------------------------


@sweep_task("figures.figure12")
def _figure12_point(name: str, minibatches: Tuple[int, ...], nodes: int):
    b = benchmark(name)
    spark = SparkModel(nodes)
    base = spark.epoch_seconds(b, 10_000)
    system = _system(b, "fpga", nodes)
    row = {"name": b.name}
    for mb in minibatches:
        row[f"spark_b{mb}"] = base / spark.epoch_seconds(b, mb)
        row[f"cosmic_b{mb}"] = base / system.epoch_seconds(mb)
    return row


def figure12(
    names: Optional[Iterable[str]] = None,
    minibatches: Sequence[int] = (500, 1_000, 10_000, 100_000),
    nodes: int = 3,
) -> ExperimentResult:
    """Figure 12: CoSMIC and Spark vs mini-batch size; the baseline is the
    3-node Spark system at b = 10,000."""
    result = ExperimentResult(
        "Figure 12",
        "Performance vs mini-batch size (baseline: 3-node Spark, b=10k)",
        ["name"]
        + [f"spark_b{b}" for b in minibatches]
        + [f"cosmic_b{b}" for b in minibatches],
        paper={"geomean_gap_b500": 16.8, "geomean_gap_b100000": 9.1},
    )
    for row in _per_bench(names, _figure12_point, tuple(minibatches), nodes):
        result.add_row(**row)
    for mb in (minibatches[0], minibatches[-1]):
        gaps = [
            float(r[f"cosmic_b{mb}"]) / float(r[f"spark_b{mb}"])
            for r in result.rows
        ]
        result.summary[f"geomean_gap_b{mb}"] = geomean(gaps)
    return result


@sweep_task("figures.figure13")
def _figure13_point(name: str, minibatches: Tuple[int, ...], nodes: int):
    b = benchmark(name)
    system = _system(b, "fpga", nodes)
    row = {"name": b.name}
    for mb in minibatches:
        timing = system.iteration(mb)
        row[f"compute_frac_b{mb}"] = timing.compute_fraction
    return row


def figure13(
    names: Optional[Iterable[str]] = None,
    minibatches: Sequence[int] = (500, 1_000, 10_000, 100_000),
    nodes: int = 3,
) -> ExperimentResult:
    """Figure 13: computation vs communication fraction of runtime."""
    result = ExperimentResult(
        "Figure 13",
        "Fraction of 3-FPGA-CoSMIC runtime spent computing",
        ["name"] + [f"compute_frac_b{b}" for b in minibatches],
        paper={"mean_frac_b500": 0.12, "mean_frac_b100000": 0.95},
    )
    for row in _per_bench(names, _figure13_point, tuple(minibatches), nodes):
        result.add_row(**row)
    for mb in (minibatches[0], minibatches[-1]):
        col = result.column(f"compute_frac_b{mb}")
        result.summary[f"mean_frac_b{mb}"] = sum(col) / len(col)
    return result


@sweep_task("figures.figure14")
def _figure14_point(name: str, nodes: int):
    b = benchmark(name)
    spark = SparkModel(nodes).iteration(b, 10_000 * nodes)
    timing = _system(b, "fpga", nodes).iteration(10_000)
    fpga_x = spark.compute_s / timing.compute_s
    spark_rest = spark.total_s - spark.compute_s
    cosmic_rest = max(1e-9, timing.total_s - timing.compute_s)
    return {
        "name": b.name, "fpga_x": fpga_x,
        "syssw_x": spark_rest / cosmic_rest,
    }


def figure14(
    names: Optional[Iterable[str]] = None, nodes: int = 3
) -> ExperimentResult:
    """Figure 14: speedup split between the FPGAs (compute) and the
    specialised system software (everything else), vs 3-node Spark."""
    result = ExperimentResult(
        "Figure 14",
        "Speedup breakdown: FPGA vs system software, 3 nodes",
        ["name", "fpga_x", "syssw_x"],
        paper={"geomean_fpga_x": 20.7, "geomean_syssw_x": 28.4},
    )
    for row in _per_bench(names, _figure14_point, nodes):
        result.add_row(**row)
    result.summary["geomean_fpga_x"] = geomean(result.column("fpga_x"))
    result.summary["geomean_syssw_x"] = geomean(result.column("syssw_x"))
    return result


# ---------------------------------------------------------------------------
# Figures 15 & 16: resource sensitivity and design-space exploration
# ---------------------------------------------------------------------------


@sweep_task("figures.figure15")
def _figure15_point(
    name: str, pe_counts: Tuple[int, ...], bandwidth_x: Tuple[float, ...]
):
    b = benchmark(name)
    dfg = b.translate().dfg
    row = {"name": b.name}
    base = None
    for pes in pe_counts:
        chip = XILINX_VU9P.scaled(
            dsp_slices=pes * XILINX_VU9P.dsp_per_pe,
            max_rows=max(1, pes // XILINX_VU9P.columns),
        )
        plan = Planner(chip).plan(dfg, 10_000, b.density)
        tput = plan.samples_per_second
        base = base or tput
        row[f"pe{pes}"] = tput / base
    base = None
    for x in bandwidth_x:
        chip = XILINX_VU9P.scaled(
            bandwidth_bytes=XILINX_VU9P.bandwidth_bytes * x
        )
        plan = Planner(chip).plan(dfg, 10_000, b.density)
        tput = plan.samples_per_second
        base = base or tput
        row[f"bw{x}x"] = tput / base
    return row


def figure15(
    names: Optional[Iterable[str]] = None,
    pe_counts: Sequence[int] = (192, 384, 768, 1536, 3072, 6144),
    bandwidth_x: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> ExperimentResult:
    """Figure 15: accelerator speedup vs PE count and vs memory bandwidth,
    normalised to the smallest configuration."""
    result = ExperimentResult(
        "Figure 15",
        "Sensitivity to PEs (a) and off-chip bandwidth (b)",
        ["name"]
        + [f"pe{p}" for p in pe_counts]
        + [f"bw{x}x" for x in bandwidth_x],
    )
    for row in _per_bench(
        names, _figure15_point, tuple(pe_counts), tuple(bandwidth_x)
    ):
        result.add_row(**row)
    compute_bound = ("mnist", "acoustic", "movielens", "netflix")
    scale_col = f"pe{pe_counts[-1]}"
    cb = [
        float(r[scale_col]) for r in result.rows if r["name"] in compute_bound
    ]
    bb = [
        float(r[scale_col])
        for r in result.rows
        if r["name"] not in compute_bound
    ]
    if cb:
        result.summary["compute_bound_pe_scaling"] = geomean(cb)
    if bb:
        result.summary["bandwidth_bound_pe_scaling"] = geomean(bb)
    return result


@sweep_task("figures.figure16")
def _figure16_point(name: str):
    b = benchmark(name)
    planner = Planner(XILINX_VU9P, executor=default_executor())
    sweep = planner.sweep(b.translate().dfg, 10_000, b.density)
    base = sweep["T1xR1"].seconds_for(10_000)
    return b.name, {
        label: base / plan.seconds_for(10_000)
        for label, plan in sweep.items()
    }


def figure16(
    names: Iterable[str] = ("mnist", "movielens", "stock", "tumor"),
) -> ExperimentResult:
    """Figure 16: the Planner's (threads x rows) design space, normalised
    to T1xR1."""
    result = ExperimentResult(
        "Figure 16",
        "Design space exploration, speedup over T1xR1",
        ["name", "point", "speedup"],
    )
    for name, speedups in _per_bench(names, _figure16_point):
        best_label, best_speed = None, 0.0
        for label, speedup in speedups.items():
            result.add_row(name=name, point=label, speedup=speedup)
            if speedup > best_speed:
                best_label, best_speed = label, speedup
        result.summary[f"{name}_best"] = best_speed
        result.rows.append(
            {"name": name, "point": f"best={best_label}", "speedup": best_speed}
        )
    return result


# ---------------------------------------------------------------------------
# Figure 17: CoSMIC vs TABLA
# ---------------------------------------------------------------------------


@sweep_task("figures.figure17")
def _figure17_point(name: str):
    b = benchmark(name)
    return {
        "name": b.name,
        "speedup": cosmic_vs_tabla_speedup(
            b.translate().dfg, density=b.density
        ),
    }


def figure17(names: Optional[Iterable[str]] = None) -> ExperimentResult:
    """Figure 17: CoSMIC's template architecture vs TABLA's on the same
    UltraScale+ resources."""
    result = ExperimentResult(
        "Figure 17",
        "Speedup of CoSMIC's template architecture over TABLA's",
        ["name", "speedup"],
        paper={"geomean_speedup": 3.9},
    )
    for row in _per_bench(names, _figure17_point):
        result.add_row(**row)
    result.summary["geomean_speedup"] = geomean(result.column("speedup"))
    return result


#: Experiment id -> harness function, the DESIGN.md index in code form.
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "figure12": figure12,
    "figure13": figure13,
    "figure14": figure14,
    "figure15": figure15,
    "figure16": figure16,
    "figure17": figure17,
}


def run_all() -> List[ExperimentResult]:
    """Regenerate every table and figure (the EXPERIMENTS.md payload)."""
    return [fn() for fn in EXPERIMENTS.values()]
