"""Result containers and text rendering for the experiment harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; the paper's cross-benchmark averaging."""
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class ExperimentResult:
    """One regenerated table/figure: rows of named values plus summary."""

    experiment: str
    description: str
    columns: List[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)
    paper: Dict[str, float] = field(default_factory=dict)

    def add_row(self, **values):
        self.rows.append(values)

    def column(self, name: str) -> List[float]:
        return [float(r[name]) for r in self.rows if name in r]

    def to_table(self) -> str:
        """Render the rows the way the paper's figure/table reports them."""
        lines = [f"== {self.experiment}: {self.description} =="]
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c, ""))) for r in self.rows))
            if self.rows
            else len(c)
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(
                    _fmt(row.get(c, "")).ljust(widths[c]) for c in self.columns
                )
            )
        if self.summary:
            lines.append("")
            for key, value in self.summary.items():
                paper = self.paper.get(key)
                suffix = f"   (paper: {paper:g})" if paper is not None else ""
                lines.append(f"  {key}: {value:.2f}{suffix}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
