"""Ablation studies: what each CoSMIC design choice buys.

The paper argues for its design decisions qualitatively (tree bus,
data-first mapping, multi-threading, prefetch buffer, hierarchical
aggregation, specialised thread pools); these experiments toggle each one
off and measure the cost on the Table 1 workloads. Registered alongside
the paper's figures in :data:`repro.bench.figures.EXPERIMENTS` consumers
via :data:`ABLATIONS`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..core.system import CosmicSystem, platform_for
from ..hw.spec import XILINX_VU9P
from ..ml.benchmarks import BENCHMARKS, Benchmark, benchmark
from ..planner import CostParams, FLAT, Planner, TREE
from ..runtime import NetworkConfig, PoolConfig
from ..runtime.faults import FaultSpec, apply_faults
from .results import ExperimentResult, geomean


def _benches(names: Optional[Iterable[str]]) -> List[Benchmark]:
    if names is None:
        return list(BENCHMARKS)
    return [benchmark(n) for n in names]


def ablate_interconnect(
    names: Optional[Iterable[str]] = None,
) -> ExperimentResult:
    """Tree bus vs a flat shared bus, everything else equal."""
    result = ExperimentResult(
        "Ablation: interconnect",
        "Per-sample thread cycles, tree bus vs flat bus (same design point)",
        ["name", "tree_cycles", "flat_cycles", "flat_penalty_x"],
    )
    for b in _benches(names):
        dfg = b.translate().dfg
        plan = Planner(XILINX_VU9P, CostParams(interconnect=TREE)).plan(
            dfg, 10_000
        )
        flat = Planner(
            XILINX_VU9P, CostParams(interconnect=FLAT)
        ).evaluate(dfg, plan.design, 10_000)
        result.add_row(
            name=b.name,
            tree_cycles=plan.cycles_per_sample,
            flat_cycles=flat.cycles_per_sample,
            flat_penalty_x=flat.cycles_per_sample / plan.cycles_per_sample,
        )
    result.summary["geomean_flat_penalty_x"] = geomean(
        result.column("flat_penalty_x")
    )
    return result


def ablate_mapping(
    names: Optional[Iterable[str]] = None,
) -> ExperimentResult:
    """Algorithm 1's data-first mapping vs a latency-first (ops-first)
    mapping, on the same design point."""
    result = ExperimentResult(
        "Ablation: mapping order",
        "Data-first (Algorithm 1) vs ops-first mapping",
        ["name", "data_first_cycles", "ops_first_cycles", "penalty_x"],
    )
    for b in _benches(names):
        dfg = b.translate().dfg
        plan = Planner(XILINX_VU9P).plan(dfg, 10_000)
        ops_first = Planner(
            XILINX_VU9P, CostParams(mapping="ops_first")
        ).evaluate(dfg, plan.design, 10_000)
        result.add_row(
            name=b.name,
            data_first_cycles=plan.cycles_per_sample,
            ops_first_cycles=ops_first.cycles_per_sample,
            penalty_x=ops_first.cycles_per_sample / plan.cycles_per_sample,
        )
    result.summary["geomean_penalty_x"] = geomean(result.column("penalty_x"))
    return result


def ablate_multithreading(
    names: Optional[Iterable[str]] = None,
) -> ExperimentResult:
    """The planned multi-threaded design vs the best single-thread one."""
    result = ExperimentResult(
        "Ablation: multithreading",
        "Planned design vs best single-threaded design (same chip)",
        ["name", "threads", "multi_sps", "single_sps", "gain_x"],
    )
    for b in _benches(names):
        dfg = b.translate().dfg
        planner = Planner(XILINX_VU9P)
        stream = b.bytes_per_sample() / XILINX_VU9P.word_bytes
        multi = planner.plan(dfg, 10_000, b.density, stream_words=stream)
        sweep = planner.sweep(dfg, 10_000, b.density, stream_words=stream)
        single = max(
            (p for p in sweep.values() if p.design.threads == 1),
            key=lambda p: p.samples_per_second,
        )
        result.add_row(
            name=b.name,
            threads=multi.design.threads,
            multi_sps=multi.samples_per_second,
            single_sps=single.samples_per_second,
            gain_x=multi.samples_per_second / single.samples_per_second,
        )
    result.summary["geomean_gain_x"] = geomean(result.column("gain_x"))
    return result


def ablate_aggregation_hierarchy(
    names: Optional[Iterable[str]] = None, nodes: int = 16
) -> ExperimentResult:
    """Hierarchical (grouped) Sigma aggregation vs one flat master."""
    result = ExperimentResult(
        "Ablation: aggregation hierarchy",
        f"{nodes}-node iteration time, grouped vs flat aggregation",
        ["name", "grouped_ms", "flat_ms", "flat_penalty_x"],
    )
    for b in _benches(names):
        platform = platform_for(b, "fpga")
        grouped = CosmicSystem(b, platform, nodes).iteration(10_000)
        flat = CosmicSystem(b, platform, nodes, groups=1).iteration(10_000)
        result.add_row(
            name=b.name,
            grouped_ms=1e3 * grouped.total_s,
            flat_ms=1e3 * flat.total_s,
            flat_penalty_x=flat.total_s / grouped.total_s,
        )
    result.summary["geomean_flat_penalty_x"] = geomean(
        result.column("flat_penalty_x")
    )
    return result


def ablate_system_software(
    names: Optional[Iterable[str]] = None, nodes: int = 8
) -> ExperimentResult:
    """Lean pools/epoll vs a generic thread-per-connection runtime.

    The generic variant pays OS thread wake-ups instead of epoll event
    dispatch, spawns a thread per connection (higher per-message cost),
    and copies through unpooled buffers (lower copy/aggregate rates) —
    the overheads Section 3 is designed to avoid.
    """
    result = ExperimentResult(
        "Ablation: system software",
        f"{nodes}-node iteration, specialised vs generic runtime",
        ["name", "lean_ms", "generic_ms", "generic_penalty_x"],
    )
    generic_spec = dict(
        network=NetworkConfig(per_message_overhead_s=2e-3,
                              per_chunk_overhead_s=30e-6),
        pools=PoolConfig(
            networking_threads=1,
            aggregation_threads=1,
            copy_bytes_per_s=2.5e9,
            aggregate_bytes_per_s=1.5e9,
            wakeup_overhead_s=60e-6,  # OS context switch per event
        ),
        management_overhead_s=4e-3,  # generic scheduler involvement
    )
    for b in _benches(names):
        platform = platform_for(b, "fpga")
        lean = CosmicSystem(b, platform, nodes).iteration(10_000)
        generic = CosmicSystem(
            b, platform, nodes, spec_overrides=generic_spec
        ).iteration(10_000)
        result.add_row(
            name=b.name,
            lean_ms=1e3 * lean.total_s,
            generic_ms=1e3 * generic.total_s,
            generic_penalty_x=generic.total_s / lean.total_s,
        )
    result.summary["geomean_generic_penalty_x"] = geomean(
        result.column("generic_penalty_x")
    )
    return result


def ablate_straggler(
    names: Optional[Iterable[str]] = None,
    nodes: int = 8,
    factors: Iterable[float] = (1.0, 2.0, 4.0, 8.0),
) -> ExperimentResult:
    """Cost of one straggling node under synchronous aggregation."""
    result = ExperimentResult(
        "Ablation: straggler",
        f"{nodes}-node iteration slowdown with one slow node",
        ["name"] + [f"x{f:g}" for f in factors],
    )
    for b in _benches(names):
        platform = platform_for(b, "fpga")
        system = CosmicSystem(b, platform, nodes)
        base = None
        row = {"name": b.name}
        for factor in factors:
            sim = apply_faults(
                system.cluster(),
                FaultSpec.single_straggler(nodes - 1, factor)
                if factor > 1
                else None,
            )
            total = sim.iteration(10_000 * nodes).total_s
            base = base or total
            row[f"x{factor:g}"] = total / base
        result.add_row(**row)
    last = f"x{list(factors)[-1]:g}"
    result.summary[f"geomean_slowdown_{last}"] = geomean(result.column(last))
    return result


def ablate_sync_vs_async(
    names: Optional[Iterable[str]] = None,
    nodes: int = 8,
    straggler_factor: float = 4.0,
) -> ExperimentResult:
    """Synchronous barrier vs asynchronous (stale-gradient) aggregation
    under one straggling node — the barrier's price in wall-clock."""
    from ..runtime.async_sgd import async_batch_seconds, sync_batch_seconds

    result = ExperimentResult(
        "Ablation: sync vs async",
        f"{nodes}-node batch time with one {straggler_factor:g}x straggler",
        ["name", "sync_ms", "async_ms", "async_gain_x"],
    )
    faults = FaultSpec.single_straggler(nodes - 1, straggler_factor)
    for b in _benches(names):
        platform = platform_for(b, "fpga")
        compute = {i: platform.compute_seconds(10_000) for i in range(nodes)}
        sync = sync_batch_seconds(compute, b.model_bytes(), faults=faults)
        asyn = async_batch_seconds(compute, b.model_bytes(), faults=faults)
        result.add_row(
            name=b.name,
            sync_ms=1e3 * sync,
            async_ms=1e3 * asyn,
            async_gain_x=sync / asyn,
        )
    result.summary["geomean_async_gain_x"] = geomean(
        result.column("async_gain_x")
    )
    return result


def project_scaling(
    names: Optional[Iterable[str]] = None,
    node_counts: Iterable[int] = (4, 16, 64, 256),
) -> ExperimentResult:
    """Beyond the paper's 16 nodes: where does scaling saturate?

    The paper stops at 16 nodes with CoSMIC at 2.7x; this projection runs
    the same cluster model out to hundreds of nodes, where the master
    Sigma's aggregation and broadcast eventually dominate.
    """
    counts = list(node_counts)
    result = ExperimentResult(
        "Projection: scaling beyond 16 nodes",
        "Epoch speedup over 4 nodes as the cluster grows",
        ["name"] + [f"n{c}" for c in counts],
    )
    for b in _benches(names):
        platform = platform_for(b, "fpga")
        base = None
        row = {"name": b.name}
        for count in counts:
            epoch = CosmicSystem(b, platform, count).epoch_seconds()
            base = base or epoch
            row[f"n{count}"] = base / epoch
        result.add_row(**row)
    last = f"n{counts[-1]}"
    result.summary[f"geomean_speedup_{last}"] = geomean(result.column(last))
    return result


#: Ablation id -> harness function.
ABLATIONS = {
    "interconnect": ablate_interconnect,
    "mapping": ablate_mapping,
    "multithreading": ablate_multithreading,
    "aggregation_hierarchy": ablate_aggregation_hierarchy,
    "system_software": ablate_system_software,
    "straggler": ablate_straggler,
    "sync_vs_async": ablate_sync_vs_async,
    "scaling_projection": project_scaling,
}
