"""Chaos campaign: fault-tolerance cost, quantified like the paper.

The paper's evaluation assumes sixteen healthy nodes; this harness
sweeps the canonical fault scenarios over the fault-tolerant runtime
(:mod:`repro.runtime.recovery`) and reports what each one costs: time
to recovery (heartbeat detection + retry budget + re-hierarchy +
recomputation), throughput retained against the healthy run, and the
final-loss delta from degraded aggregation or replayed iterations.

The workload is a synthetic linear regression small enough that the
whole campaign runs in seconds yet genuinely converges, so the loss
deltas are measured, not modelled.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dfg import translate
from ..dsl import parse
from ..runtime import (
    ClusterSimulator,
    ClusterSpec,
    FaultToleranceConfig,
    HeartbeatConfig,
    QuorumConfig,
    RetryPolicy,
    assign_roles,
    chaos_train,
    scenario_timeline,
)
from ..runtime.faults import FaultSpec, faulty_compute
from ..runtime.recovery import SCENARIOS
from .results import ExperimentResult

_LINREG = """
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


def chaos_problem(features: int = 6, samples: int = 512, seed: int = 3):
    """The campaign's workload: a converging linear regression."""
    rng = np.random.default_rng(seed)
    w = rng.normal(size=features)
    X = rng.normal(size=(samples, features))
    translation = translate(parse(_LINREG), {"n": features})
    feeds = {"x": X, "y": X @ w}

    def loss(model, f):
        return float(np.mean((f["x"] @ model["w"] - f["y"]) ** 2))

    return translation, feeds, loss


def fault_tolerance_config(
    iteration_s: float,
    checkpoint_every: int = 4,
    quorum: Optional[QuorumConfig] = None,
) -> FaultToleranceConfig:
    """Detection/retry knobs scaled to the iteration time.

    Absolute heartbeat and retry constants only mean something relative
    to how long an iteration takes on the modelled hardware, so the
    campaign (and the CLI) derive them: beats twice per iteration, a
    node is dead after ~three silent iterations, and a sender gives up
    on a peer after roughly two iterations of backoff.
    """
    return FaultToleranceConfig(
        heartbeat=HeartbeatConfig(
            period_s=iteration_s / 2, timeout_s=3 * iteration_s
        ),
        retry=RetryPolicy(
            timeout_s=iteration_s / 2, max_retries=2, backoff=2.0
        ),
        quorum=quorum,
        checkpoint_every=checkpoint_every,
    )


def chaos_campaign(
    nodes: int = 8,
    groups: int = 2,
    epochs: int = 2,
    minibatch_per_worker: int = 8,
    compute_s: float = 5e-3,
    update_bytes: int = 100_000,
    seed: int = 5,
) -> ExperimentResult:
    """Sweep every chaos scenario and compare against the healthy run."""
    translation, feeds, loss = chaos_problem()
    spec = ClusterSpec(nodes=nodes, groups=groups)
    topology = assign_roles(nodes, groups)

    def compute(node_id: int, samples: int) -> float:
        return compute_s

    global_batch = minibatch_per_worker * nodes
    iteration_s = (
        ClusterSimulator(spec, compute, update_bytes)
        .iteration(global_batch)
        .total_s
    )
    config = fault_tolerance_config(iteration_s)

    def run(timeline, cfg=config, compute_fn=compute):
        return chaos_train(
            translation,
            feeds,
            spec,
            compute_fn,
            update_bytes,
            timeline=timeline,
            config=cfg,
            epochs=epochs,
            minibatch_per_worker=minibatch_per_worker,
            loss_fn=loss,
            seed=seed,
        )

    healthy = run(scenario_timeline("healthy", topology, iteration_s))

    result = ExperimentResult(
        experiment="chaos",
        description=(
            f"fault-tolerance campaign, {nodes} nodes x {groups} groups, "
            f"{epochs} epochs"
        ),
        columns=[
            "scenario",
            "faults",
            "detect_ms",
            "ttr_s",
            "sim_s",
            "thr_pct",
            "final_loss",
            "loss_delta_pct",
        ],
    )

    def add_row(name, res):
        fault_events = [e for e in res.events if e.kind != "rejoin"]
        detect_ms = max(
            (e.detection_s for e in fault_events), default=0.0
        ) * 1e3
        delta_pct = (
            abs(res.final_loss - healthy.final_loss)
            / abs(healthy.final_loss)
            * 100.0
            if healthy.final_loss
            else 0.0
        )
        result.add_row(
            scenario=name,
            faults=sum(len(e.nodes) for e in fault_events),
            detect_ms=round(detect_ms, 2),
            ttr_s=round(res.time_to_recovery_s, 4),
            sim_s=round(res.simulated_seconds, 4),
            thr_pct=round(
                100.0 * res.throughput_retained(healthy.simulated_seconds), 1
            ),
            final_loss=round(res.final_loss, 6),
            loss_delta_pct=round(delta_pct, 3),
        )
        return delta_pct

    add_row("healthy", healthy)
    for scenario in SCENARIOS:
        if scenario == "healthy":
            continue
        res = run(scenario_timeline(scenario, topology, iteration_s))
        delta = add_row(scenario, res)
        if scenario == "master-crash":
            result.summary["master_crash_ttr_s"] = res.time_to_recovery_s
            result.summary["master_crash_loss_delta_pct"] = delta

    # Graceful degradation: a 20x straggler under quorum aggregation
    # versus the same straggler at the full barrier.
    straggler = faulty_compute(
        compute, FaultSpec.single_straggler(nodes - 1, 20.0)
    )
    quorum_cfg = fault_tolerance_config(
        iteration_s,
        quorum=QuorumConfig(fraction=0.5, deadline_s=2 * iteration_s),
    )
    degraded = run(
        scenario_timeline("healthy", topology, iteration_s),
        cfg=quorum_cfg,
        compute_fn=straggler,
    )
    blocked = run(
        scenario_timeline("healthy", topology, iteration_s),
        compute_fn=straggler,
    )
    add_row("straggler-quorum", degraded)
    add_row("straggler-barrier", blocked)
    result.summary["quorum_speedup"] = (
        blocked.simulated_seconds / degraded.simulated_seconds
        if degraded.simulated_seconds
        else float("nan")
    )
    result.summary["quorum_dropped_partials"] = degraded.dropped_partials
    return result
