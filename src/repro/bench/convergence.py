"""Statistical-efficiency study: convergence vs mini-batch size.

Section 7.2 warns that "reducing the aggregation rate can adversely
affect training convergence" [74-78] but only measures throughput. This
study closes the loop: it *actually trains* each (scaled) benchmark at
several mini-batch sizes for a fixed sample budget, records the achieved
loss, and combines it with the timing model into time-to-quality — the
metric a practitioner would tune ``b`` against.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..core.stack import CosmicStack
from ..core.system import CosmicSystem, platform_for
from ..ml.benchmarks import benchmark
from .results import ExperimentResult


def convergence_study(
    names: Iterable[str] = ("stock", "tumor", "face"),
    batch_sizes: Sequence[int] = (8, 32, 128),
    samples: int = 4096,
    epochs: int = 3,
    nodes: int = 4,
    threads: int = 2,
    seed: int = 0,
) -> ExperimentResult:
    """Fixed sample budget, varying per-worker mini-batch.

    Larger ``b`` means fewer aggregations (cheaper in wall-clock per
    epoch) but fewer model updates (worse loss for the same budget).
    ``time_to_quality`` multiplies the simulated per-iteration time by
    the iterations each configuration ran.
    """
    result = ExperimentResult(
        "Convergence study",
        "Loss after a fixed sample budget vs per-worker mini-batch",
        ["name", "batch", "iterations", "final_loss", "sim_seconds"],
    )
    for b in _benches(names):
        stack = CosmicStack.from_benchmark(b)
        platform = platform_for(b, "fpga")
        dataset = b.make_dataset(samples=samples, seed=seed)
        losses = []
        for batch in batch_sizes:
            system = CosmicSystem(b, platform, nodes)
            cluster = system.cluster()
            trainer = stack.trainer(
                nodes=nodes, threads_per_node=threads, cluster=cluster,
                seed=seed,
            )
            init = trainer.initial_model(
                scale=0.2
                if b.algorithm == "collaborative_filtering"
                else 0.0
            )
            run = trainer.train(
                dataset.feeds,
                epochs=epochs,
                minibatch_per_worker=batch,
                loss_fn=dataset.loss,
                model=init,
            )
            losses.append(run.final_loss)
            result.add_row(
                name=b.name,
                batch=batch,
                iterations=run.iterations,
                final_loss=run.final_loss,
                sim_seconds=run.simulated_seconds,
            )
        if losses[0] > 0:
            result.summary[f"{b.name}_loss_ratio_largest_vs_smallest_b"] = (
                losses[-1] / losses[0]
            )
    return result


def _benches(names: Optional[Iterable[str]]):
    return [benchmark(n) for n in names]
