"""Report generation: the full experiment record as text or Markdown.

``write_report`` regenerates every table/figure (and optionally the
ablations) and renders them to a file — the mechanism behind
``results_full.txt`` and the measured column of EXPERIMENTS.md.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Optional, Union

from .ablations import ABLATIONS
from .figures import EXPERIMENTS
from .results import ExperimentResult


def generate_results(
    experiments: Optional[Iterable[str]] = None,
    include_ablations: bool = False,
) -> List[ExperimentResult]:
    """Run the selected experiments (default: all paper figures/tables)."""
    names = list(experiments) if experiments is not None else list(EXPERIMENTS)
    results = []
    for name in names:
        if name in EXPERIMENTS:
            results.append(EXPERIMENTS[name]())
        elif name in ABLATIONS:
            results.append(ABLATIONS[name]())
        else:
            raise KeyError(f"unknown experiment {name!r}")
    if include_ablations and experiments is None:
        results.extend(fn() for fn in ABLATIONS.values())
    return results


def render_text(results: Iterable[ExperimentResult]) -> str:
    out = io.StringIO()
    for result in results:
        out.write(result.to_table())
        out.write("\n\n")
    return out.getvalue()


def render_markdown(results: Iterable[ExperimentResult]) -> str:
    """GitHub-flavoured Markdown rendering of the experiment record."""
    out = io.StringIO()
    for result in results:
        out.write(f"## {result.experiment}: {result.description}\n\n")
        out.write("| " + " | ".join(result.columns) + " |\n")
        out.write("|" + "---|" * len(result.columns) + "\n")
        for row in result.rows:
            cells = [_fmt(row.get(c, "")) for c in result.columns]
            out.write("| " + " | ".join(cells) + " |\n")
        if result.summary:
            out.write("\n")
            for key, value in result.summary.items():
                paper = result.paper.get(key)
                suffix = f" (paper: {paper:g})" if paper is not None else ""
                out.write(f"- **{key}**: {value:.2f}{suffix}\n")
        out.write("\n")
    return out.getvalue()


def write_report(
    path: Union[str, Path],
    experiments: Optional[Iterable[str]] = None,
    include_ablations: bool = False,
    fmt: str = "text",
) -> Path:
    """Regenerate experiments and write them to ``path``.

    Args:
        path: output file.
        experiments: experiment ids to run (default: all paper ones).
        include_ablations: also run the ablation studies.
        fmt: ``"text"`` or ``"markdown"``.
    """
    if fmt not in ("text", "markdown"):
        raise ValueError(f"unknown format {fmt!r}")
    results = generate_results(experiments, include_ablations)
    renderer = render_text if fmt == "text" else render_markdown
    path = Path(path)
    path.write_text(renderer(results))
    return path


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
