"""Perf-regression harness: time the stack, gate against a baseline.

``python -m repro perf`` measures two things and writes them to
``BENCH_perf.json``:

* **Stage timings** — translate / plan / compile / simulate / epoch per
  benchmark, each measured with the artifact cache bypassed so the
  numbers track the *work*, not the cache.
* **Figure-sweep comparison** — a full Figure 7 + Figure 16 regeneration
  three ways: the serial uncached reference path, a cold-cache run (the
  first regeneration in a process), and a warm-cache run (the
  steady-state the cache exists for: every later regeneration in the
  process, and — with ``REPRO_CACHE_DIR`` — fresh processes too). The
  harness asserts all three produce bit-identical
  :class:`ExperimentResult` rows and records the speedups.

Comparing a run against a committed baseline flags any stage that got
more than ``tolerance`` times slower (and a warm-sweep speedup that
collapsed), so CI catches perf regressions the functional suite cannot.

A third leg (:func:`measure_quorum_sweep`) times a graceful-degradation
study — a quorum fraction x deadline grid on a 16-node straggler cluster
— on both the event-driven and the format-2 quorum-replay paths, asserts
every :class:`IterationTiming` is bit-identical between them, and
records the replay speedup.

A fourth, on-demand leg (:func:`measure_queue_sweep`, CLI
``--queue-smoke``) regenerates the same figures through the queue-backed
distributed executor with local worker processes and asserts the rows
stay bit-identical to serial — the distribution-correctness gate.
"""

from __future__ import annotations

import gc
import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence

#: Stages timed per benchmark, in pipeline order.
STAGES = ("translate", "plan", "compile", "simulate", "epoch")

#: Benchmarks the ``--quick`` CI gate times (small, medium, large model).
QUICK_BENCHES = ("stock", "movielens", "mnist")

#: Timings below this floor are noise on any machine; the comparator
#: never flags a stage whose baseline is under it.
FLOOR_SECONDS = 0.005

#: The warm-cache sweep must stay at least this much faster than the
#: serial uncached path (the headline acceptance number is recorded in
#: the payload; the gate uses a CI-safe fraction of it).
MIN_WARM_SPEEDUP = 3.0


@dataclass
class PerfReport:
    """One harness run: stage timings + sweep comparisons."""

    stages: Dict[str, Dict[str, float]]
    sweep: Dict[str, float]
    quick: bool
    machine: Dict[str, object] = field(default_factory=dict)
    #: Quorum-sweep leg (:func:`measure_quorum_sweep`); empty when the
    #: leg was skipped (baselines written before it existed).
    quorum: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "format_version": 1,
            "quick": self.quick,
            "machine": self.machine,
            "stages": self.stages,
            "figure_sweep": self.sweep,
            "quorum_sweep": self.quorum,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PerfReport":
        return cls(
            stages=payload["stages"],
            sweep=payload["figure_sweep"],
            quick=payload.get("quick", False),
            machine=payload.get("machine", {}),
            quorum=payload.get("quorum_sweep", {}),
        )


def _timeit(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time — the usual perf-counter practice:
    the minimum is the least noisy estimator of the true cost.

    The cyclic collector is paused while the clock runs (as
    :mod:`timeit` does): a gen-2 collection scheduled by allocations in
    *earlier* stages would otherwise land inside whichever sample runs
    next and charge unrelated garbage to that stage.
    """
    best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best


def measure_stages(
    names: Optional[Iterable[str]] = None, repeats: int = 2
) -> Dict[str, Dict[str, float]]:
    """Per-benchmark wall time of each toolchain stage, cache bypassed.

    ``translate`` parses + translates the DSL program; ``plan`` runs the
    full design-space exploration; ``compile`` scalarises, maps, and
    schedules; ``simulate`` runs the vectorized MIMD timing model over a
    10k-sample mini-batch; ``epoch`` runs the event-driven cluster
    simulation for a 16-node epoch.
    """
    from ..core.stack import CosmicStack
    from ..core.system import CosmicSystem, platform_for
    from ..hw.spec import XILINX_VU9P
    from ..ml.benchmarks import BENCHMARKS, benchmark
    from ..perf.cache import cache_disabled
    from ..planner import Planner

    benches = (
        list(BENCHMARKS) if names is None else [benchmark(n) for n in names]
    )
    out: Dict[str, Dict[str, float]] = {}
    for bench in benches:
        translation = bench.translate()
        plan = Planner(XILINX_VU9P).plan(
            translation.dfg,
            10_000,
            bench.density,
            stream_words=bench.bytes_per_sample() / XILINX_VU9P.word_bytes,
        )
        stack = CosmicStack.from_benchmark(bench)
        system = CosmicSystem(
            bench, platform_for(bench, "fpga"), nodes=16
        )
        with cache_disabled():
            timings = {
                "translate": _timeit(bench.translate, repeats),
                "plan": _timeit(
                    lambda: Planner(XILINX_VU9P).plan(
                        translation.dfg, 10_000, bench.density
                    ),
                    repeats,
                ),
                "compile": _timeit(
                    lambda: stack.compile(rows=2, columns=4), repeats
                ),
                "simulate": _timeit(
                    lambda: plan.seconds_for(10_000), repeats
                ),
                "epoch": _timeit(lambda: system.epoch_seconds(), repeats),
            }
        out[bench.name] = {k: round(v, 6) for k, v in timings.items()}
    return out


def _result_payload(results: Sequence) -> str:
    """Canonical JSON of every row and summary — the bit-identity probe."""
    return json.dumps(
        [(r.experiment, r.rows, r.summary) for r in results],
        default=str,
        sort_keys=True,
    )


def measure_figure_sweep(quick: bool = False) -> Dict[str, float]:
    """Regenerate Figure 7 + Figure 16 on the measured paths and compare.

    Four regenerations: the serial uncached reference (cache bypassed —
    which also bypasses schedule replay, so the reference is pure
    event-driven simulation), a cold-cache run with schedule replay
    forced off, a cold-cache run with replay on (the shipping default:
    records each cluster schedule once, replays every other point), and
    a warm-cache run. Raises :class:`AssertionError` if any path's rows
    diverge from the reference — the determinism contract of the cache,
    the parallel executor, and the replay engine.
    """
    from ..bench import figures
    from ..perf.cache import cache_disabled, get_cache
    from ..perf.parallel import SweepExecutor, set_default_executor
    from ..runtime.schedule import replay_disabled

    fig7_names = QUICK_BENCHES if quick else None

    def regenerate():
        return [figures.figure7(fig7_names), figures.figure16()]

    cache = get_cache()
    previous = set_default_executor(SweepExecutor("serial"))
    try:
        cache.clear()
        with cache_disabled():
            start = time.perf_counter()
            reference = regenerate()
            serial_uncached_s = time.perf_counter() - start

        set_default_executor(SweepExecutor("auto"))
        cache.clear()
        with replay_disabled():
            start = time.perf_counter()
            cold_noreplay = regenerate()
            cold_noreplay_s = time.perf_counter() - start
        cache.clear()
        start = time.perf_counter()
        cold = regenerate()
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = regenerate()
        warm_s = time.perf_counter() - start
    finally:
        set_default_executor(previous)

    expected = _result_payload(reference)
    if _result_payload(cold_noreplay) != expected:
        raise AssertionError(
            "cold-cache (replay off) rows diverge from serial uncached"
        )
    if _result_payload(cold) != expected:
        raise AssertionError(
            "cold-cache (replay on) rows diverge from serial uncached"
        )
    if _result_payload(warm) != expected:
        raise AssertionError("warm-cache rows diverge from serial uncached")

    return {
        "serial_uncached_s": round(serial_uncached_s, 6),
        "cold_noreplay_s": round(cold_noreplay_s, 6),
        "cold_cache_s": round(cold_s, 6),
        "warm_cache_s": round(warm_s, 6),
        "cold_speedup": round(serial_uncached_s / cold_s, 3),
        "warm_speedup": round(serial_uncached_s / warm_s, 3),
        "replay_speedup": round(cold_noreplay_s / cold_s, 3),
        "rows_identical": True,
    }


def measure_quorum_sweep(quick: bool = False) -> Dict[str, object]:
    """The quorum-study measurement leg: a fraction x deadline grid on a
    16-node straggler cluster, evaluated twice — full event-driven
    simulation (replay kill switch thrown) and the format-2 quorum
    replay path — and compared for bit-identity on every
    :class:`IterationTiming` field.

    This is the workload the replay engine was extended for: the grid
    shares one recorded schedule, so the replay leg pays one recording
    and re-times every (fraction, deadline) point on the booked arrival
    arrays. Raises :class:`AssertionError` if any point diverges, or if
    the replay leg never recorded a trace (a silently-disabled replayer
    would vacuously pass).
    """
    from ..perf.cache import get_cache
    from ..runtime import ClusterSimulator, ClusterSpec, QuorumConfig
    from ..runtime.schedule import replay_disabled

    fractions = (0.5, 1.0) if quick else (0.5, 0.75, 0.9, 1.0)
    deadlines = (1e-3, 20e-3) if quick else (1e-3, 5e-3, 20e-3, 80e-3)
    nodes = 16
    # Deterministic straggler spread: node n computes (1 + n%5) ms, so
    # every window has early closers and genuine deadline casualties.
    compute = [1e-3 * (1 + n % 5) for n in range(nodes)]
    sim = ClusterSimulator(
        ClusterSpec(nodes=nodes, groups=4),
        lambda node_id, samples: compute[node_id],
        update_bytes=1_000_000,
    )
    grid = [
        QuorumConfig(fraction=f, deadline_s=d)
        for f in fractions
        for d in deadlines
    ]

    def run_grid():
        return [sim.iteration(16_000, quorum=rule) for rule in grid]

    cache = get_cache()
    cache.clear()
    with replay_disabled():
        start = time.perf_counter()
        event_rows = run_grid()
        event_s = time.perf_counter() - start
    cache.clear()
    start = time.perf_counter()
    replay_rows = run_grid()
    replay_s = time.perf_counter() - start

    traced = [k for (k, _) in cache._memory if k == "cluster-schedule"]
    if cache.enabled and not traced:
        raise AssertionError(
            "quorum sweep recorded no cluster-schedule trace; the "
            "replayer never engaged"
        )
    for rule, event, replayed in zip(grid, event_rows, replay_rows):
        if event != replayed:
            raise AssertionError(
                f"quorum replay diverges from event-driven simulation at "
                f"fraction={rule.fraction} deadline_s={rule.deadline_s}"
            )
    cache.clear()
    return {
        "points": len(grid),
        "fractions": list(fractions),
        "deadlines_s": list(deadlines),
        "event_driven_s": round(event_s, 6),
        "replay_s": round(replay_s, 6),
        "speedup": round(event_s / replay_s, 3),
        "rows_identical": True,
    }


def run_replay_smoke(
    names: Optional[Sequence[str]] = QUICK_BENCHES,
) -> List[str]:
    """CI probe: Figure 7 must be bit-identical with replay off and on.

    Regenerates from a cleared cache twice — once with the schedule
    replayer disabled (pure event-driven simulation) and once with it on
    — and also checks that the replay run actually recorded schedule
    traces (a silently-disabled replayer would vacuously pass). Returns
    a list of problems; empty means the smoke passed.
    """
    from ..bench import figures
    from ..perf.cache import get_cache
    from ..runtime.schedule import replay_disabled

    cache = get_cache()
    problems: List[str] = []
    cache.clear()
    with replay_disabled():
        off = [figures.figure7(names)]
    cache.clear()
    on = [figures.figure7(names)]
    if _result_payload(off) != _result_payload(on):
        problems.append(
            "Figure 7 rows differ between replay-off and replay-on runs"
        )
    traced = [k for (k, _) in cache._memory if k == "cluster-schedule"]
    if cache.enabled and not traced:
        problems.append(
            "replay-on run recorded no cluster-schedule traces; the "
            "replayer never engaged"
        )
    return problems


def measure_queue_sweep(
    workers: int = 2,
    names: Optional[Sequence[str]] = QUICK_BENCHES,
) -> Dict[str, object]:
    """The queue-mode measurement leg: Figure 7 + Figure 16 through a
    coordinator with ``workers`` local worker processes, compared
    against the serial reference for bit-identity.

    Returns a payload with both wall times, the identity verdict, and
    the coordinator's end-of-sweep worker stats. Raises
    :class:`AssertionError` on row divergence — distribution must never
    change results.
    """
    from ..perf.cache import get_cache
    from ..perf.distributed import QueueCoordinator
    from ..perf.parallel import SweepExecutor, set_default_executor

    from . import figures

    def regenerate():
        return [figures.figure7(names), figures.figure16()]

    cache = get_cache()
    previous = set_default_executor(SweepExecutor("serial"))
    coordinator = QueueCoordinator(lease_s=60.0)
    try:
        cache.clear()
        start = time.perf_counter()
        reference = regenerate()
        serial_s = time.perf_counter() - start

        coordinator.start()
        coordinator.spawn_local_workers(workers)
        set_default_executor(
            SweepExecutor("queue", coordinator=coordinator)
        )
        cache.clear()
        start = time.perf_counter()
        queued = regenerate()
        queue_s = time.perf_counter() - start
    finally:
        set_default_executor(previous)
        coordinator.shutdown()

    if _result_payload(queued) != _result_payload(reference):
        raise AssertionError(
            "queue-distributed rows diverge from serial regeneration"
        )
    summary = coordinator.last_summary
    worker_stats = {}
    requeued = 0
    if summary is not None:
        requeued = summary.requeued
        for w in summary.workers:
            worker_stats[w.worker_id] = {
                "completed": w.completed,
                "failed": w.failed,
                "busy_s": round(w.busy_s, 3),
            }
    return {
        "serial_s": round(serial_s, 6),
        "queue_s": round(queue_s, 6),
        "workers": workers,
        "requeued": requeued,
        "worker_stats": worker_stats,
        "rows_identical": True,
    }


def run_queue_smoke(workers: int = 2) -> List[str]:
    """CI probe: queue-distributed sweeps must be bit-identical to
    serial ones. Launches a coordinator plus ``workers`` local worker
    processes, regenerates Figure 7 + Figure 16 both ways, and reports
    problems (empty list = pass). Prints the timing and per-worker
    stats so the job log shows the distribution actually engaged.
    """
    problems: List[str] = []
    try:
        payload = measure_queue_sweep(workers=workers)
    except AssertionError as exc:
        return [str(exc)]
    except Exception as exc:  # worker spawn/connect failures
        return [f"queue sweep failed to run: {exc}"]
    print(
        f"  serial      {payload['serial_s']:.3f}s\n"
        f"  queue       {payload['queue_s']:.3f}s "
        f"({payload['workers']} workers, {payload['requeued']} requeued)"
    )
    for wid, stats in sorted(payload["worker_stats"].items()):
        print(
            f"    {wid:30s} done={stats['completed']:4d} "
            f"failed={stats['failed']:2d} busy={stats['busy_s']:.2f}s"
        )
    active = [
        wid
        for wid, stats in payload["worker_stats"].items()
        if stats["completed"]
    ]
    if len(active) < min(2, workers):
        problems.append(
            f"only {len(active)} worker(s) completed tasks; expected at "
            f"least {min(2, workers)} of {workers} to participate"
        )
    if not payload["rows_identical"]:
        problems.append("queue-mode rows are not identical to serial")
    return problems


def run_perf(
    names: Optional[Iterable[str]] = None,
    quick: bool = False,
    repeats: Optional[int] = None,
) -> PerfReport:
    """The full harness: stage matrix + figure-sweep comparison."""
    if names is None and quick:
        names = QUICK_BENCHES
    if repeats is None:
        repeats = 1 if quick else 2
    return PerfReport(
        stages=measure_stages(names, repeats=repeats),
        sweep=measure_figure_sweep(quick=quick),
        quorum=measure_quorum_sweep(quick=quick),
        quick=quick,
        machine={
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
    )


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------


def write_report(report: PerfReport, path: Path):
    Path(path).write_text(json.dumps(report.to_dict(), indent=2) + "\n")


def load_report(path: Path) -> PerfReport:
    return PerfReport.from_dict(json.loads(Path(path).read_text()))


def compare_to_baseline(
    current: PerfReport, baseline: PerfReport, tolerance: float = 2.0
) -> List[str]:
    """Regression messages; empty means the run is within tolerance.

    A stage regresses when it is ``tolerance`` times slower than the
    baseline *and* the baseline is above the noise floor. The warm-sweep
    speedup regresses when it falls below half the acceptance threshold
    (machines differ; collapsing to ~1x means the cache stopped working).
    """
    problems: List[str] = []
    for bench, stages in current.stages.items():
        base_stages = baseline.stages.get(bench)
        if base_stages is None:
            continue
        for stage, seconds in stages.items():
            base = base_stages.get(stage)
            if base is None or base < FLOOR_SECONDS:
                continue
            if seconds > base * tolerance:
                problems.append(
                    f"{bench}/{stage}: {seconds:.4f}s vs baseline "
                    f"{base:.4f}s (>{tolerance:g}x)"
                )
    warm = current.sweep.get("warm_speedup", 0.0)
    if warm and warm < MIN_WARM_SPEEDUP / 2:
        problems.append(
            f"figure-sweep warm-cache speedup collapsed to {warm:.2f}x "
            f"(acceptance {MIN_WARM_SPEEDUP:g}x, gate {MIN_WARM_SPEEDUP / 2:g}x)"
        )
    if not current.sweep.get("rows_identical", False):
        problems.append("figure-sweep rows are not identical across paths")
    if current.quorum and not current.quorum.get("rows_identical", False):
        problems.append(
            "quorum-sweep rows are not identical between the replay and "
            "event-driven paths"
        )
    return problems


def render_report(report: PerfReport) -> str:
    """Human-readable table of the payload."""
    lines = ["== perf: toolchain stage timings (seconds, cache bypassed) =="]
    header = "bench".ljust(12) + "".join(s.rjust(11) for s in STAGES)
    lines.append(header)
    lines.append("-" * len(header))
    for bench, stages in report.stages.items():
        lines.append(
            bench.ljust(12)
            + "".join(f"{stages.get(s, 0.0):11.4f}" for s in STAGES)
        )
    sweep = report.sweep
    lines.append("")
    lines.append("== perf: Figure 7 + Figure 16 regeneration ==")
    lines.append(
        f"  serial uncached  {sweep['serial_uncached_s']:.3f}s"
    )
    if "cold_noreplay_s" in sweep:
        lines.append(
            f"  cold, no replay  {sweep['cold_noreplay_s']:.3f}s"
        )
    lines.append(
        f"  cold cache       {sweep['cold_cache_s']:.3f}s"
        f"  ({sweep['cold_speedup']:.2f}x)"
    )
    lines.append(
        f"  warm cache       {sweep['warm_cache_s']:.3f}s"
        f"  ({sweep['warm_speedup']:.2f}x)"
    )
    if "replay_speedup" in sweep:
        lines.append(
            f"  replay speedup   {sweep['replay_speedup']:.2f}x"
            "  (cold regeneration, schedule replay off -> on)"
        )
    lines.append(
        "  rows identical   "
        + ("yes" if sweep.get("rows_identical") else "NO")
    )
    quorum = report.quorum
    if quorum:
        lines.append("")
        lines.append("== perf: quorum-window sweep (fraction x deadline) ==")
        lines.append(
            f"  grid             {quorum['points']} points "
            f"({len(quorum['fractions'])} fractions x "
            f"{len(quorum['deadlines_s'])} deadlines)"
        )
        lines.append(
            f"  event-driven     {quorum['event_driven_s']:.3f}s"
        )
        lines.append(
            f"  quorum replay    {quorum['replay_s']:.3f}s"
            f"  ({quorum['speedup']:.2f}x)"
        )
        lines.append(
            "  rows identical   "
            + ("yes" if quorum.get("rows_identical") else "NO")
        )
    return "\n".join(lines)
