"""ASCII Gantt rendering of a static schedule.

Prints each PE's occupancy over cycles plus bus transfers — the first
thing to look at when a schedule's makespan surprises you. Pure text, no
plotting dependencies, suitable for logs and docs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .program import CompiledProgram

_OP_GLYPH = {
    "add": "+", "sub": "-", "mul": "*", "div": "/",
    "gt": ">", "lt": "<", "ge": "]", "le": "[", "eq": "=", "ne": "!",
    "min": "m", "max": "M", "neg": "~", "identity": ".",
    "abs": "a", "sign": "s", "sigmoid": "S", "gaussian": "G",
    "log": "L", "exp": "E", "sqrt": "Q", "select": "?",
}


def render_gantt(
    program: CompiledProgram,
    max_cycles: Optional[int] = None,
    show_transfers: bool = True,
) -> str:
    """Render the schedule as one text row per PE.

    Each character cell is a cycle; the glyph encodes the operation
    (`*` mul, `+` add, `S` sigmoid, ... `.` identity); idle cycles print
    as spaces. A legend and, optionally, the transfer log follow.
    """
    dfg = program.expansion.dfg
    makespan = program.schedule.makespan
    horizon = min(makespan, max_cycles) if max_cycles else makespan
    n_pe = program.grid.n_pe

    rows: List[List[str]] = [[" "] * horizon for _ in range(n_pe)]
    used_glyphs: Dict[str, str] = {}
    for op in program.schedule.ops.values():
        node = dfg.nodes[op.nid]
        glyph = _OP_GLYPH.get(node.op, "#")
        used_glyphs[glyph] = node.op
        for cycle in range(op.start, min(op.end, horizon)):
            rows[op.pe][cycle] = glyph

    width = len(str(n_pe - 1))
    ruler = _ruler(horizon, width)
    lines = [
        f"schedule gantt: {n_pe} PEs x {makespan} cycles"
        + (f" (showing first {horizon})" if horizon < makespan else ""),
        ruler,
    ]
    for pe in range(n_pe):
        lines.append(f"pe{pe:<{width}} |{''.join(rows[pe])}|")
    lines.append(ruler)
    legend = "  ".join(
        f"{glyph}={name}" for glyph, name in sorted(used_glyphs.items())
    )
    lines.append(f"legend: {legend}  (space = idle)")
    if show_transfers and program.schedule.transfers:
        lines.append(f"transfers ({len(program.schedule.transfers)}):")
        for t in sorted(program.schedule.transfers, key=lambda x: x.start)[:40]:
            lines.append(
                f"  t={t.start:<4d} pe{t.src_pe} -> pe{t.dst_pe}  "
                f"via {t.resource} ({t.latency} cyc)"
            )
        if len(program.schedule.transfers) > 40:
            lines.append(
                f"  ... {len(program.schedule.transfers) - 40} more"
            )
    return "\n".join(lines)


def utilization_by_pe(program: CompiledProgram) -> Dict[int, float]:
    """Busy fraction of each PE over the makespan."""
    makespan = max(1, program.schedule.makespan)
    busy: Dict[int, int] = {pe: 0 for pe in range(program.grid.n_pe)}
    for op in program.schedule.ops.values():
        busy[op.pe] += op.end - op.start
    return {pe: cycles / makespan for pe, cycles in busy.items()}


def _ruler(horizon: int, label_width: int) -> str:
    marks = [" "] * horizon
    for c in range(0, horizon, 10):
        text = str(c)
        for i, ch in enumerate(text):
            if c + i < horizon:
                marks[c + i] = ch
    return " " * (label_width + 2) + " " + "".join(marks)
