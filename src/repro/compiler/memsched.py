"""Memory-interface schedule generation (Sections 5.2 and 6).

The programmable memory interface executes a queue of entries, each with a
``Base PE Index``, a ``RD/WR`` bit, a ``Broadcast`` bit, and a ``Size``.
The schedule is shared by all worker threads; the Thread Index Table adds
each thread's ``PE Offset`` and memory base address at runtime, so one
copy of the schedule drives every thread (round-robin).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..dfg import ir
from ..dfg.scalarize import ScalarExpansion
from .mapping import Mapping

READ = "RD"  # memory -> PE buffers
WRITE = "WR"  # PE buffers -> memory (gradient drain)


@dataclass(frozen=True)
class MemEntry:
    """One entry of the Memory Schedule queue (Figure 5)."""

    base_pe: int
    direction: str  # READ or WRITE
    broadcast: bool
    size: int  # words
    label: str = ""


@dataclass(frozen=True)
class ThreadIndexEntry:
    """One row of the Thread Index Table: where a thread's data lives and
    which PE row block it owns."""

    thread: int
    mem_addr: int
    pe_offset: int


@dataclass
class MemorySchedule:
    """The complete memory program for one accelerator."""

    preload: List[MemEntry]
    per_sample: List[MemEntry]
    drain: List[MemEntry]

    @property
    def preload_words(self) -> int:
        return sum(e.size for e in self.preload)

    @property
    def sample_words(self) -> int:
        return sum(e.size for e in self.per_sample)

    @property
    def drain_words(self) -> int:
        return sum(e.size for e in self.drain)


def build_memory_schedule(
    expansion: ScalarExpansion, mapping: Mapping
) -> MemorySchedule:
    """Derive the three schedule phases from the data map.

    * **preload** — broadcast the model parameters to every worker thread
      (one broadcast read per burst; the Broadcast bit lets a single
      memory read feed all threads).
    * **per_sample** — stream one training vector, bursting ``columns``
      consecutive words to a row of PEs.
    * **drain** — write each thread's partial gradient back out for
      aggregation.
    """
    grid = mapping.grid
    columns = grid.columns
    preload: List[MemEntry] = []
    model = expansion.input_elements(ir.MODEL)
    for burst_start in range(0, len(model), columns):
        burst = model[burst_start : burst_start + columns]
        pe = mapping.pe_of_value[burst[0][2]]
        preload.append(
            MemEntry(pe, READ, True, len(burst), label="model")
        )

    per_sample: List[MemEntry] = []
    stream = expansion.input_elements(ir.DATA)
    for burst_start in range(0, len(stream), columns):
        burst = stream[burst_start : burst_start + columns]
        pe = mapping.grid.stream_pe(burst_start)
        per_sample.append(
            MemEntry(pe, READ, False, len(burst), label="data")
        )

    drain: List[MemEntry] = []
    grads = [v for v in expansion.dfg.gradient_outputs()]
    for burst_start in range(0, len(grads), columns):
        burst = grads[burst_start : burst_start + columns]
        pe = mapping.pe_of_node.get(
            expansion.dfg.values[burst[0].vid].producer, 0
        )
        drain.append(
            MemEntry(pe, WRITE, False, len(burst), label="gradient")
        )
    return MemorySchedule(preload, per_sample, drain)


def build_thread_index_table(
    threads: int, rows_per_thread: int, columns: int, words_per_thread: int
) -> List[ThreadIndexEntry]:
    """The Thread Index Table: one row per worker thread (Section 5.2)."""
    return [
        ThreadIndexEntry(
            thread=t,
            mem_addr=t * words_per_thread,
            pe_offset=t * rows_per_thread * columns,
        )
        for t in range(threads)
    ]
