"""Algorithm 1: minimum-communication data/operation mapping (Section 6).

CoSMIC's Compiler reverses the conventional order — it maps *data* before
*operations*:

1. every training-data element (DATA) is pinned to the PE fed by the
   memory-interface column that streams that element in, so no marshaling
   is ever needed;
2. operations are then mapped onto the PEs that already hold their
   operands (DATA first, then MODEL, then INTERIM), with unplaced model
   parameters assigned round-robin so neighbouring PEs execute in
   parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dfg import ir
from ..dfg.scalarize import ScalarExpansion


class MappingError(ValueError):
    """The graph cannot be mapped onto the given geometry."""


@dataclass
class PeGrid:
    """Geometry of one worker thread's PE allocation."""

    rows: int
    columns: int

    @property
    def n_pe(self) -> int:
        return self.rows * self.columns

    def pe_of(self, row: int, col: int) -> int:
        return row * self.columns + col

    def position(self, pe: int) -> tuple:
        return divmod(pe, self.columns)

    def stream_pe(self, stream_pos: int) -> int:
        """PE receiving the DATA element at ``stream_pos``.

        The element arrives on column ``stream_pos % columns``; the
        shifter spreads consecutive bursts across rows.
        """
        col = stream_pos % self.columns
        row = (stream_pos // self.columns) % self.rows
        return self.pe_of(row, col)


@dataclass
class Mapping:
    """Output of Algorithm 1."""

    grid: PeGrid
    #: pe -> node ids in mapping order (the paper's O array)
    operation_map: Dict[int, List[int]] = field(default_factory=dict)
    #: pe -> value ids resident in that PE's buffers (the D array)
    data_map: Dict[int, List[int]] = field(default_factory=dict)
    pe_of_node: Dict[int, int] = field(default_factory=dict)
    pe_of_value: Dict[int, int] = field(default_factory=dict)
    #: DATA value id -> stream position (memory layout order)
    stream_position: Dict[int, int] = field(default_factory=dict)

    def pes_used(self) -> int:
        return len({pe for pe in self.pe_of_node.values()})


def map_graph(expansion: ScalarExpansion, grid: PeGrid) -> Mapping:
    """Run Algorithm 1 on a scalar DFG.

    Args:
        expansion: scalar graph plus element bookkeeping from
            :func:`repro.dfg.scalarize`.
        grid: the thread's PE geometry from the Planner.
    """
    dfg = expansion.dfg
    mapping = Mapping(grid)
    for pe in range(grid.n_pe):
        mapping.operation_map[pe] = []
        mapping.data_map[pe] = []

    _place_data(expansion, mapping)
    _map_operations(dfg, mapping)
    return mapping


def _place_data(expansion: ScalarExpansion, mapping: Mapping):
    """Step 1: pin DATA elements to the column that brings them in."""
    stream = expansion.input_elements(ir.DATA)
    for position, (_, _, vid) in enumerate(stream):
        pe = mapping.grid.stream_pe(position)
        mapping.pe_of_value[vid] = pe
        mapping.data_map[pe].append(vid)
        mapping.stream_position[vid] = position


def _map_operations(dfg: ir.Dfg, mapping: Mapping):
    """Steps 2-6: walk ready vertices, dispatching on operand category."""
    pe_counter = 0
    placed = mapping.pe_of_value
    remaining = list(dfg.topo_order())
    for node in remaining:  # topo order guarantees predecessors are mapped
        pe = _data_operand_pe(dfg, node, placed)
        if pe is not None:
            _adopt_model_operands(dfg, node, pe, mapping)
        else:
            pe, pe_counter = _model_or_interim_pe(
                dfg, node, placed, pe_counter, mapping
            )
        out = dfg.values[node.output]
        mapping.pe_of_node[node.nid] = pe
        mapping.operation_map[pe].append(node.nid)
        placed[out.vid] = pe


def _data_operand_pe(
    dfg: ir.Dfg, node: ir.Node, placed: Dict[int, int]
) -> Optional[int]:
    """Step 3: if any operand is DATA, the op runs where the data lives."""
    for vid in node.inputs:
        value = dfg.values[vid]
        if value.category == ir.DATA and value.producer is None:
            if vid not in placed:
                raise MappingError(f"DATA element {value.name!r} not placed")
            return placed[vid]
    return None


def _adopt_model_operands(
    dfg: ir.Dfg, node: ir.Node, pe: int, mapping: Mapping
):
    """Step 3 (cont.): co-locate the op's MODEL operands with it."""
    for vid in node.inputs:
        value = dfg.values[vid]
        if (
            value.category == ir.MODEL
            and value.producer is None
            and vid not in mapping.pe_of_value
        ):
            mapping.pe_of_value[vid] = pe
            mapping.data_map[pe].append(vid)


def _model_or_interim_pe(
    dfg: ir.Dfg,
    node: ir.Node,
    placed: Dict[int, int],
    pe_counter: int,
    mapping: Mapping,
):
    """Steps 4-5: follow MODEL placement, then INTERIM, else round-robin."""
    for vid in node.inputs:
        value = dfg.values[vid]
        if value.category == ir.MODEL and value.producer is None:
            if vid in placed:
                return placed[vid], pe_counter
            pe = pe_counter
            placed[vid] = pe
            mapping.data_map[pe].append(vid)
            pe_counter = (pe_counter + 1) % mapping.grid.n_pe
            return pe, pe_counter
    for vid in node.inputs:
        value = dfg.values[vid]
        if value.category != ir.CONST and vid in placed:
            return placed[vid], pe_counter
    # All-constant operands: round-robin for parallelism.
    pe = pe_counter
    pe_counter = (pe_counter + 1) % mapping.grid.n_pe
    return pe, pe_counter


def communication_edges(dfg: ir.Dfg, mapping: Mapping) -> List[tuple]:
    """(node, operand value, src_pe, dst_pe) for every cross-PE operand.

    This is the traffic Algorithm 1 minimises; tests assert data-first
    mapping produces less of it than ops-first alternatives.
    """
    edges = []
    for node in dfg.topo_order():
        dst = mapping.pe_of_node[node.nid]
        for vid in node.inputs:
            value = dfg.values[vid]
            if value.category == ir.CONST:
                continue
            src = mapping.pe_of_value.get(vid)
            if src is not None and src != dst:
                edges.append((node.nid, vid, src, dst))
    return edges
