"""The compiled accelerator program: map + schedule + memory program.

This is the artifact the Constructor consumes to emit RTL and the cycle
simulator consumes to execute. One program describes one worker thread;
the accelerator replicates it across threads via the Thread Index Table
(the schedule is shared, Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..dfg import ir
from ..dfg.scalarize import ScalarExpansion, scalarize
from .mapping import Mapping, PeGrid, communication_edges, map_graph
from .memsched import MemorySchedule, build_memory_schedule
from .scheduling import Schedule, schedule_graph, verify_schedule


@dataclass
class CompiledProgram:
    """Everything needed to run one worker thread on the template."""

    expansion: ScalarExpansion
    mapping: Mapping
    schedule: Schedule
    memory: MemorySchedule

    @property
    def grid(self) -> PeGrid:
        return self.mapping.grid

    @property
    def cycles(self) -> int:
        """Static makespan of one sample evaluation."""
        return self.schedule.makespan

    @property
    def cross_pe_operands(self) -> int:
        """Operand reads that cross PEs — Algorithm 1's objective."""
        return len(communication_edges(self.expansion.dfg, self.mapping))

    def verify(self, deep: bool = False):
        """Re-check every static invariant of the compiled artifact.

        ``deep=True`` additionally replays every transfer on the
        structural interconnect model (topology, latencies, arbitration).
        """
        self.expansion.dfg.validate()
        verify_schedule(self.expansion.dfg, self.mapping, self.schedule)
        if deep:
            from ..hw.interconnect import replay_transfers

            replay_transfers(self.schedule)


def compile_thread(
    dfg: ir.Dfg,
    rows: int,
    columns: int,
    include_stream: bool = True,
    max_nodes: int = 50_000,
    expansion: Optional[ScalarExpansion] = None,
) -> CompiledProgram:
    """Compile a macro DFG for one worker thread of ``rows x columns`` PEs.

    The graph is scalar-expanded, mapped with Algorithm 1, list-scheduled,
    and given its memory-interface program. Suitable for small/medium
    graphs (tests, estimator validation, RTL generation); large production
    graphs use the macro-level estimator directly.
    """
    if expansion is None:
        expansion = scalarize(dfg, max_nodes=max_nodes)
    grid = PeGrid(rows=rows, columns=columns)
    mapping = map_graph(expansion, grid)
    schedule = schedule_graph(expansion.dfg, mapping, include_stream)
    memory = build_memory_schedule(expansion, mapping)
    program = CompiledProgram(expansion, mapping, schedule, memory)
    program.verify()
    return program
