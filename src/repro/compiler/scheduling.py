"""Static operation scheduling for the mapped DFG (Section 6).

Given Algorithm 1's map, the scheduler produces the cycle-exact static
schedule that the Constructor later turns into state machines (FPGA) or
microcode (P-ASIC). It is a list scheduler that prioritises operations on
the longest dependence chain — "the Compiler also prioritizes scheduling
operations that have the longest dependence chain" — and charges the
template's three-level interconnect for every cross-PE operand:

* adjacent PEs in a row: bi-directional neighbour link (1 cycle);
* same row: the row's shared bus (pipelined, latency 2, 1 grant/cycle);
* across rows: the hierarchical tree bus (latency grows logarithmically
  with the row count).

DATA operands become available as the programmable memory interface
streams them in (``columns`` words per cycle through the shifter); MODEL
parameters are broadcast before the steady state and are ready at cycle 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..dfg import ir
from ..dfg.ops import op_info
from .mapping import Mapping, PeGrid

#: Cycles for the shifter to align an incoming memory word (Section 5.1).
SHIFTER_LATENCY = 2
#: Pipelined shared-bus transfer latency within a row.
ROW_BUS_LATENCY = 2
#: Neighbour-link latency between adjacent PEs in a row.
NEIGHBOR_LATENCY = 1


@dataclass(frozen=True)
class ScheduledOp:
    nid: int
    pe: int
    start: int
    end: int  # last busy cycle + 1


@dataclass(frozen=True)
class Transfer:
    value: int
    src_pe: int
    dst_pe: int
    start: int
    latency: int
    resource: str  # "neighbor" | "row_bus:<r>" | "tree_bus"


@dataclass
class Schedule:
    """The static schedule for one worker thread."""

    grid: PeGrid
    ops: Dict[int, ScheduledOp] = field(default_factory=dict)
    transfers: List[Transfer] = field(default_factory=list)
    makespan: int = 0

    def ops_on_pe(self, pe: int) -> List[ScheduledOp]:
        return sorted(
            (op for op in self.ops.values() if op.pe == pe),
            key=lambda op: op.start,
        )

    @property
    def comm_cycles(self) -> int:
        return sum(t.latency for t in self.transfers)


def tree_bus_latency(rows: int) -> int:
    """Cross-row transfer latency over the hierarchical tree bus."""
    return 2 + 2 * math.ceil(math.log2(max(2, rows)))


def schedule_graph(
    dfg: ir.Dfg,
    mapping: Mapping,
    include_stream: bool = True,
    priority: str = "longest_chain",
) -> Schedule:
    """List-schedule a mapped scalar DFG.

    Args:
        dfg: the scalar graph.
        mapping: Algorithm 1's output.
        include_stream: gate DATA operands on their memory arrival cycle
            (set False to measure pure compute, e.g. in steady state with
            the prefetch buffer already full).
        priority: ``"longest_chain"`` (the paper's heuristic — nodes on
            the longest dependence chain first) or ``"source_order"``
            (naive FIFO baseline, for ablating the heuristic).
    """
    if priority not in ("longest_chain", "source_order"):
        raise ValueError(f"unknown priority policy {priority!r}")
    grid = mapping.grid
    schedule = Schedule(grid)
    if priority == "longest_chain":
        ranks = _heights(dfg)
    else:
        ranks = {n.nid: -n.nid for n in dfg.topo_order()}
    ready_at: Dict[int, int] = {}  # value id -> cycle available at home PE
    arrival = _data_arrivals(mapping) if include_stream else {}
    pe_free = [0] * grid.n_pe
    bus = _BusCalendar(grid)

    for value in dfg.values.values():
        if value.producer is None:
            ready_at[value.vid] = arrival.get(value.vid, 0)

    pending = sorted(
        dfg.topo_order(), key=lambda n: ranks[n.nid], reverse=True
    )
    scheduled: Dict[int, bool] = {}
    while pending:
        progress = False
        for node in pending:
            if not all(vid in ready_at for vid in node.inputs):
                continue
            _issue(node, dfg, mapping, schedule, ready_at, pe_free, bus)
            scheduled[node.nid] = True
            progress = True
        pending = [n for n in pending if n.nid not in scheduled]
        if pending and not progress:
            raise RuntimeError("scheduler deadlock: graph is not acyclic")
    schedule.makespan = max(
        (op.end for op in schedule.ops.values()), default=0
    )
    return schedule


def verify_schedule(dfg: ir.Dfg, mapping: Mapping, schedule: Schedule):
    """Raise ValueError if the schedule violates any hardware constraint.

    Checks: every node scheduled once on its mapped PE; dependencies
    respected (a consumer starts only after its producers end, plus the
    transfer latency when they live on different PEs); no two ops overlap
    on one PE.
    """
    if set(schedule.ops) != {n.nid for n in dfg.topo_order()}:
        raise ValueError("schedule does not cover the graph exactly")
    done: Dict[int, int] = {}
    for node in dfg.topo_order():
        op = schedule.ops[node.nid]
        if op.pe != mapping.pe_of_node[node.nid]:
            raise ValueError(f"node {node.nid} scheduled on the wrong PE")
        done[node.output] = op.end
    transfer_done: Dict[Tuple[int, int], List[int]] = {}
    for t in schedule.transfers:
        transfer_done.setdefault((t.value, t.dst_pe), []).append(
            t.start + t.latency
        )
    for node in dfg.topo_order():
        op = schedule.ops[node.nid]
        for vid in node.inputs:
            value = dfg.values[vid]
            if value.category == ir.CONST:
                continue
            src = mapping.pe_of_value.get(vid)
            if value.producer is not None and op.start < done[vid] - (
                0 if src == op.pe else 0
            ):
                if op.start < done[vid]:
                    raise ValueError(
                        f"node {node.nid} starts before producer of {vid}"
                    )
            if src is not None and src != op.pe:
                key = (vid, op.pe)
                if key not in transfer_done:
                    raise ValueError(
                        f"no transfer delivers value {vid} to PE {op.pe}"
                    )
                if not any(done <= op.start for done in transfer_done[key]):
                    raise ValueError(
                        f"node {node.nid} starts before value {vid} arrives"
                    )
    for pe in range(schedule.grid.n_pe):
        ops = schedule.ops_on_pe(pe)
        for a, b in zip(ops, ops[1:]):
            if b.start < a.end:
                raise ValueError(f"PE {pe} runs two ops at cycle {b.start}")


# -- internals ---------------------------------------------------------------


def _heights(dfg: ir.Dfg) -> Dict[int, int]:
    """Longest dependence chain from each node to any sink."""
    height: Dict[int, int] = {}
    consumers: Dict[int, List[ir.Node]] = {}
    for node in dfg.topo_order():
        for vid in node.inputs:
            consumers.setdefault(vid, []).append(node)
    for node in reversed(dfg.topo_order()):
        below = [
            height[c.nid] for c in consumers.get(node.output, [])
        ]
        height[node.nid] = op_info(node.op).cycles + max(below, default=0)
    return height


def _data_arrivals(mapping: Mapping) -> Dict[int, int]:
    """Cycle at which each DATA element lands in its PE buffer."""
    columns = mapping.grid.columns
    return {
        vid: pos // columns + 1 + SHIFTER_LATENCY
        for vid, pos in mapping.stream_position.items()
    }


class _BusCalendar:
    """Next-free bookkeeping for the shared interconnect resources."""

    def __init__(self, grid: PeGrid):
        self._grid = grid
        self._row_bus_free = [0] * grid.rows
        self._tree_bus_free = 0

    def route(
        self, src: int, dst: int, earliest: int
    ) -> Tuple[int, int, str]:
        """Reserve a path; returns (start, latency, resource)."""
        src_row, src_col = self._grid.position(src)
        dst_row, dst_col = self._grid.position(dst)
        if src_row == dst_row and abs(src_col - dst_col) == 1:
            return earliest, NEIGHBOR_LATENCY, "neighbor"
        if src_row == dst_row:
            start = max(earliest, self._row_bus_free[src_row])
            self._row_bus_free[src_row] = start + 1
            return start, ROW_BUS_LATENCY, f"row_bus:{src_row}"
        start = max(earliest, self._tree_bus_free)
        self._tree_bus_free = start + 1
        return start, tree_bus_latency(self._grid.rows), "tree_bus"


def _issue(
    node: ir.Node,
    dfg: ir.Dfg,
    mapping: Mapping,
    schedule: Schedule,
    ready_at: Dict[int, int],
    pe_free: List[int],
    bus: _BusCalendar,
):
    pe = mapping.pe_of_node[node.nid]
    earliest = 0
    for vid in node.inputs:
        value = dfg.values[vid]
        if value.category == ir.CONST:
            continue
        available = ready_at[vid]
        src = mapping.pe_of_value.get(vid, pe)
        if src != pe:
            start, latency, resource = bus.route(src, pe, available)
            schedule.transfers.append(
                Transfer(vid, src, pe, start, latency, resource)
            )
            available = start + latency
        earliest = max(earliest, available)
    start = max(earliest, pe_free[pe])
    cycles = op_info(node.op).cycles
    op = ScheduledOp(node.nid, pe, start, start + cycles)
    schedule.ops[node.nid] = op
    pe_free[pe] = op.end
    ready_at[node.output] = op.end
