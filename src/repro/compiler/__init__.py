"""CoSMIC compilation layer, part 2: mapping, scheduling, memory program."""

from .mapping import (
    Mapping,
    MappingError,
    PeGrid,
    communication_edges,
    map_graph,
)
from .memsched import (
    READ,
    WRITE,
    MemEntry,
    MemorySchedule,
    ThreadIndexEntry,
    build_memory_schedule,
    build_thread_index_table,
)
from .gantt import render_gantt, utilization_by_pe
from .program import CompiledProgram, compile_thread
from .scheduling import (
    Schedule,
    ScheduledOp,
    Transfer,
    schedule_graph,
    tree_bus_latency,
    verify_schedule,
)

__all__ = [
    "CompiledProgram",
    "Mapping",
    "MappingError",
    "MemEntry",
    "MemorySchedule",
    "PeGrid",
    "READ",
    "Schedule",
    "ScheduledOp",
    "ThreadIndexEntry",
    "Transfer",
    "WRITE",
    "build_memory_schedule",
    "build_thread_index_table",
    "communication_edges",
    "compile_thread",
    "map_graph",
    "render_gantt",
    "utilization_by_pe",
    "schedule_graph",
    "tree_bus_latency",
    "verify_schedule",
]
