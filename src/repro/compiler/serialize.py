"""Serialization of compiled accelerator programs.

A deployment of CoSMIC ships artifacts, not Python objects: the bitstream
(FPGA) or microcode image (P-ASIC) plus the host-side memory program and
thread table. This module renders a :class:`CompiledProgram` into a plain
JSON-compatible dict — stable, diff-able, and loadable without the source
DSL — and can verify a loaded artifact against a freshly compiled one.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .mapping import PeGrid
from .memsched import MemEntry, MemorySchedule
from .program import CompiledProgram
from .scheduling import Schedule, ScheduledOp, Transfer

FORMAT_VERSION = 1


def program_to_dict(program: CompiledProgram) -> Dict:
    """Render every deployable piece of a compiled program."""
    dfg = program.expansion.dfg
    return {
        "format_version": FORMAT_VERSION,
        "grid": {
            "rows": program.grid.rows,
            "columns": program.grid.columns,
        },
        "operations": [
            {
                "nid": op.nid,
                "op": dfg.nodes[op.nid].op,
                "pe": op.pe,
                "start": op.start,
                "end": op.end,
            }
            for op in sorted(
                program.schedule.ops.values(), key=lambda o: (o.start, o.nid)
            )
        ],
        "transfers": [
            {
                "value": t.value,
                "src_pe": t.src_pe,
                "dst_pe": t.dst_pe,
                "start": t.start,
                "latency": t.latency,
                "resource": t.resource,
            }
            for t in program.schedule.transfers
        ],
        "makespan": program.schedule.makespan,
        "data_map": {
            str(pe): values
            for pe, values in program.mapping.data_map.items()
            if values
        },
        "operation_map": {
            str(pe): ops
            for pe, ops in program.mapping.operation_map.items()
            if ops
        },
        "memory_schedule": {
            phase: [
                {
                    "base_pe": e.base_pe,
                    "direction": e.direction,
                    "broadcast": e.broadcast,
                    "size": e.size,
                    "label": e.label,
                }
                for e in entries
            ]
            for phase, entries in (
                ("preload", program.memory.preload),
                ("per_sample", program.memory.per_sample),
                ("drain", program.memory.drain),
            )
        },
    }


def program_to_json(program: CompiledProgram, indent: int = 2) -> str:
    return json.dumps(program_to_dict(program), indent=indent)


def schedule_from_dict(payload: Dict) -> Schedule:
    """Rebuild the static schedule from a serialized artifact."""
    _check_version(payload)
    grid = PeGrid(
        rows=payload["grid"]["rows"], columns=payload["grid"]["columns"]
    )
    schedule = Schedule(grid)
    for op in payload["operations"]:
        schedule.ops[op["nid"]] = ScheduledOp(
            op["nid"], op["pe"], op["start"], op["end"]
        )
    for t in payload["transfers"]:
        schedule.transfers.append(
            Transfer(
                t["value"], t["src_pe"], t["dst_pe"], t["start"],
                t["latency"], t["resource"],
            )
        )
    schedule.makespan = payload["makespan"]
    return schedule


def memory_schedule_from_dict(payload: Dict) -> MemorySchedule:
    """Rebuild the memory program from a serialized artifact."""
    _check_version(payload)

    def entries(phase: str) -> List[MemEntry]:
        return [
            MemEntry(
                e["base_pe"], e["direction"], e["broadcast"], e["size"],
                e["label"],
            )
            for e in payload["memory_schedule"][phase]
        ]

    return MemorySchedule(
        preload=entries("preload"),
        per_sample=entries("per_sample"),
        drain=entries("drain"),
    )


def verify_artifact(program: CompiledProgram, payload: Dict):
    """Raise ValueError if ``payload`` does not describe ``program``.

    Used to confirm a shipped artifact matches what the current toolchain
    would produce for the same source (reproducible-build check).
    """
    fresh = program_to_dict(program)
    if fresh != payload:
        for key in fresh:
            if fresh[key] != payload.get(key):
                raise ValueError(f"artifact mismatch in section {key!r}")
        raise ValueError("artifact mismatch")


def _check_version(payload: Dict):
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported artifact version {version!r}; "
            f"this toolchain reads version {FORMAT_VERSION}"
        )
