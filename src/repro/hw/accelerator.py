"""Cycle-level simulation of the multi-threaded template accelerator.

Two simulators live here:

* :class:`ThreadSimulator` executes a compiled program (map + static
  schedule + memory program) on a grid of :class:`repro.hw.pe.Pe` objects,
  cycle-faithfully: operations fire at their scheduled cycles, operands
  travel over the modelled interconnect, and the functional results are
  checked against the NumPy interpreter in tests.
* :class:`MimdTimingModel` models the whole accelerator: multiple worker
  threads sharing the programmable memory interface (round-robin service,
  Section 5.2), with the prefetch buffer overlapping each thread's next
  sample stream with its current computation. This reproduces the
  MIMD behaviour the paper credits for hiding memory latency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..compiler.program import CompiledProgram
from ..dfg import ir

from .pe import Pe

#: Whether :meth:`MimdTimingModel.run_batch` uses the closed-form NumPy
#: path by default. The scalar loop remains available as the reference
#: (``vectorized=False``) and the two are cross-validated bit-for-bit.
VECTORIZED_DEFAULT = True


@dataclass
class ThreadRunResult:
    """Outcome of simulating one sample on one worker thread."""

    outputs: Dict[str, float]
    cycles: int
    ops_per_pe: Dict[int, int]
    buffer_words_per_pe: Dict[int, int]

    def gradient_vector(self, name: str, size: int) -> np.ndarray:
        """Reassemble a gradient vector from its scalar elements."""
        vec = np.zeros(size)
        for i in range(size):
            vec[i] = self.outputs[f"{name}[{i}]"]
        return vec


class ThreadSimulator:
    """Executes one worker thread's compiled program."""

    def __init__(self, program: CompiledProgram):
        self._program = program
        dfg = program.expansion.dfg
        nonlinear_pes = {
            program.mapping.pe_of_node[n.nid]
            for n in dfg.topo_order()
            if _needs_nonlinear(n.op)
        }
        self._pes = [
            Pe(i, has_nonlinear_unit=(i in nonlinear_pes or not nonlinear_pes))
            for i in range(program.grid.n_pe)
        ]

    def run(self, feeds: Mapping[str, np.ndarray]) -> ThreadRunResult:
        """Simulate one sample.

        Args:
            feeds: DSL input name -> array (vector inputs) or scalar.
        """
        program = self._program
        dfg = program.expansion.dfg
        env: Dict[int, float] = {}
        self._load_inputs(feeds, env)

        # Execute operations in scheduled order; the schedule already
        # encodes all interconnect and memory-arrival constraints
        # (program.verify() checked them).
        ordered = sorted(program.schedule.ops.values(), key=lambda op: op.start)
        for sched_op in ordered:
            node = dfg.nodes[sched_op.nid]
            operands = [env[vid] for vid in node.inputs]
            pe = self._pes[sched_op.pe]
            env[node.output] = pe.execute(node.op, operands, node.output)

        outputs: Dict[str, float] = {}
        for value in dfg.values.values():
            if value.is_gradient or value.vid in dfg.outputs.values():
                outputs[value.name] = env[value.vid]
        return ThreadRunResult(
            outputs=outputs,
            cycles=program.schedule.makespan,
            ops_per_pe={pe.index: pe.ops_executed for pe in self._pes},
            buffer_words_per_pe={
                pe.index: pe.buffers.words() for pe in self._pes
            },
        )

    def _load_inputs(self, feeds: Mapping[str, np.ndarray], env: Dict[int, float]):
        """Load MODEL and DATA through the programmable memory interface
        (broadcast preload + shifted sample stream), exactly as the
        generated hardware does."""
        from .memory import Dram, MemoryInterface

        program = self._program
        dfg = program.expansion.dfg

        def word_of(name: str, index) -> float:
            if name not in feeds:
                raise KeyError(f"missing feed for input {name!r}")
            array = np.asarray(feeds[name], dtype=np.float64)
            return float(array[index] if index else array)

        def deliver(pe_index: int, vid: int, word: float):
            env[vid] = word
            category = dfg.values[vid].category
            self._pes[pe_index].store(category, vid, word)

        interface = MemoryInterface(program)
        data_elements = program.expansion.input_elements(ir.DATA)
        sample = np.array(
            [word_of(name, index) for name, index, _ in data_elements]
        )
        if len(sample):
            interface.stream_sample(Dram.from_samples([sample]), 0, deliver)
        model_words = {
            vid: word_of(name, index)
            for name, index, vid in program.expansion.input_elements(ir.MODEL)
        }
        if model_words:
            interface.preload_model(model_words, deliver)
        for value in dfg.values.values():
            if value.category == ir.CONST:
                env[value.vid] = float(value.const_value)
            elif value.producer is None and value.vid not in env:
                # Inputs the mapper left unplaced (none today) fall back
                # to direct binding so execution still proceeds.
                env[value.vid] = word_of(value.name, ())


@dataclass
class MimdBatchResult:
    """Timing of a batch processed by the multi-threaded accelerator."""

    total_cycles: int
    stream_cycles: int
    compute_bound_threads: int
    per_thread_finish: List[int]


class MimdTimingModel:
    """Round-robin memory interface + per-thread MIMD execution.

    Threads share the off-chip interface (``columns`` words/cycle). The
    prefetch buffer lets a thread's next sample stream in while the
    current one computes; with enough threads, streaming and computing
    fully overlap — the behaviour behind Figure 15's bandwidth-bound
    plateau.
    """

    def __init__(
        self,
        threads: int,
        compute_cycles: int,
        sample_words: int,
        columns: int,
        preload_words: int = 0,
        drain_words: int = 0,
    ):
        if threads < 1:
            raise ValueError("need at least one worker thread")
        self.threads = threads
        self.compute_cycles = int(compute_cycles)
        self.sample_words = int(sample_words)
        self.columns = int(columns)
        self.preload_words = int(preload_words)
        self.drain_words = int(drain_words)

    def run_batch(
        self, samples: int, vectorized: Optional[bool] = None
    ) -> MimdBatchResult:
        """Cycles to stream + process ``samples`` vectors, plus the model
        preload (broadcast) and gradient drain phases.

        ``vectorized=None`` follows the module default
        (:data:`VECTORIZED_DEFAULT`); the scalar path is kept as the
        cycle-faithful reference and cross-validated bit-for-bit in tests.
        """
        if vectorized is None:
            vectorized = VECTORIZED_DEFAULT
        if vectorized:
            return self._run_batch_vectorized(samples)
        return self._run_batch_scalar(samples)

    def _run_batch_scalar(self, samples: int) -> MimdBatchResult:
        """Reference implementation: step the round-robin interface one
        sample at a time."""
        stream_per_sample = math.ceil(self.sample_words / self.columns)
        preload = math.ceil(self.preload_words / self.columns)
        drain = math.ceil(self.drain_words / self.columns) * self.threads
        interface_free = preload
        thread_free = [preload] * self.threads
        compute_bound = 0
        for s in range(samples):
            t = s % self.threads
            stream_start = interface_free
            stream_end = stream_start + stream_per_sample
            interface_free = stream_end
            compute_start = max(stream_end, thread_free[t])
            if thread_free[t] >= stream_end:
                compute_bound += 1
            thread_free[t] = compute_start + self.compute_cycles
        finish = max(thread_free) if samples else preload
        return MimdBatchResult(
            total_cycles=finish + drain,
            stream_cycles=interface_free - preload,
            compute_bound_threads=compute_bound,
            per_thread_finish=list(thread_free),
        )

    def _run_batch_vectorized(self, samples: int) -> MimdBatchResult:
        """Closed-form solution of the scalar recurrence, over all threads
        at once.

        Thread ``t`` receives samples ``t, t+T, t+2T, ...``; its ``k``-th
        sample finishes streaming at ``E_k = preload + (t+1+kT)*w`` where
        ``w`` is the per-sample stream time and ``T*w`` the spacing
        between consecutive arrivals at one thread. The per-thread finish
        recurrence ``f_k = max(E_k, f_{k-1}) + C`` then has two regimes:

        * ``T*w >= C`` (arrivals at least as slow as compute): every
          sample starts on arrival, ``f_k = E_k + C``;
        * ``T*w < C`` (compute is the bottleneck): only the first sample
          waits for the stream, ``f_k = E_0 + (k+1)*C``.

        Both reduce to arithmetic on per-thread sample counts, so the
        whole batch costs O(threads) instead of O(samples).
        """
        stream_per_sample = math.ceil(self.sample_words / self.columns)
        preload = math.ceil(self.preload_words / self.columns)
        drain = math.ceil(self.drain_words / self.columns) * self.threads
        total_threads = self.threads
        compute = self.compute_cycles
        if samples <= 0:
            return MimdBatchResult(
                total_cycles=preload + drain,
                stream_cycles=0,
                compute_bound_threads=0,
                per_thread_finish=[preload] * total_threads,
            )
        t = np.arange(total_threads, dtype=np.int64)
        # Samples assigned to thread t: ceil((samples - t) / threads).
        counts = np.maximum(
            0, (samples - t + total_threads - 1) // total_threads
        )
        spacing = total_threads * stream_per_sample
        first_end = preload + (t + 1) * stream_per_sample  # E_0 per thread
        if spacing >= compute:
            # Stream-paced: finish = E_{k-1} + C for the last sample.
            last_end = first_end + (counts - 1) * spacing
            finish = np.where(counts > 0, last_end + compute, preload)
        else:
            # Compute-paced: finish = E_0 + counts * C.
            finish = np.where(counts > 0, first_end + counts * compute, preload)
        # A sample is "compute bound" when the thread was still busy (or
        # just free) at stream end: always for follow-up samples when
        # compute dominates or exactly matches the arrival spacing, and
        # for every sample when streaming is free (w == 0).
        if stream_per_sample == 0:
            compute_bound = int(counts.sum())
        elif spacing <= compute:
            compute_bound = int(np.maximum(0, counts - 1).sum())
        else:
            compute_bound = 0
        return MimdBatchResult(
            total_cycles=int(finish.max()) + drain,
            stream_cycles=samples * stream_per_sample,
            compute_bound_threads=compute_bound,
            per_thread_finish=[int(f) for f in finish],
        )

    def throughput_samples_per_cycle(self, samples: int = 1024) -> float:
        result = self.run_batch(samples)
        busy = result.total_cycles
        return samples / busy if busy else float("inf")


def _needs_nonlinear(op: str) -> bool:
    from ..dfg.ops import op_info

    return op_info(op).nonlinear
