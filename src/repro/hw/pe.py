"""Processing Engine model (Section 5.1, Figure 6).

A PE holds three separate SRAM buffers — training data, model parameters,
and intermediate results — so the DFG's parallel accesses never conflict,
and executes scheduled operations through a five-stage pipeline
(read -> register -> select operands -> ALU -> write back) with a bypass
path from write-back to the ALU stage.

The cycle simulator uses this class for functional execution and buffer
accounting; timing comes from the static schedule, exactly as in the
generated hardware where the schedule *is* the control logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..dfg.ops import op_info

#: Stages of the PE pipeline (Figure 6).
PIPELINE_STAGES = ("read", "register", "select", "alu", "writeback")
PIPELINE_DEPTH = len(PIPELINE_STAGES)


@dataclass
class PeBuffers:
    """The PE's partitioned SRAM: value id -> word, per category."""

    data: Dict[int, float] = field(default_factory=dict)
    model: Dict[int, float] = field(default_factory=dict)
    interim: Dict[int, float] = field(default_factory=dict)

    def words(self) -> int:
        return len(self.data) + len(self.model) + len(self.interim)


class Pe:
    """One processing engine of the 2-D template array."""

    def __init__(self, index: int, has_nonlinear_unit: bool = True):
        self.index = index
        self.has_nonlinear_unit = has_nonlinear_unit
        self.buffers = PeBuffers()
        self.ops_executed = 0
        self.busy_until = 0

    def store(self, category: str, vid: int, word: float):
        """Write a word into the named buffer partition."""
        buffer = self._buffer(category)
        buffer[vid] = float(word)

    def load(self, vid: int) -> Optional[float]:
        """Read a word from whichever partition holds it."""
        for buffer in (
            self.buffers.interim,
            self.buffers.model,
            self.buffers.data,
        ):
            if vid in buffer:
                return buffer[vid]
        return None

    def execute(self, op: str, operands, out_vid: int) -> float:
        """Apply one scheduled operation on the ALU / non-linear unit."""
        info = op_info(op)
        if info.nonlinear and not self.has_nonlinear_unit:
            raise RuntimeError(
                f"PE {self.index} has no non-linear LUT unit but op {op!r} "
                "was scheduled on it"
            )
        result = float(info.numpy_fn(*operands))
        self.buffers.interim[out_vid] = result
        self.ops_executed += 1
        return result

    def _buffer(self, category: str) -> Dict[int, float]:
        if category == "DATA":
            return self.buffers.data
        if category == "MODEL":
            return self.buffers.model
        return self.buffers.interim
