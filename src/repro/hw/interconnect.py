"""Structural model of the template's three-level interconnect.

Section 5.1: "PEs possess three distinct levels of connectivity" —
bi-directional neighbour links within a row, a shared bus per row, and a
hierarchical tree bus across rows whose nodes carry sigma/pi ALUs. This
module models each level as an arbitrated structure and provides
:func:`replay_transfers`, which re-executes a compiled schedule's
transfers against the structures cycle by cycle — an independent check
that the scheduler's calendar booked real, conflict-free resources.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..compiler.mapping import PeGrid
from ..compiler.scheduling import (
    NEIGHBOR_LATENCY,
    ROW_BUS_LATENCY,
    Schedule,
    tree_bus_latency,
)


class InterconnectError(ValueError):
    """A transfer used a resource it could not have held."""


@dataclass
class NeighborLinks:
    """Bi-directional links between adjacent PEs in a row.

    Each directed pair has its own wire, so neighbour transfers never
    contend; the model only validates adjacency and latency.
    """

    grid: PeGrid
    transfers: int = 0

    def carry(self, src: int, dst: int, start: int, latency: int):
        src_row, src_col = self.grid.position(src)
        dst_row, dst_col = self.grid.position(dst)
        if src_row != dst_row or abs(src_col - dst_col) != 1:
            raise InterconnectError(
                f"PEs {src} and {dst} are not row-adjacent"
            )
        if latency != NEIGHBOR_LATENCY:
            raise InterconnectError(
                f"neighbour link latency is {NEIGHBOR_LATENCY}, got {latency}"
            )
        self.transfers += 1


@dataclass
class RowBus:
    """One row's shared, pipelined bus: a single grant per cycle."""

    row: int
    granted_cycles: Set[int] = field(default_factory=set)

    def carry(self, start: int, latency: int):
        if latency != ROW_BUS_LATENCY:
            raise InterconnectError(
                f"row bus latency is {ROW_BUS_LATENCY}, got {latency}"
            )
        if start in self.granted_cycles:
            raise InterconnectError(
                f"row bus {self.row} double-granted at cycle {start}"
            )
        self.granted_cycles.add(start)

    @property
    def transfers(self) -> int:
        return len(self.granted_cycles)


@dataclass
class TreeBus:
    """The hierarchical bus across rows, with per-node reduction ALUs.

    Pipelined: one new transfer may enter per cycle; latency grows with
    ``2 * ceil(log2(rows))`` as the message climbs and descends.
    """

    rows: int
    issued_cycles: Set[int] = field(default_factory=set)
    reductions: int = 0

    @property
    def levels(self) -> int:
        return max(1, math.ceil(math.log2(max(2, self.rows))))

    def carry(self, start: int, latency: int):
        expected = tree_bus_latency(self.rows)
        if latency != expected:
            raise InterconnectError(
                f"tree bus latency for {self.rows} rows is {expected}, "
                f"got {latency}"
            )
        if start in self.issued_cycles:
            raise InterconnectError(
                f"tree bus double-issued at cycle {start}"
            )
        self.issued_cycles.add(start)

    def reduce(self, partials: List[float], op: str = "sum") -> float:
        """A sigma/pi reduction performed by the tree's ALUs."""
        self.reductions += 1
        if op == "sum":
            return float(sum(partials))
        if op == "prod":
            out = 1.0
            for p in partials:
                out *= p
            return out
        raise InterconnectError(f"tree ALUs support sum/pi, not {op!r}")

    @property
    def transfers(self) -> int:
        return len(self.issued_cycles)


@dataclass
class InterconnectFabric:
    """All three levels for one thread's PE allocation."""

    grid: PeGrid
    neighbors: NeighborLinks = None
    row_buses: Dict[int, RowBus] = None
    tree: TreeBus = None

    def __post_init__(self):
        self.neighbors = NeighborLinks(self.grid)
        self.row_buses = {r: RowBus(r) for r in range(self.grid.rows)}
        self.tree = TreeBus(self.grid.rows)

    def traffic_summary(self) -> Dict[str, int]:
        return {
            "neighbor": self.neighbors.transfers,
            "row_bus": sum(b.transfers for b in self.row_buses.values()),
            "tree_bus": self.tree.transfers,
        }


def replay_transfers(schedule: Schedule) -> InterconnectFabric:
    """Re-execute every scheduled transfer on the structural fabric.

    Raises :class:`InterconnectError` if any transfer claims a resource
    inconsistent with the topology (wrong latency, non-adjacent neighbour
    hop, double grant). Returns the fabric with traffic counters.
    """
    fabric = InterconnectFabric(schedule.grid)
    for t in sorted(schedule.transfers, key=lambda x: x.start):
        if t.resource == "neighbor":
            fabric.neighbors.carry(t.src_pe, t.dst_pe, t.start, t.latency)
        elif t.resource.startswith("row_bus:"):
            row = int(t.resource.split(":")[1])
            src_row, _ = schedule.grid.position(t.src_pe)
            if row != src_row:
                raise InterconnectError(
                    f"transfer from PE {t.src_pe} (row {src_row}) booked "
                    f"row bus {row}"
                )
            fabric.row_buses[row].carry(t.start, t.latency)
        elif t.resource == "tree_bus":
            src_row, _ = schedule.grid.position(t.src_pe)
            dst_row, _ = schedule.grid.position(t.dst_pe)
            if src_row == dst_row:
                raise InterconnectError(
                    "same-row transfer routed over the tree bus"
                )
            fabric.tree.carry(t.start, t.latency)
        else:
            raise InterconnectError(f"unknown resource {t.resource!r}")
    return fabric
