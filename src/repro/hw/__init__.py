"""CoSMIC template architecture: chip specs, PEs, and cycle simulators."""

from .accelerator import (
    MimdBatchResult,
    MimdTimingModel,
    ThreadRunResult,
    ThreadSimulator,
)
from .interconnect import (
    InterconnectError,
    InterconnectFabric,
    NeighborLinks,
    RowBus,
    TreeBus,
    replay_transfers,
)
from .memory import Dram, MemoryInterface, PrefetchBuffer, Shifter
from .node import NodeAccelerator, NodeResult
from .pe import PIPELINE_DEPTH, PIPELINE_STAGES, Pe, PeBuffers
from .spec import FPGA, PASIC, PASIC_F, PASIC_G, XILINX_VU9P, ChipSpec

__all__ = [
    "ChipSpec",
    "Dram",
    "FPGA",
    "InterconnectError",
    "InterconnectFabric",
    "NeighborLinks",
    "RowBus",
    "TreeBus",
    "replay_transfers",
    "MemoryInterface",
    "NodeAccelerator",
    "NodeResult",
    "PrefetchBuffer",
    "Shifter",
    "MimdBatchResult",
    "MimdTimingModel",
    "PASIC",
    "PASIC_F",
    "PASIC_G",
    "PIPELINE_DEPTH",
    "PIPELINE_STAGES",
    "Pe",
    "PeBuffers",
    "ThreadRunResult",
    "ThreadSimulator",
    "XILINX_VU9P",
]
