"""Acceleration-platform specifications (Table 2 of the paper).

The Planner consumes a :class:`ChipSpec` — "a high-level specification of
the FPGAs, which includes the number of DSP units, the off-chip memory
bandwidth, the number of on-chip Block RAMs (BRAMs), and the size of each
BRAM" (Section 4.4) — and shapes the template architecture to it. P-ASICs
are described by an explicit PE budget instead of DSP slices.

Consistency note: Table 2 says P-ASIC-F "matches the compute resources and
off-chip bandwidth of the FPGA" with 768 PEs. We therefore model a PE ALU
as consuming 8 DSP slices (a 32-bit multiply-add plus operand muxing), so
the VU9P's 6840 DSPs yield 855 PEs, of which a 16-column x 48-row template
uses 768 — matching P-ASIC-F exactly, and matching Figure 16's maximum of
48 rows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

FPGA = "fpga"
PASIC = "pasic"


@dataclass(frozen=True)
class ChipSpec:
    """Resources of one accelerator chip.

    Attributes:
        name: display name.
        kind: :data:`FPGA` or :data:`PASIC`.
        frequency_hz: accelerator clock.
        dsp_slices: DSP budget (FPGA); a PE's ALU consumes ``dsp_per_pe``.
        dsp_per_pe: DSP slices per PE ALU.
        explicit_pes: PE budget for P-ASICs (overrides the DSP-derived one).
        bandwidth_bytes: off-chip memory bandwidth in bytes/second.
        word_bytes: data word size.
        bram_count/bram_bytes: on-chip storage blocks (buffer capacity).
        max_rows: cap on PE rows (floorplanning/BRAM-column limit; 48 for
            the UltraScale+ VU9P per Figure 16).
        columns_override: fixed column count for P-ASICs, whose geometry is
            frozen at tape-out rather than derived from bandwidth.
        luts/flip_flops: reconfigurable-fabric budgets (Table 3 reporting).
        tdp_watts: board power for Performance-per-Watt (Figure 11).
        technology_nm: process node (documentation only).
    """

    name: str
    kind: str
    frequency_hz: float
    bandwidth_bytes: float
    tdp_watts: float
    dsp_slices: int = 0
    dsp_per_pe: int = 8
    explicit_pes: int = 0
    word_bytes: int = 4
    bram_count: int = 2160
    bram_bytes: int = 4608
    max_rows: int = 48
    columns_override: int = 0
    luts: int = 0
    flip_flops: int = 0
    technology_nm: int = 0

    @property
    def max_pes(self) -> int:
        """Total PE budget on the chip."""
        if self.explicit_pes:
            return self.explicit_pes
        return self.dsp_slices // self.dsp_per_pe

    @property
    def words_per_cycle(self) -> int:
        """Off-chip words deliverable per accelerator cycle."""
        words = self.bandwidth_bytes / (self.word_bytes * self.frequency_hz)
        return max(1, int(words))

    @property
    def columns(self) -> int:
        """PE columns: "the number of words that can be fetched in parallel
        from memory" (Section 4.4), or the frozen P-ASIC geometry."""
        if self.columns_override:
            return self.columns_override
        return min(self.words_per_cycle, max(1, self.max_pes))

    @property
    def row_max(self) -> int:
        """Planner's ``row_max = #DSPs / #columns`` capped by floorplan."""
        return max(1, min(self.max_rows, self.max_pes // self.columns))

    @property
    def onchip_bytes(self) -> int:
        """Total on-chip buffer capacity."""
        return self.bram_count * self.bram_bytes

    def scaled(self, **overrides) -> "ChipSpec":
        """A copy with some fields replaced (resource sweeps, Fig. 15)."""
        return replace(self, **overrides)


#: Xilinx Virtex UltraScale+ VU9P, synthesised at 150 MHz (Section 7.1),
#: streaming from DRAM over one AXI-4 channel (9.6 GB/s effective).
XILINX_VU9P = ChipSpec(
    name="UltraScale+ VU9P",
    kind=FPGA,
    frequency_hz=150e6,
    bandwidth_bytes=9.6e9,
    tdp_watts=42.0,
    dsp_slices=6840,
    dsp_per_pe=8,
    bram_count=2160,
    bram_bytes=4608,  # 9720 KB total, the Table 3 BRAM budget
    max_rows=48,
    luts=1_182_240,
    flip_flops=2_364_480,
    technology_nm=16,
)

#: P-ASIC-F: matches the FPGA's PE count and off-chip bandwidth but runs
#: at 1 GHz (Table 2: 768 PEs, 29 mm^2, 11 W, 45 nm).
PASIC_F = ChipSpec(
    name="P-ASIC-F",
    kind=PASIC,
    frequency_hz=1e9,
    bandwidth_bytes=9.6e9,
    tdp_watts=11.0,
    explicit_pes=768,
    max_rows=48,
    columns_override=16,
    bram_count=2160,
    bram_bytes=4608,
    technology_nm=45,
)

#: P-ASIC-G: matches the GPU's PE count, with the highest off-chip
#: bandwidth a 45 nm DDR-based board sustains on streaming reads
#: (~1/3 of the K40's GDDR5 peak; a 105 mm^2 45 nm die cannot host the
#: GPU's 384-bit GDDR5 PHY). This realisable-bandwidth reading of
#: Table 2 reproduces Figure 10's average compute gain.
PASIC_G = ChipSpec(
    name="P-ASIC-G",
    kind=PASIC,
    frequency_hz=1e9,
    bandwidth_bytes=96e9,
    tdp_watts=37.0,
    explicit_pes=2880,
    max_rows=45,
    columns_override=64,
    bram_count=4320,
    bram_bytes=4608,
    technology_nm=45,
)
