"""The programmable memory interface (Section 5.2, Figure 5).

Executes the Compiler-generated :class:`MemorySchedule` word by word: the
DRAM model serves ``columns`` words per cycle, the Shifter rotates each
burst onto the PE lanes it is destined for, the Prefetch Buffer stages
the next sample while the current one computes, and the Thread Index
Table redirects the *shared* schedule to each worker thread's PE block
and memory region.

The delivery cycles this model produces are exactly the arrival gates the
static scheduler assumed (``repro.compiler.scheduling``); a test pins the
two together so the schedule and the hardware can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..compiler.memsched import READ, WRITE, MemorySchedule, ThreadIndexEntry
from ..compiler.program import CompiledProgram
from ..compiler.scheduling import SHIFTER_LATENCY
from ..dfg import ir


@dataclass
class Dram:
    """A word-addressed backing store holding the training partition."""

    words: np.ndarray

    @classmethod
    def from_samples(cls, samples: Sequence[np.ndarray]) -> "Dram":
        """Lay out samples back to back, exactly as the host driver does
        (no padding — the Shifter absorbs misalignment)."""
        return cls(np.concatenate([np.ravel(s) for s in samples]))

    def read(self, addr: int, size: int) -> np.ndarray:
        if addr < 0 or addr + size > len(self.words):
            raise IndexError(
                f"DRAM read [{addr}, {addr + size}) outside "
                f"[0, {len(self.words)})"
            )
        return self.words[addr : addr + size]

    @property
    def size_words(self) -> int:
        return len(self.words)


class Shifter:
    """Aligns an incoming burst with the destination PE lanes.

    A burst fetched at an arbitrary word address lands on lanes
    ``addr % columns .. ``; the destination row expects it on lanes
    ``0 ..``. The shifter rotates by the difference in ``SHIFTER_LATENCY``
    cycles, so off-chip bandwidth is never wasted on padding.
    """

    def __init__(self, columns: int):
        if columns < 1:
            raise ValueError("need at least one column")
        self.columns = columns
        self.rotations = 0

    def align(
        self, burst: np.ndarray, source_lane: int, target_lane: int = 0
    ) -> List[Optional[float]]:
        """Place ``burst`` (fetched starting at ``source_lane``) onto
        lanes starting at ``target_lane``; empty lanes read None."""
        if len(burst) > self.columns:
            raise ValueError("burst wider than the lane count")
        lanes: List[Optional[float]] = [None] * self.columns
        shift = (target_lane - source_lane) % self.columns
        if shift:
            self.rotations += 1
        for offset, word in enumerate(burst):
            lanes[(source_lane + offset + shift) % self.columns] = float(word)
        return lanes

    @property
    def latency(self) -> int:
        return SHIFTER_LATENCY


@dataclass
class PrefetchBuffer:
    """Double-buffering stage between DRAM and the PE array.

    Stores the next sample's words while the current one computes; the
    MIMD timing model relies on this overlap. Capacity is in words; a
    put beyond capacity raises, which the Planner's sizing must prevent.
    """

    capacity_words: int
    _staged: List[Tuple[int, float]] = field(default_factory=list)
    peak_words: int = 0

    def put(self, vid: int, word: float):
        if len(self._staged) + 1 > self.capacity_words:
            raise OverflowError("prefetch buffer overrun")
        self._staged.append((vid, word))
        self.peak_words = max(self.peak_words, len(self._staged))

    def drain(self) -> List[Tuple[int, float]]:
        staged, self._staged = self._staged, []
        return staged

    @property
    def occupancy(self) -> int:
        return len(self._staged)


DeliverFn = Callable[[int, int, float], None]
"""(pe_index, value_id, word) -> None: write into a PE buffer."""


class MemoryInterface:
    """Executes a compiled program's memory schedule for one thread.

    ``thread`` selects a row of the Thread Index Table: the same schedule
    then reads from that thread's memory region and writes to its PE
    block (Base PE Index + PE Offset).
    """

    def __init__(
        self,
        program: CompiledProgram,
        thread_table: Optional[List[ThreadIndexEntry]] = None,
        thread: int = 0,
    ):
        self._program = program
        self._columns = program.grid.columns
        self.shifter = Shifter(self._columns)
        self.prefetch = PrefetchBuffer(
            capacity_words=max(16, 2 * program.memory.sample_words)
        )
        if thread_table is None:
            thread_table = [ThreadIndexEntry(0, 0, 0)]
        if not 0 <= thread < len(thread_table):
            raise ValueError(f"no thread {thread} in the index table")
        self._entry = thread_table[thread]

    @property
    def schedule(self) -> MemorySchedule:
        return self._program.memory

    # -- phases --------------------------------------------------------------
    def preload_model(
        self, model_words: Dict[int, float], deliver: DeliverFn
    ) -> int:
        """Broadcast model parameters to the thread's PEs.

        ``model_words`` maps scalar value id -> word. Returns the cycle at
        which the preload finishes.
        """
        mapping = self._program.mapping
        elements = self._program.expansion.input_elements(ir.MODEL)
        cursor = 0
        cycles = 0
        for entry in self.schedule.preload:
            if entry.direction != READ or not entry.broadcast:
                raise ValueError("model preload must be broadcast reads")
            for _, _, vid in elements[cursor : cursor + entry.size]:
                pe = mapping.pe_of_value[vid] + self._entry.pe_offset
                deliver(pe, vid, model_words[vid])
            cursor += entry.size
            cycles += 1  # one burst per cycle
        if cursor != len(elements):
            raise ValueError("preload schedule does not cover the model")
        return cycles + self.shifter.latency

    def stream_sample(
        self, dram: Dram, sample_index: int, deliver: DeliverFn
    ) -> Dict[int, int]:
        """Stream one training vector from DRAM into the PE buffers.

        Returns value id -> delivery cycle (relative to the stream start),
        which by construction equals the arrival gates the static
        scheduler assumed.
        """
        mapping = self._program.mapping
        elements = self._program.expansion.input_elements(ir.DATA)
        sample_words = len(elements)
        base_addr = self._entry.mem_addr + sample_index * sample_words
        arrivals: Dict[int, int] = {}
        cursor = 0
        cycle = 0
        for entry in self.schedule.per_sample:
            if entry.direction != READ:
                raise ValueError("sample streaming entries must be reads")
            burst = dram.read(base_addr + cursor, entry.size)
            lanes = self.shifter.align(
                burst, source_lane=(base_addr + cursor) % self._columns
            )
            burst_elements = elements[cursor : cursor + entry.size]
            cycle += 1
            for offset, (_, _, vid) in enumerate(burst_elements):
                word = lanes[(cursor + offset) % self._columns]
                assert word is not None
                self.prefetch.put(vid, word)
                pe = mapping.pe_of_value[vid] + self._entry.pe_offset
                deliver(pe, vid, word)
                arrivals[vid] = cycle + self.shifter.latency
            cursor += entry.size
        self.prefetch.drain()
        if cursor != sample_words:
            raise ValueError("sample schedule does not cover the vector")
        return arrivals

    def drain_gradients(
        self, read_word: Callable[[int, int], float]
    ) -> Dict[int, float]:
        """Execute the WRITE phase: collect the thread's partial gradient
        from the PE buffers for the host to aggregate.

        ``read_word(pe_index, value_id) -> word`` reads a PE interim
        buffer. Returns value id -> word in drain (burst) order.
        """
        dfg = self._program.expansion.dfg
        mapping = self._program.mapping
        grads = dfg.gradient_outputs()
        drained: Dict[int, float] = {}
        cursor = 0
        for entry in self.schedule.drain:
            if entry.direction != WRITE:
                raise ValueError("gradient drain entries must be writes")
            for value in grads[cursor : cursor + entry.size]:
                pe = (
                    mapping.pe_of_node[value.producer]
                    + self._entry.pe_offset
                )
                drained[value.vid] = read_word(pe, value.vid)
            cursor += entry.size
        if cursor != len(grads):
            raise ValueError("drain schedule does not cover the gradient")
        return drained
