"""One accelerator card processing one node's data partition (Figure 1).

``NodeAccelerator`` is the per-node compute object of the execution flow:
the node's partition ``D_i`` is divided into equal sub-partitions
``D_i1..D_im`` for the worker threads; each thread evaluates the gradient
DFG over its sub-partition; the tree-bus ALUs fold the thread partials
into the node's locally-aggregated partial update; and the MIMD timing
model prices the whole pass, memory streaming included.

Functionally the per-thread evaluation uses the batch interpreter (which
tests pin against the cycle-level :class:`ThreadSimulator`), so the node
really computes the numbers it would in hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

import numpy as np

from ..dfg.interpreter import Interpreter
from ..dfg.translate import Translation
from ..planner.plan import AcceleratorPlan
from .accelerator import MimdBatchResult, MimdTimingModel


@dataclass
class NodeResult:
    """Outcome of one partition pass on one accelerator."""

    partials: Dict[str, np.ndarray]  # node-level aggregated gradients
    samples: int
    timing: MimdBatchResult
    seconds: float
    thread_samples: Dict[int, int]

    @property
    def cycles(self) -> int:
        return self.timing.total_cycles


class NodeAccelerator:
    """The multi-threaded accelerator of one Delta/Sigma node."""

    def __init__(
        self,
        translation: Translation,
        plan: AcceleratorPlan,
        stream_words_per_sample: Optional[float] = None,
    ):
        self._translation = translation
        self._interp = Interpreter(translation.dfg)
        self.plan = plan
        self.threads = plan.design.threads
        words = (
            stream_words_per_sample
            if stream_words_per_sample is not None
            else plan.data_words_per_sample
        )
        self._timing = MimdTimingModel(
            threads=self.threads,
            compute_cycles=int(math.ceil(plan.cycles_per_sample)),
            sample_words=int(math.ceil(words)),
            columns=plan.design.columns,
            preload_words=plan.model_words,
            drain_words=plan.gradient_words,
        )

    def process_partition(
        self,
        feeds: Mapping[str, np.ndarray],
        model: Mapping[str, np.ndarray],
    ) -> NodeResult:
        """Evaluate the node's partial update over a data partition.

        Args:
            feeds: DATA inputs with a leading sample axis (the partition).
            model: current MODEL parameters (broadcast to every thread).
        """
        samples = _sample_count(feeds)
        if samples < 1:
            raise ValueError("partition must contain at least one sample")
        shards = np.array_split(np.arange(samples), self.threads)
        spec = self._translation.aggregator
        thread_partials = []
        thread_samples: Dict[int, int] = {}
        for thread, shard in enumerate(shards):
            thread_samples[thread] = len(shard)
            if len(shard) == 0:
                continue
            shard_feeds = {k: np.asarray(v)[shard] for k, v in feeds.items()}
            grads = self._interp.gradients(
                {**shard_feeds, **model}, batch=True
            )
            thread_partials.append(
                {k: v.mean(axis=0) for k, v in grads.items()}
            )
        # Local aggregation on the tree-bus ALUs (Figure 1): the node
        # ships one partial, not one per thread.
        partials: Dict[str, np.ndarray] = {}
        for name in thread_partials[0]:
            stack = np.stack([p[name] for p in thread_partials])
            if spec.kind == "sum":
                partials[name] = stack.sum(axis=0)
            else:
                partials[name] = stack.mean(axis=0)
        timing = self._timing.run_batch(samples)
        seconds = timing.total_cycles / self.plan.chip.frequency_hz
        return NodeResult(
            partials=partials,
            samples=samples,
            timing=timing,
            seconds=seconds,
            thread_samples=thread_samples,
        )

    def seconds_for(self, samples: int) -> float:
        """Timing-only query (used by the cluster simulation)."""
        timing = self._timing.run_batch(samples)
        return timing.total_cycles / self.plan.chip.frequency_hz


def _sample_count(feeds: Mapping[str, np.ndarray]) -> int:
    counts = {np.asarray(v).shape[0] for v in feeds.values()}
    if len(counts) != 1:
        raise ValueError("all partition feeds must share one sample axis")
    return counts.pop()
