"""CoSMIC circuit layer: the Constructor and microcode encoding."""

from .constructor import RtlDesign, construct, opcode_of
from .microcode import MicroOp, decode, encode_microcode
from .testbench import generate_testbench, golden_vectors

__all__ = [
    "MicroOp",
    "RtlDesign",
    "construct",
    "generate_testbench",
    "golden_vectors",
    "decode",
    "encode_microcode",
    "opcode_of",
]
