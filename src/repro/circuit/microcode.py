"""Microcode encoding for P-ASIC targets (Section 4.5).

For P-ASICs "the mapping is converted to microcodes": each scheduled
operation becomes one micro-op word carrying the opcode, the target PE,
the issue cycle, and operand routing hints. A taped-out chip executes any
DSL-expressible algorithm by loading a new ROM image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class MicroOp:
    """One micro-instruction of the P-ASIC control store."""

    cycle: int
    pe: int
    opcode: int
    op_name: str
    src_pes: tuple
    writes_gradient: bool

    def encode(self) -> int:
        """Pack into a 64-bit word: |cycle:24|pe:16|opcode:8|flags:16|."""
        flags = 1 if self.writes_gradient else 0
        return (
            (self.cycle & 0xFFFFFF) << 40
            | (self.pe & 0xFFFF) << 24
            | (self.opcode & 0xFF) << 16
            | (flags & 0xFFFF)
        )


def decode(word: int) -> dict:
    """Unpack a 64-bit micro-op word (inverse of :meth:`MicroOp.encode`)."""
    return {
        "cycle": (word >> 40) & 0xFFFFFF,
        "pe": (word >> 24) & 0xFFFF,
        "opcode": (word >> 16) & 0xFF,
        "writes_gradient": bool(word & 1),
    }


def encode_microcode(program) -> List[MicroOp]:
    """Linearise a compiled program into the microcode stream."""
    from .constructor import opcode_of  # local import: avoids a cycle

    dfg = program.expansion.dfg
    micro: List[MicroOp] = []
    ordered = sorted(program.schedule.ops.values(), key=lambda op: op.start)
    for op in ordered:
        node = dfg.nodes[op.nid]
        srcs = tuple(
            sorted(
                {
                    program.mapping.pe_of_value[vid]
                    for vid in node.inputs
                    if vid in program.mapping.pe_of_value
                }
            )
        )
        micro.append(
            MicroOp(
                cycle=op.start,
                pe=op.pe,
                opcode=opcode_of(node.op),
                op_name=node.op,
                src_pes=srcs,
                writes_gradient=dfg.values[node.output].is_gradient,
            )
        )
    return micro
