"""TABLA baseline: the prior single-node template generator (Figure 17).

TABLA differs from CoSMIC's architecture layer in exactly the two ways
Section 7.2 identifies, and both are modelled structurally rather than as
fudge factors:

* **single-threaded**: one instance of the learning algorithm owns every
  PE, so throughput is bounded by the DFG's own fine-grained parallelism;
* **flat shared bus + ops-first mapping**: reduction partials serialise
  over one bus (cost linear in PE count, vs CoSMIC's logarithmic tree),
  and mapping operations before data leaves operand reads crossing PEs.

Running TABLA's generator on the same UltraScale+ budget therefore uses
the same PE count but markedly lower throughput on large chips — the
3.9x average gap of Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..dfg import ir
from ..hw.spec import ChipSpec, XILINX_VU9P
from ..planner.estimator import FLAT, CostParams, estimate_thread_cycles
from ..planner.plan import AcceleratorPlan, DesignPoint, Planner

#: The cost-model knobs that *are* TABLA: flat shared bus, operations-
#: first mapping, no prefetch buffer (streaming serialises with compute),
#: no shifter (padding/marshaling waste on every burst).
TABLA_PARAMS = CostParams(
    interconnect=FLAT,
    mapping="ops_first",
    overlap_stream=False,
    stream_efficiency=0.7,
)


@dataclass
class TablaModel:
    """TABLA-generated accelerator on a given chip."""

    chip: ChipSpec = field(default_factory=lambda: XILINX_VU9P)

    def plan(
        self,
        dfg: ir.Dfg,
        minibatch: int = 10_000,
        density: Optional[Mapping[str, float]] = None,
        pes: Optional[int] = None,
    ) -> AcceleratorPlan:
        """Best single-threaded plan on the chip.

        TABLA has no multi-threading, so its design space is only the row
        count of the one thread; we sweep it ("we modify the templates for
        UltraScale+ and perform design space exploration to present the
        best results with TABLA", Section 7.2). Passing ``pes`` pins the
        allocation instead.
        """
        columns = self.chip.columns
        planner = Planner(self.chip, TABLA_PARAMS)
        if pes is not None:
            rows = max(1, pes // columns)
            point = DesignPoint(threads=1, rows_per_thread=rows, columns=columns)
            return planner.evaluate(dfg, point, minibatch, density)
        best: Optional[AcceleratorPlan] = None
        rows = 1
        options = []
        while rows < self.chip.row_max:
            options.append(rows)
            rows *= 2
        options.append(self.chip.row_max)
        for rows in options:
            point = DesignPoint(threads=1, rows_per_thread=rows, columns=columns)
            plan = planner.evaluate(dfg, point, minibatch, density)
            if best is None or plan.seconds_for(minibatch) < best.seconds_for(
                minibatch
            ):
                best = plan
        assert best is not None
        return best

    def samples_per_second(
        self,
        dfg: ir.Dfg,
        minibatch: int = 10_000,
        density: Optional[Mapping[str, float]] = None,
        pes: Optional[int] = None,
    ) -> float:
        return self.plan(dfg, minibatch, density, pes).samples_per_second


def cosmic_vs_tabla_speedup(
    dfg: ir.Dfg,
    chip: ChipSpec = XILINX_VU9P,
    minibatch: int = 10_000,
    density: Optional[Mapping[str, float]] = None,
) -> float:
    """Throughput ratio with the same FPGA compute resources (Figure 17).

    Both generators target the whole UltraScale+ fabric: CoSMIC splits it
    into worker threads, TABLA's single thread spans it — "while both
    CoSMIC and TABLA use the same number of FPGA compute resources, the
    gap in performance shows that CoSMIC uses [them] more efficiently".
    """
    cosmic = Planner(chip).plan(dfg, minibatch, density)
    tabla = TablaModel(chip).plan(dfg, minibatch, density)
    return cosmic.samples_per_second / tabla.samples_per_second


def tabla_thread_cycles(
    dfg: ir.Dfg, n_pe: int, rows: int,
    density: Optional[Mapping[str, float]] = None,
):
    """Per-sample cycles under TABLA's interconnect/mapping model."""
    return estimate_thread_cycles(dfg, n_pe, rows, TABLA_PARAMS, density)
