"""Analytic model of the Spark 2.1 + MLlib baseline (Section 7.1).

Spark's per-iteration time decomposes into:

* **compute** — the mini-batch gradient over each node's partition at the
  MLlib-sustained FLOP rate, plus a per-record JVM cost;
* **scheduling** — driver job/stage bookkeeping and task launches, a fixed
  tax every iteration pays regardless of cluster size;
* **aggregation** — ``treeAggregate`` of the gradient (serialisation +
  wire time per level, log2(nodes) levels);
* **broadcast** — shipping the updated model back out.

The fixed taxes are why Spark scales 1.8x from 4 to 16 nodes while CoSMIC
scales 2.7x (Figure 8): compute divides by the node count, the taxes
don't.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..ml.benchmarks import Benchmark
from ..ml.models import flops_per_sample
from . import calibration as cal


@dataclass
class SparkIteration:
    """Per-iteration time breakdown for the Spark system."""

    compute_s: float
    scheduling_s: float
    aggregation_s: float
    broadcast_s: float

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.scheduling_s
            + self.aggregation_s
            + self.broadcast_s
        )


@dataclass
class SparkModel:
    """A Spark cluster running MLlib mini-batch gradient descent."""

    nodes: int
    cpu: cal.CpuSpec = field(default_factory=lambda: cal.XEON_E3)
    network_bps: float = 1e9

    def __post_init__(self):
        if self.nodes < 1:
            raise ValueError("cluster needs at least one node")

    # -- components ----------------------------------------------------------
    def compute_seconds(self, bench: Benchmark, samples_per_node: int) -> float:
        """Gradient computation on one node's partition."""
        flops = samples_per_node * flops_per_sample(bench.algorithm, bench.dims)
        efficiency = cal.SPARK_EFFICIENCY[bench.algorithm]
        arithmetic = flops / (self.cpu.peak_flops * efficiency)
        # Streaming the partition through the cache hierarchy.
        bytes_in = samples_per_node * bench.bytes_per_sample()
        memory = bytes_in / self.cpu.memory_bandwidth_bytes
        per_record = (
            samples_per_node
            * cal.SPARK_PER_SAMPLE_OVERHEAD_S[bench.algorithm]
        )
        return max(arithmetic, memory) + per_record

    def scheduling_seconds(self) -> float:
        tasks = self.cpu.cores * cal.SPARK_TASKS_PER_CORE
        return cal.SPARK_JOB_OVERHEAD_S + tasks * cal.SPARK_TASK_OVERHEAD_S

    def aggregation_seconds(self, bench: Benchmark) -> float:
        """treeAggregate: log2(nodes) levels of serialise + transfer + add."""
        model_bytes = bench.model_bytes()
        levels = max(1, math.ceil(math.log2(max(2, self.nodes))))
        per_level = (
            model_bytes / cal.SPARK_SERIALIZATION_BYTES_PER_S
            + model_bytes * 8.0 / self.network_bps
        )
        return levels * per_level

    def broadcast_seconds(self, bench: Benchmark) -> float:
        """Torrent broadcast of the updated model."""
        model_bytes = bench.model_bytes()
        levels = max(1, math.ceil(math.log2(max(2, self.nodes))))
        return levels * (
            model_bytes / cal.SPARK_SERIALIZATION_BYTES_PER_S
            + model_bytes * 8.0 / self.network_bps
        )

    # -- aggregate -----------------------------------------------------------
    def iteration(
        self, bench: Benchmark, global_minibatch: int
    ) -> SparkIteration:
        """One MLlib gradient-descent iteration over ``global_minibatch``
        samples drawn across the whole RDD (``miniBatchFraction``
        semantics: the batch is global, so per-node work shrinks with the
        cluster, but the per-iteration scheduling/aggregation taxes do
        not)."""
        per_node = max(1, global_minibatch // self.nodes)
        return SparkIteration(
            compute_s=self.compute_seconds(bench, per_node),
            scheduling_s=self.scheduling_seconds(),
            aggregation_s=self.aggregation_seconds(bench),
            broadcast_s=self.broadcast_seconds(bench),
        )

    def epoch_seconds(
        self, bench: Benchmark, global_minibatch: int = 10_000
    ) -> float:
        """One pass over the benchmark's full training set.

        Unlike CoSMIC — whose ``b`` is *local* data per aggregation, so
        its iteration count drops as nodes are added — MLlib's iteration
        count per epoch is ``dataset / global_minibatch`` regardless of
        cluster size. This semantic difference is a real property of the
        two systems and drives the Figure 8 scalability gap.
        """
        full, remainder = divmod(bench.input_vectors, global_minibatch)
        seconds = 0.0
        if full:
            seconds += full * self.iteration(bench, global_minibatch).total_s
        if remainder or not full:
            seconds += self.iteration(bench, max(1, remainder)).total_s
        return seconds
