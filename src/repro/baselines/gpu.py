"""Roofline model of the GPU-accelerated CoSMIC nodes (Section 7.1).

The GPU system reuses CoSMIC's runtime (Spark has no GPU support), so only
the per-node compute model differs: a Tesla K40c roofline over FLOPs,
device-memory bandwidth, and — decisive for the streaming workloads whose
training sets exceed the 12 GB device memory — PCIe ingest bandwidth.
That ingest ceiling is why the GPU's compute advantage over the FPGA is
modest (1.9x average) outside the GEMM-heavy backpropagation benchmarks
(20.3x on mnist), Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ml.benchmarks import Benchmark
from ..ml.models import flops_per_sample
from . import calibration as cal


@dataclass
class GpuModel:
    """One GPU-equipped node's accelerator compute model."""

    spec: cal.GpuSpec = field(default_factory=lambda: cal.TESLA_K40C)

    def dataset_resident(self, bench: Benchmark) -> bool:
        """True if the training partition fits in device memory."""
        budget = self.spec.memory_bytes * cal.GPU_RESIDENT_FRACTION
        return bench.data_gb * 1e9 <= budget

    def compute_seconds(self, bench: Benchmark, samples: int) -> float:
        """Roofline time to process ``samples`` training vectors."""
        flops = samples * flops_per_sample(bench.algorithm, bench.dims)
        efficiency = cal.GPU_EFFICIENCY[bench.algorithm]
        arithmetic = flops / (self.spec.peak_flops * efficiency)
        arithmetic += samples * cal.GPU_PER_SAMPLE_OVERHEAD_S[bench.algorithm]
        bytes_in = samples * bench.bytes_per_sample()
        memory = bytes_in / self.spec.memory_bandwidth_bytes
        ingest = 0.0
        if not self.dataset_resident(bench):
            ingest = bytes_in / self.spec.pcie_bandwidth_bytes
        return max(arithmetic, memory, ingest) + self.spec.kernel_launch_s

    def samples_per_second(self, bench: Benchmark) -> float:
        probe = 100_000
        return probe / self.compute_seconds(bench, probe)

    def node_power_watts(self, host_tdp: float = 80.0) -> float:
        """System power of one GPU node (host CPU + accelerator)."""
        return host_tdp + self.spec.tdp_watts
