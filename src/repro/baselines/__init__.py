"""Comparison systems: Spark+MLlib, GPU nodes, and TABLA."""

from . import calibration
from .calibration import TESLA_K40C, XEON_E3, CpuSpec, GpuSpec
from .gpu import GpuModel
from .spark import SparkIteration, SparkModel
from .tabla import (
    TABLA_PARAMS,
    TablaModel,
    cosmic_vs_tabla_speedup,
    tabla_thread_cycles,
)

__all__ = [
    "CpuSpec",
    "GpuModel",
    "GpuSpec",
    "SparkIteration",
    "SparkModel",
    "TABLA_PARAMS",
    "TESLA_K40C",
    "TablaModel",
    "XEON_E3",
    "calibration",
    "cosmic_vs_tabla_speedup",
    "tabla_thread_cycles",
]
