"""Calibration constants for the baseline performance models.

Every constant the Spark/GPU/CPU models use lives here, with its
provenance. Nothing in this module is tuned per-figure: the same numbers
feed every experiment, and EXPERIMENTS.md reports where the resulting
shapes land relative to the paper.

Hardware numbers come from Table 2; software-efficiency factors are the
one set of free parameters, chosen once to be consistent with published
MLlib/cuDNN behaviour (dense BLAS runs at a modest fraction of peak under
the JVM; per-record costs dominate for tiny sparse updates).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuSpec:
    """Intel Xeon E3-1275 v5 (Table 2)."""

    name: str = "Xeon E3-1275 v5"
    cores: int = 4
    frequency_hz: float = 3.6e9
    #: AVX2 FMA: 16 DP FLOPs/cycle/core.
    flops_per_cycle_per_core: float = 16.0
    memory_bandwidth_bytes: float = 34e9
    tdp_watts: float = 80.0

    @property
    def peak_flops(self) -> float:
        return self.cores * self.frequency_hz * self.flops_per_cycle_per_core


XEON_E3 = CpuSpec()


@dataclass(frozen=True)
class GpuSpec:
    """NVIDIA Tesla K40c (Table 2)."""

    name: str = "Tesla K40c"
    cores: int = 2880
    frequency_hz: float = 875e6
    peak_flops: float = 4.29e12  # single precision
    memory_bandwidth_bytes: float = 288e9
    memory_bytes: float = 12e9
    pcie_bandwidth_bytes: float = 12e9  # PCIe 3.0 x16 effective
    kernel_launch_s: float = 10e-6
    tdp_watts: float = 235.0


TESLA_K40C = GpuSpec()


#: Fraction of CPU peak FLOPs Spark+MLlib(+OpenBLAS) sustains, by
#: algorithm. Dense GEMM through netlib/OpenBLAS does well; row-at-a-time
#: vector ops are memory-bound and JVM-overheaded; the factor-model update
#: is a scatter of tiny ops where object churn dominates.
SPARK_EFFICIENCY = {
    "backpropagation": 0.18,
    "linear_regression": 0.06,
    "logistic_regression": 0.06,
    "svm": 0.06,
    # The factor-model update is a row-gather + rank-1 scatter over the
    # entity table — cache-hostile and unvectorised under the JVM.
    "collaborative_filtering": 0.01,
}

#: JVM/iterator cost per training record in Spark's gradient loop
#: (record deserialisation, boxing, sampling, closure dispatch). Dense
#: rows pay ~27 us on top of the BLAS work; the recommender path's cost
#: is dominated by its (inefficient) factor arithmetic instead, covered
#: by SPARK_EFFICIENCY above.
SPARK_PER_SAMPLE_OVERHEAD_S = {
    "backpropagation": 27e-6,
    "linear_regression": 27e-6,
    "logistic_regression": 27e-6,
    "svm": 27e-6,
    "collaborative_filtering": 15e-6,
}

#: Driver-side job/stage scheduling + task serialisation per iteration.
SPARK_JOB_OVERHEAD_S = 0.06

#: Per-task launch cost; MLlib runs ~2 waves of tasks per core.
SPARK_TASK_OVERHEAD_S = 2.5e-3
SPARK_TASKS_PER_CORE = 2

#: Kryo-style serialisation throughput for model vectors on the wire.
SPARK_SERIALIZATION_BYTES_PER_S = 400e6


#: Fraction of GPU peak the CUDA implementations sustain, by algorithm
#: (cuBLAS GEMM vs memory-bound vector kernels vs scattered factor ops).
GPU_EFFICIENCY = {
    "backpropagation": 0.50,
    "linear_regression": 0.05,
    "logistic_regression": 0.05,
    "svm": 0.05,
    "collaborative_filtering": 0.02,
}

#: Latency floor per training record on the GPU, by algorithm. The
#: factor-model update is a gather-scatter with atomics over device
#: memory, so it carries a small per-record floor on top of its FLOPs —
#: the reason the GPU shows no advantage on the recommender benchmarks
#: (Figure 10 reports its wins only on the GEMM-heavy ones).
GPU_PER_SAMPLE_OVERHEAD_S = {
    "backpropagation": 0.0,
    "linear_regression": 0.0,
    "logistic_regression": 0.0,
    "svm": 0.0,
    "collaborative_filtering": 0.3e-6,
}

#: Fraction of device memory usable for a resident training set (the
#: rest holds the model, activations, and framework overhead).
GPU_RESIDENT_FRACTION = 0.8

#: Host-side single-thread rate for the CPU compute in the CoSMIC runtime
#: (aggregation uses the pools' rates in repro.runtime.threads).
CPU_VECTOR_BYTES_PER_S = 6e9
