"""The DSL programs for the paper's five learning algorithms.

Each function returns the textual DSL program a CoSMIC user would write
(Section 4.1) — the partial-gradient formulation, the aggregation
operator, and the mini-batch size. Dimensions stay symbolic (``n``, ``h``,
...) and are bound per benchmark at translation time.
"""

from __future__ import annotations

LINEAR_REGRESSION = """\
# Linear regression: squared-loss gradient.
minibatch = 10000;
mu = 0.01;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];

s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];

aggregator:
iterator j[0:nodes];
w[i] = sum[j](g[j, i]) / nodes;
"""

LOGISTIC_REGRESSION = """\
# Logistic regression: cross-entropy gradient through the sigmoid.
minibatch = 10000;
mu = 0.1;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];

z = sum[i](w[i] * x[i]);
p = sigmoid(z);
e = p - y;
g[i] = e * x[i];

aggregator:
iterator j[0:nodes];
w[i] = sum[j](g[j, i]) / nodes;
"""

SUPPORT_VECTOR_MACHINE = """\
# Support vector machine: hinge-loss subgradient (Equation 4).
minibatch = 10000;
mu = 0.01;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];

s = sum[i](w[i] * x[i]);
m = s * y;
g[i] = (m < 1) ? (-y * x[i]) : 0;

aggregator:
iterator j[0:nodes];
w[i] = sum[j](g[j, i]) / nodes;
"""

BACKPROPAGATION = """\
# Backpropagation for a one-hidden-layer perceptron, squared loss.
minibatch = 10000;
mu = 0.1;
model_input x[n];
model_output y[c];
model w1[n, h];
model w2[h, c];
gradient g1[n, h];
gradient g2[h, c];
iterator i[0:n];
iterator j[0:h];
iterator k[0:c];

hid[j] = sigmoid(sum[i](w1[i, j] * x[i]));
out[k] = sigmoid(sum[j](w2[j, k] * hid[j]));
d2[k] = (out[k] - y[k]) * out[k] * (1 - out[k]);
g2[j, k] = d2[k] * hid[j];
back[j] = sum[k](w2[j, k] * d2[k]);
d1[j] = back[j] * hid[j] * (1 - hid[j]);
g1[i, j] = d1[j] * x[i];

aggregator:
iterator a[0:nodes];
w1[i, j] = sum[a](g1[a, i, j]) / nodes;
w2[j, k] = sum[a](g2[a, j, k]) / nodes;
"""

COLLABORATIVE_FILTERING = """\
# Collaborative filtering: latent-factor model over one-hot
# (user, item) encodings; squared error on the observed rating.
minibatch = 10000;
mu = 0.05;
model_input xu[e];
model_input xi[e];
model_output r;
model m[e, f];
gradient g[e, f];
iterator i[0:e];
iterator k[0:f];

p[k] = sum[i](xu[i] * m[i, k]);
q[k] = sum[i](xi[i] * m[i, k]);
err = sum[k](p[k] * q[k]) - r;
g[i, k] = err * (xu[i] * q[k] + xi[i] * p[k]);

aggregator:
iterator j[0:nodes];
m[i, k] = sum[j](g[j, i, k]) / nodes;
"""

#: Algorithm name -> DSL source, the registry Table 1 draws from.
ALGORITHM_SOURCES = {
    "linear_regression": LINEAR_REGRESSION,
    "logistic_regression": LOGISTIC_REGRESSION,
    "svm": SUPPORT_VECTOR_MACHINE,
    "backpropagation": BACKPROPAGATION,
    "collaborative_filtering": COLLABORATIVE_FILTERING,
}


def source_for(algorithm: str) -> str:
    """DSL program text for one of the five paper algorithms."""
    try:
        return ALGORITHM_SOURCES[algorithm]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; choose from "
            f"{sorted(ALGORITHM_SOURCES)}"
        ) from None
