"""Synthetic dataset generators matching the Table 1 workloads.

The paper's datasets (MNIST, Netflix Prize, gene-expression microarrays,
...) are not redistributable here, so each generator produces data that is
statistically learnable with the matching algorithm and has exactly the
shapes the benchmark declares. Performance modelling depends only on
shapes and sparsity, which match Table 1; training-convergence tests only
need a recoverable signal, which every generator plants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping

import numpy as np

Feeds = Dict[str, np.ndarray]
LossFn = Callable[[Mapping[str, np.ndarray], Feeds], float]


@dataclass
class Dataset:
    """Feeds plus the metric used to track training progress."""

    feeds: Feeds
    loss: LossFn
    description: str = ""
    truth: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def samples(self) -> int:
        return next(iter(self.feeds.values())).shape[0]


def regression(
    features: int, samples: int, seed: int = 0, noise: float = 0.01
) -> Dataset:
    """Linear-regression data: y = <w*, x> + noise."""
    rng = np.random.default_rng(seed)
    true_w = rng.normal(size=features) / np.sqrt(features)
    x = rng.normal(size=(samples, features))
    y = x @ true_w + noise * rng.normal(size=samples)

    def mse(model, feeds):
        return float(np.mean((feeds["x"] @ model["w"] - feeds["y"]) ** 2))

    return Dataset(
        {"x": x, "y": y}, mse, "synthetic linear regression", {"w": true_w}
    )


def binary_classification(
    features: int,
    samples: int,
    seed: int = 0,
    labels: str = "01",
    margin: float = 0.5,
) -> Dataset:
    """Linearly separable classes for logistic regression (labels "01")
    or SVM (labels "pm", i.e. +/-1)."""
    rng = np.random.default_rng(seed)
    true_w = rng.normal(size=features) / np.sqrt(features)
    x = rng.normal(size=(samples, features))
    scores = x @ true_w + margin * np.sign(x @ true_w)
    if labels == "01":
        y = (scores > 0).astype(float)

        def loss(model, feeds):
            z = feeds["x"] @ model["w"]
            p = 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
            eps = 1e-9
            return float(
                -np.mean(
                    feeds["y"] * np.log(p + eps)
                    + (1 - feeds["y"]) * np.log(1 - p + eps)
                )
            )

    elif labels == "pm":
        y = np.sign(scores)
        y[y == 0] = 1.0

        def loss(model, feeds):
            margins = feeds["y"] * (feeds["x"] @ model["w"])
            return float(np.mean(np.maximum(0.0, 1.0 - margins)))

    else:
        raise ValueError(f"labels must be '01' or 'pm', not {labels!r}")
    return Dataset(
        {"x": x, "y": y}, loss, f"synthetic classification ({labels})",
        {"w": true_w},
    )


def multilayer_perceptron(
    features: int,
    hidden: int,
    classes: int,
    samples: int,
    seed: int = 0,
) -> Dataset:
    """Teacher-network data for backpropagation: targets are a random
    teacher MLP's (sigmoidal) outputs, so the loss floor is near zero."""
    rng = np.random.default_rng(seed)
    t1 = rng.normal(size=(features, hidden)) / np.sqrt(features)
    t2 = rng.normal(size=(hidden, classes)) / np.sqrt(hidden)
    x = rng.normal(size=(samples, features))
    y = _sigmoid(_sigmoid(x @ t1) @ t2)

    def loss(model, feeds):
        hid = _sigmoid(feeds["x"] @ model["w1"])
        out = _sigmoid(hid @ model["w2"])
        return float(np.mean((out - feeds["y"]) ** 2))

    return Dataset(
        {"x": x, "y": y}, loss, "teacher-network MLP regression",
        {"w1": t1, "w2": t2},
    )


def collaborative_filtering(
    users: int,
    items: int,
    factors: int,
    samples: int,
    seed: int = 0,
    noise: float = 0.05,
) -> Dataset:
    """Rating triples from a planted low-rank model, one-hot encoded.

    Entities are users then items in one table of ``users+items`` rows —
    the Table 1 encoding where "# Features" is the one-hot width and the
    model is (users+items) x factors.
    """
    rng = np.random.default_rng(seed)
    entities = users + items
    latent = rng.normal(size=(entities, factors)) / np.sqrt(factors)
    u_idx = rng.integers(0, users, size=samples)
    i_idx = users + rng.integers(0, items, size=samples)
    xu = np.zeros((samples, entities))
    xi = np.zeros((samples, entities))
    xu[np.arange(samples), u_idx] = 1.0
    xi[np.arange(samples), i_idx] = 1.0
    r = (
        np.einsum("sf,sf->s", latent[u_idx], latent[i_idx])
        + noise * rng.normal(size=samples)
    )

    def loss(model, feeds):
        p = feeds["xu"] @ model["m"]
        q = feeds["xi"] @ model["m"]
        pred = np.einsum("sf,sf->s", p, q)
        return float(np.mean((pred - feeds["r"]) ** 2))

    return Dataset(
        {"xu": xu, "xi": xi, "r": r},
        loss,
        "planted low-rank collaborative filtering",
        {"m": latent},
    )


def _sigmoid(v: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(v, -30, 30)))
