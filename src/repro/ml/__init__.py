"""Workloads: the five algorithms, ten benchmarks, and data generators."""

from . import datasets, inference, models
from .benchmarks import BENCHMARKS, Benchmark, benchmark, benchmark_names
from .datasets import Dataset
from .inference import forward_translation, predict, quality
from .programs import ALGORITHM_SOURCES, source_for

__all__ = [
    "ALGORITHM_SOURCES",
    "forward_translation",
    "inference",
    "predict",
    "quality",
    "BENCHMARKS",
    "Benchmark",
    "Dataset",
    "benchmark",
    "benchmark_names",
    "datasets",
    "models",
    "source_for",
]
