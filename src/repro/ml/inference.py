"""Prediction (inference) support.

Section 2.1: "Since training involves prediction, CoSMIC can accelerate
prediction as well." This module provides (a) the forward-only DSL
programs — the transfer function g(theta, X) of each algorithm — which
compile/plan/schedule through the same stack as the gradient programs,
and (b) NumPy predictors plus task-appropriate quality metrics used by
examples and tests to evaluate trained models.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from ..dfg.translate import Translation, translate
from ..dsl import parse

Model = Mapping[str, np.ndarray]
Feeds = Mapping[str, np.ndarray]

#: Forward-only DSL programs: the prediction is assigned to ``pred``.
#: ``pred`` is declared as an assigned ``model`` variable so the graph
#: exposes it as a named output; no training semantics are implied.
FORWARD_SOURCES: Dict[str, str] = {
    "linear_regression": """
model_input x[n];
model w[n];
model pred;
iterator i[0:n];
pred = sum[i](w[i] * x[i]);
""",
    "logistic_regression": """
model_input x[n];
model w[n];
model pred;
iterator i[0:n];
pred = sigmoid(sum[i](w[i] * x[i]));
""",
    "svm": """
model_input x[n];
model w[n];
model pred;
iterator i[0:n];
pred = sign(sum[i](w[i] * x[i]));
""",
    "backpropagation": """
model_input x[n];
model w1[n, h];
model w2[h, c];
model pred[c];
iterator i[0:n];
iterator j[0:h];
iterator k[0:c];
hid[j] = sigmoid(sum[i](w1[i, j] * x[i]));
pred[k] = sigmoid(sum[j](w2[j, k] * hid[j]));
""",
    "collaborative_filtering": """
model_input xu[e];
model_input xi[e];
model m[e, f];
model pred;
iterator i[0:e];
iterator k[0:f];
p[k] = sum[i](xu[i] * m[i, k]);
q[k] = sum[i](xi[i] * m[i, k]);
pred = sum[k](p[k] * q[k]);
""",
}


def forward_translation(
    algorithm: str, bindings: Mapping[str, int]
) -> Translation:
    """Translate the forward (prediction) program of an algorithm."""
    try:
        source = FORWARD_SOURCES[algorithm]
    except KeyError:
        raise KeyError(
            f"no forward program for algorithm {algorithm!r}"
        ) from None
    return translate(parse(source), bindings)


# -- NumPy predictors ---------------------------------------------------------


def _sigmoid(v: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(v, -30, 30)))


def predict(algorithm: str, model: Model, feeds: Feeds) -> np.ndarray:
    """Batch prediction with the reference math."""
    if algorithm == "linear_regression":
        return feeds["x"] @ model["w"]
    if algorithm == "logistic_regression":
        return _sigmoid(feeds["x"] @ model["w"])
    if algorithm == "svm":
        return np.sign(feeds["x"] @ model["w"])
    if algorithm == "backpropagation":
        hid = _sigmoid(feeds["x"] @ model["w1"])
        return _sigmoid(hid @ model["w2"])
    if algorithm == "collaborative_filtering":
        p = feeds["xu"] @ model["m"]
        q = feeds["xi"] @ model["m"]
        return np.einsum("sf,sf->s", p, q)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def quality(algorithm: str, model: Model, feeds: Feeds) -> float:
    """Task-appropriate quality in [higher is better] terms.

    Regression-style tasks report negative MSE; classification tasks
    report accuracy.
    """
    pred = predict(algorithm, model, feeds)
    if algorithm == "linear_regression":
        return -float(np.mean((pred - feeds["y"]) ** 2))
    if algorithm == "logistic_regression":
        return float(np.mean((pred > 0.5) == (feeds["y"] > 0.5)))
    if algorithm == "svm":
        return float(np.mean(pred == np.sign(feeds["y"])))
    if algorithm == "backpropagation":
        return float(
            np.mean(pred.argmax(axis=-1) == feeds["y"].argmax(axis=-1))
        )
    if algorithm == "collaborative_filtering":
        return -float(np.mean((pred - feeds["r"]) ** 2))
    raise ValueError(f"unknown algorithm {algorithm!r}")


def inference_speedup_vs_training(
    algorithm: str, bindings: Mapping[str, int], n_pe: int = 256, rows: int = 16
) -> float:
    """How much cheaper one prediction is than one gradient (cycles).

    Inference skips the backward pass, so the forward DFG's estimated
    cycles are a fraction of the training DFG's — roughly 1/3 for
    backprop, approaching 1/2 for the linear models.
    """
    from ..planner import estimate_thread_cycles
    from .programs import source_for

    forward = forward_translation(algorithm, bindings)
    training = translate(parse(source_for(algorithm)), bindings)
    fwd = estimate_thread_cycles(forward.dfg, n_pe, rows)
    train = estimate_thread_cycles(training.dfg, n_pe, rows)
    return train.cycles / fwd.cycles
