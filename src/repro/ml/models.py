"""Reference NumPy implementations of the five learning algorithms.

These mirror the DSL gradient formulations with plain NumPy so tests can
cross-validate the whole CoSMIC pipeline (DSL -> DFG -> interpreter ->
distributed trainer) against independently-written math, and so baselines
(Spark/GPU models) have a per-sample FLOP accounting grounded in real
update rules.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

Feeds = Mapping[str, np.ndarray]
Model = Dict[str, np.ndarray]


def _sigmoid(v: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(v, -30, 30)))


# -- per-sample/batch gradients ------------------------------------------------


def linreg_gradient(model: Model, feeds: Feeds) -> Model:
    """Mean squared-loss gradient over the batch."""
    x, y = feeds["x"], feeds["y"]
    err = x @ model["w"] - y
    return {"g": (err[:, None] * x).mean(axis=0)}


def logreg_gradient(model: Model, feeds: Feeds) -> Model:
    x, y = feeds["x"], feeds["y"]
    p = _sigmoid(x @ model["w"])
    return {"g": ((p - y)[:, None] * x).mean(axis=0)}


def svm_gradient(model: Model, feeds: Feeds) -> Model:
    x, y = feeds["x"], feeds["y"]
    margins = y * (x @ model["w"])
    active = (margins < 1).astype(float)
    return {"g": (-(active * y)[:, None] * x).mean(axis=0)}


def mlp_gradients(model: Model, feeds: Feeds) -> Model:
    """Backprop through one hidden sigmoid layer, squared loss."""
    x, y = feeds["x"], feeds["y"]
    hid = _sigmoid(x @ model["w1"])
    out = _sigmoid(hid @ model["w2"])
    d2 = (out - y) * out * (1 - out)
    g2 = np.einsum("bh,bc->bhc", hid, d2).mean(axis=0)
    d1 = (d2 @ model["w2"].T) * hid * (1 - hid)
    g1 = np.einsum("bn,bh->bnh", x, d1).mean(axis=0)
    return {"g1": g1, "g2": g2}


def cf_gradient(model: Model, feeds: Feeds) -> Model:
    """Latent-factor gradient over one-hot (user, item) pairs."""
    xu, xi, r = feeds["xu"], feeds["xi"], feeds["r"]
    p = xu @ model["m"]
    q = xi @ model["m"]
    err = np.einsum("sf,sf->s", p, q) - r
    grad = np.einsum(
        "s,se,sf->ef", err, xu, q
    ) + np.einsum("s,se,sf->ef", err, xi, p)
    return {"m": grad / len(r)}


GRADIENTS = {
    "linear_regression": linreg_gradient,
    "logistic_regression": logreg_gradient,
    "svm": svm_gradient,
    "backpropagation": mlp_gradients,
    "collaborative_filtering": cf_gradient,
}

#: gradient output name -> model variable it updates
UPDATE_PAIRS = {
    "linear_regression": {"g": "w"},
    "logistic_regression": {"g": "w"},
    "svm": {"g": "w"},
    "backpropagation": {"g1": "w1", "g2": "w2"},
    "collaborative_filtering": {"m": "m"},
}


def sgd_train(
    algorithm: str,
    model: Model,
    feeds: Feeds,
    learning_rate: float,
    epochs: int,
    batch: int,
    seed: int = 0,
) -> Model:
    """Plain mini-batch SGD with the reference gradients."""
    grad_fn = GRADIENTS[algorithm]
    pairs = UPDATE_PAIRS[algorithm]
    samples = next(iter(feeds.values())).shape[0]
    rng = np.random.default_rng(seed)
    model = {k: v.copy() for k, v in model.items()}
    for _ in range(epochs):
        order = rng.permutation(samples)
        for start in range(0, samples - batch + 1, batch):
            idx = order[start : start + batch]
            shard = {k: v[idx] for k, v in feeds.items()}
            grads = grad_fn(model, shard)
            for gname, mname in pairs.items():
                model[mname] = model[mname] - learning_rate * grads[gname]
    return model


def flops_per_sample(algorithm: str, dims: Mapping[str, int]) -> float:
    """Arithmetic operations per training vector (forward + backward).

    Used by the CPU/GPU baseline rooflines; counts multiply and add as
    separate operations, matching how DSP slices are counted.
    """
    if algorithm in ("linear_regression", "logistic_regression", "svm"):
        n = dims["n"]
        return 6.0 * n  # dot (2n) + scale (n) + update traffic (3n)
    if algorithm == "backpropagation":
        n, h, c = dims["n"], dims["h"], dims["c"]
        forward = 2.0 * (n * h + h * c)
        backward = 2.0 * (h * c + n * h) + 2.0 * h * c
        return forward + backward + 4.0 * (h + c)
    if algorithm == "collaborative_filtering":
        e, f = dims["e"], dims["f"]
        # Two one-hot gathers (2ef), the rating error (2f), and the dense
        # outer-product gradient over the entity table (~5ef).
        return 7.0 * e * f + 2.0 * f
    raise ValueError(f"unknown algorithm {algorithm!r}")
