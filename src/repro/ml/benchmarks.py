"""The ten Table 1 benchmarks.

Each benchmark binds one of the five DSL programs to the paper-reported
workload shape (feature count, model topology, training-set size) and to a
scaled-down *functional* shape used when a test or example actually trains
the model. Timing and resource modelling always use the paper-scale
shapes; learning always really happens, just on fewer dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping

from ..dfg.translate import Translation
from . import datasets
from .programs import source_for


@dataclass(frozen=True)
class Benchmark:
    """One row of Table 1."""

    name: str
    algorithm: str
    domain: str
    description: str
    features: int
    topology: str
    dims: Mapping[str, int]
    input_vectors: int
    data_gb: float
    loc: int
    functional_dims: Mapping[str, int]
    density: Mapping[str, float] = field(default_factory=dict)

    # -- program -----------------------------------------------------------
    def source(self) -> str:
        return source_for(self.algorithm)

    def translate(self, scaled: bool = False) -> Translation:
        """Translate the benchmark's DSL program.

        The result is memoized in the global artifact cache (every layer
        re-derives sizes through here, so figure sweeps would otherwise
        re-parse the same five programs hundreds of times).

        Args:
            scaled: bind the reduced functional dimensions instead of the
                paper-scale ones (for actually running training).
        """
        from ..perf.cache import cached_translate

        dims = self.functional_dims if scaled else self.dims
        return cached_translate(self.source(), dims)

    # -- sizes ---------------------------------------------------------------
    def model_words(self) -> int:
        return self.translate().dfg.model_words()

    def model_bytes(self, word_bytes: int = 4) -> int:
        return self.model_words() * word_bytes

    def bytes_per_sample(self, word_bytes: int = 4) -> float:
        """Bytes streamed per training vector.

        The floor is the DFG's (sparsity-aware) input words; where Table 1
        reports a larger on-disk record (doubles, headers, auxiliary
        fields — e.g. stock's tick records), the reported size wins, since
        that is what the memory system actually moves.
        """
        from ..planner import effective_data_words

        dfg = self.translate().dfg
        dense = effective_data_words(dfg, self.density) * word_bytes
        reported = self.data_gb * 1e9 / self.input_vectors
        return max(dense, reported)

    # -- data ------------------------------------------------------------------
    def make_dataset(self, samples: int, seed: int = 0) -> datasets.Dataset:
        """Generate a functional-scale dataset for this benchmark."""
        dims = self.functional_dims
        if self.algorithm == "linear_regression":
            return datasets.regression(dims["n"], samples, seed)
        if self.algorithm == "logistic_regression":
            return datasets.binary_classification(
                dims["n"], samples, seed, labels="01"
            )
        if self.algorithm == "svm":
            return datasets.binary_classification(
                dims["n"], samples, seed, labels="pm"
            )
        if self.algorithm == "backpropagation":
            return datasets.multilayer_perceptron(
                dims["n"], dims["h"], dims["c"], samples, seed
            )
        if self.algorithm == "collaborative_filtering":
            users = dims["e"] // 2
            return datasets.collaborative_filtering(
                users, dims["e"] - users, dims["f"], samples, seed
            )
        raise ValueError(f"unknown algorithm {self.algorithm!r}")


def _cf_density(entities: int) -> Dict[str, float]:
    return {"xu": 1.0 / entities, "xi": 1.0 / entities}


#: Table 1, in paper order.
BENCHMARKS: List[Benchmark] = [
    Benchmark(
        name="mnist",
        algorithm="backpropagation",
        domain="Image Processing",
        description="Handwritten digit pattern recognition",
        features=784,
        topology="784x784x10",
        dims={"n": 784, "h": 784, "c": 10},
        input_vectors=60_000,
        data_gb=0.4,
        loc=55,
        functional_dims={"n": 32, "h": 16, "c": 4},
    ),
    Benchmark(
        name="acoustic",
        algorithm="backpropagation",
        domain="Audio Processing",
        description="Hierarchical acoustic modeling for speech recognition",
        features=351,
        topology="351x1000x40",
        dims={"n": 351, "h": 1000, "c": 40},
        input_vectors=942_626,
        data_gb=5.6,
        loc=55,
        functional_dims={"n": 24, "h": 20, "c": 6},
    ),
    Benchmark(
        name="stock",
        algorithm="linear_regression",
        domain="Finance",
        description="Stock price prediction",
        features=8_000,
        topology="8000",
        dims={"n": 8_000},
        input_vectors=130_503,
        data_gb=14.7,
        loc=23,
        functional_dims={"n": 64},
    ),
    Benchmark(
        name="texture",
        algorithm="linear_regression",
        domain="Image Processing",
        description="Image texture recognition",
        features=16_384,
        topology="16384",
        dims={"n": 16_384},
        input_vectors=77_461,
        data_gb=17.9,
        loc=23,
        functional_dims={"n": 64},
    ),
    Benchmark(
        name="tumor",
        algorithm="logistic_regression",
        domain="Medical Diagnosis",
        description="Tumor classification using gene expression microarray",
        features=2_000,
        topology="2000",
        dims={"n": 2_000},
        input_vectors=387_944,
        data_gb=10.4,
        loc=22,
        functional_dims={"n": 48},
    ),
    Benchmark(
        name="cancer1",
        algorithm="logistic_regression",
        domain="Medical Diagnosis",
        description="Prostate cancer diagnosis based on gene expressions",
        features=6_033,
        topology="6033",
        dims={"n": 6_033},
        input_vectors=167_219,
        data_gb=13.5,
        loc=22,
        functional_dims={"n": 48},
    ),
    Benchmark(
        name="movielens",
        algorithm="collaborative_filtering",
        domain="Recommender System",
        description="Movielens recommender system",
        features=30_101,
        topology="30101x10",
        dims={"e": 30_101, "f": 10},
        input_vectors=24_404_096,
        data_gb=0.6,
        loc=42,
        functional_dims={"e": 60, "f": 4},
        density=_cf_density(30_101),
    ),
    Benchmark(
        name="netflix",
        algorithm="collaborative_filtering",
        domain="Recommender System",
        description="Netflix recommender system",
        features=73_066,
        topology="73066x10",
        dims={"e": 73_066, "f": 10},
        input_vectors=100_498_287,
        data_gb=2.0,
        loc=42,
        functional_dims={"e": 80, "f": 4},
        density=_cf_density(73_066),
    ),
    Benchmark(
        name="face",
        algorithm="svm",
        domain="Computer Vision",
        description="Human face detection",
        features=1_740,
        topology="1740",
        dims={"n": 1_740},
        input_vectors=678_392,
        data_gb=15.9,
        loc=27,
        functional_dims={"n": 40},
    ),
    Benchmark(
        name="cancer2",
        algorithm="svm",
        domain="Medical Diagnosis",
        description="Cancer diagnosis based on gene expressions",
        features=7_129,
        topology="7129",
        dims={"n": 7_129},
        input_vectors=208_444,
        data_gb=20.0,
        loc=27,
        functional_dims={"n": 48},
    ),
]

_BY_NAME = {b.name: b for b in BENCHMARKS}


def benchmark(name: str) -> Benchmark:
    """Look up a Table 1 benchmark by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None


def benchmark_names() -> List[str]:
    return [b.name for b in BENCHMARKS]
