"""Whole-cluster timing simulation of one training iteration.

One iteration of the distributed flow (Figure 1):

1. every node's accelerator computes its partial update over its share of
   the mini-batch (Sigma nodes compute too);
2. Delta nodes ship their locally-aggregated partial updates to their
   group Sigma, whose networking/aggregation pools fold chunks into the
   aggregation buffer as they land (overlapped, Figure 2);
3. group Sigmas forward group aggregates to the master Sigma;
4. the master broadcasts the updated model down the hierarchy, and the
   next mini-batch begins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from .director import ROLE_DELTA, Topology, assign_roles
from .events import EventLoop
from .network import Network, NetworkConfig
from .threads import PoolConfig, SigmaPipeline


@dataclass(frozen=True)
class ClusterSpec:
    """System specification fed to the Director (Figure 3, right)."""

    nodes: int
    groups: Optional[int] = None
    network: NetworkConfig = field(default_factory=NetworkConfig)
    pools: PoolConfig = field(default_factory=PoolConfig)
    #: Per-iteration host-side management: accelerator invocation, PCIe
    #: descriptor setup, epoch bookkeeping. Lean by design (Section 3) —
    #: there is no thread creation or generic scheduling on this path.
    management_overhead_s: float = 0.4e-3


@dataclass
class IterationTiming:
    """Wall-clock breakdown of one mini-batch iteration."""

    total_s: float
    compute_s: float  # mean accelerator busy time across nodes
    compute_max_s: float
    network_s: float  # time from first send to last aggregate landing
    aggregation_busy_s: float  # CPU seconds spent folding partials
    broadcast_s: float
    management_s: float
    #: observability: bytes on the wire and Sigma receive-side pressure
    wire_bytes: int = 0
    wire_messages: int = 0
    sigma_rx_busy_s: float = 0.0
    sigma_count: int = 1

    def sigma_rx_utilization(self) -> float:
        """Mean busy fraction of the Sigma NICs' receive sides — the
        pressure hierarchical aggregation exists to relieve."""
        if self.total_s <= 0 or self.sigma_count < 1:
            return 0.0
        return min(
            1.0, self.sigma_rx_busy_s / (self.sigma_count * self.total_s)
        )

    @property
    def communication_s(self) -> float:
        """Everything that is not accelerator compute (Figure 13's split)."""
        return max(0.0, self.total_s - self.compute_s)

    @property
    def compute_fraction(self) -> float:
        return self.compute_s / self.total_s if self.total_s else 0.0


ComputeFn = Callable[[int, int], float]
"""(node_id, samples) -> accelerator seconds for that node's share."""


class ClusterSimulator:
    """Event-driven simulation of the CoSMIC system software."""

    def __init__(
        self,
        spec: ClusterSpec,
        compute_seconds: ComputeFn,
        update_bytes: int,
    ):
        """
        Args:
            spec: cluster shape and component parameters.
            compute_seconds: accelerator model for a node's local batch.
            update_bytes: size of one partial model update on the wire
                (the model size — Table 1's "Model Size" column).
        """
        if update_bytes <= 0:
            raise ValueError("model update must have positive size")
        self.spec = spec
        self.topology: Topology = assign_roles(spec.nodes, spec.groups)
        self._compute_seconds = compute_seconds
        self.update_bytes = update_bytes

    def iteration(self, batch_samples: int) -> IterationTiming:
        """Simulate one global mini-batch of ``batch_samples`` vectors."""
        spec = self.spec
        topo = self.topology
        loop = EventLoop()
        network = Network(loop, spec.network)

        per_node = max(1, batch_samples // topo.nodes)
        compute_done: Dict[int, float] = {}
        compute_times: List[float] = []
        for role in topo.roles:
            seconds = self._compute_seconds(role.node_id, per_node)
            compute_times.append(seconds)
            compute_done[role.node_id] = spec.management_overhead_s + seconds

        pipelines: Dict[int, SigmaPipeline] = {
            s.node_id: SigmaPipeline(spec.pools) for s in topo.sigmas()
        }
        group_done: Dict[int, float] = {}

        # Phase 2: deltas stream partial updates to their group sigma.
        first_send = min(compute_done.values())
        for sigma in topo.sigmas():
            pipeline = pipelines[sigma.node_id]
            # The sigma folds its own accelerator's partial locally.
            own_done = pipeline.fold_local(
                compute_done[sigma.node_id], self.update_bytes
            )
            group_done[sigma.group] = own_done
            for delta in topo.deltas_of(sigma.node_id):
                network.send(
                    delta.node_id,
                    sigma.node_id,
                    self.update_bytes,
                    compute_done[delta.node_id],
                    on_chunk=_feed(pipeline),
                )
        loop.run()
        for sigma in topo.sigmas():
            group_done[sigma.group] = max(
                group_done[sigma.group], pipelines[sigma.node_id].drained_at
            )

        # Phase 3: group aggregates -> master sigma.
        master = topo.master
        master_pipe = SigmaPipeline(spec.pools)
        master_done = master_pipe.fold_local(
            group_done[master.group], self.update_bytes
        )
        for sigma in topo.sigmas():
            if sigma.node_id == master.node_id:
                continue
            network.send(
                sigma.node_id,
                master.node_id,
                self.update_bytes,
                group_done[sigma.group],
                on_chunk=_feed(master_pipe),
            )
        loop.run()
        master_done = max(master_done, master_pipe.drained_at)

        # Phase 4: hierarchical model broadcast.
        broadcast_done = master_done
        for sigma in topo.sigmas():
            sigma_recv = master_done
            if sigma.node_id != master.node_id:
                sigma_recv = network.send(
                    master.node_id,
                    sigma.node_id,
                    self.update_bytes,
                    master_done,
                )
            broadcast_done = max(broadcast_done, sigma_recv)
            for delta in topo.deltas_of(sigma.node_id):
                arrival = network.send(
                    sigma.node_id,
                    delta.node_id,
                    self.update_bytes,
                    sigma_recv,
                )
                broadcast_done = max(broadcast_done, arrival)
        loop.run()

        total = broadcast_done + spec.management_overhead_s
        agg_busy = sum(
            p.aggregation.busy_seconds() for p in pipelines.values()
        ) + master_pipe.aggregation.busy_seconds()
        sigma_rx_busy = sum(
            network.nic(s.node_id).rx.busy_seconds for s in topo.sigmas()
        )
        return IterationTiming(
            total_s=total,
            compute_s=sum(compute_times) / len(compute_times),
            compute_max_s=max(compute_times),
            network_s=max(0.0, master_done - first_send),
            aggregation_busy_s=agg_busy,
            broadcast_s=broadcast_done - master_done,
            management_s=2 * spec.management_overhead_s,
            wire_bytes=network.bytes_sent,
            wire_messages=network.messages_sent,
            sigma_rx_busy_s=sigma_rx_busy,
            sigma_count=len(topo.sigmas()),
        )

    def epoch_seconds(
        self, dataset_samples: int, minibatch_per_node: int
    ) -> float:
        """One pass over the dataset: iterations x per-iteration time.

        ``minibatch_per_node`` is the paper's ``b`` — local samples
        processed before each aggregation (Section 2.2). A trailing
        partial mini-batch still costs one (smaller) iteration.
        """
        batch_global = minibatch_per_node * self.topology.nodes
        full, remainder = divmod(dataset_samples, batch_global)
        seconds = 0.0
        if full:
            seconds += full * self.iteration(batch_global).total_s
        if remainder or not full:
            seconds += self.iteration(max(1, remainder)).total_s
        return seconds


def _feed(pipeline: SigmaPipeline):
    return lambda time, nbytes: pipeline.on_chunk(time, nbytes)
