"""Whole-cluster timing simulation of one training iteration.

One iteration of the distributed flow (Figure 1):

1. every node's accelerator computes its partial update over its share of
   the mini-batch (Sigma nodes compute too);
2. Delta nodes ship their locally-aggregated partial updates to their
   group Sigma, whose networking/aggregation pools fold chunks into the
   aggregation buffer as they land (overlapped, Figure 2);
3. group Sigmas forward group aggregates to the master Sigma;
4. the master broadcasts the updated model down the hierarchy, and the
   next mini-batch begins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .director import Topology, assign_roles
from .events import EventLoop
from .network import Network, NetworkConfig
from .threads import PoolConfig, SigmaPipeline


@dataclass(frozen=True)
class ClusterSpec:
    """System specification fed to the Director (Figure 3, right)."""

    nodes: int
    groups: Optional[int] = None
    network: NetworkConfig = field(default_factory=NetworkConfig)
    pools: PoolConfig = field(default_factory=PoolConfig)
    #: Per-iteration host-side management: accelerator invocation, PCIe
    #: descriptor setup, epoch bookkeeping. Lean by design (Section 3) —
    #: there is no thread creation or generic scheduling on this path.
    management_overhead_s: float = 0.4e-3


@dataclass(frozen=True)
class QuorumConfig:
    """Graceful degradation: aggregate K-of-N partials after a deadline.

    A Sigma normally blocks until every partial arrives (Eq. 3b is a
    barrier). In quorum mode it closes the aggregation window at the
    later of (a) the K-th partial landing, where K is ``fraction`` of the
    expected contributors, and (b) ``deadline_s`` past the first partial.
    Partials later than the window are *dropped*: the receiver refuses
    them, so they neither enter the aggregate nor occupy the Sigma's NIC
    (the broadcast does not queue behind a straggler's late bytes), and
    the functional trainer excludes the corresponding shards so the
    convergence impact is real.
    """

    fraction: float = 0.75
    deadline_s: float = 50e-3

    def __post_init__(self):
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"quorum fraction must be in (0, 1], got {self.fraction}"
            )
        if self.deadline_s <= 0:
            raise ValueError(
                f"straggler deadline must be positive, got {self.deadline_s}"
            )

    def quorum(self, contributors: int) -> int:
        """Minimum partials that must be folded out of ``contributors``."""
        return max(1, math.ceil(self.fraction * contributors))

    def cache_token(self) -> Tuple[str, str, str]:
        """Canonical form of the quorum rule for artifact-cache keys.

        ``repr`` round-trips the floats exactly (the same convention
        :func:`repro.perf.cache.fingerprint` applies to bare floats), so
        two configs produce the same token iff they close windows
        identically. The frozen dataclass is also hashable and directly
        fingerprintable; this token exists for callers composing keys by
        hand (and for the JSON sidecars, where a dataclass cannot go).
        """
        return ("quorum", repr(self.fraction), repr(self.deadline_s))


@dataclass
class IterationTiming:
    """Wall-clock breakdown of one mini-batch iteration."""

    total_s: float
    compute_s: float  # mean accelerator busy time across nodes
    compute_max_s: float
    network_s: float  # time from first send to last aggregate landing
    aggregation_busy_s: float  # CPU seconds spent folding partials
    broadcast_s: float
    management_s: float
    #: observability: bytes on the wire and Sigma receive-side pressure
    wire_bytes: int = 0
    wire_messages: int = 0
    sigma_rx_busy_s: float = 0.0
    sigma_count: int = 1
    #: quorum accounting: node ids whose partials entered the aggregate,
    #: and those dropped at a deadline (empty means everyone contributed)
    contributors: List[int] = field(default_factory=list)
    dropped: List[int] = field(default_factory=list)

    def sigma_rx_utilization(self) -> float:
        """Mean busy fraction of the Sigma NICs' receive sides — the
        pressure hierarchical aggregation exists to relieve."""
        if self.total_s <= 0 or self.sigma_count < 1:
            return 0.0
        return min(
            1.0, self.sigma_rx_busy_s / (self.sigma_count * self.total_s)
        )

    @property
    def communication_s(self) -> float:
        """Everything that is not accelerator compute (Figure 13's split)."""
        return max(0.0, self.total_s - self.compute_s)

    @property
    def compute_fraction(self) -> float:
        return self.compute_s / self.total_s if self.total_s else 0.0


ComputeFn = Callable[[int, int], float]
"""(node_id, samples) -> accelerator seconds for that node's share."""


class ClusterSimulator:
    """Event-driven simulation of the CoSMIC system software."""

    def __init__(
        self,
        spec: ClusterSpec,
        compute_seconds: ComputeFn,
        update_bytes: int,
        topology: Optional[Topology] = None,
        faults=None,
    ):
        """
        Args:
            spec: cluster shape and component parameters.
            compute_seconds: accelerator model for a node's local batch.
            update_bytes: size of one partial model update on the wire
                (the model size — Table 1's "Model Size" column).
            topology: explicit role assignment — the recovery layer passes
                a re-formed hierarchy over surviving node ids here;
                defaults to the Director's assignment for ``spec``.
            faults: fault context (a FaultSpec/FaultTimeline, or any
                truthy marker) under which this simulator runs. A faulted
                cluster's schedule differs from the healthy one, so any
                truthy value disables both the iteration memo and
                schedule replay — every call re-simulates event-driven.
        """
        if update_bytes <= 0:
            raise ValueError("model update must have positive size")
        self.spec = spec
        self.topology: Topology = (
            topology
            if topology is not None
            else assign_roles(spec.nodes, spec.groups)
        )
        self._compute_seconds = compute_seconds
        self.update_bytes = update_bytes
        self.faults = faults

    def with_topology(self, topology: Topology) -> "ClusterSimulator":
        """The same cluster model over a re-formed hierarchy."""
        return ClusterSimulator(
            self.spec,
            self._compute_seconds,
            self.update_bytes,
            topology,
            faults=self.faults,
        )

    def iteration(
        self,
        batch_samples: int,
        quorum: Optional[QuorumConfig] = None,
    ) -> IterationTiming:
        """Simulate one global mini-batch of ``batch_samples`` vectors.

        With ``quorum`` set, each Sigma (and the master) closes its
        aggregation window per :class:`QuorumConfig` instead of blocking
        on the slowest partial; the timing's ``dropped`` field lists the
        node ids whose partials missed the window.

        The event simulation itself is a pure function of the cluster
        spec, topology, update size, quorum rule, and each node's compute
        time — so it is memoized in the artifact cache keyed on exactly
        those inputs. The compute model is still invoked once per node
        per call (it may be stateful, e.g. straggler injection), and its
        *results* are part of the key: different compute times mean a
        fresh simulation, identical ones reuse the previous schedule.

        Healthy iterations — quorum-windowed ones included — additionally
        go through the schedule-replay engine
        (:mod:`repro.runtime.schedule`): the event schedule is recorded
        once per (topology, update size) and every other sweep point
        re-times that trace instead of re-simulating. A quorum rule is
        evaluated by the replayer directly on the booked arrival arrays
        (the memo key carries the rule, so windowed and barrier results
        never collide). A fault context on the simulator disables the
        memo, the schedule cache, and replay — faults change the
        schedule, so a faulted run must never see (or produce) a
        healthy-run artifact. The cached and replayed results are
        bit-identical to the event-driven simulation, enforced by the
        differential property suites.
        """
        from dataclasses import replace

        from ..perf.cache import fingerprint, get_cache

        topo = self.topology
        per_node = max(1, batch_samples // topo.nodes)
        compute_times = [
            self._compute_seconds(role.node_id, per_node)
            for role in topo.roles
        ]
        if self.faults:
            # Fault contexts bypass the memo AND the schedule cache: the
            # healthy-run key does not describe a faulted schedule.
            return self._iteration_uncached(quorum, compute_times)
        cache = get_cache()
        if not cache.enabled:  # skip fingerprinting on the uncached path
            return self._iteration_uncached(quorum, compute_times)
        key = fingerprint(
            "iteration",
            self.spec,
            topo.roles,
            self.update_bytes,
            quorum,
            compute_times,
        )
        timing = cache.get_or_compute(
            "iteration",
            key,
            lambda: self._timed_iteration(quorum, compute_times),
        )
        # Hand every caller its own list fields; the cached instance must
        # stay pristine for the next hit.
        return replace(
            timing,
            contributors=list(timing.contributors),
            dropped=list(timing.dropped),
        )

    def _timed_iteration(
        self,
        quorum: Optional[QuorumConfig],
        compute_times: List[float],
    ) -> IterationTiming:
        """Memo-miss path: replay the recorded schedule when eligible,
        otherwise run the full event-driven simulation.

        Quorum windows replay too (since schedule format 2): the trace's
        per-sender arrival annotations let the replayer evaluate the
        window closure on the booked arrival arrays and re-book only the
        withheld-send pass. Only the ``REPRO_SCHEDULE_REPLAY=0`` kill
        switch (and, upstream of this method, a fault context) forces the
        full event-driven simulation.
        """
        from .schedule import replay_enabled, replay_iteration

        if replay_enabled():
            trace = self._schedule_trace()
            return replay_iteration(
                trace, self.spec, compute_times, quorum=quorum
            )
        return self._iteration_uncached(quorum, compute_times)

    def _schedule_trace(self):
        """Fetch (or record) this cluster's schedule trace, content-
        addressed on everything that shapes the schedule."""
        from ..perf.cache import get_cache
        from .schedule import (
            SCHEDULE_FORMAT,
            record_schedule,
            schedule_cache_key,
            trace_sidecar,
        )

        cache = get_cache()
        key = schedule_cache_key(self.topology, self.update_bytes)
        trace = cache.get_or_compute(
            "cluster-schedule",
            key,
            lambda: record_schedule(self),
            sidecar=trace_sidecar,
            # Belt-and-suspenders versioning: the format is part of the
            # key, but a stale pickle surfacing anyway (hand-copied cache
            # dir, key collision after an undisciplined edit) is dropped
            # and re-recorded rather than replayed.
            validate=lambda t: (
                getattr(t, "format_version", None) == SCHEDULE_FORMAT
            ),
        )
        if trace.roles != tuple(self.topology.roles) or (
            trace.update_bytes != self.update_bytes
        ):
            raise RuntimeError(
                "cluster-schedule cache returned a trace recorded for a "
                "different cluster; the cache key is missing an input"
            )
        return trace

    def _iteration_uncached(
        self,
        quorum: Optional[QuorumConfig],
        compute_times: List[float],
        recorder=None,
    ) -> IterationTiming:
        spec = self.spec
        topo = self.topology
        network = Network(EventLoop(), spec.network)
        network.recorder = recorder

        compute_done: Dict[int, float] = {}
        for role, seconds in zip(topo.roles, compute_times):
            compute_done[role.node_id] = spec.management_overhead_s + seconds

        first_send = min(compute_done.values())
        master = topo.master

        # Phase 2: deltas stream partial updates to their group sigma.
        # Sends are issued in start-time order: NIC Resources book FCFS in
        # call order, so a straggler issued early must not queue ahead of
        # messages that hit the wire before it.
        def deltas_to_sigmas(net: Network, skip):
            loop = EventLoop()
            net.use_loop(loop)
            pipes: Dict[int, SigmaPipeline] = {
                s.node_id: SigmaPipeline(spec.pools) for s in topo.sigmas()
            }
            own: Dict[int, float] = {}
            feeds: Dict[int, Dict[int, _Feeder]] = {}
            sends = []
            for sigma in topo.sigmas():
                pipeline = pipes[sigma.node_id]
                # The sigma folds its own accelerator's partial locally.
                own[sigma.group] = pipeline.fold_local(
                    compute_done[sigma.node_id], self.update_bytes
                )
                feeds[sigma.node_id] = {}
                for delta in topo.deltas_of(sigma.node_id):
                    if delta.node_id in skip:
                        continue
                    feeder = _Feeder(pipeline)
                    feeds[sigma.node_id][delta.node_id] = feeder
                    sends.append(
                        (
                            compute_done[delta.node_id],
                            delta.node_id,
                            sigma.node_id,
                            feeder,
                        )
                    )
            for start, delta_id, sigma_id, feeder in sorted(
                sends, key=lambda s: s[:2]
            ):
                net.send(
                    delta_id, sigma_id, self.update_bytes, start, on_chunk=feeder
                )
            loop.run()
            return pipes, own, feeds

        def close_groups(own, feeds):
            done: Dict[int, float] = {}
            members: Dict[int, List[int]] = {}
            late = set()
            for sigma in topo.sigmas():
                contributions = [(sigma.node_id, own[sigma.group])] + [
                    (delta_id, feeder.done)
                    for delta_id, feeder in feeds[sigma.node_id].items()
                ]
                included, out = _close_window(contributions, quorum)
                done[sigma.group] = max(t for _, t in included)
                members[sigma.group] = [node for node, _ in included]
                late.update(node for node, _ in out)
            return done, members, late

        # A dropped partial must not occupy the sigma's NIC — the receiver
        # refuses it, and everything after (the broadcast, the next
        # iteration) would otherwise queue behind bytes nobody wants. NIC
        # Resources cannot book out of order, so quorum mode first probes
        # a scratch network to learn who misses the window, then replays
        # on the real one with those sends withheld.
        skip2 = frozenset()
        if quorum is not None:
            _, own_probe, feeds_probe = deltas_to_sigmas(
                Network(EventLoop(), spec.network), skip2
            )
            _, _, late2 = close_groups(own_probe, feeds_probe)
            skip2 = frozenset(late2)
        pipelines, group_own, feeders = deltas_to_sigmas(network, skip2)
        group_done, group_members, _ = close_groups(group_own, feeders)

        # Phase 3: group aggregates -> master sigma (same quorum rule).
        # Fresh loop per pass: a quorum window may close before another
        # group's straggler chunks landed, so this phase's deliveries can
        # predate the previous loop's final event time.
        def sigmas_to_master(net: Network, skip):
            loop = EventLoop()
            net.use_loop(loop)
            pipe = SigmaPipeline(spec.pools)
            own = pipe.fold_local(group_done[master.group], self.update_bytes)
            feeds: Dict[int, _Feeder] = {}
            sends = []
            for sigma in topo.sigmas():
                if sigma.node_id == master.node_id or sigma.node_id in skip:
                    continue
                feeder = _Feeder(pipe)
                feeds[sigma.node_id] = feeder
                sends.append((group_done[sigma.group], sigma.node_id, feeder))
            for start, sigma_id, feeder in sorted(sends, key=lambda s: s[:2]):
                net.send(
                    sigma_id,
                    master.node_id,
                    self.update_bytes,
                    start,
                    on_chunk=feeder,
                )
            loop.run()
            return pipe, own, feeds

        def close_master(own, feeds):
            contributions = [(master.node_id, own)] + [
                (sigma_id, feeder.done) for sigma_id, feeder in feeds.items()
            ]
            return _close_window(contributions, quorum)

        skip3 = frozenset()
        if quorum is not None:
            # The probe replays phase 2 first so the master's RX NIC
            # carries the same bookings as the real network.
            probe = Network(EventLoop(), spec.network)
            deltas_to_sigmas(probe, skip2)
            _, own_probe, feeds_probe = sigmas_to_master(probe, skip3)
            _, out3 = close_master(own_probe, feeds_probe)
            skip3 = frozenset(node for node, _ in out3)
        master_pipe, own_group_done, master_feeders = sigmas_to_master(
            network, skip3
        )
        sigma_group = {s.node_id: s.group for s in topo.sigmas()}
        included_groups, _ = close_master(own_group_done, master_feeders)
        master_done = max(t for _, t in included_groups)
        contributors = sorted(
            node
            for sigma_id, _ in included_groups
            for node in group_members[sigma_group[sigma_id]]
        )
        dropped = sorted(
            r.node_id for r in topo.roles if r.node_id not in contributors
        )

        # Phase 4: hierarchical model broadcast.
        loop = EventLoop()
        network.use_loop(loop)
        broadcast_done = master_done
        for sigma in topo.sigmas():
            sigma_recv = master_done
            if sigma.node_id != master.node_id:
                sigma_recv = network.send(
                    master.node_id,
                    sigma.node_id,
                    self.update_bytes,
                    master_done,
                )
            broadcast_done = max(broadcast_done, sigma_recv)
            for delta in topo.deltas_of(sigma.node_id):
                arrival = network.send(
                    sigma.node_id,
                    delta.node_id,
                    self.update_bytes,
                    sigma_recv,
                )
                broadcast_done = max(broadcast_done, arrival)
        loop.run()

        total = broadcast_done + spec.management_overhead_s
        agg_busy = sum(
            p.aggregation.busy_seconds() for p in pipelines.values()
        ) + master_pipe.aggregation.busy_seconds()
        sigma_rx_busy = sum(
            network.nic(s.node_id).rx.busy_seconds for s in topo.sigmas()
        )
        return IterationTiming(
            total_s=total,
            compute_s=sum(compute_times) / len(compute_times),
            compute_max_s=max(compute_times),
            network_s=max(0.0, master_done - first_send),
            aggregation_busy_s=agg_busy,
            broadcast_s=broadcast_done - master_done,
            management_s=2 * spec.management_overhead_s,
            wire_bytes=network.bytes_sent,
            wire_messages=network.messages_sent,
            sigma_rx_busy_s=sigma_rx_busy,
            sigma_count=len(topo.sigmas()),
            contributors=contributors,
            dropped=dropped,
        )

    def epoch_seconds(
        self, dataset_samples: int, minibatch_per_node: int
    ) -> float:
        """One pass over the dataset: iterations x per-iteration time.

        ``minibatch_per_node`` is the paper's ``b`` — local samples
        processed before each aggregation (Section 2.2). A trailing
        partial mini-batch still costs one (smaller) iteration.
        """
        batch_global = minibatch_per_node * self.topology.nodes
        full, remainder = divmod(dataset_samples, batch_global)
        seconds = 0.0
        if full:
            seconds += full * self.iteration(batch_global).total_s
        if remainder or not full:
            seconds += self.iteration(max(1, remainder)).total_s
        return seconds


class _Feeder:
    """Feeds one sender's chunks into a SigmaPipeline, tracking when the
    last of them was folded — the sender's partial-complete time, which
    the quorum window is judged against."""

    def __init__(self, pipeline: SigmaPipeline):
        self._pipeline = pipeline
        self.done = 0.0

    def __call__(self, time: float, nbytes: int):
        self.done = max(self.done, self._pipeline.on_chunk(time, nbytes))


def _close_window(contributions, quorum: Optional[QuorumConfig]):
    """Split ``(node_id, finish_s)`` contributions at the quorum window.

    The window closes at the later of the K-th arrival (the quorum must
    be met even if it means waiting past the deadline) and the straggler
    deadline measured from the first arrival. Returns (included, dropped).
    """
    if quorum is None or len(contributions) <= 1:
        return list(contributions), []
    by_time = sorted(contributions, key=lambda c: (c[1], c[0]))
    k = quorum.quorum(len(by_time))
    close = max(by_time[k - 1][1], by_time[0][1] + quorum.deadline_s)
    included = [c for c in by_time if c[1] <= close + 1e-12]
    dropped = [c for c in by_time if c[1] > close + 1e-12]
    return included, dropped
