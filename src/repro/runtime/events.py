"""A minimal discrete-event simulation engine for the runtime layer.

The CoSMIC system software is simulated, not analytically approximated:
NIC serialisation, thread-pool contention and circular-buffer backpressure
all emerge from events interleaving on this loop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventLoop:
    """A time-ordered callback queue with deterministic tie-breaking."""

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def at(self, time: float, callback: Callable[[], None]):
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self._now - 1e-12:
            raise ValueError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def after(self, delay: float, callback: Callable[[], None]):
        """Schedule ``callback`` ``delay`` seconds from now."""
        self.at(self._now + delay, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains (or past ``until``).

        Returns the simulation time of the last executed event.
        """
        if self._running:
            raise RuntimeError("event loop is not reentrant")
        self._running = True
        try:
            while self._queue:
                time, _, callback = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        return len(self._queue)


class Resource:
    """A serially-reusable resource (a NIC direction, a bus, a core).

    ``acquire`` returns the earliest start time at or after ``earliest``
    and books the resource for ``duration`` seconds. FCFS in call order —
    callers are responsible for calling in event-time order, which the
    event loop guarantees.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._free_at = 0.0
        self.busy_seconds = 0.0

    @property
    def free_at(self) -> float:
        return self._free_at

    def acquire(self, earliest: float, duration: float) -> float:
        start = max(earliest, self._free_at)
        self._free_at = start + duration
        self.busy_seconds += duration
        return start

    def utilization(self, horizon: float) -> float:
        """Busy fraction over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / horizon)
