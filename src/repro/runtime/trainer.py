"""End-to-end distributed training: functional semantics + simulated time.

The trainer executes the actual mathematics of Eq. 3 — every simulated
worker thread computes its partial update with the DFG interpreter over
its data sub-partition, and the Sigma hierarchy's aggregation operator
(mean or sum, from the DSL's aggregator section) combines them — while a
:class:`repro.runtime.cluster.ClusterSimulator` accounts the wall-clock
each iteration would take on the modelled hardware.

Two worker modes:

* ``"minibatch"`` — each worker computes one aggregate gradient over its
  shard and takes one step (the common distributed mini-batch SGD; fast,
  vectorised).
* ``"local_sgd"`` — each worker runs sequential per-sample SGD over its
  shard and the models are averaged (the literal parallelized SGD of
  Zinkevich et al. that Eq. 3 cites; used by tests for fidelity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

from ..dfg import ir
from ..dfg.interpreter import Interpreter
from ..dfg.translate import Translation
from .checkpoint import Checkpoint
from .cluster import ClusterSimulator, IterationTiming

Feeds = Dict[str, np.ndarray]
LossFn = Callable[[Mapping[str, np.ndarray], Feeds], float]


@dataclass
class TrainingResult:
    """Outcome of a simulated distributed training run."""

    model: Dict[str, np.ndarray]
    loss_history: List[float] = field(default_factory=list)
    iterations: int = 0
    simulated_seconds: float = 0.0
    iteration_timing: Optional[IterationTiming] = None

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


class DistributedTrainer:
    """Trains one DSL program across simulated nodes and threads."""

    def __init__(
        self,
        translation: Translation,
        nodes: int = 1,
        threads_per_node: int = 1,
        cluster: Optional[ClusterSimulator] = None,
        seed: int = 0,
    ):
        if nodes < 1 or threads_per_node < 1:
            raise ValueError("need at least one node and one thread")
        self._translation = translation
        self._interp = Interpreter(translation.dfg)
        self.nodes = nodes
        self.threads_per_node = threads_per_node
        self.workers = nodes * threads_per_node
        self._cluster = cluster
        self._rng = np.random.default_rng(seed)

    # -- model handling ----------------------------------------------------
    def initial_model(self, scale: float = 0.0) -> Dict[str, np.ndarray]:
        """Zero (or small random) arrays for every MODEL input."""
        model: Dict[str, np.ndarray] = {}
        for value in self._translation.dfg.inputs_of_category(ir.MODEL):
            shape = self._translation.dfg.shape(value)
            if scale:
                model[value.name] = self._rng.normal(scale=scale, size=shape)
            else:
                model[value.name] = np.zeros(shape)
        return model

    # -- training ------------------------------------------------------------
    def train(
        self,
        feeds: Feeds,
        epochs: int = 1,
        minibatch_per_worker: Optional[int] = None,
        loss_fn: Optional[LossFn] = None,
        mode: str = "minibatch",
        model: Optional[Dict[str, np.ndarray]] = None,
        learning_rate: Optional[float] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        on_checkpoint: Optional[Callable[[Checkpoint], None]] = None,
        resume_from: Optional[Checkpoint] = None,
        max_iterations: Optional[int] = None,
    ) -> TrainingResult:
        """Run distributed training over ``feeds``.

        Args:
            feeds: DATA input name -> array with a leading sample axis.
            epochs: passes over the dataset.
            minibatch_per_worker: the paper's ``b`` divided among worker
                threads; defaults to the DSL-declared mini-batch spread
                over the workers.
            loss_fn: optional metric recorded once per iteration.
            mode: ``"minibatch"`` or ``"local_sgd"``.
            model: starting parameters (default: zeros).
            learning_rate: overrides the DSL ``mu``.
            checkpoint_every: auto-checkpoint every N iterations. The
                snapshot carries the RNG state *as of the epoch start*,
                so a restore replays the epoch's shuffle and continues
                bit-identically mid-epoch.
            checkpoint_dir: directory for auto-checkpoints
                (``ckpt_<iterations>.npz``); created if missing.
            on_checkpoint: callback fired with each auto-checkpoint.
            resume_from: continue a run from an auto-checkpoint: the
                model, loss history, iteration counter, and shuffle all
                pick up exactly where the snapshot was taken. ``epochs``
                still counts total epochs from the beginning.
            max_iterations: stop after this many *total* iterations —
                the fault tests use it to cut a run mid-epoch the way a
                crash would.
        """
        if mode not in ("minibatch", "local_sgd"):
            raise ValueError(f"unknown mode {mode!r}")
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        samples = _sample_count(feeds)
        if minibatch_per_worker is None:
            minibatch_per_worker = max(
                1, self._translation.minibatch // self.workers
            )
        mu = (
            self._translation.learning_rate
            if learning_rate is None
            else learning_rate
        )
        global_batch = minibatch_per_worker * self.workers
        iters_per_epoch = len(
            range(0, samples - global_batch + 1, global_batch)
        )

        start_epoch = 0
        skip_in_epoch = 0
        if resume_from is not None:
            model = {k: np.array(v) for k, v in resume_from.model.items()}
            if resume_from.rng_state is not None:
                self._rng.bit_generator.state = resume_from.rng_state
            start_epoch = resume_from.epoch
            skip_in_epoch = (
                resume_from.iterations - start_epoch * iters_per_epoch
            )
            if not 0 <= skip_in_epoch <= iters_per_epoch:
                raise ValueError(
                    f"checkpoint at iteration {resume_from.iterations} does "
                    f"not lie in epoch {resume_from.epoch} for this dataset/"
                    f"batch shape ({iters_per_epoch} iterations per epoch)"
                )
            result = TrainingResult(
                model=model,
                loss_history=list(resume_from.loss_history),
                iterations=resume_from.iterations,
            )
        else:
            model = dict(model) if model else self.initial_model()
            result = TrainingResult(model=model)

        if checkpoint_dir is not None:
            checkpoint_dir = Path(checkpoint_dir)
            checkpoint_dir.mkdir(parents=True, exist_ok=True)

        stopped = False
        for epoch in range(start_epoch, epochs):
            # Captured before the shuffle so a mid-epoch checkpoint can
            # replay this epoch's permutation identically on restore.
            epoch_rng_state = self._rng.bit_generator.state
            order = self._rng.permutation(samples)
            starts = range(0, samples - global_batch + 1, global_batch)
            for in_epoch, start in enumerate(starts):
                if epoch == start_epoch and in_epoch < skip_in_epoch:
                    continue
                batch_idx = order[start : start + global_batch]
                shards = np.array_split(batch_idx, self.workers)
                self.step(model, feeds, shards, mu, mode=mode)
                result.iterations += 1
                if loss_fn is not None:
                    result.loss_history.append(loss_fn(model, feeds))
                if (
                    checkpoint_every is not None
                    and result.iterations % checkpoint_every == 0
                ):
                    ckpt = Checkpoint(
                        model={k: np.array(v) for k, v in model.items()},
                        iterations=result.iterations,
                        epoch=epoch,
                        loss_history=list(result.loss_history),
                        rng_state=epoch_rng_state,
                    )
                    if checkpoint_dir is not None:
                        ckpt.save(
                            checkpoint_dir
                            / f"ckpt_{result.iterations:06d}.npz"
                        )
                    if on_checkpoint is not None:
                        on_checkpoint(ckpt)
                if (
                    max_iterations is not None
                    and result.iterations >= max_iterations
                ):
                    stopped = True
                    break
            if stopped:
                break

        if self._cluster is not None and result.iterations:
            timing = self._cluster.iteration(global_batch)
            result.iteration_timing = timing
            result.simulated_seconds = timing.total_s * result.iterations
        result.model = model
        return result

    def step(
        self,
        model: Dict[str, np.ndarray],
        feeds: Feeds,
        shards: List[np.ndarray],
        mu: float,
        mode: str = "minibatch",
        drop: Iterable[int] = (),
    ) -> bool:
        """One synchronous iteration over explicit sample-index shards.

        ``drop`` names shard indices whose partials never reached the
        aggregate — quorum-dropped stragglers or crashed workers. The
        aggregation runs over the survivors only, so degraded-mode
        convergence effects are real rather than modelled. Returns False
        (model untouched) when every shard was dropped or empty.
        """
        dropped = set(drop)
        survivors = [
            shard
            for index, shard in enumerate(shards)
            if index not in dropped and len(shard)
        ]
        if not survivors:
            return False
        if mode == "minibatch":
            self._step_minibatch(model, feeds, survivors, mu)
        elif mode == "local_sgd":
            self._step_local_sgd(model, feeds, survivors, mu)
        else:
            raise ValueError(f"unknown mode {mode!r}")
        return True

    # -- worker semantics ---------------------------------------------------
    def _step_minibatch(
        self,
        model: Dict[str, np.ndarray],
        feeds: Feeds,
        shards: List[np.ndarray],
        mu: float,
    ):
        spec = self._translation.aggregator
        partials: List[Dict[str, np.ndarray]] = []
        for shard in shards:
            if len(shard) == 0:
                continue
            shard_feeds = {k: v[shard] for k, v in feeds.items()}
            grads = self._interp.gradients({**shard_feeds, **model}, batch=True)
            partials.append({k: v.mean(axis=0) for k, v in grads.items()})
        for target, source in spec.pairs:
            stack = np.stack([p[source] for p in partials])
            agg = stack.mean(axis=0) if spec.kind == "mean" else stack.sum(axis=0)
            model[target] = model[target] - mu * agg

    def _step_local_sgd(
        self,
        model: Dict[str, np.ndarray],
        feeds: Feeds,
        shards: List[np.ndarray],
        mu: float,
    ):
        """Eq. 3a literally: each worker runs SGD on a model replica."""
        spec = self._translation.aggregator
        replicas: List[Dict[str, np.ndarray]] = []
        for shard in shards:
            if len(shard) == 0:
                continue
            replica = {k: v.copy() for k, v in model.items()}
            for sample in shard:
                sample_feeds = {k: v[sample] for k, v in feeds.items()}
                grads = self._interp.gradients({**sample_feeds, **replica})
                for target, source in spec.pairs:
                    replica[target] = replica[target] - mu * grads[source]
            replicas.append(replica)
        for name in model:
            stack = np.stack([r[name] for r in replicas])
            if spec.kind == "mean":
                model[name] = stack.mean(axis=0)
            else:
                model[name] = model[name] + (stack - model[name]).sum(axis=0)


def _sample_count(feeds: Feeds) -> int:
    counts = {np.asarray(v).shape[0] for v in feeds.values()}
    if len(counts) != 1:
        raise ValueError("all feeds must share one leading sample axis")
    return counts.pop()
