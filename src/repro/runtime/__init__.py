"""CoSMIC system layer: roles, networking, thread pools, and training."""

from .async_sgd import (
    StaleTrainingResult,
    async_batch_seconds,
    stale_train,
    sync_batch_seconds,
)
from .checkpoint import Checkpoint, checkpoint_trainer, restore_trainer
from .cluster import (
    ClusterSimulator,
    ClusterSpec,
    IterationTiming,
    QuorumConfig,
)
from .faults import (
    FaultSpec,
    FaultTimeline,
    NodeCrash,
    Partition,
    apply_faults,
)
from .director import (
    ROLE_DELTA,
    ROLE_MASTER_SIGMA,
    ROLE_SIGMA,
    HeartbeatConfig,
    HeartbeatMonitor,
    NodeRole,
    Topology,
    assign_roles,
    default_groups,
    rebuild_topology,
    rehierarchy_seconds,
)
from .events import EventLoop, Resource
from .network import Network, NetworkConfig, Nic, RetryPolicy
from .recovery import (
    SCENARIOS,
    ChaosResult,
    FaultToleranceConfig,
    RecoveryEvent,
    chaos_train,
    scenario_timeline,
)
from .schedule import (
    ScheduleTrace,
    record_schedule,
    replay_disabled,
    replay_enabled,
    replay_iteration,
)
from .threads import CircularBuffer, PoolConfig, SigmaPipeline, WorkerPool
from .trainer import DistributedTrainer, TrainingResult

__all__ = [
    "ChaosResult",
    "Checkpoint",
    "checkpoint_trainer",
    "restore_trainer",
    "chaos_train",
    "CircularBuffer",
    "FaultTimeline",
    "FaultToleranceConfig",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "NodeCrash",
    "Partition",
    "QuorumConfig",
    "RecoveryEvent",
    "RetryPolicy",
    "SCENARIOS",
    "rebuild_topology",
    "rehierarchy_seconds",
    "scenario_timeline",
    "StaleTrainingResult",
    "async_batch_seconds",
    "stale_train",
    "sync_batch_seconds",
    "ClusterSimulator",
    "ClusterSpec",
    "DistributedTrainer",
    "EventLoop",
    "FaultSpec",
    "apply_faults",
    "IterationTiming",
    "Network",
    "NetworkConfig",
    "Nic",
    "NodeRole",
    "PoolConfig",
    "ROLE_DELTA",
    "ROLE_MASTER_SIGMA",
    "ROLE_SIGMA",
    "Resource",
    "ScheduleTrace",
    "record_schedule",
    "replay_disabled",
    "replay_enabled",
    "replay_iteration",
    "SigmaPipeline",
    "Topology",
    "TrainingResult",
    "WorkerPool",
    "assign_roles",
    "default_groups",
]
