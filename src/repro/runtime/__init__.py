"""CoSMIC system layer: roles, networking, thread pools, and training."""

from .async_sgd import (
    StaleTrainingResult,
    async_batch_seconds,
    stale_train,
    sync_batch_seconds,
)
from .checkpoint import Checkpoint, checkpoint_trainer, restore_trainer
from .cluster import ClusterSimulator, ClusterSpec, IterationTiming
from .faults import FaultSpec, apply_faults
from .director import (
    ROLE_DELTA,
    ROLE_MASTER_SIGMA,
    ROLE_SIGMA,
    NodeRole,
    Topology,
    assign_roles,
    default_groups,
)
from .events import EventLoop, Resource
from .network import Network, NetworkConfig, Nic
from .threads import CircularBuffer, PoolConfig, SigmaPipeline, WorkerPool
from .trainer import DistributedTrainer, TrainingResult

__all__ = [
    "Checkpoint",
    "checkpoint_trainer",
    "restore_trainer",
    "CircularBuffer",
    "StaleTrainingResult",
    "async_batch_seconds",
    "stale_train",
    "sync_batch_seconds",
    "ClusterSimulator",
    "ClusterSpec",
    "DistributedTrainer",
    "EventLoop",
    "FaultSpec",
    "apply_faults",
    "IterationTiming",
    "Network",
    "NetworkConfig",
    "Nic",
    "NodeRole",
    "PoolConfig",
    "ROLE_DELTA",
    "ROLE_MASTER_SIGMA",
    "ROLE_SIGMA",
    "Resource",
    "SigmaPipeline",
    "Topology",
    "TrainingResult",
    "WorkerPool",
    "assign_roles",
    "default_groups",
]
