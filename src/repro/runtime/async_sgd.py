"""Asynchronous (stale-gradient) training: the barrier-free variant.

The paper's runtime is synchronous: every iteration waits for all nodes
(Eq. 3's aggregation is a barrier), so one straggler stalls the fleet —
quantified by the straggler ablation. The literature CoSMIC builds on
("Slow learners are fast" [22]) removes the barrier: workers compute
gradients against a *stale* model and the Sigma applies them as they
arrive. This module adds both halves:

* **functional**: :func:`stale_train` runs distributed SGD where worker
  ``j``'s gradient at step ``t`` is computed on the model from step
  ``t - s_j`` (bounded staleness); convergence degrades gracefully with
  the staleness bound, which tests verify;
* **timing**: :func:`async_batch_seconds` prices a global batch without
  the barrier — nodes pipeline independently, so a straggler only
  reduces its own contribution instead of stalling everyone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from ..dfg.interpreter import Interpreter
from ..dfg.translate import Translation
from .faults import FaultSpec

Feeds = Dict[str, np.ndarray]


@dataclass
class StaleTrainingResult:
    model: Dict[str, np.ndarray]
    loss_history: List[float]
    iterations: int
    max_staleness: int

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")


def stale_train(
    translation: Translation,
    feeds: Feeds,
    workers: int,
    staleness: int,
    epochs: int = 1,
    minibatch_per_worker: int = 32,
    loss_fn: Optional[Callable] = None,
    learning_rate: Optional[float] = None,
    model: Optional[Dict[str, np.ndarray]] = None,
    seed: int = 0,
) -> StaleTrainingResult:
    """Distributed SGD with bounded-staleness gradients.

    Worker ``j`` reads the model ``j % (staleness + 1)`` steps old —
    a deterministic mixture of delays up to the bound, as a heterogeneous
    fleet produces. ``staleness=0`` reduces exactly to the synchronous
    mini-batch step.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    if staleness < 0:
        raise ValueError("staleness must be non-negative")
    interp = Interpreter(translation.dfg)
    spec = translation.aggregator
    mu = (
        translation.learning_rate if learning_rate is None else learning_rate
    )
    rng = np.random.default_rng(seed)
    samples = next(iter(feeds.values())).shape[0]
    if model is None:
        from .trainer import DistributedTrainer

        model = DistributedTrainer(translation).initial_model()
    model = {k: np.array(v) for k, v in model.items()}
    history: deque = deque(maxlen=staleness + 1)
    history.append({k: v.copy() for k, v in model.items()})

    result = StaleTrainingResult(model, [], 0, staleness)
    global_batch = workers * minibatch_per_worker
    for _ in range(epochs):
        order = rng.permutation(samples)
        for start in range(0, samples - global_batch + 1, global_batch):
            batch = order[start : start + global_batch]
            shards = np.array_split(batch, workers)
            partials = []
            for j, shard in enumerate(shards):
                if len(shard) == 0:
                    continue
                delay = min(j % (staleness + 1), len(history) - 1)
                stale_model = history[-(delay + 1)]
                shard_feeds = {k: v[shard] for k, v in feeds.items()}
                grads = interp.gradients(
                    {**shard_feeds, **stale_model}, batch=True
                )
                partials.append({k: v.mean(axis=0) for k, v in grads.items()})
            for target, source in spec.pairs:
                stack = np.stack([p[source] for p in partials])
                agg = (
                    stack.mean(axis=0)
                    if spec.kind == "mean"
                    else stack.sum(axis=0)
                )
                model[target] = model[target] - mu * agg
            history.append({k: v.copy() for k, v in model.items()})
            result.iterations += 1
            if loss_fn is not None:
                result.loss_history.append(loss_fn(model, feeds))
    result.model = model
    return result


def async_batch_seconds(
    compute_seconds: Mapping[int, float],
    update_bytes: int,
    network_bps: float = 1e9,
    faults: Optional[FaultSpec] = None,
) -> float:
    """Wall time for one global batch without the aggregation barrier.

    Each node pipelines compute with shipping its update; the fleet's
    throughput is the *sum* of node rates, so the time for everyone to
    contribute once is set by the slowest node's own period only for its
    own share — the fleet does not wait.

    Args:
        compute_seconds: node id -> seconds for its local batch share.
        update_bytes: model update size on the wire.
        network_bps: per-node line rate.
        faults: optional straggler/link fault spec.
    """
    if not compute_seconds:
        raise ValueError("need at least one node")
    faults = faults or FaultSpec()
    wire = update_bytes * 8.0 / network_bps
    periods = {}
    for node, base in compute_seconds.items():
        compute = base * faults.compute_factor(node)
        send = wire * faults.network_factor(node) + faults.expected_retransmit_s(
            node
        )
        periods[node] = max(compute, send)
    # One global batch = every node contributes its share once; with no
    # barrier, contributions overlap fully, so the batch completes when
    # the mean period elapses (rate-weighted), bounded by reality: at
    # least one full period of some node must pass.
    rates = [1.0 / p for p in periods.values()]
    batch_time = len(periods) / sum(rates)  # harmonic mean of periods
    return max(batch_time, min(periods.values()))


def sync_batch_seconds(
    compute_seconds: Mapping[int, float],
    update_bytes: int,
    network_bps: float = 1e9,
    faults: Optional[FaultSpec] = None,
) -> float:
    """The synchronous counterpart: the barrier means max, not mean."""
    if not compute_seconds:
        raise ValueError("need at least one node")
    faults = faults or FaultSpec()
    wire = update_bytes * 8.0 / network_bps
    worst = 0.0
    for node, base in compute_seconds.items():
        compute = base * faults.compute_factor(node)
        send = wire * faults.network_factor(node) + faults.expected_retransmit_s(
            node
        )
        worst = max(worst, compute + send)
    return worst
