"""Internally-managed thread pools and the circular buffer (Section 3).

The Sigma-node system software avoids generic OS thread management by
keeping two fixed pools: the Networking Pool copies received chunks from
kernel socket buffers into a Circular Buffer, and the Aggregation Pool
consumes chunks from it, updating the Aggregation Buffer. Networking
threads are producers, aggregation threads consumers; the circular buffer
bounds memory and provides backpressure while letting communication and
computation overlap.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from .events import Resource


@dataclass(frozen=True)
class PoolConfig:
    """Service rates of the two pools on the host CPU.

    ``copy_bytes_per_s`` is a kernel-to-user memcpy; ``aggregate_bytes_per_s``
    is a vectorised AXPY over the aggregation buffer. Both derive from the
    Xeon E3's memory system; thread counts default to the paper's setup of
    a small fixed pool per role on the quad-core host.
    """

    networking_threads: int = 2
    aggregation_threads: int = 2
    copy_bytes_per_s: float = 6e9
    aggregate_bytes_per_s: float = 4e9
    wakeup_overhead_s: float = 2e-6  # epoll event dispatch, no thread spawn


class WorkerPool:
    """A fixed set of workers, each serially reusable."""

    def __init__(self, name: str, workers: int):
        if workers < 1:
            raise ValueError("a pool needs at least one worker")
        self._workers = [Resource(f"{name}[{i}]") for i in range(workers)]

    def dispatch(self, earliest: float, duration: float) -> float:
        """Run one work item on the first worker free; returns finish time."""
        worker = min(self._workers, key=lambda w: max(w.free_at, earliest))
        start = worker.acquire(earliest, duration)
        return start + duration

    @property
    def size(self) -> int:
        return len(self._workers)

    def busy_seconds(self) -> float:
        return sum(w.busy_seconds for w in self._workers)


class CircularBuffer:
    """Bounded producer-consumer staging between the two pools.

    Tracks occupancy over simulated time: a producer finishing a copy at
    time ``t`` must wait until the consumer has freed enough space. The
    buffer is deliberately small — "the Circular Buffer reduces the memory
    required for aggregating partial results from multiple sources while
    enabling overlap between communication and computation".
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        #: (free_time, nbytes) chunks currently occupying space
        self._occupied: deque = deque()
        self._used = 0
        self.peak_used = 0
        self.stall_seconds = 0.0

    @property
    def used_bytes(self) -> int:
        return self._used

    def reserve(self, when: float, nbytes: int, free_time: float) -> float:
        """Claim ``nbytes`` at or after ``when``; returns the actual time.

        ``free_time`` is when the consumer will release this chunk. If the
        buffer is full, the producer stalls until enough chunks drain.
        """
        if nbytes > self.capacity_bytes:
            raise ValueError("chunk larger than the whole circular buffer")
        start = when
        self._drain(start)
        while self._used + nbytes > self.capacity_bytes:
            if not self._occupied:
                raise RuntimeError("buffer full but nothing draining")
            next_free = self._occupied[0][0]
            self.stall_seconds += max(0.0, next_free - start)
            start = max(start, next_free)
            self._drain(start)
        self._occupied.append((free_time, nbytes))
        self._occupied = deque(sorted(self._occupied))
        self._used += nbytes
        self.peak_used = max(self.peak_used, self._used)
        return start

    def _drain(self, now: float):
        while self._occupied and self._occupied[0][0] <= now:
            _, nbytes = self._occupied.popleft()
            self._used -= nbytes


class SigmaPipeline:
    """The receive-copy-aggregate pipeline of a Sigma node (Figure 2)."""

    def __init__(self, config: PoolConfig, buffer_bytes: int = 4 * 1024 * 1024):
        self.config = config
        self.networking = WorkerPool("net", config.networking_threads)
        self.aggregation = WorkerPool("agg", config.aggregation_threads)
        self.buffer = CircularBuffer(buffer_bytes)
        self._aggregated_until = 0.0
        self.bytes_aggregated = 0

    def on_chunk(self, arrival: float, nbytes: int) -> float:
        """Process one received chunk; returns its aggregation finish time.

        The Incoming Network Handler catches the epoll event, a networking
        thread copies the chunk into the circular buffer, and an
        aggregation thread folds it into the aggregation buffer.
        """
        cfg = self.config
        copy_s = nbytes / cfg.copy_bytes_per_s
        agg_s = nbytes / cfg.aggregate_bytes_per_s
        copy_done = self.networking.dispatch(
            arrival + cfg.wakeup_overhead_s, copy_s
        )
        free_time_guess = copy_done + agg_s
        reserved = self.buffer.reserve(copy_done - copy_s, nbytes, free_time_guess)
        copy_done = reserved + copy_s
        agg_done = self.aggregation.dispatch(copy_done, agg_s)
        self._aggregated_until = max(self._aggregated_until, agg_done)
        self.bytes_aggregated += nbytes
        return agg_done

    def fold_local(self, ready: float, nbytes: int) -> float:
        """Fold the node's *own* partial update into the aggregate.

        The local partial is already in host memory (DMA'd from the
        accelerator), so it skips the socket copy and the circular buffer
        and goes straight to an aggregation worker.
        """
        agg_s = nbytes / self.config.aggregate_bytes_per_s
        agg_done = self.aggregation.dispatch(ready, agg_s)
        self._aggregated_until = max(self._aggregated_until, agg_done)
        self.bytes_aggregated += nbytes
        return agg_done

    @property
    def drained_at(self) -> float:
        """Time the last chunk so far was folded into the aggregate."""
        return self._aggregated_until
