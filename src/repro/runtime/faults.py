"""Fault and variability injection for the cluster simulation.

The paper evaluates a healthy cluster; any production deployment of a
synchronous-aggregation design must also answer "what does one slow or
flaky node cost?". This module injects three deterministic, seedable
fault classes into :class:`repro.runtime.cluster.ClusterSimulator`:

* **stragglers** — a node's accelerator/host runs slower by a factor
  (thermal throttling, a noisy co-tenant, a degraded DIMM);
* **degraded links** — a node's NIC sustains a fraction of line rate
  (auto-negotiation fallback, a bad cable);
* **transient drops** — a fraction of a node's messages need a
  retransmit, adding a timeout penalty.

Because the aggregation in Eq. 3b is a barrier, iteration time is the max
over nodes — a single straggler is expected to dominate, which the
ablation benchmarks quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import math


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault assignment for a cluster.

    Attributes map node id -> severity:
        straggler: compute-time multiplier (>1 is slower).
        link_quality: fraction of NIC line rate the node sustains (0-1].
        drop_rate: probability a message needs one retransmit.
        retransmit_timeout_s: the penalty per retransmitted message.
    """

    straggler: Dict[int, float] = field(default_factory=dict)
    link_quality: Dict[int, float] = field(default_factory=dict)
    drop_rate: Dict[int, float] = field(default_factory=dict)
    retransmit_timeout_s: float = 200e-3  # TCP RTO floor

    def __post_init__(self):
        for node, factor in self.straggler.items():
            if factor < 1.0:
                raise ValueError(
                    f"straggler factor for node {node} must be >= 1"
                )
        for node, quality in self.link_quality.items():
            if not 0.0 < quality <= 1.0:
                raise ValueError(
                    f"link quality for node {node} must be in (0, 1]"
                )
        for node, rate in self.drop_rate.items():
            if not 0.0 <= rate < 1.0:
                raise ValueError(
                    f"drop rate for node {node} must be in [0, 1)"
                )

    def compute_factor(self, node_id: int) -> float:
        return self.straggler.get(node_id, 1.0)

    def network_factor(self, node_id: int) -> float:
        """Effective wire-time multiplier for the node's messages."""
        quality = self.link_quality.get(node_id, 1.0)
        return 1.0 / quality

    def expected_retransmit_s(self, node_id: int) -> float:
        """Expected extra latency per message from transient drops."""
        rate = self.drop_rate.get(node_id, 0.0)
        if rate <= 0:
            return 0.0
        # Geometric retries: rate/(1-rate) expected retransmits.
        return self.retransmit_timeout_s * rate / (1.0 - rate)

    @classmethod
    def single_straggler(cls, node_id: int, factor: float) -> "FaultSpec":
        """The canonical experiment: one node ``factor``x slower."""
        return cls(straggler={node_id: factor})

    @classmethod
    def uniform_jitter(
        cls, nodes: int, sigma: float, seed: int = 0
    ) -> "FaultSpec":
        """Log-normal per-node compute variability (fleet heterogeneity)."""
        import numpy as np

        rng = np.random.default_rng(seed)
        factors = np.exp(np.abs(rng.normal(0.0, sigma, size=nodes)))
        return cls(
            straggler={i: float(max(1.0, f)) for i, f in enumerate(factors)}
        )


def faulty_compute(compute_seconds, faults: FaultSpec):
    """Wrap a ``(node_id, samples) -> seconds`` model with stragglers."""

    def wrapped(node_id: int, samples: int) -> float:
        return compute_seconds(node_id, samples) * faults.compute_factor(
            node_id
        )

    return wrapped


def degraded_network_seconds(
    base_seconds: float, node_id: int, faults: FaultSpec
) -> float:
    """Wire time for one message from/to a degraded node."""
    return (
        base_seconds * faults.network_factor(node_id)
        + faults.expected_retransmit_s(node_id)
    )


def straggler_slowdown(
    iteration_total_s: float, healthy_total_s: float
) -> float:
    """Relative cost of the injected faults for one iteration."""
    if healthy_total_s <= 0:
        return math.inf
    return iteration_total_s / healthy_total_s


def apply_faults(simulator, faults: Optional[FaultSpec]):
    """Return a fault-injected clone of a ClusterSimulator.

    Stragglers wrap the compute model; link degradation scales the wire
    bandwidth of the cluster's network config (conservatively applying
    the worst degraded node to the shared aggregation paths, since the
    Sigma's receive schedule serialises on the slowest sender).
    """
    from .cluster import ClusterSimulator, ClusterSpec
    from .network import NetworkConfig

    if faults is None:
        return simulator
    spec = simulator.spec
    worst_link = max(
        (faults.network_factor(r.node_id) for r in simulator.topology.roles),
        default=1.0,
    )
    worst_retry = max(
        (
            faults.expected_retransmit_s(r.node_id)
            for r in simulator.topology.roles
        ),
        default=0.0,
    )
    network = NetworkConfig(
        bandwidth_bps=spec.network.bandwidth_bps / worst_link,
        latency_s=spec.network.latency_s + worst_retry,
        per_message_overhead_s=spec.network.per_message_overhead_s,
        per_chunk_overhead_s=spec.network.per_chunk_overhead_s,
        chunk_bytes=spec.network.chunk_bytes,
    )
    new_spec = ClusterSpec(
        nodes=spec.nodes,
        groups=spec.groups,
        network=network,
        pools=spec.pools,
        management_overhead_s=spec.management_overhead_s,
    )
    return ClusterSimulator(
        new_spec,
        faulty_compute(simulator._compute_seconds, faults),
        simulator.update_bytes,
    )
