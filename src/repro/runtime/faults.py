"""Fault and variability injection for the cluster simulation.

The paper evaluates a healthy cluster; any production deployment of a
synchronous-aggregation design must also answer "what does one slow or
flaky node cost?". This module injects three deterministic, seedable
fault classes into :class:`repro.runtime.cluster.ClusterSimulator`:

* **stragglers** — a node's accelerator/host runs slower by a factor
  (thermal throttling, a noisy co-tenant, a degraded DIMM);
* **degraded links** — a node's NIC sustains a fraction of line rate
  (auto-negotiation fallback, a bad cable);
* **transient drops** — a fraction of a node's messages need a
  retransmit, adding a timeout penalty.

Because the aggregation in Eq. 3b is a barrier, iteration time is the max
over nodes — a single straggler is expected to dominate, which the
ablation benchmarks quantify.

Beyond degradation, the module also models *failure*: a
:class:`FaultTimeline` is a seedable, deterministic schedule of node
crashes (permanent or crash-then-recover) and network partitions, keyed
by node id and simulated time. The fault-tolerant runtime
(:mod:`repro.runtime.recovery`) consumes the timeline to drive heartbeat
detection, Sigma failover, and checkpoint-based recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import math


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault assignment for a cluster.

    Attributes map node id -> severity:
        straggler: compute-time multiplier (>1 is slower).
        link_quality: fraction of NIC line rate the node sustains (0-1].
        drop_rate: probability a message needs one retransmit.
        retransmit_timeout_s: the penalty per retransmitted message.
    """

    straggler: Dict[int, float] = field(default_factory=dict)
    link_quality: Dict[int, float] = field(default_factory=dict)
    drop_rate: Dict[int, float] = field(default_factory=dict)
    retransmit_timeout_s: float = 200e-3  # TCP RTO floor

    def __post_init__(self):
        for node, factor in self.straggler.items():
            if factor < 1.0:
                raise ValueError(
                    f"straggler factor for node {node} must be >= 1"
                )
        for node, quality in self.link_quality.items():
            if not 0.0 < quality <= 1.0:
                raise ValueError(
                    f"link quality for node {node} must be in (0, 1]"
                )
        for node, rate in self.drop_rate.items():
            if not 0.0 <= rate < 1.0:
                raise ValueError(
                    f"drop rate for node {node} must be in [0, 1); a rate "
                    "of 1 would mean every retransmit also drops, i.e. an "
                    "unreachable node — use a FaultTimeline crash for that"
                )
        if not self.retransmit_timeout_s > 0.0:
            raise ValueError(
                "retransmit timeout must be positive (a zero or negative "
                f"timeout makes drops free), got {self.retransmit_timeout_s}"
            )

    def compute_factor(self, node_id: int) -> float:
        return self.straggler.get(node_id, 1.0)

    def network_factor(self, node_id: int) -> float:
        """Effective wire-time multiplier for the node's messages."""
        quality = self.link_quality.get(node_id, 1.0)
        return 1.0 / quality

    def expected_retransmit_s(self, node_id: int) -> float:
        """Expected extra latency per message from transient drops."""
        rate = self.drop_rate.get(node_id, 0.0)
        if rate <= 0:
            return 0.0
        # Geometric retries: rate/(1-rate) expected retransmits.
        return self.retransmit_timeout_s * rate / (1.0 - rate)

    @classmethod
    def single_straggler(cls, node_id: int, factor: float) -> "FaultSpec":
        """The canonical experiment: one node ``factor``x slower."""
        return cls(straggler={node_id: factor})

    @classmethod
    def uniform_jitter(
        cls, nodes: int, sigma: float, seed: int = 0
    ) -> "FaultSpec":
        """Log-normal per-node compute variability (fleet heterogeneity)."""
        import numpy as np

        rng = np.random.default_rng(seed)
        factors = np.exp(np.abs(rng.normal(0.0, sigma, size=nodes)))
        return cls(
            straggler={i: float(max(1.0, f)) for i, f in enumerate(factors)}
        )


def faulty_compute(compute_seconds, faults: FaultSpec):
    """Wrap a ``(node_id, samples) -> seconds`` model with stragglers."""

    def wrapped(node_id: int, samples: int) -> float:
        return compute_seconds(node_id, samples) * faults.compute_factor(
            node_id
        )

    return wrapped


def degraded_network_seconds(
    base_seconds: float, node_id: int, faults: FaultSpec
) -> float:
    """Wire time for one message from/to a degraded node."""
    return (
        base_seconds * faults.network_factor(node_id)
        + faults.expected_retransmit_s(node_id)
    )


def straggler_slowdown(
    iteration_total_s: float, healthy_total_s: float
) -> float:
    """Relative cost of the injected faults for one iteration."""
    if healthy_total_s <= 0:
        return math.inf
    return iteration_total_s / healthy_total_s


# ---------------------------------------------------------------------------
# Fault timeline: crashes, recoveries, and partitions over simulated time.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeCrash:
    """One node going down at ``at_s`` (and optionally back up).

    ``recover_s is None`` models a permanent failure (kernel panic, dead
    PSU); a finite ``recover_s`` models crash-then-recover (a reboot, an
    OOM-killed worker restarted by its supervisor).
    """

    node_id: int
    at_s: float
    recover_s: Optional[float] = None

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError(f"crash time must be >= 0, got {self.at_s}")
        if self.recover_s is not None and self.recover_s <= self.at_s:
            raise ValueError(
                f"node {self.node_id} recovery at {self.recover_s} must be "
                f"after its crash at {self.at_s}"
            )

    def down(self, t: float) -> bool:
        return self.at_s <= t and (
            self.recover_s is None or t < self.recover_s
        )


@dataclass(frozen=True)
class Partition:
    """A network partition isolating ``nodes`` during ``[start_s, end_s)``.

    Nodes inside the island can talk to each other; traffic across the
    cut is lost. Nodes on the far side of the cut from the master Sigma
    behave exactly like crashed nodes until the partition heals.
    """

    nodes: FrozenSet[int]
    start_s: float
    end_s: float

    def __post_init__(self):
        object.__setattr__(self, "nodes", frozenset(self.nodes))
        if not self.nodes:
            raise ValueError("a partition must isolate at least one node")
        if self.start_s < 0 or self.end_s <= self.start_s:
            raise ValueError(
                f"partition window [{self.start_s}, {self.end_s}) is empty "
                "or negative"
            )

    def active(self, t: float) -> bool:
        return self.start_s <= t < self.end_s

    def separates(self, a: int, b: int, t: float) -> bool:
        return self.active(t) and ((a in self.nodes) != (b in self.nodes))


@dataclass(frozen=True)
class FaultTimeline:
    """A deterministic schedule of crashes and partitions.

    The timeline is pure data: querying it never mutates state, so the
    same timeline replayed against the same seed yields bit-identical
    runs — the property tests rely on this.
    """

    crashes: Tuple[NodeCrash, ...] = ()
    partitions: Tuple[Partition, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        by_node: Dict[int, List[NodeCrash]] = {}
        for crash in self.crashes:
            by_node.setdefault(crash.node_id, []).append(crash)
        for node, events in by_node.items():
            events.sort(key=lambda c: c.at_s)
            for prev, cur in zip(events, events[1:]):
                if prev.recover_s is None or cur.at_s < prev.recover_s:
                    raise ValueError(
                        f"node {node} has overlapping crash intervals"
                    )

    def __bool__(self) -> bool:
        return bool(self.crashes or self.partitions)

    # -- queries -----------------------------------------------------------
    def alive(self, node_id: int, t: float) -> bool:
        return not any(
            c.node_id == node_id and c.down(t) for c in self.crashes
        )

    def isolated(self, a: int, b: int, t: float) -> bool:
        """True when a partition separates ``a`` from ``b`` at ``t``."""
        return any(p.separates(a, b, t) for p in self.partitions)

    def reachable(self, a: int, b: int, t: float) -> bool:
        """Both endpoints up and no partition across the path."""
        return (
            self.alive(a, t)
            and self.alive(b, t)
            and not self.isolated(a, b, t)
        )

    def up(self, node_id: int, t: float, anchor: int) -> bool:
        """Is ``node_id`` usable from ``anchor``'s (the master's) side?"""
        return self.alive(node_id, t) and not self.isolated(
            node_id, anchor, t
        )

    def change_times(self) -> List[float]:
        """Every instant the fault state changes, sorted ascending."""
        times = set()
        for c in self.crashes:
            times.add(c.at_s)
            if c.recover_s is not None:
                times.add(c.recover_s)
        for p in self.partitions:
            times.add(p.start_s)
            times.add(p.end_s)
        return sorted(times)

    def changes_in(self, t0: float, t1: float) -> List[float]:
        """Change instants in the half-open window ``(t0, t1]``."""
        return [t for t in self.change_times() if t0 < t <= t1]

    def first_outage_in(
        self, t0: float, t1: float, node_id: int, anchor: int
    ) -> Optional[float]:
        """Earliest change in ``(t0, t1]`` that takes ``node_id`` down."""
        for t in self.changes_in(t0, t1):
            if not self.up(node_id, t, anchor):
                return t
        return None

    # -- factories ---------------------------------------------------------
    @classmethod
    def from_iterations(
        cls,
        iteration_s: float,
        crashes: Optional[Dict[int, float]] = None,
        recoveries: Optional[Dict[int, float]] = None,
        partitions: Iterable[Tuple[Iterable[int], float, float]] = (),
    ) -> "FaultTimeline":
        """Build a timeline keyed by *iteration index* instead of seconds.

        ``crashes[node] = k`` downs the node ``k`` iterations in (fractions
        land mid-iteration); ``recoveries[node]`` brings it back.
        """
        if iteration_s <= 0:
            raise ValueError("iteration_s must be positive")
        crashes = crashes or {}
        recoveries = recoveries or {}
        for node in recoveries:
            if node not in crashes:
                raise ValueError(
                    f"node {node} recovers but never crashes"
                )
        crash_events = tuple(
            NodeCrash(
                node,
                at_s=k * iteration_s,
                recover_s=(
                    recoveries[node] * iteration_s
                    if node in recoveries
                    else None
                ),
            )
            for node, k in sorted(crashes.items())
        )
        partition_events = tuple(
            Partition(frozenset(nodes), k0 * iteration_s, k1 * iteration_s)
            for nodes, k0, k1 in partitions
        )
        return cls(crashes=crash_events, partitions=partition_events)

    @classmethod
    def random(
        cls,
        nodes: int,
        horizon_s: float,
        crash_probability: float = 0.2,
        recover_fraction: float = 0.5,
        seed: int = 0,
        spare: Iterable[int] = (0,),
    ) -> "FaultTimeline":
        """A seeded random chaos schedule (the ``flaky`` scenario).

        Nodes in ``spare`` never crash, guaranteeing survivors; every
        other node crashes with ``crash_probability``, and a crashed node
        recovers later with probability ``recover_fraction``.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        spare_set = set(spare)
        crashes = []
        for node in range(nodes):
            if node in spare_set:
                continue
            if rng.random() >= crash_probability:
                continue
            at = float(rng.uniform(0.1, 0.8) * horizon_s)
            recover = None
            if rng.random() < recover_fraction:
                recover = float(at + rng.uniform(0.1, 0.5) * horizon_s)
            crashes.append(NodeCrash(node, at, recover))
        return cls(crashes=tuple(crashes))


def apply_faults(simulator, faults: Optional[FaultSpec]):
    """Return a fault-injected clone of a ClusterSimulator.

    Stragglers wrap the compute model; link degradation scales the wire
    bandwidth of the cluster's network config (conservatively applying
    the worst degraded node to the shared aggregation paths, since the
    Sigma's receive schedule serialises on the slowest sender).
    """
    from .cluster import ClusterSimulator, ClusterSpec
    from .network import NetworkConfig

    if faults is None:
        return simulator
    spec = simulator.spec
    worst_link = max(
        (faults.network_factor(r.node_id) for r in simulator.topology.roles),
        default=1.0,
    )
    worst_retry = max(
        (
            faults.expected_retransmit_s(r.node_id)
            for r in simulator.topology.roles
        ),
        default=0.0,
    )
    network = NetworkConfig(
        bandwidth_bps=spec.network.bandwidth_bps / worst_link,
        latency_s=spec.network.latency_s + worst_retry,
        per_message_overhead_s=spec.network.per_message_overhead_s,
        per_chunk_overhead_s=spec.network.per_chunk_overhead_s,
        chunk_bytes=spec.network.chunk_bytes,
    )
    new_spec = ClusterSpec(
        nodes=spec.nodes,
        groups=spec.groups,
        network=network,
        pools=spec.pools,
        management_overhead_s=spec.management_overhead_s,
    )
    return ClusterSimulator(
        new_spec,
        faulty_compute(simulator._compute_seconds, faults),
        simulator.update_bytes,
        topology=simulator.topology,
        faults=faults,
    )
