"""Fault-tolerant runtime: detection, failover, and recovery under chaos.

The paper's system layer (Sections 3, 4.3) is evaluated on a healthy
16-node cluster; this module answers what happens when nodes die. It
drives the functional trainer and the discrete-event cluster model
iteration by iteration against a :class:`~repro.runtime.faults.FaultTimeline`,
applying the classic distributed-training fault machinery:

* **heartbeat detection** — every node beats the Director on a fixed
  period; a silent node is declared dead after the timeout
  (:class:`~repro.runtime.director.HeartbeatConfig`);
* **Sigma failover** — a dead group Sigma is replaced by promoting one
  of its Deltas, a dead master Sigma by promoting a surviving Sigma, and
  the hierarchy is re-formed over the survivors
  (:func:`~repro.runtime.director.rebuild_topology`);
* **shard redistribution** — a dead Delta's share of every mini-batch is
  re-split across the survivors (the global batch is preserved);
* **quorum aggregation** — optional graceful degradation where a Sigma
  folds K-of-N partials after a straggler deadline
  (:class:`~repro.runtime.cluster.QuorumConfig`); dropped partials are
  excluded from the *functional* aggregate too, so the convergence cost
  is real;
* **checkpoint recovery** — the master auto-checkpoints every N
  iterations; when the master dies, the promoted replacement restores
  the latest snapshot and recomputes the lost iterations.

Every recovery component is charged to the simulated wall-clock:
detection latency, the retry budget burned on in-flight messages to the
dead node, the Director's re-hierarchy broadcast, and recomputation all
appear in ``ChaosResult.simulated_seconds``. The whole machine is
deterministic — same timeline, same seed, bit-identical run — which the
property tests exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..dfg.translate import Translation
from .checkpoint import Checkpoint
from .cluster import ClusterSimulator, ClusterSpec, ComputeFn, QuorumConfig
from .director import (
    HeartbeatConfig,
    Topology,
    assign_roles,
    rebuild_topology,
    rehierarchy_seconds,
)
from .faults import FaultTimeline
from .network import RetryPolicy
from .trainer import DistributedTrainer, Feeds, LossFn, _sample_count


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Knobs of the fault-tolerance machinery."""

    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    quorum: Optional[QuorumConfig] = None
    #: auto-checkpoint cadence in iterations
    checkpoint_every: int = 8
    #: where auto-checkpoints are written (None keeps them in memory only)
    checkpoint_dir: Optional[Union[str, Path]] = None

    def __post_init__(self):
        if self.checkpoint_every < 1:
            raise ValueError(
                "checkpoint cadence must be >= 1 iteration, got "
                f"{self.checkpoint_every}"
            )


@dataclass
class RecoveryEvent:
    """One fault handled by the runtime, with its full cost breakdown."""

    time_s: float  # simulated instant the fault struck
    kind: str  # "crash" | "partition" | "rejoin"
    nodes: List[int]
    detection_s: float = 0.0  # heartbeat silence until declared dead
    rehierarchy_s: float = 0.0  # retry budget + Director re-assignment
    rollback_iterations: int = 0  # iterations recomputed from checkpoint
    recompute_s: float = 0.0  # estimated cost of the recomputation
    total_s: float = 0.0  # end-to-end time-to-recovery for this fault
    promoted_master: Optional[int] = None  # new master, when failover ran


@dataclass
class ChaosResult:
    """Outcome of a fault-injected training run."""

    model: Dict[str, np.ndarray]
    loss_history: List[float] = field(default_factory=list)
    iterations: int = 0
    simulated_seconds: float = 0.0
    events: List[RecoveryEvent] = field(default_factory=list)
    dropped_partials: int = 0
    checkpoints_taken: int = 0
    topology: Optional[Topology] = None

    @property
    def final_loss(self) -> float:
        return self.loss_history[-1] if self.loss_history else float("nan")

    @property
    def time_to_recovery_s(self) -> float:
        """Worst single-fault recovery time (0 for a healthy run)."""
        costs = [e.total_s for e in self.events if e.kind != "rejoin"]
        return max(costs) if costs else 0.0

    def throughput_retained(self, healthy_seconds: float) -> float:
        """Useful-iteration rate relative to a healthy run's."""
        if self.simulated_seconds <= 0 or healthy_seconds <= 0:
            return 0.0
        return healthy_seconds / self.simulated_seconds


def chaos_train(
    translation: Translation,
    feeds: Feeds,
    spec: ClusterSpec,
    compute_seconds: ComputeFn,
    update_bytes: int,
    timeline: FaultTimeline = FaultTimeline(),
    config: FaultToleranceConfig = FaultToleranceConfig(),
    epochs: int = 1,
    threads_per_node: int = 1,
    minibatch_per_worker: Optional[int] = None,
    loss_fn: Optional[LossFn] = None,
    mode: str = "minibatch",
    model: Optional[Dict[str, np.ndarray]] = None,
    learning_rate: Optional[float] = None,
    seed: int = 0,
) -> ChaosResult:
    """Train under an injected fault timeline, with full recovery.

    The functional mathematics run through
    :meth:`DistributedTrainer.step` over the surviving workers each
    iteration; the timing runs through :class:`ClusterSimulator` over
    the current (possibly re-formed) topology. With an empty timeline
    and no quorum the run is bit-identical to ``DistributedTrainer.train``.
    """
    trainer = DistributedTrainer(
        translation,
        nodes=spec.nodes,
        threads_per_node=threads_per_node,
        seed=seed,
    )
    rng = trainer._rng
    samples = _sample_count(feeds)
    if minibatch_per_worker is None:
        minibatch_per_worker = max(1, translation.minibatch // trainer.workers)
    global_batch = minibatch_per_worker * trainer.workers
    iters_per_epoch = len(range(0, samples - global_batch + 1, global_batch))
    if iters_per_epoch == 0:
        raise ValueError(
            f"dataset of {samples} samples is smaller than one global "
            f"mini-batch of {global_batch}"
        )
    total_iterations = epochs * iters_per_epoch
    mu = (
        translation.learning_rate
        if learning_rate is None
        else learning_rate
    )
    model = dict(model) if model else trainer.initial_model()

    base_topo = assign_roles(spec.nodes, spec.groups)
    base_ids = {r.node_id for r in base_topo.roles}
    master = base_topo.master.node_id
    alive = {n for n in base_ids if timeline.up(n, 0.0, master)}
    result = ChaosResult(model=model)
    topo = base_topo
    if alive != base_ids:
        if not alive:
            raise ValueError("fault timeline downs every node at t=0")
        topo = rebuild_topology(base_topo, alive)
        master = topo.master.node_id
        result.events.append(
            RecoveryEvent(
                time_s=0.0,
                kind="crash",
                nodes=sorted(base_ids - alive),
                promoted_master=(
                    master if master != base_topo.master.node_id else None
                ),
            )
        )

    checkpoint_dir = (
        Path(config.checkpoint_dir) if config.checkpoint_dir else None
    )
    if checkpoint_dir is not None:
        checkpoint_dir.mkdir(parents=True, exist_ok=True)

    def snapshot(iterations: int, epoch: int, rng_state) -> Checkpoint:
        return Checkpoint(
            model={k: np.array(v) for k, v in model.items()},
            iterations=iterations,
            epoch=epoch,
            loss_history=list(result.loss_history),
            rng_state=rng_state,
        )

    last_ckpt = snapshot(0, 0, rng.bit_generator.state)

    timing_cache: Dict[Tuple, object] = {}

    def timing_for(topology: Topology):
        key = tuple(sorted(topology.roles, key=lambda r: r.node_id))
        if key not in timing_cache:
            # The timeline is this run's fault context: it keeps the
            # chaos iterations out of the healthy memo/schedule caches.
            sim = ClusterSimulator(
                spec,
                compute_seconds,
                update_bytes,
                topology=topology,
                faults=timeline if timeline else None,
            )
            timing_cache[key] = sim.iteration(
                global_batch, quorum=config.quorum
            )
        return timing_cache[key]

    clock = 0.0
    it = 0
    epoch = -1
    epoch_rng_state = None
    order = None

    while it < total_iterations:
        this_epoch, in_epoch = divmod(it, iters_per_epoch)
        if this_epoch != epoch:
            epoch = this_epoch
            epoch_rng_state = rng.bit_generator.state
            order = rng.permutation(samples)
        timing = timing_for(topo)
        iteration_end = clock + timing.total_s

        failed: Dict[int, float] = {}
        for node in sorted(alive):
            outage = timeline.first_outage_in(
                clock, iteration_end, node, master
            )
            if outage is not None:
                failed[node] = outage

        if failed:
            fault_t = min(failed.values())
            detected_at = config.heartbeat.detection_at(fault_t)
            detection_s = detected_at - fault_t
            # Survivors burn the retry budget on in-flight messages to
            # the dead node before giving up on it.
            abort_s = config.retry.give_up_after_s()
            alive = alive - set(failed)
            if not alive:
                raise RuntimeError(
                    f"fault timeline killed every node by t={fault_t:.3f}s"
                )
            master_died = master not in alive
            topo = rebuild_topology(
                base_topo,
                alive,
                prefer_master=None if master_died else master,
            )
            reh_s = abort_s + rehierarchy_seconds(
                len(alive), spec.network, spec.management_overhead_s
            )
            new_master = topo.master.node_id
            rollback = 0
            recompute_s = 0.0
            if master_died:
                # The authoritative model state died with the master:
                # the promoted Sigma restores the latest checkpoint and
                # the cluster recomputes the lost iterations.
                rollback = it - last_ckpt.iterations
                model.clear()
                model.update(
                    {k: np.array(v) for k, v in last_ckpt.model.items()}
                )
                del result.loss_history[last_ckpt.iterations:]
                if last_ckpt.rng_state is not None:
                    rng.bit_generator.state = last_ckpt.rng_state
                it = last_ckpt.iterations
                # Replay the checkpoint epoch's shuffle from the restored
                # state; if the checkpoint sat exactly on an epoch
                # boundary, this also advances the RNG past the finished
                # epoch so the next epoch's draw stays bit-identical.
                epoch = last_ckpt.epoch
                epoch_rng_state = last_ckpt.rng_state
                order = rng.permutation(samples)
                recompute_s = rollback * timing_for(topo).total_s
            kind = (
                "partition"
                if all(timeline.alive(n, t) for n, t in failed.items())
                else "crash"
            )
            clock = max(detected_at, fault_t) + reh_s
            result.events.append(
                RecoveryEvent(
                    time_s=fault_t,
                    kind=kind,
                    nodes=sorted(failed),
                    detection_s=detection_s,
                    rehierarchy_s=reh_s,
                    rollback_iterations=rollback,
                    recompute_s=recompute_s,
                    total_s=detection_s + reh_s + recompute_s,
                    promoted_master=new_master if master_died else None,
                )
            )
            master = new_master
            continue  # the interrupted iteration is redone, not counted

        # -- a clean iteration: functional step over the survivors ----------
        batch = order[in_epoch * global_batch : (in_epoch + 1) * global_batch]
        nodes_in_order = [
            r.node_id for r in sorted(topo.roles, key=lambda r: r.node_id)
        ]
        shards = np.array_split(
            batch, len(nodes_in_order) * threads_per_node
        )
        dropped_nodes = set(timing.dropped)
        drop = {
            index
            for index, _ in enumerate(shards)
            if nodes_in_order[index // threads_per_node] in dropped_nodes
        }
        trainer.step(model, feeds, shards, mu, mode=mode, drop=drop)
        result.dropped_partials += len(dropped_nodes)
        clock = iteration_end
        it += 1
        if loss_fn is not None:
            result.loss_history.append(loss_fn(model, feeds))
        if it % config.checkpoint_every == 0:
            last_ckpt = snapshot(it, epoch, epoch_rng_state)
            result.checkpoints_taken += 1
            if checkpoint_dir is not None:
                last_ckpt.save(checkpoint_dir / f"ckpt_{it:06d}.npz")

        # -- rejoins: recovered nodes re-enter at iteration boundaries ------
        returned = {
            n
            for n in base_ids - alive
            if timeline.up(n, clock, master)
        }
        if returned:
            alive |= returned
            topo = rebuild_topology(base_topo, alive, prefer_master=master)
            master = topo.master.node_id
            # State transfer: the rejoined node needs the current model.
            cost = (
                len(returned)
                * (
                    spec.network.wire_seconds(update_bytes)
                    + spec.network.per_message_overhead_s
                    + spec.network.latency_s
                )
                + spec.management_overhead_s
            )
            clock += cost
            result.events.append(
                RecoveryEvent(
                    time_s=clock,
                    kind="rejoin",
                    nodes=sorted(returned),
                    total_s=cost,
                )
            )

    result.iterations = it
    result.simulated_seconds = clock
    result.topology = topo
    return result


# ---------------------------------------------------------------------------
# Canned chaos scenarios (shared by the CLI and the chaos bench).
# ---------------------------------------------------------------------------

SCENARIOS = (
    "healthy",
    "delta-crash",
    "sigma-crash",
    "master-crash",
    "crash-recover",
    "partition",
    "flaky",
)


def scenario_timeline(
    name: str,
    topology: Topology,
    iteration_s: float,
    seed: int = 7,
) -> FaultTimeline:
    """A canonical fault timeline for one named chaos scenario.

    Fault instants are keyed to ``iteration_s`` (a healthy iteration's
    simulated duration) so every scenario strikes a few iterations into
    the run regardless of the modelled hardware.
    """
    if name not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}"
        )
    master = topology.master.node_id
    deltas = [r.node_id for r in topology.roles if r.sigma_id != r.node_id]
    other_sigmas = [
        s.node_id for s in topology.sigmas() if s.node_id != master
    ]
    if name == "healthy":
        return FaultTimeline()
    if name == "delta-crash":
        victim = deltas[-1] if deltas else _any_non_master(topology)
        return FaultTimeline.from_iterations(
            iteration_s, crashes={victim: 3.4}
        )
    if name == "sigma-crash":
        victim = (
            other_sigmas[0]
            if other_sigmas
            else (deltas[-1] if deltas else master)
        )
        return FaultTimeline.from_iterations(
            iteration_s, crashes={victim: 3.4}
        )
    if name == "master-crash":
        return FaultTimeline.from_iterations(
            iteration_s, crashes={master: 3.4}
        )
    if name == "crash-recover":
        victim = deltas[-1] if deltas else _any_non_master(topology)
        return FaultTimeline.from_iterations(
            iteration_s, crashes={victim: 2.4}, recoveries={victim: 6.7}
        )
    if name == "partition":
        far_group = max(r.group for r in topology.roles)
        island = [
            r.node_id
            for r in topology.group_members(far_group)
            if r.node_id != master
        ] or [deltas[-1]]
        return FaultTimeline.from_iterations(
            iteration_s, partitions=[(island, 2.4, 5.6)]
        )
    # "flaky": seeded random chaos sparing the master.
    return FaultTimeline.random(
        nodes=topology.nodes,
        horizon_s=10 * iteration_s,
        crash_probability=0.35,
        recover_fraction=0.5,
        seed=seed,
        spare=(master,),
    )


def _any_non_master(topology: Topology) -> int:
    master = topology.master.node_id
    others = [r.node_id for r in topology.roles if r.node_id != master]
    if not others:
        raise ValueError("a single-node cluster has nothing to kill")
    return others[0]
