"""Cluster network model: gigabit NICs behind a non-blocking switch.

Matches the evaluation cluster (Section 7.1): TP-Link gigabit NICs on a
24-port switch with full-duplex ports and a 48 Gbps backplane — so the
switch itself never saturates and contention happens at the endpoints'
NICs. Messages are chunked (socket-buffer sized) so that a Sigma node's
aggregation pipeline can start on the first chunk, exactly the
producer-consumer overlap the circular buffer enables (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .events import EventLoop, Resource


@dataclass(frozen=True)
class NetworkConfig:
    """Link and protocol parameters.

    ``per_message_overhead_s`` covers connection handling and kernel
    wake-up on each logical message; ``per_chunk_overhead_s`` is the
    TCP/IP per-segment cost that CoSMIC's epoll-driven handler amortises;
    ``chunk_bytes`` is the socket-buffer granularity at which data becomes
    visible to the receiver.
    """

    bandwidth_bps: float = 1e9
    latency_s: float = 50e-6
    per_message_overhead_s: float = 200e-6
    per_chunk_overhead_s: float = 5e-6
    chunk_bytes: int = 64 * 1024

    def wire_seconds(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.bandwidth_bps


class Nic:
    """Full-duplex endpoint: independent TX and RX serialisation."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.tx = Resource(f"nic{node_id}.tx")
        self.rx = Resource(f"nic{node_id}.rx")


class Network:
    """Chunked point-to-point transfers over per-node NICs."""

    def __init__(self, loop: EventLoop, config: NetworkConfig = NetworkConfig()):
        self._loop = loop
        self.config = config
        self._nics: Dict[int, Nic] = {}
        self.bytes_sent = 0
        self.messages_sent = 0

    def nic(self, node_id: int) -> Nic:
        if node_id not in self._nics:
            self._nics[node_id] = Nic(node_id)
        return self._nics[node_id]

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        start: float,
        on_chunk: Optional[Callable[[float, int], None]] = None,
        on_done: Optional[Callable[[float], None]] = None,
    ) -> float:
        """Simulate one logical message; returns the delivery-complete time.

        ``on_chunk(time, bytes)`` fires as each chunk lands in the
        receiver's socket buffer; ``on_done(time)`` fires once after the
        last chunk.
        """
        if src == dst:
            raise ValueError("loopback transfers are free; do not model them")
        if nbytes <= 0:
            raise ValueError("message must have a positive size")
        cfg = self.config
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        self.bytes_sent += nbytes
        self.messages_sent += 1

        cursor = start + cfg.per_message_overhead_s
        remaining = nbytes
        last_arrival = cursor
        while remaining > 0:
            chunk = min(remaining, cfg.chunk_bytes)
            remaining -= chunk
            wire = cfg.wire_seconds(chunk) + cfg.per_chunk_overhead_s
            tx_start = src_nic.tx.acquire(cursor, wire)
            arrival_earliest = tx_start + wire + cfg.latency_s
            rx_start = dst_nic.rx.acquire(arrival_earliest - wire, wire)
            arrival = rx_start + wire
            cursor = tx_start + wire  # next chunk queues behind this one
            last_arrival = max(last_arrival, arrival)
            if on_chunk is not None:
                self._loop.at(arrival, _bind_chunk(on_chunk, arrival, chunk))
        if on_done is not None:
            self._loop.at(last_arrival, _bind_done(on_done, last_arrival))
        return last_arrival


def _bind_chunk(fn: Callable[[float, int], None], time: float, size: int):
    return lambda: fn(time, size)


def _bind_done(fn: Callable[[float], None], time: float):
    return lambda: fn(time)
