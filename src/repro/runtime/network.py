"""Cluster network model: gigabit NICs behind a non-blocking switch.

Matches the evaluation cluster (Section 7.1): TP-Link gigabit NICs on a
24-port switch with full-duplex ports and a 48 Gbps backplane — so the
switch itself never saturates and contention happens at the endpoints'
NICs. Messages are chunked (socket-buffer sized) so that a Sigma node's
aggregation pipeline can start on the first chunk, exactly the
producer-consumer overlap the circular buffer enables (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from .events import EventLoop, Resource


@dataclass(frozen=True)
class NetworkConfig:
    """Link and protocol parameters.

    ``per_message_overhead_s`` covers connection handling and kernel
    wake-up on each logical message; ``per_chunk_overhead_s`` is the
    TCP/IP per-segment cost that CoSMIC's epoll-driven handler amortises;
    ``chunk_bytes`` is the socket-buffer granularity at which data becomes
    visible to the receiver.
    """

    bandwidth_bps: float = 1e9
    latency_s: float = 50e-6
    per_message_overhead_s: float = 200e-6
    per_chunk_overhead_s: float = 5e-6
    chunk_bytes: int = 64 * 1024

    def wire_seconds(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.bandwidth_bps


@dataclass(frozen=True)
class RetryPolicy:
    """Per-message timeout with exponential backoff.

    A sender whose peer stops acknowledging waits ``timeout_s``, then
    retries with the timeout scaled by ``backoff`` each attempt, up to
    ``max_retries`` retries before declaring the peer unreachable — the
    point at which the Director's failure handling takes over.
    """

    timeout_s: float = 0.25
    max_retries: int = 3
    backoff: float = 2.0

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError(
                f"per-message timeout must be positive, got {self.timeout_s}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if self.backoff < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1 (got {self.backoff}); a "
                "shrinking backoff would hammer a struggling peer"
            )

    def attempt_timeouts(self) -> list:
        """Timeout of each attempt: initial send plus every retry."""
        return [
            self.timeout_s * self.backoff**i
            for i in range(self.max_retries + 1)
        ]

    def give_up_after_s(self) -> float:
        """Wall-clock a sender burns before declaring the peer dead."""
        return sum(self.attempt_timeouts())


class Nic:
    """Full-duplex endpoint: independent TX and RX serialisation."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.tx = Resource(f"nic{node_id}.tx")
        self.rx = Resource(f"nic{node_id}.rx")


class Network:
    """Chunked point-to-point transfers over per-node NICs."""

    def __init__(self, loop: EventLoop, config: NetworkConfig = NetworkConfig()):
        self._loop = loop
        self.config = config
        self._nics: Dict[int, Nic] = {}
        self.bytes_sent = 0
        self.messages_sent = 0
        self.retries = 0
        self.messages_failed = 0
        #: Optional ScheduleRecorder capturing the event schedule — phase
        #: boundaries (use_loop) and every send — for schedule replay.
        self.recorder = None

    def nic(self, node_id: int) -> Nic:
        if node_id not in self._nics:
            self._nics[node_id] = Nic(node_id)
        return self._nics[node_id]

    def use_loop(self, loop: EventLoop):
        """Rebind callback dispatch to a fresh loop at a phase boundary.

        NIC bookings are absolute-time, so they carry across loops; a new
        loop lets a later phase schedule deliveries earlier than the
        previous phase's stragglers (e.g. a quorum window that closed
        while a dropped partial was still in flight)."""
        self._loop = loop
        if self.recorder is not None:
            self.recorder.on_phase()

    def send(
        self,
        src: int,
        dst: int,
        nbytes: int,
        start: float,
        on_chunk: Optional[Callable[[float, int], None]] = None,
        on_done: Optional[Callable[[float], None]] = None,
    ) -> float:
        """Simulate one logical message; returns the delivery-complete time.

        ``on_chunk(time, bytes)`` fires as each chunk lands in the
        receiver's socket buffer; ``on_done(time)`` fires once after the
        last chunk.
        """
        if src == dst:
            raise ValueError("loopback transfers are free; do not model them")
        if nbytes <= 0:
            raise ValueError("message must have a positive size")
        cfg = self.config
        src_nic = self.nic(src)
        dst_nic = self.nic(dst)
        self.bytes_sent += nbytes
        self.messages_sent += 1
        # Per-contributor arrival metadata for the schedule recorder: the
        # chunk arrival instants and the TX chain that produced them, in
        # booking order. Collected only while recording — the lists cost
        # an append per chunk on the hot event path otherwise.
        recording = self.recorder is not None
        chunk_arrivals = [] if recording else None
        chunk_tx_starts = [] if recording else None

        cursor = start + cfg.per_message_overhead_s
        remaining = nbytes
        last_arrival = cursor
        while remaining > 0:
            chunk = min(remaining, cfg.chunk_bytes)
            remaining -= chunk
            wire = cfg.wire_seconds(chunk) + cfg.per_chunk_overhead_s
            tx_start = src_nic.tx.acquire(cursor, wire)
            arrival_earliest = tx_start + wire + cfg.latency_s
            rx_start = dst_nic.rx.acquire(arrival_earliest - wire, wire)
            arrival = rx_start + wire
            cursor = tx_start + wire  # next chunk queues behind this one
            last_arrival = max(last_arrival, arrival)
            if recording:
                chunk_tx_starts.append(tx_start)
                chunk_arrivals.append(arrival)
            if on_chunk is not None:
                self._loop.at(arrival, _bind_chunk(on_chunk, arrival, chunk))
        if recording:
            self.recorder.on_send(
                src,
                dst,
                nbytes,
                start,
                len(chunk_arrivals),
                arrivals=chunk_arrivals,
                tx_starts=chunk_tx_starts,
            )
        if on_done is not None:
            self._loop.at(last_arrival, _bind_done(on_done, last_arrival))
        return last_arrival

    def send_reliable(
        self,
        src: int,
        dst: int,
        nbytes: int,
        start: float,
        reachable: Callable[[float], bool],
        policy: RetryPolicy = RetryPolicy(),
        on_chunk: Optional[Callable[[float, int], None]] = None,
        on_done: Optional[Callable[[float], None]] = None,
    ) -> Optional[float]:
        """``send`` with per-message timeout and exponential backoff.

        ``reachable(time)`` answers whether ``dst`` acknowledges at that
        instant (crashed/partitioned peers do not). Each failed attempt
        burns its timeout before the next try; after exhausting the retry
        budget the message is abandoned and ``None`` is returned — the
        total time burned is ``policy.give_up_after_s()``, which the
        recovery layer accounts against the failover clock.
        """
        cursor = start
        for attempt_timeout in policy.attempt_timeouts():
            if reachable(cursor):
                return self.send(src, dst, nbytes, cursor, on_chunk, on_done)
            cursor += attempt_timeout
            self.retries += 1
            if self.recorder is not None:
                self.recorder.on_retry(src, dst)
        self.messages_failed += 1
        return None


def _bind_chunk(fn: Callable[[float, int], None], time: float, size: int):
    return lambda: fn(time, size)


def _bind_done(fn: Callable[[float], None], time: float):
    return lambda: fn(time)
