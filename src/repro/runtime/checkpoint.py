"""Training checkpoints: durable snapshots of a distributed run.

A 100-epoch pass over the netflix workload is hours of simulated (and
real) time; production training checkpoints. A checkpoint captures the
model tensors, the iteration/epoch counters, the loss history, and the
trainer's RNG state, so a restored run continues *bit-identically* —
which the tests verify by comparing a checkpoint-resumed run against an
uninterrupted one.

Format: a single ``.npz`` (NumPy archive) with a JSON metadata entry —
portable, versioned, and inspectable without this library.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

FORMAT_VERSION = 1
_META_KEY = "__cosmic_meta__"
_MODEL_PREFIX = "model/"


@dataclass
class Checkpoint:
    """A restorable training snapshot."""

    model: Dict[str, np.ndarray]
    iterations: int = 0
    epoch: int = 0
    loss_history: List[float] = field(default_factory=list)
    rng_state: Optional[dict] = None
    benchmark: str = ""

    # -- persistence -------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        meta = {
            "format_version": FORMAT_VERSION,
            "iterations": self.iterations,
            "epoch": self.epoch,
            "loss_history": list(map(float, self.loss_history)),
            "benchmark": self.benchmark,
            "rng_state": _encode_rng(self.rng_state),
            "model_keys": sorted(self.model),
        }
        arrays = {
            _MODEL_PREFIX + name: np.asarray(tensor)
            for name, tensor in self.model.items()
        }
        arrays[_META_KEY] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Checkpoint":
        with np.load(Path(path)) as archive:
            meta = json.loads(bytes(archive[_META_KEY]).decode())
            if meta["format_version"] != FORMAT_VERSION:
                raise ValueError(
                    f"checkpoint version {meta['format_version']} not "
                    f"readable by this library (wants {FORMAT_VERSION})"
                )
            model = {
                key[len(_MODEL_PREFIX):]: archive[key]
                for key in archive.files
                if key.startswith(_MODEL_PREFIX)
            }
        if sorted(model) != meta["model_keys"]:
            raise ValueError("checkpoint model tensors do not match metadata")
        return cls(
            model=model,
            iterations=meta["iterations"],
            epoch=meta["epoch"],
            loss_history=meta["loss_history"],
            rng_state=_decode_rng(meta["rng_state"]),
            benchmark=meta["benchmark"],
        )

    # -- rng plumbing ---------------------------------------------------------
    @classmethod
    def capture_rng(cls, rng: np.random.Generator) -> dict:
        return rng.bit_generator.state

    def make_rng(self) -> np.random.Generator:
        """A generator continuing exactly where the checkpoint left off."""
        rng = np.random.default_rng(0)
        if self.rng_state is not None:
            rng.bit_generator.state = self.rng_state
        return rng


def _encode_rng(state: Optional[dict]):
    if state is None:
        return None
    return json.loads(json.dumps(state, default=int))


def _decode_rng(state):
    if state is None:
        return None
    # PCG64 state entries must be Python ints, which JSON preserves.
    return state


def checkpoint_trainer(
    trainer, result, epoch: int, benchmark: str = ""
) -> Checkpoint:
    """Snapshot a :class:`DistributedTrainer` mid-run.

    ``result`` is the (partial) TrainingResult so far; the trainer's RNG
    is captured so shuffling continues identically after restore.
    """
    return Checkpoint(
        model={k: np.array(v) for k, v in result.model.items()},
        iterations=result.iterations,
        epoch=epoch,
        loss_history=list(result.loss_history),
        rng_state=Checkpoint.capture_rng(trainer._rng),
        benchmark=benchmark,
    )


def restore_trainer(trainer, checkpoint: Checkpoint):
    """Point a trainer's RNG at the checkpointed stream; returns the
    model dict to pass into ``train(..., model=...)``."""
    if checkpoint.rng_state is not None:
        trainer._rng.bit_generator.state = checkpoint.rng_state
    return {k: np.array(v) for k, v in checkpoint.model.items()}
