"""The System Director: role assignment, hierarchy, failure detection.

The Director takes the system specification — total node count, number of
groups, accelerator type — and assigns each node a role: every group has
one Sigma node aggregating its Delta nodes' partial updates, and a master
Sigma combines the group aggregates. Sigma nodes also compute their own
partial gradients, since they carry accelerators too.

The paper evaluates a healthy cluster; here the Director also owns the
fault-tolerance control plane: every node heartbeats the Director on a
fixed period, a node silent past the timeout is declared dead, and the
hierarchy is re-formed over the survivors — a dead group Sigma is
replaced by promoting one of its Deltas, a dead master Sigma by promoting
a surviving group Sigma, and a dead Delta's shard is redistributed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

ROLE_MASTER_SIGMA = "master_sigma"
ROLE_SIGMA = "sigma"
ROLE_DELTA = "delta"


@dataclass(frozen=True)
class NodeRole:
    """One node's place in the aggregation hierarchy."""

    node_id: int
    role: str
    group: int
    sigma_id: int  # the sigma this node reports to (itself for sigmas)


@dataclass
class Topology:
    """Role assignment for a cluster."""

    roles: List[NodeRole]
    groups: int

    @property
    def nodes(self) -> int:
        return len(self.roles)

    @property
    def master(self) -> NodeRole:
        return next(r for r in self.roles if r.role == ROLE_MASTER_SIGMA)

    def sigmas(self) -> List[NodeRole]:
        return [r for r in self.roles if r.role != ROLE_DELTA]

    def deltas_of(self, sigma_id: int) -> List[NodeRole]:
        return [
            r
            for r in self.roles
            if r.role == ROLE_DELTA and r.sigma_id == sigma_id
        ]

    def group_members(self, group: int) -> List[NodeRole]:
        return [r for r in self.roles if r.group == group]


def default_groups(nodes: int) -> int:
    """One group per ~8 nodes so no Sigma aggregates too many peers."""
    return max(1, math.ceil(nodes / 8))


def assign_roles(nodes: int, groups: Optional[int] = None) -> Topology:
    """Assign Sigma/Delta roles for ``nodes`` machines in ``groups`` groups.

    Node 0 is the master Sigma (and group 0's Sigma); the first node of
    each further group is that group's Sigma; everyone else is a Delta.
    """
    if nodes < 1:
        raise ValueError("cluster needs at least one node")
    groups = groups if groups is not None else default_groups(nodes)
    if groups < 1 or groups > nodes:
        raise ValueError(f"cannot split {nodes} nodes into {groups} groups")
    per_group = [nodes // groups] * groups
    for i in range(nodes % groups):
        per_group[i] += 1

    roles: List[NodeRole] = []
    node_id = 0
    for group, size in enumerate(per_group):
        sigma_id = node_id
        for offset in range(size):
            if offset == 0:
                role = ROLE_MASTER_SIGMA if group == 0 else ROLE_SIGMA
            else:
                role = ROLE_DELTA
            roles.append(NodeRole(node_id, role, group, sigma_id))
            node_id += 1
    return Topology(roles=roles, groups=groups)


# ---------------------------------------------------------------------------
# Heartbeat-based failure detection.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HeartbeatConfig:
    """Failure-detector knobs: how often nodes beat, how long until dead.

    The Director checks liveness on every heartbeat tick; a node whose
    last beat is older than ``timeout_s`` is declared failed. Detection
    latency for a crash at time ``c`` is therefore bounded by
    ``period_s + timeout_s`` (the beat just missed plus the timeout,
    rounded up to the next tick).
    """

    period_s: float = 0.1
    timeout_s: float = 0.5

    def __post_init__(self):
        if self.period_s <= 0:
            raise ValueError(
                f"heartbeat period must be positive, got {self.period_s}"
            )
        if self.timeout_s < self.period_s:
            raise ValueError(
                f"timeout {self.timeout_s} shorter than the period "
                f"{self.period_s} would declare healthy nodes dead between "
                "beats"
            )

    def detection_at(self, crash_s: float) -> float:
        """Simulated time the Director declares a crash-at-``crash_s`` dead.

        The node's last beat was on the tick at or before the crash; the
        Director notices on the first tick after that beat ages past the
        timeout.
        """
        if crash_s < 0:
            raise ValueError("crash time cannot be negative")
        last_beat = math.floor(crash_s / self.period_s) * self.period_s
        deadline = last_beat + self.timeout_s
        return math.ceil(deadline / self.period_s - 1e-9) * self.period_s

    def detection_delay(self, crash_s: float) -> float:
        return self.detection_at(crash_s) - crash_s


class HeartbeatMonitor:
    """The Director's liveness table: last beat per node.

    Deterministic and simulation-time driven: ``beat`` records arrivals,
    ``suspects(now)`` returns every tracked node silent past the timeout.
    """

    def __init__(self, config: HeartbeatConfig, nodes: Iterable[int]):
        self.config = config
        self._last_seen: Dict[int, float] = {n: 0.0 for n in nodes}

    def beat(self, node_id: int, now: float):
        if node_id not in self._last_seen:
            raise KeyError(f"node {node_id} is not monitored")
        self._last_seen[node_id] = max(self._last_seen[node_id], now)

    def watch(self, node_id: int, now: float):
        """Start monitoring a (re)joined node, counting from ``now``."""
        self._last_seen[node_id] = now

    def forget(self, node_id: int):
        self._last_seen.pop(node_id, None)

    def last_seen(self, node_id: int) -> float:
        return self._last_seen[node_id]

    def suspects(self, now: float) -> List[int]:
        """Nodes silent for longer than the timeout, in id order."""
        return sorted(
            node
            for node, seen in self._last_seen.items()
            if now - seen > self.config.timeout_s
        )


# ---------------------------------------------------------------------------
# Hierarchy re-formation after failures.
# ---------------------------------------------------------------------------


def rebuild_topology(
    base: Topology,
    alive: Iterable[int],
    prefer_master: Optional[int] = None,
) -> Topology:
    """Re-form the Sigma/Delta hierarchy over the surviving nodes.

    Grouping follows ``base``: survivors stay in their group, a group
    whose Sigma died promotes its lowest-id survivor (an existing Sigma
    survivor wins), and a group with no survivors is dissolved. The
    master is ``prefer_master`` when it survived (failover stickiness —
    a previously promoted master keeps the role when old peers rejoin),
    else the base master, else the lowest-id group Sigma.

    Raises ``ValueError`` when nothing survives: with zero nodes there is
    no hierarchy to re-form and the run must abort.
    """
    alive_set: Set[int] = set(alive)
    survivors_by_group: Dict[int, List[NodeRole]] = {}
    for role in base.roles:
        if role.node_id in alive_set:
            survivors_by_group.setdefault(role.group, []).append(role)
    if not survivors_by_group:
        raise ValueError(
            "cannot re-form hierarchy: no surviving nodes in the cluster"
        )

    group_sigma: Dict[int, int] = {}
    for group, members in sorted(survivors_by_group.items()):
        ids = sorted(m.node_id for m in members)
        if prefer_master in ids:
            group_sigma[group] = prefer_master
            continue
        surviving_sigmas = sorted(
            m.node_id for m in members if m.role != ROLE_DELTA
        )
        group_sigma[group] = surviving_sigmas[0] if surviving_sigmas else ids[0]

    if prefer_master is not None and prefer_master in alive_set:
        master_id = prefer_master
    elif base.master.node_id in group_sigma.values():
        master_id = base.master.node_id
    else:
        master_id = min(group_sigma.values())

    roles: List[NodeRole] = []
    for new_group, group in enumerate(sorted(survivors_by_group)):
        sigma_id = group_sigma[group]
        for member in sorted(
            survivors_by_group[group], key=lambda r: r.node_id
        ):
            if member.node_id == sigma_id:
                role = (
                    ROLE_MASTER_SIGMA
                    if sigma_id == master_id
                    else ROLE_SIGMA
                )
            else:
                role = ROLE_DELTA
            roles.append(NodeRole(member.node_id, role, new_group, sigma_id))
    return Topology(roles=roles, groups=len(survivors_by_group))


def rehierarchy_seconds(survivors: int, network, management_overhead_s: float) -> float:
    """Control-plane cost of re-forming the hierarchy.

    The Director pushes one small role-assignment message to every
    survivor (connection handling dominates — the payload is bytes), then
    pays one management epoch to restart the iteration pipeline.
    """
    if survivors < 1:
        raise ValueError("re-hierarchy needs at least one survivor")
    return (
        survivors * network.per_message_overhead_s
        + network.latency_s
        + management_overhead_s
    )
