"""The System Director: role assignment and hierarchy (Sections 3, 4.3).

The Director takes the system specification — total node count, number of
groups, accelerator type — and assigns each node a role: every group has
one Sigma node aggregating its Delta nodes' partial updates, and a master
Sigma combines the group aggregates. Sigma nodes also compute their own
partial gradients, since they carry accelerators too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

ROLE_MASTER_SIGMA = "master_sigma"
ROLE_SIGMA = "sigma"
ROLE_DELTA = "delta"


@dataclass(frozen=True)
class NodeRole:
    """One node's place in the aggregation hierarchy."""

    node_id: int
    role: str
    group: int
    sigma_id: int  # the sigma this node reports to (itself for sigmas)


@dataclass
class Topology:
    """Role assignment for a cluster."""

    roles: List[NodeRole]
    groups: int

    @property
    def nodes(self) -> int:
        return len(self.roles)

    @property
    def master(self) -> NodeRole:
        return next(r for r in self.roles if r.role == ROLE_MASTER_SIGMA)

    def sigmas(self) -> List[NodeRole]:
        return [r for r in self.roles if r.role != ROLE_DELTA]

    def deltas_of(self, sigma_id: int) -> List[NodeRole]:
        return [
            r
            for r in self.roles
            if r.role == ROLE_DELTA and r.sigma_id == sigma_id
        ]

    def group_members(self, group: int) -> List[NodeRole]:
        return [r for r in self.roles if r.group == group]


def default_groups(nodes: int) -> int:
    """One group per ~8 nodes so no Sigma aggregates too many peers."""
    return max(1, math.ceil(nodes / 8))


def assign_roles(nodes: int, groups: Optional[int] = None) -> Topology:
    """Assign Sigma/Delta roles for ``nodes`` machines in ``groups`` groups.

    Node 0 is the master Sigma (and group 0's Sigma); the first node of
    each further group is that group's Sigma; everyone else is a Delta.
    """
    if nodes < 1:
        raise ValueError("cluster needs at least one node")
    groups = groups if groups is not None else default_groups(nodes)
    if groups < 1 or groups > nodes:
        raise ValueError(f"cannot split {nodes} nodes into {groups} groups")
    per_group = [nodes // groups] * groups
    for i in range(nodes % groups):
        per_group[i] += 1

    roles: List[NodeRole] = []
    node_id = 0
    for group, size in enumerate(per_group):
        sigma_id = node_id
        for offset in range(size):
            if offset == 0:
                role = ROLE_MASTER_SIGMA if group == 0 else ROLE_SIGMA
            else:
                role = ROLE_DELTA
            roles.append(NodeRole(node_id, role, group, sigma_id))
            node_id += 1
    return Topology(roles=roles, groups=groups)
