"""Schedule-replay engine: record one iteration's event schedule, replay it.

The communication schedule of a healthy CoSMIC iteration is *static per
topology*: which node sends to which, in which phase, with what payload is
fixed by the Sigma/Delta hierarchy and the model size — only the *times*
move when compute speed, mini-batch size, or link parameters change. Like
SwitchML's in-network aggregation schedule, that makes the schedule worth
recording once and re-timing many times.

This module implements that split:

* :class:`ScheduleRecorder` instruments :meth:`Network.send` (and, through
  it, ``send_reliable``) plus the event-loop phase boundaries of one full
  event-driven iteration, producing a canonical :class:`ScheduleTrace` —
  the send orderings, payload sizes, NIC-serialisation structure, and
  reduction joins of the gather/reduce/broadcast phases.
* :func:`replay_iteration` re-times a trace under new per-node compute
  times and :class:`NetworkConfig` parameters. NIC bookings are evaluated
  with NumPy over the chunk arrays (``np.add.accumulate`` is a strictly
  sequential left-to-right reduction, so every float lands bit-identical
  to the scalar event-driven arithmetic); chunk callbacks feed the real
  :class:`SigmaPipeline` objects in the exact (arrival, insertion) order
  the event loop would have dispatched them. A pure-scalar mode
  (``vectorized=False``) is kept as a cross-validated reference.

Traces are content-addressed (:func:`schedule_cache_key`) and cached in
the ``cluster-schedule`` kind of :mod:`repro.perf.cache`, so a figure
sweep records each (topology, model size) once — persisting to disk with
``REPRO_CACHE_DIR`` — and replays every other (minibatch, NetworkConfig)
point.

Since format 2, traces additionally carry **per-sender arrival
annotations** (:class:`ArrivalPoint`): for each Sigma/master aggregation
point, the ordered per-contributor arrival events and the TX chains that
fed them during the recording. These let :func:`replay_iteration`
evaluate a :class:`~repro.runtime.cluster.QuorumConfig` window closure —
K-th arrival vs. ``deadline_s`` past the first — directly on the booked
arrival arrays, then re-book only the downstream sends whose payload set
changed (the withheld-send pass), instead of re-running the event loop
from scratch. Quorum iterations therefore replay too; the probe/withhold
structure of the event-driven simulator is reproduced exactly.

Replay is *never* used when the schedule could differ from the healthy
recording: a :class:`~repro.runtime.faults.FaultTimeline` (or any fault
context on the simulator) forces the full event-driven simulation, and
``REPRO_SCHEDULE_REPLAY=0`` disables replay globally. The differential
property suites (``tests/properties/test_schedule_replay.py`` and
``tests/properties/test_quorum_replay.py``) assert replay is
bit-identical to re-simulation across hypothesis-generated clusters,
quorum rules, and straggler profiles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..perf.env import schedule_replay_enabled as _schedule_replay_enabled
from .director import NodeRole, Topology
from .network import NetworkConfig
from .threads import SigmaPipeline

#: Bumped whenever the simulator's send structure or the replay arithmetic
#: changes; part of the trace cache key so stale traces are never replayed
#: against a newer simulator. Format 2 added the per-sender arrival
#: annotations (:class:`ArrivalPoint`) that quorum-window replay reads;
#: format-1 traces are invalidated cleanly — their cache keys no longer
#: match, and a stale pickle that somehow surfaces fails the
#: ``validate=`` check on the cache load path and is recomputed.
SCHEDULE_FORMAT = 2

#: Phase indices the recorder distinguishes (gather, reduce, broadcast).
_PHASES = 3


def replay_enabled() -> bool:
    """Replay kill-switch: ``REPRO_SCHEDULE_REPLAY=0`` forces the full
    event-driven simulation everywhere (parsed, with validation, by
    :func:`repro.perf.env.schedule_replay_enabled`).

    Module-level import: this runs once per simulated iteration, and a
    function-local import costs more than the accessor itself.
    """
    return _schedule_replay_enabled()


@contextmanager
def replay_disabled():
    """Temporarily force full event-driven simulation (perf reference
    paths and the differential harness use this)."""
    previous = os.environ.get("REPRO_SCHEDULE_REPLAY")
    os.environ["REPRO_SCHEDULE_REPLAY"] = "0"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop("REPRO_SCHEDULE_REPLAY", None)
        else:
            os.environ["REPRO_SCHEDULE_REPLAY"] = previous


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------


class ScheduleRecorder:
    """Captures the canonical event schedule of one healthy iteration.

    The cluster simulator binds a fresh event loop per phase
    (:meth:`Network.use_loop`), which the recorder uses as the phase
    marker; every :meth:`Network.send` then logs ``(src, dst, nbytes)``
    in issue order, plus the NIC chunk bookings it implies.
    """

    def __init__(self):
        self._phase = 0
        self.sends: List[List[Tuple[int, int, int]]] = [
            [] for _ in range(_PHASES)
        ]
        #: Per-phase ``(src, dst, arrivals, tx_starts)`` records carrying
        #: the recorded chunk arrival instants and the TX chain that fed
        #: them — the raw material of the ArrivalPoint annotations.
        self.arrivals: List[List[Tuple[int, int, tuple, tuple]]] = [
            [] for _ in range(_PHASES)
        ]
        self.chunk_bookings = 0
        self.retries = 0

    def on_phase(self):
        self._phase += 1
        if self._phase > _PHASES:
            raise RuntimeError(
                f"iteration ran more than {_PHASES} network phases; the "
                "schedule format cannot describe it (bump SCHEDULE_FORMAT)"
            )

    def on_send(self, src: int, dst: int, nbytes: int, start: float,
                chunks: int, arrivals=None, tx_starts=None):
        if self._phase == 0:
            raise RuntimeError(
                "Network.send before the first phase loop was bound; "
                "recording only understands the phased iteration flow"
            )
        self.sends[self._phase - 1].append((src, dst, nbytes))
        self.arrivals[self._phase - 1].append(
            (src, dst, tuple(arrivals or ()), tuple(tx_starts or ()))
        )
        self.chunk_bookings += chunks

    def on_retry(self, src: int, dst: int):
        # send_reliable retries change delivery times, not the schedule
        # structure, but a recorded retry means the run was not healthy.
        self.retries += 1


#: ArrivalPoint phase markers (indices into the recorder's phase list).
GATHER_PHASE = 0
REDUCE_PHASE = 1


@dataclass(frozen=True)
class ArrivalPoint:
    """Per-aggregation-point arrival annotation (format 2).

    One record per Sigma (gather phase) and one for the master (reduce
    phase): the contributors that feed it, ordered by their recorded
    completion instant, plus the recorded chunk arrival events and the
    TX-chain start instants that produced them. The ``senders`` tuple is
    what quorum replay reads — it names the contributor set whose booked
    arrival array each window closure is evaluated over; the
    ``recorded_*`` arrays are provenance (they show up diff-ably in the
    JSON sidecar and pin the recording the annotations came from).
    """

    node_id: int  # the receiving Sigma (or master Sigma)
    phase: int  # GATHER_PHASE or REDUCE_PHASE
    senders: Tuple[int, ...]
    chunk_counts: Tuple[int, ...]
    recorded_arrivals: Tuple[Tuple[float, ...], ...]
    recorded_tx_starts: Tuple[Tuple[float, ...], ...]


@dataclass(frozen=True)
class ScheduleTrace:
    """Content-addressed event schedule of one healthy iteration.

    ``gather_sends`` / ``reduce_sends`` / ``broadcast_sends`` hold
    ``(src, dst, nbytes)`` in the order the simulator issued them; the
    replayer re-sorts the gather/reduce phases by their re-timed start
    instants (the same ordering rule the simulator applies) and replays
    the broadcast in recorded order (its ordering is structural).
    ``arrival_points`` annotates each Sigma/master aggregation point with
    its ordered contributors and the recorded arrival/TX events — the
    structure quorum-window replay evaluates. The ``recorded_*`` fields
    are provenance for the JSON sidecar.
    """

    format_version: int
    nodes: int
    groups: int
    roles: Tuple[NodeRole, ...]
    update_bytes: int
    gather_sends: Tuple[Tuple[int, int, int], ...]
    reduce_sends: Tuple[Tuple[int, int, int], ...]
    broadcast_sends: Tuple[Tuple[int, int, int], ...]
    arrival_points: Tuple[ArrivalPoint, ...]
    recorded_chunk_bookings: int
    recorded_chunk_bytes: int
    recorded_total_s: float

    @property
    def wire_messages(self) -> int:
        return (
            len(self.gather_sends)
            + len(self.reduce_sends)
            + len(self.broadcast_sends)
        )

    def topology(self) -> Topology:
        return Topology(roles=list(self.roles), groups=self.groups)

    def points_for(self, phase: int) -> Tuple[ArrivalPoint, ...]:
        """Aggregation points of one phase (gather or reduce)."""
        return tuple(p for p in self.arrival_points if p.phase == phase)


def schedule_cache_key(topology: Topology, update_bytes: int) -> str:
    """Fingerprint of everything that determines the schedule structure."""
    from ..perf.cache import fingerprint

    return fingerprint(
        "cluster-schedule",
        SCHEDULE_FORMAT,
        tuple(topology.roles),
        topology.groups,
        update_bytes,
    )


def _arrival_points(recorder: ScheduleRecorder) -> Tuple[ArrivalPoint, ...]:
    """Fold the recorder's per-send arrival logs into one annotation per
    aggregation point, contributors ordered by recorded completion.

    The completion instant of a contributor is its last chunk's arrival
    — the same quantity the quorum window is judged against — so the
    recorded ``senders`` order previews the window's arrival order under
    the canonical (zero-compute) recording.
    """
    points = []
    for phase in (GATHER_PHASE, REDUCE_PHASE):
        by_dst: Dict[int, list] = {}
        for src, dst, arrivals, tx_starts in recorder.arrivals[phase]:
            by_dst.setdefault(dst, []).append((src, arrivals, tx_starts))
        for dst in sorted(by_dst):
            feeds = sorted(
                by_dst[dst],
                key=lambda f: (f[1][-1] if f[1] else 0.0, f[0]),
            )
            points.append(
                ArrivalPoint(
                    node_id=dst,
                    phase=phase,
                    senders=tuple(src for src, _, _ in feeds),
                    chunk_counts=tuple(len(a) for _, a, _ in feeds),
                    recorded_arrivals=tuple(a for _, a, _ in feeds),
                    recorded_tx_starts=tuple(t for _, _, t in feeds),
                )
            )
    return tuple(points)


def record_schedule(simulator) -> ScheduleTrace:
    """Run one instrumented event-driven iteration and build its trace.

    The recording runs with zero compute times: the schedule structure is
    independent of compute speed, and zero keeps the canonical trace
    independent of whichever sweep point happened to record it.
    """
    recorder = ScheduleRecorder()
    topo = simulator.topology
    compute_times = [0.0] * topo.nodes
    timing = simulator._iteration_uncached(
        None, compute_times, recorder=recorder
    )
    return ScheduleTrace(
        format_version=SCHEDULE_FORMAT,
        nodes=topo.nodes,
        groups=topo.groups,
        roles=tuple(topo.roles),
        update_bytes=simulator.update_bytes,
        gather_sends=tuple(recorder.sends[0]),
        reduce_sends=tuple(recorder.sends[1]),
        broadcast_sends=tuple(recorder.sends[2]),
        arrival_points=_arrival_points(recorder),
        recorded_chunk_bookings=recorder.chunk_bookings,
        recorded_chunk_bytes=simulator.spec.network.chunk_bytes,
        recorded_total_s=timing.total_s,
    )


def trace_sidecar(trace: ScheduleTrace) -> Dict:
    """Diff-able JSON record written next to the pickled trace on disk."""
    return {
        "format_version": trace.format_version,
        "nodes": trace.nodes,
        "groups": trace.groups,
        "update_bytes": trace.update_bytes,
        "roles": [
            {
                "node_id": r.node_id,
                "role": r.role,
                "group": r.group,
                "sigma_id": r.sigma_id,
            }
            for r in trace.roles
        ],
        "gather_sends": [list(s) for s in trace.gather_sends],
        "reduce_sends": [list(s) for s in trace.reduce_sends],
        "broadcast_sends": [list(s) for s in trace.broadcast_sends],
        "arrival_points": [
            {
                "node_id": p.node_id,
                "phase": ["gather", "reduce"][p.phase],
                "senders": list(p.senders),
                "chunk_counts": list(p.chunk_counts),
                "recorded_arrivals": [list(a) for a in p.recorded_arrivals],
                "recorded_tx_starts": [
                    list(t) for t in p.recorded_tx_starts
                ],
            }
            for p in trace.arrival_points
        ],
        "recorded_chunk_bookings": trace.recorded_chunk_bookings,
        "recorded_chunk_bytes": trace.recorded_chunk_bytes,
        "recorded_total_s": trace.recorded_total_s,
    }


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


def _chunk_plan(cfg: NetworkConfig, nbytes: int):
    """Chunk sizes and per-chunk wire durations for one message.

    Mirrors the chunking loop in :meth:`Network.send`: full chunks first,
    a trailing partial chunk last. The wire array is computed with the
    exact operation order of ``wire_seconds(chunk) + per_chunk_overhead``.
    """
    full, rem = divmod(nbytes, cfg.chunk_bytes)
    sizes = [cfg.chunk_bytes] * full + ([rem] if rem else [])
    sizes_arr = np.array(sizes, dtype=np.int64)
    wires = sizes_arr * 8.0 / cfg.bandwidth_bps + cfg.per_chunk_overhead_s
    # float64 -> Python float round-trips bit-exactly; the scalar RX scan
    # and the busy accounting run over the list to skip per-element NumPy
    # scalar boxing.
    return sizes, wires, wires.tolist()


class _NicLedger:
    """Per-node TX/RX booking state carried across phases (the replay's
    stand-in for :class:`Resource`, same FCFS arithmetic)."""

    def __init__(self):
        self.tx_free: Dict[int, float] = {}
        self.rx_free: Dict[int, float] = {}
        self.rx_busy: Dict[int, float] = {}

    def clone(self) -> "_NicLedger":
        """Snapshot for the quorum withheld-send pass: phase 3 books on a
        copy so a window closure can roll back to the pre-phase state and
        re-book only the surviving sends."""
        copy = _NicLedger()
        copy.tx_free = dict(self.tx_free)
        copy.rx_free = dict(self.rx_free)
        copy.rx_busy = dict(self.rx_busy)
        return copy


def _book_send_vectorized(
    ledger: _NicLedger,
    cfg: NetworkConfig,
    src: int,
    dst: int,
    start: float,
    plan,
):
    """Book one message's chunks; returns (arrivals, last_arrival).

    The TX chain is a pure left-to-right accumulation (after the first
    chunk the sender's cursor always equals its own free time), evaluated
    with ``np.add.accumulate`` — sequential, hence bit-identical to the
    event-driven scalar chain. The shared RX recurrence interleaves a max
    with an add, so it stays a scalar scan.
    """
    sizes, wires, wires_list = plan
    if len(sizes) == 1:  # nothing to vectorize in a one-chunk message
        return _book_send_scalar(ledger, cfg, src, dst, start, plan)
    cursor0 = start + cfg.per_message_overhead_s
    tx_free = ledger.tx_free.get(src, 0.0)
    t0 = cursor0 if cursor0 >= tx_free else tx_free
    tx_starts = np.add.accumulate(np.concatenate(([t0], wires[:-1])))
    ledger.tx_free[src] = float(tx_starts[-1]) + wires_list[-1]
    earliest = (tx_starts + wires + cfg.latency_s) - wires
    rx_free = ledger.rx_free.get(dst, 0.0)
    rx_busy = ledger.rx_busy.get(dst, 0.0)
    arrivals = []
    for e, w in zip(earliest.tolist(), wires_list):
        s = e if e >= rx_free else rx_free
        rx_free = s + w
        arrivals.append(rx_free)
        rx_busy += w
    ledger.rx_free[dst] = rx_free
    ledger.rx_busy[dst] = rx_busy
    return arrivals, max(cursor0, max(arrivals))


def _book_send_scalar(
    ledger: _NicLedger,
    cfg: NetworkConfig,
    src: int,
    dst: int,
    start: float,
    plan,
):
    """Pure-Python reference booking, one float at a time — the exact
    transcription of :meth:`Network.send`'s chunk loop."""
    sizes = plan[0]
    cursor = start + cfg.per_message_overhead_s
    last_arrival = cursor
    arrivals = []
    tx_free = ledger.tx_free.get(src, 0.0)
    rx_free = ledger.rx_free.get(dst, 0.0)
    rx_busy = ledger.rx_busy.get(dst, 0.0)
    for chunk in sizes:
        wire = cfg.wire_seconds(chunk) + cfg.per_chunk_overhead_s
        tx_start = max(cursor, tx_free)
        tx_free = tx_start + wire
        arrival_earliest = tx_start + wire + cfg.latency_s
        rx_start = max(arrival_earliest - wire, rx_free)
        rx_free = rx_start + wire
        rx_busy += wire
        arrival = rx_start + wire
        cursor = tx_start + wire
        last_arrival = max(last_arrival, arrival)
        arrivals.append(arrival)
    ledger.tx_free[src] = tx_free
    ledger.rx_free[dst] = rx_free
    ledger.rx_busy[dst] = rx_busy
    return arrivals, last_arrival


def _feed_phase(
    ledger: _NicLedger,
    cfg: NetworkConfig,
    sends: Sequence[Tuple[float, int, int, int]],
    pipes: Dict[int, SigmaPipeline],
    vectorized: bool,
):
    """Book every send of one gather/reduce phase, then dispatch the chunk
    callbacks in event-loop order.

    ``sends`` is ``(start, src, dst, nbytes)`` in issue order. Chunk
    events are globally sorted by ``(arrival, insertion counter)`` —
    exactly the heap order of :class:`EventLoop` — and fed to the real
    :class:`SigmaPipeline` objects. Returns each sender's partial-complete
    time (the :class:`_Feeder` semantics the quorum window judges).
    """
    book = _book_send_vectorized if vectorized else _book_send_scalar
    arrivals: List[float] = []
    sizes: List[int] = []
    owners: List[Tuple[int, int]] = []  # (sender, sigma) per chunk
    plans: Dict[int, tuple] = {}
    done: Dict[int, float] = {}
    for start, src, dst, nbytes in sends:
        if nbytes not in plans:
            plans[nbytes] = _chunk_plan(cfg, nbytes)
        send_arrivals, _ = book(ledger, cfg, src, dst, start, plans[nbytes])
        arrivals.extend(send_arrivals)
        sizes.extend(plans[nbytes][0])
        owners.extend([(src, dst)] * len(send_arrivals))
        done[src] = 0.0
    if not arrivals:
        return done
    # Stable argsort by arrival == the event loop's (time, insertion
    # counter) heap order; chunks were appended in issue order.
    order = np.argsort(np.array(arrivals), kind="stable")
    for idx in order.tolist():
        sender, sigma = owners[idx]
        agg_done = pipes[sigma].on_chunk(arrivals[idx], sizes[idx])
        if agg_done > done[sender]:
            done[sender] = agg_done
    return done


def replay_iteration(
    trace: ScheduleTrace,
    spec,
    compute_times: Sequence[float],
    vectorized: bool = True,
    quorum=None,
):
    """Re-time a recorded schedule under new compute times and network
    parameters; returns an :class:`IterationTiming` bit-identical to the
    full event-driven simulation of the same inputs.

    With a :class:`~repro.runtime.cluster.QuorumConfig`, each window
    closure is evaluated directly on the booked arrival arrays — the
    gather/reduce phase is booked once with every recorded send (the
    probe), the window rule splits contributors at the later of the K-th
    arrival and ``deadline_s`` past the first, and only when some partial
    missed the window is the phase re-booked with those sends withheld
    (the dropped bytes must never occupy the real NICs). This mirrors the
    event-driven simulator's probe/withhold passes exactly, so every
    field — ``contributors`` and ``dropped`` included — stays
    bit-identical.

    Fault timelines still change the schedule itself and must
    re-simulate; the simulator never routes a faulted cluster here.
    """
    from .cluster import IterationTiming, _close_window

    if trace.format_version != SCHEDULE_FORMAT:
        raise RuntimeError(
            f"schedule trace format {trace.format_version} does not match "
            f"this replayer ({SCHEDULE_FORMAT}); re-record the schedule"
        )
    topo = trace.topology()
    if len(compute_times) != topo.nodes:
        raise ValueError(
            f"{len(compute_times)} compute times for a {topo.nodes}-node "
            "schedule"
        )
    cfg = spec.network
    ub = trace.update_bytes
    master = topo.master
    sigmas = topo.sigmas()

    compute_done = {
        role.node_id: spec.management_overhead_s + seconds
        for role, seconds in zip(topo.roles, compute_times)
    }
    first_send = min(compute_done.values())

    # Contributor sets per aggregation point, from the trace annotations.
    feeders_of = {
        p.node_id: p.senders for p in trace.points_for(GATHER_PHASE)
    }
    reduce_points = trace.points_for(REDUCE_PHASE)
    master_senders = reduce_points[0].senders if reduce_points else ()

    # Phase 2: deltas stream partials to their group sigma. The sigma
    # folds its own partial first (before any chunk lands), then sends
    # are issued in (start, sender) order — the simulator's sort rule.
    gather_all = sorted(
        ((compute_done[src], src, dst, nb)
         for src, dst, nb in trace.gather_sends),
        key=lambda s: s[:2],
    )

    def run_gather(ledger, skip):
        pipes = {s.node_id: SigmaPipeline(spec.pools) for s in sigmas}
        own: Dict[int, float] = {}
        for sigma in sigmas:
            own[sigma.group] = pipes[sigma.node_id].fold_local(
                compute_done[sigma.node_id], ub
            )
        sends = [s for s in gather_all if s[1] not in skip]
        done = _feed_phase(ledger, cfg, sends, pipes, vectorized)
        return pipes, own, done

    def close_groups(own, done, skip):
        group_done: Dict[int, float] = {}
        members: Dict[int, List[int]] = {}
        late = set()
        for sigma in sigmas:
            contributions = [(sigma.node_id, own[sigma.group])] + [
                (src, done[src])
                for src in feeders_of.get(sigma.node_id, ())
                if src not in skip
            ]
            included, out = _close_window(contributions, quorum)
            group_done[sigma.group] = max(t for _, t in included)
            members[sigma.group] = [node for node, _ in included]
            late.update(node for node, _ in out)
        return group_done, members, late

    ledger = _NicLedger()
    pipes, own, done2 = run_gather(ledger, frozenset())
    skip2 = frozenset()
    if quorum is not None:
        _, _, late2 = close_groups(own, done2, skip2)
        skip2 = frozenset(late2)
        if skip2:
            # Withheld-send pass: a dropped partial's bytes must never
            # occupy the real NICs, so the phase re-books from scratch
            # without those sends (the probe bookings are discarded).
            ledger = _NicLedger()
            pipes, own, done2 = run_gather(ledger, skip2)
    group_done, group_members, _ = close_groups(own, done2, skip2)

    # Phase 3: group aggregates converge on the master sigma (same
    # window rule, judged on the arrivals booked over the post-phase-2
    # ledger — which is exactly the event-driven probe's NIC state).
    group_of = {r.node_id: r.group for r in topo.roles}
    reduce_all = sorted(
        ((group_done[group_of[src]], src, dst, nb)
         for src, dst, nb in trace.reduce_sends),
        key=lambda s: s[:2],
    )

    def run_reduce(ledger, skip):
        pipe = SigmaPipeline(spec.pools)
        own_m = pipe.fold_local(group_done[master.group], ub)
        sends = [s for s in reduce_all if s[1] not in skip]
        done = _feed_phase(
            ledger, cfg, sends, {master.node_id: pipe}, vectorized
        )
        return pipe, own_m, done

    def close_master(own_m, done, skip):
        contributions = [(master.node_id, own_m)] + [
            (src, done[src]) for src in master_senders if src not in skip
        ]
        return _close_window(contributions, quorum)

    snapshot = ledger.clone() if quorum is not None else None
    master_pipe, own_master, done3 = run_reduce(ledger, frozenset())
    skip3 = frozenset()
    if quorum is not None:
        _, out3 = close_master(own_master, done3, skip3)
        skip3 = frozenset(node for node, _ in out3)
        if skip3:
            ledger = snapshot
            master_pipe, own_master, done3 = run_reduce(ledger, skip3)
    included_groups, _ = close_master(own_master, done3, skip3)
    master_done = max(t for _, t in included_groups)
    sigma_group = {s.node_id: s.group for s in sigmas}
    contributors = sorted(
        node
        for sigma_id, _ in included_groups
        for node in group_members[sigma_group[sigma_id]]
    )
    dropped = sorted(
        r.node_id for r in topo.roles if r.node_id not in contributors
    )

    # Phase 4: hierarchical broadcast, in the recorded (structural) order.
    book = _book_send_vectorized if vectorized else _book_send_scalar
    plans: Dict[int, tuple] = {}
    sigma_ids = {s.node_id for s in sigmas}
    sigma_recv: Dict[int, float] = {master.node_id: master_done}
    broadcast_done = master_done
    for src, dst, nbytes in trace.broadcast_sends:
        start = master_done if src == master.node_id else sigma_recv[src]
        if nbytes not in plans:
            plans[nbytes] = _chunk_plan(cfg, nbytes)
        _, last_arrival = book(ledger, cfg, src, dst, start, plans[nbytes])
        if src == master.node_id and dst in sigma_ids:
            sigma_recv[dst] = last_arrival
        broadcast_done = max(broadcast_done, last_arrival)

    total = broadcast_done + spec.management_overhead_s
    agg_busy = sum(
        p.aggregation.busy_seconds() for p in pipes.values()
    ) + master_pipe.aggregation.busy_seconds()
    sigma_rx_busy = sum(
        ledger.rx_busy.get(s.node_id, 0.0) for s in sigmas
    )
    # Wire accounting covers what the real network carried: withheld
    # sends were refused by the receiver and never hit the wire.
    gather_counted = [
        nb for src, _, nb in trace.gather_sends if src not in skip2
    ]
    reduce_counted = [
        nb for src, _, nb in trace.reduce_sends if src not in skip3
    ]
    broadcast_counted = [nb for _, _, nb in trace.broadcast_sends]
    return IterationTiming(
        total_s=total,
        compute_s=sum(compute_times) / len(compute_times),
        compute_max_s=max(compute_times),
        network_s=max(0.0, master_done - first_send),
        aggregation_busy_s=agg_busy,
        broadcast_s=broadcast_done - master_done,
        management_s=2 * spec.management_overhead_s,
        wire_bytes=sum(gather_counted)
        + sum(reduce_counted)
        + sum(broadcast_counted),
        wire_messages=len(gather_counted)
        + len(reduce_counted)
        + len(broadcast_counted),
        sigma_rx_busy_s=sigma_rx_busy,
        sigma_count=len(sigmas),
        contributors=contributors,
        dropped=dropped,
    )
