"""Scale-out system assembly: benchmark x platform x cluster.

A :class:`NodePlatform` answers "how long does one node's accelerator take
for k samples, and what does the node draw"; :class:`CosmicSystem` puts
``nodes`` of them behind the CoSMIC system software (the event-driven
cluster simulation) and reports iteration/epoch times — the quantity every
figure in Section 7 is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..baselines.gpu import GpuModel
from ..hw.spec import ChipSpec, PASIC_F, PASIC_G, XILINX_VU9P
from ..ml.benchmarks import Benchmark
from ..planner import Planner
from ..runtime import ClusterSimulator, ClusterSpec, IterationTiming

#: Host CPU TDP per node (Table 2's Xeon E3).
HOST_TDP_WATTS = 80.0

#: Measured (WattsUp-style) wall power of the host while the accelerator
#: computes. With an FPGA/P-ASIC the CPU mostly waits on aggregation
#: events (~half TDP); feeding a GPU keeps it considerably busier.
HOST_ACTIVE_WATTS = 40.0
GPU_HOST_ACTIVE_WATTS = 55.0

#: Measured board draw of the accelerators under load. The VU9P's 42 W is
#: a worst-case TDP; the generated designs clock 150 MHz and draw ~25 W.
MEASURED_BOARD_WATTS = {
    "UltraScale+ VU9P": 25.0,
    "P-ASIC-F": 11.0,
    "P-ASIC-G": 37.0,
    "Tesla K40c": 245.0,
}


@dataclass
class NodePlatform:
    """One node's accelerator: timing model + power."""

    name: str
    compute_seconds: Callable[[int], float]  # samples -> seconds
    accelerator_tdp_watts: float

    def node_power_watts(self) -> float:
        """Wall power of one node under training load (Figure 11)."""
        board = MEASURED_BOARD_WATTS.get(self.name, self.accelerator_tdp_watts)
        host = (
            GPU_HOST_ACTIVE_WATTS
            if self.name == "Tesla K40c"
            else HOST_ACTIVE_WATTS
        )
        return host + board


#: PCIe 3.0 x16 effective host-to-board bandwidth, and the accelerator
#: board's local DRAM capacity. A training set that fits on the board is
#: staged once and streams at the chip's full off-chip bandwidth; larger
#: sets re-stream from the host every epoch, capped by PCIe — the reason
#: P-ASIC-G's huge raw bandwidth yields only modest *system* gains on the
#: multi-GB workloads (Figure 9 vs Figure 10).
PCIE_BANDWIDTH_BYTES = 12e9
BOARD_MEMORY_BYTES = 16e9
BOARD_RESIDENT_FRACTION = 0.8


def accelerator_platform(
    bench: Benchmark,
    chip: ChipSpec = XILINX_VU9P,
    minibatch: int = 10_000,
    ingest_cap: bool = True,
) -> NodePlatform:
    """FPGA or P-ASIC platform via the Planner's chosen design.

    ``ingest_cap=False`` evaluates the bare accelerator at its own
    off-chip bandwidth (the Figure 10 computation-only comparison);
    the default applies the PCIe ceiling for non-resident datasets
    (the Figure 9 system-level view).
    """
    resident = (
        bench.data_gb * 1e9 <= BOARD_MEMORY_BYTES * BOARD_RESIDENT_FRACTION
    )
    if (
        ingest_cap
        and not resident
        and chip.bandwidth_bytes > PCIE_BANDWIDTH_BYTES
    ):
        chip = chip.scaled(bandwidth_bytes=PCIE_BANDWIDTH_BYTES)
    plan = Planner(chip).plan(
        bench.translate().dfg,
        minibatch,
        bench.density,
        stream_words=bench.bytes_per_sample() / chip.word_bytes,
    )
    return NodePlatform(
        name=chip.name,
        compute_seconds=plan.seconds_for,
        accelerator_tdp_watts=chip.tdp_watts,
    )


def gpu_platform(bench: Benchmark, model: Optional[GpuModel] = None) -> NodePlatform:
    """GPU platform (the CoSMIC runtime extended for GPUs, Section 7.1)."""
    model = model or GpuModel()
    return NodePlatform(
        name=model.spec.name,
        compute_seconds=lambda samples: model.compute_seconds(bench, samples),
        accelerator_tdp_watts=model.spec.tdp_watts,
    )


def platform_for(
    bench: Benchmark,
    kind: str,
    minibatch: int = 10_000,
    ingest_cap: bool = True,
) -> NodePlatform:
    """Shorthand: ``"fpga"``, ``"pasic-f"``, ``"pasic-g"``, or ``"gpu"``."""
    chips = {"fpga": XILINX_VU9P, "pasic-f": PASIC_F, "pasic-g": PASIC_G}
    if kind in chips:
        return accelerator_platform(bench, chips[kind], minibatch, ingest_cap)
    if kind == "gpu":
        return gpu_platform(bench)
    raise ValueError(f"unknown platform {kind!r}")


@dataclass
class CosmicSystem:
    """``nodes`` accelerator-augmented machines under the CoSMIC runtime.

    One instance binds a (benchmark, platform) pair; every timing method
    accepts a ``nodes`` override so figure sweeps construct the system
    once and reuse it across node counts and mini-batch points instead of
    re-deriving the platform per sweep point.
    """

    bench: Benchmark
    platform: NodePlatform
    nodes: int
    groups: Optional[int] = None
    spec_overrides: dict = field(default_factory=dict)

    def cluster(self, nodes: Optional[int] = None) -> ClusterSimulator:
        spec = ClusterSpec(
            nodes=nodes or self.nodes,
            groups=self.groups,
            **self.spec_overrides,
        )
        return ClusterSimulator(
            spec,
            lambda node_id, samples: self.platform.compute_seconds(samples),
            update_bytes=self.bench.model_bytes(),
        )

    def iteration(
        self, minibatch_per_node: int = 10_000, nodes: Optional[int] = None
    ) -> IterationTiming:
        nodes = nodes or self.nodes
        return self.cluster(nodes).iteration(minibatch_per_node * nodes)

    def epoch_seconds(
        self, minibatch_per_node: int = 10_000, nodes: Optional[int] = None
    ) -> float:
        """One pass over the benchmark's paper-scale training set."""
        return self.cluster(nodes).epoch_seconds(
            self.bench.input_vectors, minibatch_per_node
        )

    def system_power_watts(self, nodes: Optional[int] = None) -> float:
        return (nodes or self.nodes) * self.platform.node_power_watts()

    def throughput_samples_per_second(
        self, minibatch_per_node: int = 10_000, nodes: Optional[int] = None
    ) -> float:
        nodes = nodes or self.nodes
        timing = self.iteration(minibatch_per_node, nodes)
        return minibatch_per_node * nodes / timing.total_s
