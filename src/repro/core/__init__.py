"""The CoSMIC facade: full-stack compilation and scale-out systems."""

from .stack import CosmicStack
from .system import (
    CosmicSystem,
    HOST_TDP_WATTS,
    NodePlatform,
    accelerator_platform,
    gpu_platform,
    platform_for,
)

__all__ = [
    "CosmicStack",
    "CosmicSystem",
    "HOST_TDP_WATTS",
    "NodePlatform",
    "accelerator_platform",
    "gpu_platform",
    "platform_for",
]
