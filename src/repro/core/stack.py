"""`CosmicStack`: the whole stack behind one object (Figure 3).

A stack instance owns one learning algorithm's journey through every
layer: DSL source -> Translator -> Planner -> Compiler -> Constructor,
plus the functional trainer. The scale-out system model lives in
:mod:`repro.core.system`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from ..circuit import RtlDesign, construct
from ..compiler import CompiledProgram, compile_thread
from ..dfg.translate import Translation
from ..hw.spec import ChipSpec, XILINX_VU9P
from ..ml.benchmarks import Benchmark
from ..perf.cache import cached_translate, compile_cache_key, get_cache
from ..planner import AcceleratorPlan, CostParams, Planner
from ..runtime import DistributedTrainer


class CosmicStack:
    """Compile and plan one DSL program through the full CoSMIC stack."""

    def __init__(
        self,
        source: str,
        bindings: Optional[Mapping[str, int]] = None,
        density: Optional[Mapping[str, float]] = None,
        functional_bindings: Optional[Mapping[str, int]] = None,
    ):
        """
        Args:
            source: the DSL program text.
            bindings: paper-scale dimension bindings for planning/timing.
            density: sparse-input annotations for the estimator.
            functional_bindings: reduced dims used when actually training
                (defaults to ``bindings``).
        """
        self.source = source
        self.density = dict(density or {})
        self._translation = cached_translate(source, bindings)
        if functional_bindings and functional_bindings != bindings:
            self._functional = cached_translate(source, functional_bindings)
        else:
            self._functional = self._translation
        self._plans: Dict[
            Tuple[ChipSpec, int, CostParams], AcceleratorPlan
        ] = {}

    @classmethod
    def from_benchmark(cls, bench: Benchmark) -> "CosmicStack":
        """Build the stack for one Table 1 benchmark."""
        return cls(
            bench.source(),
            bindings=bench.dims,
            density=bench.density,
            functional_bindings=bench.functional_dims,
        )

    # -- layers ---------------------------------------------------------
    @property
    def translation(self) -> Translation:
        """Paper-scale translation (Programming + Translator layers)."""
        return self._translation

    @property
    def functional_translation(self) -> Translation:
        """Reduced-scale translation used for actual training."""
        return self._functional

    def plan(
        self,
        chip: ChipSpec = XILINX_VU9P,
        minibatch: Optional[int] = None,
        params: CostParams = CostParams(),
    ) -> AcceleratorPlan:
        """Architecture layer: Planner DSE for ``chip`` (cached).

        The key is the (chip, minibatch, params) value triple — both
        dataclasses are frozen/hashable, so distinct parameter sets can
        never collide the way a stringified repr could (and a ``scaled()``
        chip that keeps its display name still gets its own entry).
        ``Planner.plan`` additionally memoizes through the global artifact
        cache, so equivalent plans are shared *across* stack instances.
        """
        minibatch = minibatch or self._translation.minibatch
        key = (chip, minibatch, params)
        if key not in self._plans:
            self._plans[key] = Planner(chip, params).plan(
                self._translation.dfg, minibatch, self.density
            )
        return self._plans[key]

    def compile(
        self,
        rows: int,
        columns: int,
        max_nodes: int = 50_000,
        optimize_graph: bool = True,
    ) -> CompiledProgram:
        """Compilation layer on the *functional-scale* graph.

        Runs the fold/CSE/DCE pipeline first (semantics-preserving), then
        scalar-expands, maps, and schedules. Full scalar compilation of
        paper-scale graphs is intentionally unsupported (millions of
        scalar ops); the macro-level estimator covers those, exactly as
        in the paper's toolchain.
        """
        from ..dfg.optimize import optimize

        key = compile_cache_key(
            self._functional.dfg, rows, columns, max_nodes, optimize_graph
        )

        def build() -> CompiledProgram:
            dfg = self._functional.dfg
            if optimize_graph:
                dfg, _ = optimize(dfg)
            return compile_thread(
                dfg, rows=rows, columns=columns, max_nodes=max_nodes
            )

        from ..compiler.serialize import program_to_dict

        return get_cache().get_or_compute(
            "compile", key, build, sidecar=program_to_dict
        )

    def rtl(
        self, rows: int = 2, columns: int = 4, target: str = "fpga"
    ) -> RtlDesign:
        """Circuit layer: Constructor output for one worker thread."""
        return construct(self.compile(rows, columns), target=target)

    def trainer(
        self,
        nodes: int = 1,
        threads_per_node: int = 1,
        cluster=None,
        seed: int = 0,
    ) -> DistributedTrainer:
        """System layer: a functional distributed trainer."""
        return DistributedTrainer(
            self._functional,
            nodes=nodes,
            threads_per_node=threads_per_node,
            cluster=cluster,
            seed=seed,
        )
