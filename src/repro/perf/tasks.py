"""Module-scope sweep task registry for process-mode executors.

``SweepExecutor("process")`` submits callables to a
``ProcessPoolExecutor``, which pickles them into the workers. The figure
harness naturally wants closures (a per-figure ``point`` function
capturing a :class:`Benchmark` and sweep parameters), and closures do not
pickle. This registry closes the gap without giving up the per-figure
code shape:

* figure point functions are module-level, decorated with
  :func:`sweep_task` under a stable name, and take only picklable
  arguments (the benchmark *name*, tuples of sweep parameters);
* :func:`task_call` wraps one of them plus its bound arguments into a
  :class:`TaskCall` — a tiny frozen dataclass that pickles as (task
  name, defining module, args) and resolves the function from the
  registry on call, importing the defining module first if the worker
  process has not loaded it yet.

The same :class:`TaskCall` works in serial/thread/process modes, so the
harness no longer cares which executor is active.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

_REGISTRY: Dict[str, Callable] = {}


def sweep_task(name: str):
    """Register a module-level function as a named sweep task."""

    def register(fn: Callable) -> Callable:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not fn:
            raise ValueError(
                f"sweep task {name!r} is already registered to "
                f"{existing.__module__}.{existing.__qualname__}"
            )
        fn.sweep_task_name = name
        _REGISTRY[name] = fn
        return fn

    return register


def resolve(name: str, module: str = "") -> Callable:
    """Look up a registered task, importing its defining module if this
    process (e.g. a fresh pool worker) has not registered it yet."""
    if name not in _REGISTRY and module:
        importlib.import_module(module)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown sweep task {name!r}; is its defining module "
            "importable in this process?"
        ) from None


def registered_tasks() -> Dict[str, Callable]:
    """Snapshot of the registry (name -> function)."""
    return dict(_REGISTRY)


@dataclass(frozen=True)
class TaskCall:
    """A picklable bound call of a registered sweep task.

    ``TaskCall(task, module, args)(item)`` is
    ``resolve(task, module)(item, *args)`` — the executor maps it over
    sweep items in any mode.
    """

    task: str
    module: str
    args: Tuple[Any, ...] = field(default_factory=tuple)

    def __call__(self, item: Any) -> Any:
        return resolve(self.task, self.module)(item, *self.args)


def task_call(fn: Callable, *args: Any) -> TaskCall:
    """Bind trailing arguments to a registered task, picklably."""
    name = getattr(fn, "sweep_task_name", None)
    if name is None:
        raise TypeError(
            f"{fn!r} is not a registered sweep task; decorate it with "
            "@sweep_task(name) at module scope"
        )
    return TaskCall(name, fn.__module__, tuple(args))
