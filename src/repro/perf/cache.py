"""Content-addressed artifact cache for the CoSMIC toolchain.

Every expensive artifact the stack produces — a :class:`Translation`, an
:class:`AcceleratorPlan`, a :class:`CompiledProgram` — is a pure function
of its inputs: the DSL source text, the dimension bindings, the chip
specification, the mini-batch size, and the cost-model parameters. This
module keys artifacts by a SHA-256 fingerprint of exactly those inputs
and memoizes them across :class:`CosmicStack`/:class:`CosmicSystem`
instances, so a figure sweep that touches the same (benchmark, chip,
minibatch) point twice pays for it once.

Two tiers:

* **in-memory** — a process-wide dict, always available, shared by every
  caller (the figure harness fans sweep points out over threads, so all
  workers hit one cache).
* **on-disk** (optional) — plans and compiled programs persist under a
  cache directory keyed by fingerprint. Payloads are pickled for exact
  reconstruction; compiled programs additionally get a diff-able JSON
  sidecar rendered by :mod:`repro.compiler.serialize` (the same artifact
  format a deployment ships), and plans get one via :func:`plan_to_dict`.

Enable persistence with :func:`configure_cache` or the ``REPRO_CACHE_DIR``
environment variable; disable caching entirely with ``REPRO_CACHE_DISABLE=1``
or the :func:`cache_disabled` context manager (the perf harness uses it to
measure the uncached path).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from . import env as _env

#: Artifact kinds that persist to disk when a cache directory is set.
#: Translations stay memory-only: they are cheap to recompute and carry
#: the whole AST/symbol table, which is not a deployment artifact.
#: Cluster schedule traces persist so a cold process replays figure
#: sweeps without re-recording the event-driven simulation.
_DISK_KINDS = ("plan", "compile", "cluster-schedule")


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


def _canonical(part: Any) -> Any:
    """Reduce ``part`` to a deterministic, hash-stable structure."""
    if part is None or isinstance(part, (bool, int, str)):
        return part
    if isinstance(part, float):
        return repr(part)  # repr round-trips doubles exactly
    if dataclasses.is_dataclass(part) and not isinstance(part, type):
        return (
            type(part).__name__,
            tuple(
                (f.name, _canonical(getattr(part, f.name)))
                for f in dataclasses.fields(part)
            ),
        )
    if isinstance(part, Mapping):
        return tuple(
            (str(k), _canonical(v)) for k, v in sorted(part.items())
        )
    if isinstance(part, (tuple, list, set, frozenset)):
        items = sorted(part) if isinstance(part, (set, frozenset)) else part
        return tuple(_canonical(v) for v in items)
    raise TypeError(f"cannot fingerprint {type(part).__name__!r}")


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical form of ``parts``.

    Accepts strings, numbers, mappings, sequences, and (nested)
    dataclasses — enough to address any artifact by (DSL program, chip
    spec, minibatch, CostParams) as the cache requires.
    """
    digest = hashlib.sha256(repr(_canonical(parts)).encode("utf-8"))
    return digest.hexdigest()


def dfg_fingerprint(dfg) -> str:
    """Content fingerprint of a dataflow graph.

    Covers values (ids, names, categories, axes, producers, constants,
    gradient flags), nodes (ops, operands, reduce axes), axis extents,
    and named outputs — everything the Planner and Compiler read. The
    digest is memoized on the graph object; graphs are append-only during
    construction and treated as immutable afterwards, so the memo is safe.
    """
    cached = getattr(dfg, "_perf_fingerprint", None)
    if cached is not None:
        return cached
    payload = (
        tuple(
            (
                v.vid, v.name, v.category, v.axes, v.producer,
                repr(v.const_value), v.is_gradient,
            )
            for v in dfg.values.values()
        ),
        tuple(
            (n.nid, n.op, n.inputs, n.output, n.reduce_axes)
            for n in dfg.nodes.values()
        ),
        tuple(sorted(dfg.extents.items())),
        tuple(sorted(dfg.outputs.items())),
    )
    digest = fingerprint(payload)
    dfg._perf_fingerprint = digest
    return digest


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CacheStats:
    """Hit/miss accounting, split by tier."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    stores: int = 0
    evictions: int = 0
    #: Disk entries rejected by a caller's ``validate`` hook (stale
    #: artifact versions); each is deleted and recomputed as a miss.
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.disk_hits

    def hit_rate(self) -> float:
        total = self.lookups
        return (self.hits + self.disk_hits) / total if total else 0.0


@dataclasses.dataclass(frozen=True)
class DiskEntry:
    """One persisted artifact: the pickle plus its optional sidecar."""

    kind: str
    key: str
    path: Path
    bytes: int
    mtime: float


class ArtifactCache:
    """Two-tier (memory + optional disk) content-addressed artifact store.

    The disk tier is LRU-bounded when ``max_disk_bytes`` is set (or the
    ``REPRO_CACHE_MAX_BYTES`` environment variable): every store evicts
    least-recently-used entries (pickle + sidecar together) until the
    tier fits, and every disk hit refreshes the entry's recency.
    """

    def __init__(
        self,
        disk_dir: Optional[Path] = None,
        enabled: bool = True,
        max_disk_bytes: Optional[int] = None,
    ):
        self._memory: Dict[Tuple[str, str], Any] = {}
        self._lock = threading.RLock()
        self.disk_dir = Path(disk_dir) if disk_dir else None
        self.enabled = enabled
        self.max_disk_bytes = max_disk_bytes
        self.stats = CacheStats()

    # -- generic interface ------------------------------------------------
    def get_or_compute(
        self,
        kind: str,
        key: str,
        compute: Callable[[], Any],
        sidecar: Optional[Callable[[Any], Dict]] = None,
        validate: Optional[Callable[[Any], bool]] = None,
    ) -> Any:
        """Return the ``kind`` artifact for ``key``, computing on miss.

        Args:
            kind: artifact family (``"translate"``, ``"plan"``,
                ``"compile"``); disk persistence applies per family.
            key: content fingerprint of every input (see :func:`fingerprint`).
            compute: thunk producing the artifact on a miss.
            sidecar: optional renderer producing a JSON-able dict written
                next to the pickled payload (diff-able artifact record).
            validate: optional predicate applied to disk-loaded payloads
                (version/schema checks); a rejected entry is deleted and
                recomputed as a miss, so stale artifact formats never
                reach a caller. Memory entries were produced (or already
                validated) by this process and are trusted.
        """
        if not self.enabled:
            return compute()
        slot = (kind, key)
        with self._lock:
            if slot in self._memory:
                self.stats.hits += 1
                return self._memory[slot]
        artifact = self._disk_load(kind, key)
        if (
            artifact is not None
            and validate is not None
            and not validate(artifact)
        ):
            self._disk_invalidate(kind, key)
            artifact = None
        if artifact is not None:
            with self._lock:
                self.stats.disk_hits += 1
                self._memory[slot] = artifact
            return artifact
        artifact = compute()
        with self._lock:
            self.stats.misses += 1
            self.stats.stores += 1
            self._memory[slot] = artifact
        self._disk_store(kind, key, artifact, sidecar)
        return artifact

    def clear(self, memory: bool = True, disk: bool = False):
        """Drop cached artifacts (stats reset with the memory tier)."""
        with self._lock:
            if memory:
                self._memory.clear()
                self.stats = CacheStats()
        if disk and self.disk_dir is not None:
            for kind in _DISK_KINDS:
                folder = self.disk_dir / kind
                if folder.is_dir():
                    for path in folder.iterdir():
                        path.unlink()

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # -- disk tier ---------------------------------------------------------
    def _disk_path(self, kind: str, key: str) -> Optional[Path]:
        if self.disk_dir is None or kind not in _DISK_KINDS:
            return None
        return self.disk_dir / kind / f"{key}.pkl"

    def _disk_load(self, kind: str, key: str) -> Optional[Any]:
        path = self._disk_path(kind, key)
        if path is None or not path.is_file():
            return None
        try:
            with path.open("rb") as fh:
                artifact = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None  # treat a corrupt entry as a miss
        try:
            os.utime(path, None)  # refresh LRU recency
        except OSError:
            pass
        return artifact

    def _disk_invalidate(self, kind: str, key: str):
        """Drop one stale persisted artifact (pickle + sidecar)."""
        path = self._disk_path(kind, key)
        if path is None:
            return
        for stale in (path, path.with_suffix(".json")):
            try:
                stale.unlink()
            except FileNotFoundError:
                pass
        with self._lock:
            self.stats.invalidated += 1

    def _disk_store(
        self,
        kind: str,
        key: str,
        artifact: Any,
        sidecar: Optional[Callable[[Any], Dict]],
    ):
        path = self._disk_path(kind, key)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".pkl.tmp")
        with tmp.open("wb") as fh:
            pickle.dump(artifact, fh, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(path)  # atomic within one filesystem
        if sidecar is not None:
            import json

            side = path.with_suffix(".json")
            side.write_text(json.dumps(sidecar(artifact), indent=2))
        if self.max_disk_bytes is not None:
            self.prune_disk(self.max_disk_bytes, keep_latest=True)

    # -- disk-tier accounting / eviction ------------------------------------
    def disk_entries(self) -> list:
        """Every persisted artifact, as :class:`DiskEntry` records."""
        entries = []
        if self.disk_dir is None:
            return entries
        for kind in _DISK_KINDS:
            folder = self.disk_dir / kind
            if not folder.is_dir():
                continue
            for path in sorted(folder.glob("*.pkl")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                nbytes = stat.st_size
                side = path.with_suffix(".json")
                if side.is_file():
                    try:
                        nbytes += side.stat().st_size
                    except OSError:
                        pass
                entries.append(
                    DiskEntry(
                        kind=kind,
                        key=path.stem,
                        path=path,
                        bytes=nbytes,
                        mtime=stat.st_mtime,
                    )
                )
        return entries

    def disk_usage(self) -> Dict[str, Tuple[int, int]]:
        """Per-kind ``(entry_count, bytes)`` of the disk tier."""
        usage: Dict[str, Tuple[int, int]] = {}
        for entry in self.disk_entries():
            count, nbytes = usage.get(entry.kind, (0, 0))
            usage[entry.kind] = (count + 1, nbytes + entry.bytes)
        return usage

    def prune_disk(
        self, max_bytes: Optional[int] = None, keep_latest: bool = False
    ) -> list:
        """Evict least-recently-used disk entries until the tier fits.

        ``max_bytes`` defaults to the cache's configured cap; with no cap
        at all this is a no-op unless ``max_bytes=0`` is passed to clear
        everything. ``keep_latest`` protects the most recently touched
        entry (the store that triggered the eviction must survive it).
        Returns the evicted :class:`DiskEntry` records.
        """
        cap = self.max_disk_bytes if max_bytes is None else max_bytes
        if cap is None:
            return []
        entries = sorted(self.disk_entries(), key=lambda e: e.mtime)
        total = sum(e.bytes for e in entries)
        if keep_latest and entries:
            entries = entries[:-1]
        evicted = []
        for entry in entries:
            if total <= cap:
                break
            for path in (entry.path, entry.path.with_suffix(".json")):
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            total -= entry.bytes
            evicted.append(entry)
        with self._lock:
            self.stats.evictions += len(evicted)
        return evicted


# ---------------------------------------------------------------------------
# Process-wide cache
# ---------------------------------------------------------------------------

_GLOBAL = ArtifactCache(
    disk_dir=_env.cache_dir(),
    enabled=_env.cache_enabled(),
    max_disk_bytes=_env.cache_max_bytes(),
)


def get_cache() -> ArtifactCache:
    """The process-wide artifact cache every layer shares."""
    return _GLOBAL


def configure_cache(
    disk_dir: Optional[Path] = None,
    enabled: Optional[bool] = None,
    max_disk_bytes: Optional[int] = None,
) -> ArtifactCache:
    """Adjust the global cache (persistence directory, on-off, size cap)."""
    if disk_dir is not None:
        _GLOBAL.disk_dir = Path(disk_dir)
    if enabled is not None:
        _GLOBAL.enabled = enabled
    if max_disk_bytes is not None:
        _GLOBAL.max_disk_bytes = max_disk_bytes
    return _GLOBAL


@contextmanager
def cache_disabled():
    """Temporarily bypass the global cache (uncached measurements)."""
    was = _GLOBAL.enabled
    _GLOBAL.enabled = False
    try:
        yield
    finally:
        _GLOBAL.enabled = was


# ---------------------------------------------------------------------------
# Memoized entry points
# ---------------------------------------------------------------------------


def cached_translate(source: str, bindings: Optional[Mapping[str, int]]):
    """Parse + translate ``source`` under ``bindings``, memoized.

    The hot path of every figure sweep: ``Benchmark.model_bytes``,
    ``bytes_per_sample``, the Spark baseline, and the platform factories
    all re-translate the same five DSL programs; one global cache entry
    per (program, bindings) collapses them.
    """
    from ..dfg.translate import translate
    from ..dsl import parse

    bindings = dict(bindings or {})
    key = fingerprint("translate", source, bindings)
    return get_cache().get_or_compute(
        "translate", key, lambda: translate(parse(source), bindings)
    )


def plan_cache_key(
    chip,
    params,
    dfg,
    minibatch: int,
    density: Optional[Mapping[str, float]],
    stream_words: Optional[float],
) -> str:
    """Fingerprint of every input :meth:`Planner.plan` reads."""
    return fingerprint(
        "plan",
        chip,
        params,
        dfg_fingerprint(dfg),
        minibatch,
        dict(density or {}),
        stream_words,
    )


def compile_cache_key(
    dfg, rows: int, columns: int, max_nodes: int, optimize_graph: bool
) -> str:
    """Fingerprint of every input :meth:`CosmicStack.compile` reads."""
    return fingerprint(
        "compile", dfg_fingerprint(dfg), rows, columns, max_nodes,
        optimize_graph,
    )


# ---------------------------------------------------------------------------
# Plan (de)serialization — the disk sidecar format
# ---------------------------------------------------------------------------


def plan_to_dict(plan) -> Dict:
    """Render an :class:`AcceleratorPlan` as a JSON-able dict."""
    return {
        "chip": dataclasses.asdict(plan.chip),
        "design": dataclasses.asdict(plan.design),
        "thread_estimate": {
            "work_cycles": plan.thread_estimate.work_cycles,
            "comm_cycles": plan.thread_estimate.comm_cycles,
            "critical_path": plan.thread_estimate.critical_path,
            "per_node": {
                str(nid): cycles
                for nid, cycles in plan.thread_estimate.per_node.items()
            },
        },
        "data_words_per_sample": plan.data_words_per_sample,
        "model_words": plan.model_words,
        "gradient_words": plan.gradient_words,
        "minibatch": plan.minibatch,
        "storage_per_thread_bytes": plan.storage_per_thread_bytes,
        "params": dataclasses.asdict(plan.params),
    }


def plan_from_dict(payload: Mapping):
    """Reconstruct an :class:`AcceleratorPlan` from :func:`plan_to_dict`."""
    from ..hw.spec import ChipSpec
    from ..planner.estimator import CostParams, ThreadEstimate
    from ..planner.plan import AcceleratorPlan, DesignPoint

    estimate = payload["thread_estimate"]
    return AcceleratorPlan(
        chip=ChipSpec(**payload["chip"]),
        design=DesignPoint(**payload["design"]),
        thread_estimate=ThreadEstimate(
            work_cycles=estimate["work_cycles"],
            comm_cycles=estimate["comm_cycles"],
            critical_path=estimate["critical_path"],
            per_node={
                int(nid): cycles
                for nid, cycles in estimate["per_node"].items()
            },
        ),
        data_words_per_sample=payload["data_words_per_sample"],
        model_words=payload["model_words"],
        gradient_words=payload["gradient_words"],
        minibatch=payload["minibatch"],
        storage_per_thread_bytes=payload["storage_per_thread_bytes"],
        params=CostParams(**payload["params"]),
    )
