"""Cross-layer performance subsystem: artifact cache + sweep parallelism.

Two tools that make the stack fast *about itself*:

* :mod:`repro.perf.cache` — a content-addressed artifact cache memoizing
  Translations, AcceleratorPlans, and CompiledPrograms across stack and
  system instances, with optional on-disk persistence.
* :mod:`repro.perf.parallel` — a ``concurrent.futures``-based sweep
  executor (with a deterministic serial fallback) that fans out
  independent sweep points in the experiment harness and the Planner's
  design-space exploration.
* :mod:`repro.perf.tasks` — a module-scope sweep task registry so
  figure sweeps pickle cleanly into ``SweepExecutor("process")``
  workers.
* :mod:`repro.perf.distributed` — the queue-backed executor mode:
  a coordinator serves ``TaskCall`` sweeps to ``python -m repro
  worker`` processes on any host, with leases, automatic re-enqueue
  from dead/straggling workers, and per-worker health stats.
* :mod:`repro.perf.env` — centralized, validated parsing of every
  ``REPRO_*`` environment flag.

The perf-regression harness that times the stack against a committed
baseline lives in :mod:`repro.bench.perf` (``python -m repro perf``).
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    DiskEntry,
    cache_disabled,
    cached_translate,
    configure_cache,
    dfg_fingerprint,
    fingerprint,
    get_cache,
    plan_from_dict,
    plan_to_dict,
)
from .distributed import (
    QueueCoordinator,
    SweepSummary,
    SweepTaskError,
    SweepTimeout,
    WorkerStats,
    default_coordinator,
    run_worker,
    set_default_coordinator,
    spawn_local_workers,
)
from .env import EnvError
from .parallel import (
    SweepExecutor,
    default_executor,
    set_default_executor,
)
from .tasks import (
    TaskCall,
    registered_tasks,
    resolve,
    sweep_task,
    task_call,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DiskEntry",
    "EnvError",
    "QueueCoordinator",
    "SweepExecutor",
    "SweepSummary",
    "SweepTaskError",
    "SweepTimeout",
    "TaskCall",
    "WorkerStats",
    "cache_disabled",
    "cached_translate",
    "configure_cache",
    "default_coordinator",
    "default_executor",
    "dfg_fingerprint",
    "fingerprint",
    "get_cache",
    "plan_from_dict",
    "plan_to_dict",
    "registered_tasks",
    "resolve",
    "run_worker",
    "set_default_coordinator",
    "set_default_executor",
    "spawn_local_workers",
    "sweep_task",
    "task_call",
]
