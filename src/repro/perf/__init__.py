"""Cross-layer performance subsystem: artifact cache + sweep parallelism.

Two tools that make the stack fast *about itself*:

* :mod:`repro.perf.cache` — a content-addressed artifact cache memoizing
  Translations, AcceleratorPlans, and CompiledPrograms across stack and
  system instances, with optional on-disk persistence.
* :mod:`repro.perf.parallel` — a ``concurrent.futures``-based sweep
  executor (with a deterministic serial fallback) that fans out
  independent sweep points in the experiment harness and the Planner's
  design-space exploration.

The perf-regression harness that times the stack against a committed
baseline lives in :mod:`repro.bench.perf` (``python -m repro perf``).
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    cache_disabled,
    cached_translate,
    configure_cache,
    dfg_fingerprint,
    fingerprint,
    get_cache,
    plan_from_dict,
    plan_to_dict,
)
from .parallel import (
    SweepExecutor,
    default_executor,
    set_default_executor,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "SweepExecutor",
    "cache_disabled",
    "cached_translate",
    "configure_cache",
    "default_executor",
    "dfg_fingerprint",
    "fingerprint",
    "get_cache",
    "plan_from_dict",
    "plan_to_dict",
    "set_default_executor",
]
