"""Cross-layer performance subsystem: artifact cache + sweep parallelism.

Two tools that make the stack fast *about itself*:

* :mod:`repro.perf.cache` — a content-addressed artifact cache memoizing
  Translations, AcceleratorPlans, and CompiledPrograms across stack and
  system instances, with optional on-disk persistence.
* :mod:`repro.perf.parallel` — a ``concurrent.futures``-based sweep
  executor (with a deterministic serial fallback) that fans out
  independent sweep points in the experiment harness and the Planner's
  design-space exploration.
* :mod:`repro.perf.tasks` — a module-scope sweep task registry so
  figure sweeps pickle cleanly into ``SweepExecutor("process")``
  workers.

The perf-regression harness that times the stack against a committed
baseline lives in :mod:`repro.bench.perf` (``python -m repro perf``).
"""

from .cache import (
    ArtifactCache,
    CacheStats,
    DiskEntry,
    cache_disabled,
    cached_translate,
    configure_cache,
    dfg_fingerprint,
    fingerprint,
    get_cache,
    plan_from_dict,
    plan_to_dict,
)
from .parallel import (
    SweepExecutor,
    default_executor,
    set_default_executor,
)
from .tasks import (
    TaskCall,
    registered_tasks,
    resolve,
    sweep_task,
    task_call,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "DiskEntry",
    "SweepExecutor",
    "TaskCall",
    "cache_disabled",
    "cached_translate",
    "configure_cache",
    "default_executor",
    "dfg_fingerprint",
    "fingerprint",
    "get_cache",
    "plan_from_dict",
    "plan_to_dict",
    "registered_tasks",
    "resolve",
    "set_default_executor",
    "sweep_task",
    "task_call",
]
