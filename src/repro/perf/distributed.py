"""Queue-backed distributed sweep execution (`SweepExecutor("queue")`).

The figure harness and the Planner's DSE are embarrassingly parallel,
but the thread/process executors top out at one machine's cores. This
module turns the same picklable :class:`repro.perf.tasks.TaskCall`
sweeps into a small-cluster workload, mirroring the paper's runtime
shape: a coordinator (the Sigma of the sweep) fans work out to any
number of worker processes on any number of hosts and aggregates their
results in input order.

Transport is a :class:`multiprocessing.managers.BaseManager` server run
*in-process* by the coordinator: two proxied queues — ``work`` carrying
:class:`WorkItem` envelopes and ``events`` carrying worker join / claim
/ result messages — over one authenticated TCP socket. Workers are
plain processes started with ``python -m repro worker --connect
HOST:PORT [--authkey-file F]``; they loop forever serving sweeps until
the coordinator sends a shutdown sentinel or disappears.

Worker health reuses the shape of the runtime's heartbeat/retry
machinery (:mod:`repro.runtime.recovery`):

* every claim starts a **lease** with a deadline; a task whose lease
  expires — a dead or straggling worker — is re-enqueued for another
  worker. Tasks are pure functions backed by the content-addressed
  cache, so duplicate execution is idempotent: the first result for a
  task id wins and later duplicates are counted and dropped.
* a worker that *reports* a task failure gets the task retried
  elsewhere up to ``max_task_retries`` times before the sweep raises.
* a quiescence rescue re-enqueues unfinished tasks when the queue has
  drained and no leases are outstanding (covers a worker dying in the
  narrow window between dequeuing a task and claiming it).
* per-worker statistics (tasks completed/failed, busy seconds, last
  heartbeat) accumulate into a :class:`SweepSummary` at the end of
  every sweep.

Results assemble by task index, so a queue sweep is bit-identical to
``SweepExecutor("serial")`` — the property the queue-smoke CI gate and
the chaos tests assert.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import subprocess
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import AuthenticationError
from multiprocessing.managers import BaseManager
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from . import env

#: Bumped when the envelope/event wire format changes; workers refuse to
#: serve a coordinator speaking a different protocol.
PROTOCOL_VERSION = 1


class SweepTimeout(RuntimeError):
    """A queue sweep exceeded its overall deadline."""


class SweepTaskError(RuntimeError):
    """A task failed on every allowed attempt; carries the last worker
    traceback."""


@dataclass(frozen=True)
class WorkItem:
    """One unit of sweep work on the wire.

    ``fn`` must be picklable — in practice a
    :class:`~repro.perf.tasks.TaskCall`, which resolves its function
    from the task registry inside the worker (importing the defining
    module there first if needed).
    """

    sweep: int
    task: int
    attempt: int
    fn: Callable[[Any], Any]
    item: Any


@dataclass
class WorkerStats:
    """Coordinator-side health record for one worker."""

    worker_id: str
    joined_s: float
    last_seen_s: float
    completed: int = 0
    failed: int = 0
    busy_s: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class SweepSummary:
    """End-of-sweep accounting: totals plus per-worker stats."""

    tasks: int
    attempts: int
    requeued: int
    duplicates: int
    elapsed_s: float
    workers: List[WorkerStats]

    def render(self) -> str:
        lines = [
            f"== queue sweep: {self.tasks} tasks, {self.attempts} attempts"
            f" ({self.requeued} requeued, {self.duplicates} duplicate"
            f" results), {self.elapsed_s:.2f}s =="
        ]
        for w in sorted(self.workers, key=lambda w: w.worker_id):
            lines.append(
                f"  {w.worker_id:30s} done={w.completed:4d} "
                f"failed={w.failed:2d} busy={w.busy_s:8.2f}s"
            )
        if not self.workers:
            lines.append("  (no workers ever joined)")
        return "\n".join(lines)


def _manager_class(
    work_queue: Optional[queue.Queue] = None,
    event_queue: Optional[queue.Queue] = None,
):
    """A fresh ``BaseManager`` subclass with the sweep queue registry.

    The class is created per call because ``register`` mutates class
    state: two coordinators in one process must not share a registry.
    With queues given (coordinator side) the typeids serve those local
    objects; without (worker side) they are proxies only.
    """

    manager = type("_SweepManager", (BaseManager,), {})
    if work_queue is not None:
        manager.register("get_work", callable=lambda: work_queue)
        manager.register("get_events", callable=lambda: event_queue)
    else:
        manager.register("get_work")
        manager.register("get_events")
    return manager


def worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


class QueueCoordinator:
    """Serves sweep tasks to remote workers and assembles their results.

    The manager server runs in a daemon thread of the calling process,
    so the coordinator owns the real ``queue.Queue`` objects and the
    sweep loop touches them without proxy round-trips; only workers go
    through the authenticated socket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        authkey: Optional[bytes] = None,
        lease_s: Optional[float] = None,
        max_task_retries: int = 3,
        poll_s: float = 0.05,
        rescue_idle_s: float = 1.0,
    ):
        self.authkey = authkey if authkey is not None else env.sweep_authkey()
        self.lease_s = lease_s if lease_s is not None else env.sweep_lease_s()
        self.max_task_retries = max_task_retries
        self.poll_s = poll_s
        self.rescue_idle_s = rescue_idle_s
        self._work: queue.Queue = queue.Queue()
        self._events: queue.Queue = queue.Queue()
        self._manager = _manager_class(self._work, self._events)(
            address=(host, port), authkey=self.authkey
        )
        self._server = None
        self._thread: Optional[threading.Thread] = None
        self._workers: Dict[str, WorkerStats] = {}
        self._claims: Dict[int, str] = {}
        self._sweep_counter = 0
        self._active = False
        self._lock = threading.Lock()
        self._local_procs: List[subprocess.Popen] = []
        self.last_summary: Optional[SweepSummary] = None

    # -- lifecycle -------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind the server socket and serve it from a daemon thread."""
        if self._server is not None:
            return self.address
        self._server = self._manager.get_server()
        server = self._server

        def serve():
            # serve_forever exits via sys.exit(0) when stop_event is
            # set; swallow it so shutdown is not an "unhandled thread
            # exception".
            try:
                server.serve_forever()
            except SystemExit:
                pass

        self._thread = threading.Thread(
            target=serve,
            daemon=True,
            name="sweep-coordinator",
        )
        self._thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        if self._server is None:
            raise RuntimeError("coordinator not started")
        host, port = self._server.address
        return host, port

    def spawn_local_workers(self, count: int) -> List[subprocess.Popen]:
        """Start ``count`` worker processes against this coordinator."""
        procs = spawn_local_workers(self.address, self.authkey, count)
        self._local_procs.extend(procs)
        return procs

    def shutdown(self):
        """Send shutdown sentinels, stop the server, reap local workers."""
        if self._server is None:
            return
        # Stale work from an aborted sweep must not shadow the sentinels.
        while True:
            try:
                self._work.get_nowait()
            except queue.Empty:
                break
        for _ in range(max(4, 2 * len(self._workers))):
            self._work.put(None)
        deadline = time.monotonic() + 5.0
        for proc in self._local_procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.kill()
        self._local_procs.clear()
        self._server.stop_event.set()
        try:
            self._server.listener.close()
        except OSError:
            pass
        self._server = None

    # -- the sweep loop --------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        timeout_s: Optional[float] = None,
    ) -> List[Any]:
        """Order-preserving distributed map; blocks until every task has
        a result (workers may join at any point, including after the
        sweep starts)."""
        points = list(items)
        if not points:
            return []
        try:
            pickle.dumps((fn, points))
        except Exception as exc:
            raise TypeError(
                "queue-mode sweeps need picklable callables and items; "
                "use a registered @sweep_task via task_call "
                f"(pickling failed: {exc})"
            ) from None
        if self._server is None:
            self.start()
        with self._lock:
            if self._active:
                # Re-entrant map from coordinator-side code (e.g. a
                # nested DSE): fall back to the serial reference path
                # rather than deadlocking on our own queue.
                return [fn(p) for p in points]
            self._active = True
            self._sweep_counter += 1
            sweep = self._sweep_counter
        try:
            return self._run_sweep(sweep, fn, points, timeout_s)
        finally:
            with self._lock:
                self._active = False

    def _run_sweep(
        self,
        sweep: int,
        fn: Callable[[Any], Any],
        points: Sequence[Any],
        timeout_s: Optional[float],
    ) -> List[Any]:
        n = len(points)
        results: Dict[int, Any] = {}
        leases: Dict[int, float] = {}
        attempt_no: Dict[int, int] = {i: 0 for i in range(n)}
        failures: Dict[int, int] = {}
        requeued = 0
        duplicates = 0
        attempts = n
        started = time.monotonic()
        last_event = started
        if timeout_s is None:
            timeout_s = env.sweep_timeout_s()
        for i, item in enumerate(points):
            self._work.put(WorkItem(sweep, i, 0, fn, item))

        def requeue(task: int) -> None:
            nonlocal attempts
            attempt_no[task] += 1
            attempts += 1
            self._claims.pop(task, None)
            self._work.put(
                WorkItem(sweep, task, attempt_no[task], fn, points[task])
            )

        while len(results) < n:
            now = time.monotonic()
            if timeout_s is not None and now - started > timeout_s:
                raise SweepTimeout(
                    f"queue sweep incomplete after {timeout_s:.1f}s: "
                    f"{len(results)}/{n} tasks done, "
                    f"{len(self._workers)} workers ever joined"
                )
            try:
                event = self._events.get(timeout=self.poll_s)
            except queue.Empty:
                event = None
            now = time.monotonic()
            if event is not None:
                last_event = now
                kind = event[0]
                if kind == "join":
                    _, wid, meta = event
                    stats = self._workers.get(wid)
                    if stats is None:
                        self._workers[wid] = WorkerStats(
                            wid, joined_s=now, last_seen_s=now, meta=meta
                        )
                    else:
                        stats.last_seen_s = now
                elif kind == "claim":
                    _, wid, esweep, task, attempt = event
                    self._touch(wid, now)
                    if esweep == sweep and task not in results:
                        leases[task] = now + self.lease_s
                        self._claims[task] = wid
                elif kind in ("result", "error"):
                    _, wid, esweep, task, attempt, elapsed, payload = event
                    stats = self._touch(wid, now)
                    stats.busy_s += elapsed
                    if esweep != sweep:
                        continue  # stale straggler from an earlier sweep
                    if task in results:
                        duplicates += 1
                        continue
                    leases.pop(task, None)
                    self._claims.pop(task, None)
                    if kind == "result":
                        results[task] = payload
                        stats.completed += 1
                    else:
                        stats.failed += 1
                        failures[task] = failures.get(task, 0) + 1
                        if failures[task] > self.max_task_retries:
                            raise SweepTaskError(
                                f"task {task} failed "
                                f"{failures[task]} times; last worker "
                                f"({wid}) traceback:\n{payload}"
                            )
                        requeue(task)
                elif kind == "leave":
                    _, wid, reason = event
                    self._touch(wid, now)
            # Dead or straggling workers: an expired lease re-enqueues
            # the task for someone else. The first result wins either
            # way, so a straggler that eventually finishes is harmless.
            for task, deadline in list(leases.items()):
                if now > deadline and task not in results:
                    leases.pop(task)
                    requeued += 1
                    requeue(task)
            # Quiescence rescue: queue drained, nothing leased, tasks
            # missing — a worker died between dequeue and claim.
            if (
                event is None
                and not leases
                and len(results) < n
                and self._work.qsize() == 0
                and now - last_event > self.rescue_idle_s
            ):
                last_event = now
                for task in range(n):
                    if task not in results:
                        requeued += 1
                        requeue(task)

        elapsed = time.monotonic() - started
        summary = SweepSummary(
            tasks=n,
            attempts=attempts,
            requeued=requeued,
            duplicates=duplicates,
            elapsed_s=elapsed,
            workers=list(self._workers.values()),
        )
        self.last_summary = summary
        if env.sweep_summary():
            print(summary.render(), file=sys.stderr)
        return [results[i] for i in range(n)]

    def _touch(self, wid: str, now: float) -> WorkerStats:
        stats = self._workers.get(wid)
        if stats is None:
            stats = self._workers[wid] = WorkerStats(
                wid, joined_s=now, last_seen_s=now
            )
        stats.last_seen_s = now
        return stats

    def current_claims(self) -> Dict[int, str]:
        """Live task -> worker assignments (chaos tests use this to pick
        a victim)."""
        return dict(self._claims)


# ---------------------------------------------------------------------------
# Worker
# ---------------------------------------------------------------------------


def run_worker(
    host: str,
    port: int,
    authkey: bytes,
    max_tasks: Optional[int] = None,
    log: Callable[[str], None] = lambda msg: print(msg, file=sys.stderr),
) -> int:
    """Serve sweep tasks from the coordinator at ``(host, port)``.

    Blocks until the coordinator sends a shutdown sentinel, the
    connection drops (coordinator exited), or ``max_tasks`` tasks have
    been executed. Returns a process exit code: 0 on a clean exit, 2
    when the coordinator is unreachable, 3 on an authkey mismatch.
    """
    wid = worker_id()
    manager = _manager_class()(address=(host, port), authkey=authkey)
    try:
        manager.connect()
    except AuthenticationError:
        log(f"worker {wid}: authentication failed for {host}:{port} "
            "(authkey mismatch)")
        return 3
    except (ConnectionError, OSError) as exc:
        log(f"worker {wid}: cannot reach coordinator {host}:{port}: {exc}")
        return 2
    work = manager.get_work()
    events = manager.get_events()
    events.put(
        (
            "join",
            wid,
            {
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "protocol": PROTOCOL_VERSION,
            },
        )
    )
    log(f"worker {wid}: serving sweeps from {host}:{port}")
    done = 0
    while True:
        try:
            item = work.get()
        except (EOFError, ConnectionError, OSError):
            log(f"worker {wid}: coordinator gone, exiting")
            return 0
        if item is None:  # shutdown sentinel
            log(f"worker {wid}: shutdown after {done} tasks")
            return 0
        try:
            events.put(("claim", wid, item.sweep, item.task, item.attempt))
            start = time.perf_counter()
            try:
                value = item.fn(item.item)
            except Exception:
                events.put(
                    (
                        "error",
                        wid,
                        item.sweep,
                        item.task,
                        item.attempt,
                        time.perf_counter() - start,
                        traceback.format_exc(),
                    )
                )
            else:
                try:
                    events.put(
                        (
                            "result",
                            wid,
                            item.sweep,
                            item.task,
                            item.attempt,
                            time.perf_counter() - start,
                            value,
                        )
                    )
                except Exception:
                    # e.g. an unpicklable return value: report instead
                    # of crashing the worker.
                    events.put(
                        (
                            "error",
                            wid,
                            item.sweep,
                            item.task,
                            item.attempt,
                            time.perf_counter() - start,
                            traceback.format_exc(),
                        )
                    )
        except (EOFError, ConnectionError, OSError):
            log(f"worker {wid}: coordinator gone mid-task, exiting")
            return 0
        done += 1
        if max_tasks is not None and done >= max_tasks:
            try:
                events.put(("leave", wid, "max-tasks"))
            except (EOFError, ConnectionError, OSError):
                pass
            log(f"worker {wid}: max-tasks={max_tasks} reached, exiting")
            return 0


def spawn_local_workers(
    address: Tuple[str, int], authkey: bytes, count: int
) -> List[subprocess.Popen]:
    """Start ``count`` local ``python -m repro worker`` subprocesses.

    The authkey travels via the child environment (never argv, which is
    world-readable in ``ps``). Children force ``REPRO_SWEEP_MODE=auto``
    so a worker never tries to become a queue coordinator itself, and
    get ``src/`` prepended to ``PYTHONPATH`` so a source checkout works
    without installation.
    """
    host, port = address
    src_dir = str(Path(__file__).resolve().parents[2])
    child_env = dict(os.environ)
    child_env["REPRO_SWEEP_AUTHKEY"] = authkey.decode(
        "utf-8", errors="surrogateescape"
    )
    child_env.pop("REPRO_SWEEP_AUTHKEY_FILE", None)
    child_env["REPRO_SWEEP_MODE"] = "auto"
    child_env.pop("REPRO_SWEEP_LOCAL_WORKERS", None)
    existing = child_env.get("PYTHONPATH", "")
    child_env["PYTHONPATH"] = (
        f"{src_dir}{os.pathsep}{existing}" if existing else src_dir
    )
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                f"{host}:{port}",
            ],
            env=child_env,
        )
        for _ in range(count)
    ]


# ---------------------------------------------------------------------------
# Default (env-configured) coordinator
# ---------------------------------------------------------------------------

_DEFAULT_COORDINATOR: Optional[QueueCoordinator] = None
_DEFAULT_LOCK = threading.Lock()


def default_coordinator() -> QueueCoordinator:
    """The process-wide coordinator ``SweepExecutor("queue")`` uses.

    Created lazily from the ``REPRO_SWEEP_*`` environment on first use:
    binds ``REPRO_SWEEP_ADDR`` (loopback + ephemeral port by default),
    announces the bound address on stderr so operators know where to
    point ``python -m repro worker --connect``, and spawns
    ``REPRO_SWEEP_LOCAL_WORKERS`` local workers if requested.
    """
    global _DEFAULT_COORDINATOR
    with _DEFAULT_LOCK:
        if _DEFAULT_COORDINATOR is None:
            host, port = env.sweep_address()
            coordinator = QueueCoordinator(host=host, port=port)
            bound_host, bound_port = coordinator.start()
            print(
                f"sweep coordinator serving on {bound_host}:{bound_port} — "
                "attach workers with: python -m repro worker "
                f"--connect {bound_host}:{bound_port}",
                file=sys.stderr,
            )
            local = env.sweep_local_workers()
            if local:
                coordinator.spawn_local_workers(local)
            _DEFAULT_COORDINATOR = coordinator
    return _DEFAULT_COORDINATOR


def set_default_coordinator(
    coordinator: Optional[QueueCoordinator],
) -> Optional[QueueCoordinator]:
    """Swap the process-wide coordinator (tests and the perf harness
    pin their own); returns the previous one without shutting it down."""
    global _DEFAULT_COORDINATOR
    with _DEFAULT_LOCK:
        previous = _DEFAULT_COORDINATOR
        _DEFAULT_COORDINATOR = coordinator
    return previous
