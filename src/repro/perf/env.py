"""Centralized parsing for every ``REPRO_*`` environment flag.

The perf and runtime layers used to read ``os.environ`` at scattered
import sites, each with its own ad-hoc truthiness rules and silent
``int()`` crashes. This module is the single place a ``REPRO_*`` value
is parsed: every knob has one typed accessor, every accessor validates,
and a bad value raises :class:`EnvError` naming the variable and the
expected form instead of an anonymous ``ValueError`` from deep inside a
sweep.

Accessors read the environment at *call* time, so tests can monkeypatch
``os.environ`` and callers (the lazy default executor, the schedule
replayer's kill-switch) see the change without re-importing anything.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Sequence, Tuple

#: Sweep executor modes, in the order the docs list them. ``parallel``
#: re-exports this as ``MODES``; the queue mode is served by
#: :mod:`repro.perf.distributed`.
SWEEP_MODES = ("auto", "serial", "thread", "process", "queue")

_TRUE = ("1", "true", "yes", "on")
_FALSE = ("0", "false", "no", "off", "")


class EnvError(ValueError):
    """A ``REPRO_*`` variable holds a value that cannot be parsed."""


def env_string(name: str, default: Optional[str] = None) -> Optional[str]:
    """The raw value, or ``default`` when unset/empty."""
    value = os.environ.get(name, "")
    return value if value else default


def env_choice(
    name: str, default: str, choices: Sequence[str]
) -> str:
    value = env_string(name, default)
    if value not in choices:
        raise EnvError(
            f"{name}={value!r} is not a valid choice; expected one of "
            f"{', '.join(choices)}"
        )
    return value


def env_int(
    name: str,
    default: Optional[int] = None,
    minimum: Optional[int] = None,
) -> Optional[int]:
    raw = env_string(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise EnvError(
            f"{name}={raw!r} is not an integer"
        ) from None
    if minimum is not None and value < minimum:
        raise EnvError(f"{name}={value} must be >= {minimum}")
    return value


def env_float(
    name: str,
    default: Optional[float] = None,
    minimum: Optional[float] = None,
) -> Optional[float]:
    raw = env_string(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise EnvError(f"{name}={raw!r} is not a number") from None
    if minimum is not None and value < minimum:
        raise EnvError(f"{name}={value} must be >= {minimum}")
    return value


def env_flag(name: str, default: bool) -> bool:
    """Boolean flags accept 1/0, true/false, yes/no, on/off."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise EnvError(
        f"{name}={raw!r} is not a boolean; use one of "
        f"{', '.join(_TRUE)} / {', '.join(f or repr('') for f in _FALSE)}"
    )


def parse_address(value: str, name: str = "address") -> Tuple[str, int]:
    """``HOST:PORT`` -> ``(host, port)`` with a validated port."""
    host, sep, port_s = value.rpartition(":")
    if not sep or not host:
        raise EnvError(
            f"{name}={value!r} is not HOST:PORT (e.g. 127.0.0.1:8765)"
        )
    try:
        port = int(port_s)
    except ValueError:
        raise EnvError(
            f"{name}={value!r} has a non-integer port {port_s!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise EnvError(f"{name}={value!r} port must be in [0, 65535]")
    return host, port


# ---------------------------------------------------------------------------
# Sweep executor knobs
# ---------------------------------------------------------------------------


def sweep_mode() -> str:
    """``REPRO_SWEEP_MODE`` — executor mode the default executor uses."""
    return env_choice("REPRO_SWEEP_MODE", "auto", SWEEP_MODES)


def sweep_jobs() -> Optional[int]:
    """``REPRO_SWEEP_JOBS`` — worker count for the default executor."""
    return env_int("REPRO_SWEEP_JOBS", None, minimum=1)


def sweep_address() -> Tuple[str, int]:
    """``REPRO_SWEEP_ADDR`` — where the queue coordinator serves.

    Defaults to ``127.0.0.1:0`` (loopback, ephemeral port — the
    coordinator prints the bound address at startup). Bind a routable
    interface, e.g. ``0.0.0.0:8765``, to accept workers from other
    hosts.
    """
    raw = env_string("REPRO_SWEEP_ADDR", "127.0.0.1:0")
    return parse_address(raw, "REPRO_SWEEP_ADDR")


def sweep_authkey() -> bytes:
    """Shared secret for the queue coordinator's manager connection.

    ``REPRO_SWEEP_AUTHKEY_FILE`` (first line of the file, stripped)
    wins over ``REPRO_SWEEP_AUTHKEY``; with neither set a well-known
    default is used, which is only acceptable on a trusted loopback —
    set a real key for multi-host sweeps.
    """
    path = env_string("REPRO_SWEEP_AUTHKEY_FILE")
    if path:
        return read_authkey_file(path)
    value = env_string("REPRO_SWEEP_AUTHKEY")
    if value:
        return value.encode()
    return b"cosmic-sweep"


def read_authkey_file(path: str) -> bytes:
    """First line of ``path`` as the authkey, whitespace-stripped."""
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise EnvError(f"cannot read authkey file {path!r}: {exc}") from None
    key = raw.splitlines()[0].strip() if raw else b""
    if not key:
        raise EnvError(f"authkey file {path!r} is empty")
    return key


def sweep_lease_s() -> float:
    """``REPRO_SWEEP_LEASE_S`` — seconds a claimed task may run before
    the coordinator re-enqueues it for another worker."""
    return env_float("REPRO_SWEEP_LEASE_S", 30.0, minimum=0.1)


def sweep_timeout_s() -> Optional[float]:
    """``REPRO_SWEEP_TIMEOUT_S`` — overall deadline for one queue sweep
    (unset means wait indefinitely for workers)."""
    return env_float("REPRO_SWEEP_TIMEOUT_S", None, minimum=0.1)


def sweep_local_workers() -> int:
    """``REPRO_SWEEP_LOCAL_WORKERS`` — worker processes the queue
    coordinator spawns on its own host at startup (0 = none; workers
    then come only from ``python -m repro worker --connect``)."""
    return env_int("REPRO_SWEEP_LOCAL_WORKERS", 0, minimum=0)


def sweep_summary() -> bool:
    """``REPRO_SWEEP_SUMMARY`` — print per-worker stats to stderr after
    each queue sweep (default on; stdout stays bit-identical)."""
    return env_flag("REPRO_SWEEP_SUMMARY", True)


# ---------------------------------------------------------------------------
# Artifact cache knobs
# ---------------------------------------------------------------------------


def cache_dir() -> Optional[Path]:
    """``REPRO_CACHE_DIR`` — disk tier location (None = memory only)."""
    raw = env_string("REPRO_CACHE_DIR")
    return Path(raw) if raw else None


def cache_enabled() -> bool:
    """``REPRO_CACHE_DISABLE`` inverted — caching on unless disabled."""
    return not env_flag("REPRO_CACHE_DISABLE", False)


def cache_max_bytes() -> Optional[int]:
    """``REPRO_CACHE_MAX_BYTES`` — LRU cap for the disk tier."""
    return env_int("REPRO_CACHE_MAX_BYTES", None, minimum=0)


# ---------------------------------------------------------------------------
# Runtime knobs
# ---------------------------------------------------------------------------


def schedule_replay_enabled() -> bool:
    """``REPRO_SCHEDULE_REPLAY`` — the schedule-replay kill-switch
    (``0``/``false`` forces full event-driven simulation everywhere)."""
    return env_flag("REPRO_SCHEDULE_REPLAY", True)
