"""Parallel sweep execution with a deterministic serial fallback.

The experiment harness (Figures 7/8/9/12/15/16) and the Planner's
design-space exploration are embarrassingly parallel: every sweep point is
an independent pure computation. :class:`SweepExecutor` fans those points
out over a ``concurrent.futures`` pool while keeping the *results* in
input order, so parallel and serial runs produce bit-identical output —
the property the perf harness asserts.

Modes:

* ``"serial"`` — a plain list comprehension; the reference path.
* ``"thread"`` — ``ThreadPoolExecutor``. The sweep workloads release the
  GIL inside NumPy and, more importantly, share the process-wide
  :mod:`repro.perf.cache`, so one worker's translation/plan is every
  worker's hit.
* ``"process"`` — ``ProcessPoolExecutor`` for callables that are
  picklable at module scope (the figure closures are not; the perf CLI
  uses threads by default).
* ``"queue"`` — the distributed mode: tasks are served from a
  :class:`repro.perf.distributed.QueueCoordinator` to workers started
  with ``python -m repro worker --connect HOST:PORT`` on any host.
* ``"auto"`` — threads when the machine has more than one CPU, else
  serial.

The default mode comes from ``REPRO_SWEEP_MODE`` (and worker count from
``REPRO_SWEEP_JOBS``) so CI and the perf harness can steer sweeps without
threading arguments through every figure function. Both are parsed —
with validation — by :mod:`repro.perf.env`, lazily on first use.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from . import env

T = TypeVar("T")
R = TypeVar("R")

MODES = env.SWEEP_MODES


class SweepExecutor:
    """Order-preserving map over independent sweep points."""

    def __init__(
        self,
        mode: str = "auto",
        max_workers: Optional[int] = None,
        coordinator=None,
    ):
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; choose from {MODES}")
        self.mode = mode
        self.max_workers = max_workers
        #: Queue mode only: the coordinator serving this executor's
        #: sweeps; ``None`` uses the process-wide default
        #: (:func:`repro.perf.distributed.default_coordinator`).
        self.coordinator = coordinator

    def resolved_mode(self) -> str:
        """The concrete mode ``"auto"`` selects on this machine."""
        if self.mode != "auto":
            return self.mode
        return "thread" if (os.cpu_count() or 1) > 1 else "serial"

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> List[R]:
        """Apply ``fn`` to every item; results follow the input order.

        An exception in any worker propagates to the caller (after the
        pool drains), exactly as the serial path would raise it.
        """
        points: Sequence[T] = list(items)
        mode = self.resolved_mode()
        if mode == "serial" or len(points) <= 1:
            return [fn(p) for p in points]
        if mode == "queue":
            from .distributed import default_coordinator

            coordinator = self.coordinator or default_coordinator()
            return coordinator.map(fn, points)
        workers = self.max_workers or min(len(points), os.cpu_count() or 1)
        pool_cls = (
            ThreadPoolExecutor if mode == "thread" else ProcessPoolExecutor
        )
        with pool_cls(max_workers=workers) as pool:
            return list(pool.map(fn, points))

    def starmap(
        self, fn: Callable[..., R], items: Iterable[tuple]
    ) -> List[R]:
        """:meth:`map` for argument tuples."""
        return self.map(lambda args: fn(*args), items)


_DEFAULT: Optional[SweepExecutor] = None


def default_executor() -> SweepExecutor:
    """The executor the figure harness and Planner use by default.

    Built lazily on first call from ``REPRO_SWEEP_MODE`` /
    ``REPRO_SWEEP_JOBS`` (validated — a bad value raises
    :class:`repro.perf.env.EnvError` here rather than crashing inside a
    sweep), then cached until :func:`set_default_executor` replaces it.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = SweepExecutor(
            mode=env.sweep_mode(), max_workers=env.sweep_jobs()
        )
    return _DEFAULT


def set_default_executor(executor: SweepExecutor) -> SweepExecutor:
    """Replace the default executor (the perf harness pins serial/thread
    modes around its measurements); returns the previous one."""
    global _DEFAULT
    previous = default_executor()
    _DEFAULT = executor
    return previous
