"""CoSMIC: a full computing stack for scale-out acceleration of machine
learning (reproduction of Park et al., MICRO-50, 2017).

The stack's layers map to subpackages:

* :mod:`repro.dsl` — the mathematical domain-specific language;
* :mod:`repro.dfg` — Translator, dataflow-graph IR, NumPy interpreter;
* :mod:`repro.compiler` — Algorithm 1 mapping, scheduling, memory program;
* :mod:`repro.planner` — design-space exploration + performance estimator;
* :mod:`repro.hw` — chip specs, PE model, cycle-level simulators;
* :mod:`repro.circuit` — Constructor (RTL / microcode generation);
* :mod:`repro.runtime` — Sigma/Delta system software and distributed
  training;
* :mod:`repro.ml` — the five algorithms and ten Table 1 benchmarks;
* :mod:`repro.baselines` — Spark+MLlib, GPU, and TABLA comparators;
* :mod:`repro.core` — the `CosmicStack` / `CosmicSystem` facade;
* :mod:`repro.bench` — the harness regenerating every figure and table.
"""

from .core import CosmicStack, CosmicSystem, platform_for
from .ml import BENCHMARKS, Benchmark, benchmark, benchmark_names

__version__ = "1.0.0"

__all__ = [
    "BENCHMARKS",
    "Benchmark",
    "CosmicStack",
    "CosmicSystem",
    "__version__",
    "benchmark",
    "benchmark_names",
    "platform_for",
]
