"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``benchmarks`` — list the Table 1 workloads.
* ``experiment <id> [...]`` — regenerate a figure/table (or ``all``).
* ``ablation <id> [...]`` — run a design-choice ablation (or ``all``).
* ``plan <benchmark> [--chip ...]`` — show the Planner's chosen design.
* ``rtl <benchmark> [--target fpga|pasic]`` — emit generated Verilog.
* ``train <benchmark>`` — actually train the (scaled) benchmark on a
  simulated cluster and report loss plus simulated wall-clock.
* ``chaos <benchmark> [--scenario ...]`` — train under an injected fault
  scenario with the fault-tolerant runtime and report recovery cost
  against the healthy run.
* ``perf [--quick] [--update-baseline]`` — time the toolchain stages and
  a cached/parallel figure regeneration, and gate against the committed
  ``BENCH_perf.json`` baseline. ``--replay-smoke`` runs only the
  schedule-replay identity probe (Figure 7 rows with replay off vs on);
  ``--queue-smoke`` regenerates Figure 7 + Figure 16 through a queue
  coordinator with local workers and asserts bit-identity with serial.
* ``worker --connect HOST:PORT [--authkey-file F]`` — join a queue-mode
  sweep as a worker process, serving tasks until the coordinator shuts
  down (the distributed counterpart of ``REPRO_SWEEP_MODE=queue``).
* ``cache stats|prune`` — inspect or evict the on-disk artifact cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CoSMIC: scale-out acceleration for machine learning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("benchmarks", help="list the Table 1 benchmarks")

    exp = sub.add_parser("experiment", help="regenerate a table or figure")
    exp.add_argument("id", help="e.g. figure7, table3, or 'all'")

    abl = sub.add_parser("ablation", help="run a design-choice ablation")
    abl.add_argument("id", help="e.g. interconnect, mapping, or 'all'")

    plan = sub.add_parser("plan", help="show the Planner's design")
    plan.add_argument("benchmark")
    plan.add_argument(
        "--chip", default="fpga", choices=["fpga", "pasic-f", "pasic-g"]
    )
    plan.add_argument("--minibatch", type=int, default=10_000)

    rtl = sub.add_parser("rtl", help="emit generated RTL for one thread")
    rtl.add_argument("benchmark")
    rtl.add_argument("--target", default="fpga", choices=["fpga", "pasic"])
    rtl.add_argument("--rows", type=int, default=2)
    rtl.add_argument("--columns", type=int, default=4)

    train = sub.add_parser("train", help="train the scaled benchmark")
    train.add_argument("benchmark")
    train.add_argument("--nodes", type=int, default=4)
    train.add_argument("--threads", type=int, default=2)
    train.add_argument("--epochs", type=int, default=5)
    train.add_argument("--samples", type=int, default=2048)
    train.add_argument("--seed", type=int, default=0)

    from .runtime.recovery import SCENARIOS

    chaos = sub.add_parser(
        "chaos", help="train under an injected fault scenario"
    )
    chaos.add_argument("benchmark")
    chaos.add_argument(
        "--scenario", default="master-crash", choices=list(SCENARIOS)
    )
    chaos.add_argument("--nodes", type=int, default=8)
    chaos.add_argument("--groups", type=int, default=2)
    chaos.add_argument("--threads", type=int, default=1)
    chaos.add_argument("--epochs", type=int, default=2)
    chaos.add_argument("--samples", type=int, default=1024)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--checkpoint-every", type=int, default=4)

    perf = sub.add_parser(
        "perf", help="time the toolchain and gate against BENCH_perf.json"
    )
    perf.add_argument(
        "--quick",
        action="store_true",
        help="small benchmark subset, one repeat (the CI smoke gate)",
    )
    perf.add_argument(
        "--bench",
        action="append",
        dest="benches",
        metavar="NAME",
        help="limit the stage matrix to this benchmark (repeatable)",
    )
    perf.add_argument(
        "--baseline",
        default="BENCH_perf.json",
        help="baseline payload to compare against (default BENCH_perf.json)",
    )
    perf.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="also write this run's payload to PATH",
    )
    perf.add_argument(
        "--update-baseline",
        action="store_true",
        help="write this run to the baseline path instead of comparing",
    )
    perf.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="flag stages slower than TOLERANCE x baseline (default 2.0)",
    )
    perf.add_argument(
        "--replay-smoke",
        action="store_true",
        help="only assert Figure 7 rows identical with schedule replay "
        "off vs on (the CI replay gate)",
    )
    perf.add_argument(
        "--queue-smoke",
        action="store_true",
        help="only assert Figure 7 + Figure 16 rows identical between "
        "serial and queue-distributed regeneration (the CI queue gate)",
    )
    perf.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local worker processes the queue smoke spawns (default 2)",
    )

    worker = sub.add_parser(
        "worker", help="serve sweep tasks from a queue coordinator"
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address of the coordinator (printed at its startup)",
    )
    worker.add_argument(
        "--authkey-file",
        default=None,
        metavar="PATH",
        help="file whose first line is the shared authkey (default: "
        "REPRO_SWEEP_AUTHKEY / REPRO_SWEEP_AUTHKEY_FILE)",
    )
    worker.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="exit after serving this many tasks (default: serve until "
        "the coordinator shuts down)",
    )

    cache = sub.add_parser(
        "cache", help="inspect or prune the artifact cache"
    )
    cache.add_argument("action", choices=["stats", "prune"])
    cache.add_argument(
        "--dir",
        default=None,
        metavar="PATH",
        help="cache directory (default: REPRO_CACHE_DIR)",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="prune: evict LRU entries until the disk tier fits this many "
        "bytes (default: REPRO_CACHE_MAX_BYTES)",
    )
    cache.add_argument(
        "--all",
        action="store_true",
        help="prune: evict every disk entry",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    command = args.command
    if command == "benchmarks":
        return _cmd_benchmarks()
    if command == "experiment":
        return _cmd_experiment(args.id)
    if command == "ablation":
        return _cmd_ablation(args.id)
    if command == "plan":
        return _cmd_plan(args.benchmark, args.chip, args.minibatch)
    if command == "rtl":
        return _cmd_rtl(args.benchmark, args.target, args.rows, args.columns)
    if command == "train":
        return _cmd_train(args)
    if command == "chaos":
        return _cmd_chaos(args)
    if command == "perf":
        return _cmd_perf(args)
    if command == "worker":
        return _cmd_worker(args)
    if command == "cache":
        return _cmd_cache(args)
    return 2  # pragma: no cover - argparse enforces the choices


def _cmd_benchmarks() -> int:
    from .bench import table1

    print(table1().to_table())
    return 0


def _cmd_experiment(exp_id: str) -> int:
    from .bench import EXPERIMENTS

    if exp_id == "all":
        for fn in EXPERIMENTS.values():
            print(fn().to_table())
            print()
        return 0
    if exp_id not in EXPERIMENTS:
        print(
            f"unknown experiment {exp_id!r}; choose from "
            f"{', '.join(EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    print(EXPERIMENTS[exp_id]().to_table())
    return 0


def _cmd_ablation(abl_id: str) -> int:
    from .bench import ABLATIONS

    if abl_id == "all":
        for fn in ABLATIONS.values():
            print(fn().to_table())
            print()
        return 0
    if abl_id not in ABLATIONS:
        print(
            f"unknown ablation {abl_id!r}; choose from "
            f"{', '.join(ABLATIONS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    print(ABLATIONS[abl_id]().to_table())
    return 0


def _cmd_plan(name: str, chip_kind: str, minibatch: int) -> int:
    from .hw import PASIC_F, PASIC_G, XILINX_VU9P
    from .ml import benchmark
    from .planner import Planner

    chip = {"fpga": XILINX_VU9P, "pasic-f": PASIC_F, "pasic-g": PASIC_G}[
        chip_kind
    ]
    b = benchmark(name)
    plan = Planner(chip).plan(
        b.translate().dfg,
        minibatch,
        b.density,
        stream_words=b.bytes_per_sample() / chip.word_bytes,
    )
    util = plan.resources().utilization(chip)
    print(f"benchmark:        {b.name} ({b.algorithm})")
    print(f"chip:             {chip.name}")
    print(f"design point:     {plan.design.label()} "
          f"({plan.design.total_pes} PEs, {plan.design.total_rows} rows)")
    print(f"cycles/sample:    {plan.cycles_per_sample:,.0f}")
    print(f"throughput:       {plan.samples_per_second:,.0f} samples/s")
    print("bound:            "
          f"{'compute' if plan.compute_bound else 'bandwidth'}")
    print(f"storage/thread:   {plan.storage_per_thread_bytes / 1024:,.0f} KB")
    if chip.luts:
        print("utilization:      " + "  ".join(
            f"{k}={100 * v:.1f}%" for k, v in util.items()
        ))
    return 0


def _cmd_rtl(name: str, target: str, rows: int, columns: int) -> int:
    from .core import CosmicStack
    from .ml import benchmark

    stack = CosmicStack.from_benchmark(benchmark(name))
    design = stack.rtl(rows=rows, columns=columns, target=target)
    print(design.verilog)
    return 0


def _cmd_train(args) -> int:
    from .core import CosmicStack, platform_for
    from .ml import benchmark
    from .runtime import ClusterSimulator, ClusterSpec

    b = benchmark(args.benchmark)
    stack = CosmicStack.from_benchmark(b)
    platform = platform_for(b, "fpga")
    cluster = ClusterSimulator(
        ClusterSpec(nodes=args.nodes),
        lambda node, samples: platform.compute_seconds(samples),
        update_bytes=b.model_bytes(),
    )
    trainer = stack.trainer(
        nodes=args.nodes,
        threads_per_node=args.threads,
        cluster=cluster,
        seed=args.seed,
    )
    dataset = b.make_dataset(samples=args.samples, seed=args.seed)
    init = trainer.initial_model(
        scale=0.2 if b.algorithm == "collaborative_filtering" else 0.0
    )
    result = trainer.train(
        dataset.feeds,
        epochs=args.epochs,
        minibatch_per_worker=max(
            1, args.samples // (8 * args.nodes * args.threads)
        ),
        loss_fn=dataset.loss,
        model=init,
    )
    print(f"benchmark:         {b.name} ({dataset.description})")
    print(f"cluster:           {args.nodes} nodes x {args.threads} threads")
    print(f"iterations:        {result.iterations}")
    print(f"loss:              {result.loss_history[0]:.4f} -> "
          f"{result.final_loss:.4f}")
    print(f"simulated seconds: {result.simulated_seconds:.4f}")
    return 0


def _cmd_chaos(args) -> int:
    from .bench.chaos import fault_tolerance_config
    from .core import platform_for
    from .ml import benchmark
    from .runtime import (
        ClusterSimulator,
        ClusterSpec,
        DistributedTrainer,
        assign_roles,
        chaos_train,
        scenario_timeline,
    )

    b = benchmark(args.benchmark)
    platform = platform_for(b, "fpga")
    translation = b.translate(scaled=True)
    dataset = b.make_dataset(samples=args.samples, seed=args.seed)
    spec = ClusterSpec(nodes=args.nodes, groups=args.groups)
    topology = assign_roles(args.nodes, args.groups)
    update_bytes = b.model_bytes()

    def compute(node_id: int, samples: int) -> float:
        return platform.compute_seconds(samples)

    minibatch = max(1, args.samples // (8 * args.nodes * args.threads))
    iteration_s = (
        ClusterSimulator(spec, compute, update_bytes)
        .iteration(minibatch * args.nodes * args.threads)
        .total_s
    )
    config = fault_tolerance_config(
        iteration_s, checkpoint_every=args.checkpoint_every
    )
    init = DistributedTrainer(
        translation, nodes=args.nodes, seed=args.seed
    ).initial_model(
        scale=0.2 if b.algorithm == "collaborative_filtering" else 0.0
    )

    def run(timeline):
        return chaos_train(
            translation,
            dataset.feeds,
            spec,
            compute,
            update_bytes,
            timeline=timeline,
            config=config,
            epochs=args.epochs,
            threads_per_node=args.threads,
            minibatch_per_worker=minibatch,
            loss_fn=dataset.loss,
            model={k: v.copy() for k, v in init.items()},
            seed=args.seed,
        )

    healthy = run(scenario_timeline("healthy", topology, iteration_s))
    result = run(scenario_timeline(args.scenario, topology, iteration_s))

    print(f"benchmark:          {b.name} ({dataset.description})")
    print(f"cluster:            {args.nodes} nodes x {args.groups} groups")
    print(f"scenario:           {args.scenario}")
    for event in result.events:
        line = (
            f"  t={event.time_s:.3f}s {event.kind} nodes={event.nodes} "
            f"detect={event.detection_s * 1e3:.1f}ms "
            f"rehierarchy={event.rehierarchy_s * 1e3:.1f}ms"
        )
        if event.rollback_iterations:
            line += f" rollback={event.rollback_iterations}it"
        if event.promoted_master is not None:
            line += f" new_master={event.promoted_master}"
        print(line)
    if not result.events:
        print("  (no faults injected)")
    print(f"iterations:         {result.iterations}")
    print(f"checkpoints:        {result.checkpoints_taken}")
    print(f"time to recovery:   {result.time_to_recovery_s:.4f}s")
    print(f"simulated seconds:  {result.simulated_seconds:.4f} "
          f"(healthy {healthy.simulated_seconds:.4f})")
    print("throughput kept:    "
          f"{100 * result.throughput_retained(healthy.simulated_seconds):.1f}%")
    delta = (
        abs(result.final_loss - healthy.final_loss)
        / abs(healthy.final_loss)
        * 100.0
        if healthy.final_loss
        else 0.0
    )
    print(f"loss:               {result.final_loss:.4f} "
          f"(healthy {healthy.final_loss:.4f}, delta {delta:.2f}%)")
    return 0


def _cmd_perf(args) -> int:
    from pathlib import Path

    from .bench.perf import (
        compare_to_baseline,
        load_report,
        render_report,
        run_perf,
        run_replay_smoke,
        write_report,
    )

    if args.replay_smoke:
        problems = run_replay_smoke()
        if problems:
            print("REPLAY SMOKE FAILED:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("replay smoke passed: Figure 7 rows identical with "
              "schedule replay off vs on")
        return 0

    if args.queue_smoke:
        from .bench.perf import run_queue_smoke

        problems = run_queue_smoke(workers=args.workers)
        if problems:
            print("QUEUE SMOKE FAILED:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("queue smoke passed: Figure 7 + Figure 16 rows identical "
              f"between serial and {args.workers}-worker queue sweeps")
        return 0

    report = run_perf(names=args.benches, quick=args.quick)
    print(render_report(report))

    baseline_path = Path(args.baseline)
    if args.output:
        write_report(report, Path(args.output))
        print(f"\nwrote {args.output}")
    if args.update_baseline:
        write_report(report, baseline_path)
        print(f"\nwrote baseline {baseline_path}")
        return 0
    if not baseline_path.is_file():
        print(
            f"\nno baseline at {baseline_path}; run with --update-baseline "
            "to create one"
        )
        return 0
    problems = compare_to_baseline(
        report, load_report(baseline_path), tolerance=args.tolerance
    )
    if problems:
        print(f"\nPERF REGRESSIONS vs {baseline_path}:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"\nwithin {args.tolerance:g}x of baseline {baseline_path}")
    return 0


def _cmd_worker(args) -> int:
    import os

    from .perf import env as perf_env
    from .perf.distributed import run_worker

    try:
        host, port = perf_env.parse_address(args.connect, "--connect")
        if args.authkey_file:
            authkey = perf_env.read_authkey_file(args.authkey_file)
        else:
            authkey = perf_env.sweep_authkey()
    except perf_env.EnvError as exc:
        print(f"worker: {exc}", file=sys.stderr)
        return 2
    # A worker must never itself coordinate a queue sweep: tasks that
    # fan out internally (the Planner's DSE) use this process's default
    # executor, which we pin to the single-machine auto mode.
    os.environ["REPRO_SWEEP_MODE"] = "auto"
    return run_worker(host, port, authkey, max_tasks=args.max_tasks)


def _cmd_cache(args) -> int:
    from .perf.cache import ArtifactCache, get_cache

    if args.dir is not None:
        cache = ArtifactCache(disk_dir=args.dir)
    else:
        cache = get_cache()

    if cache.disk_dir is None:
        print("no disk cache configured (set REPRO_CACHE_DIR or --dir)")
        return 0

    if args.action == "stats":
        usage = cache.disk_usage()
        total_count = sum(count for count, _ in usage.values())
        total_bytes = sum(nbytes for _, nbytes in usage.values())
        print(f"cache dir:  {cache.disk_dir}")
        cap = cache.max_disk_bytes
        print(f"size cap:   {cap if cap is not None else 'none'}")
        for kind in sorted(usage):
            count, nbytes = usage[kind]
            print(f"  {kind:20s} {count:4d} entries  {nbytes:>12,d} bytes")
        print(f"  {'total':20s} {total_count:4d} entries  "
              f"{total_bytes:>12,d} bytes")
        return 0

    # prune
    if args.all:
        cap = 0
    elif args.max_bytes is not None:
        cap = args.max_bytes
    else:
        cap = cache.max_disk_bytes
    if cap is None:
        print("no size cap given; pass --max-bytes N or --all "
              "(or set REPRO_CACHE_MAX_BYTES)")
        return 2
    evicted = cache.prune_disk(max_bytes=cap)
    freed = sum(entry.bytes for entry in evicted)
    print(f"evicted {len(evicted)} entries ({freed:,d} bytes) "
          f"from {cache.disk_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
