"""Performance estimation tool (Section 4.4).

"Instead of simulation, which will be intractable, we propose to equip the
Planner with a performance estimation tool. The tool will use the static
schedule of the operations for each design point to estimate its relative
performance." Estimation is viable because the DFG is fixed, there is no
hardware-managed cache, and the architecture does not change during
execution.

The model charges, per macro-operation of the DFG:

* **work** — scalar applications tiled over the thread's PEs
  (``ceil(space / n_pe)`` issue slots, weighted by per-op ALU cycles);
* **communication** — reduction merges across the interconnect
  (logarithmic on CoSMIC's tree bus, linear on a flat shared bus — the
  structural difference behind Figure 17), plus broadcast of scalars
  produced by one PE and consumed by a vector operation.

One-hot / sparse DATA inputs (the collaborative-filtering encodings) can
be annotated with a density in ``[0, 1]``; work gated by a sparse operand
is scaled accordingly, matching how the memory interface only streams the
encoded non-zeros.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..dfg import ir
from ..dfg.ops import op_info

#: CoSMIC's hierarchical tree bus with per-node reduction ALUs (Section 5.1).
TREE = "tree"
#: A single flat shared bus (TABLA's interconnect, for Figure 17).
FLAT = "flat"


@dataclass(frozen=True)
class CostParams:
    """Interconnect/mapping knobs of the cost model.

    ``mapping="data_first"`` is CoSMIC's Algorithm 1 (operands co-located
    with their operations, near-zero shuffle traffic); ``"ops_first"``
    models TABLA's latency-first mapping, which leaves a fraction
    ``shuffle_fraction`` of operand reads crossing the interconnect.
    """

    interconnect: str = TREE
    mapping: str = "data_first"
    bus_hop_cycles: int = 2  # pipelined shared-bus transfer
    neighbor_hop_cycles: int = 1
    shuffle_fraction: float = 0.45  # ops-first operand traffic share
    pipeline_depth: int = 5  # PE pipeline fill (Section 5.1)
    #: The prefetch buffer overlaps streaming with compute (Section 5.1);
    #: architectures without one (TABLA) serialise the two phases.
    overlap_stream: bool = True
    #: Fraction of off-chip bandwidth delivered to PEs. The shifter lets
    #: CoSMIC consume unaligned bursts at full rate; without it, padding
    #: and marshaling waste a share of every burst.
    stream_efficiency: float = 1.0


@dataclass
class ThreadEstimate:
    """Per-sample cycle estimate for one worker thread."""

    work_cycles: float
    comm_cycles: float
    critical_path: float
    per_node: Dict[int, float] = field(default_factory=dict)

    @property
    def cycles(self) -> float:
        return max(self.work_cycles + self.comm_cycles, self.critical_path)


def estimate_thread_cycles(
    dfg: ir.Dfg,
    n_pe: int,
    rows: int,
    params: CostParams = CostParams(),
    density: Optional[Mapping[str, float]] = None,
) -> ThreadEstimate:
    """Cycles for one thread to evaluate the gradient DFG on one sample.

    Args:
        dfg: the macro (named-axis) dataflow graph.
        n_pe: PEs allocated to the thread (rows x columns).
        rows: PE rows of the thread (tree-bus depth across rows).
        params: interconnect/mapping model.
        density: optional DATA-input name -> density annotation.
    """
    if n_pe < 1:
        raise ValueError("a thread needs at least one PE")
    densities = _propagate_density(dfg, density or {})
    work = 0.0
    comm = 0.0
    per_node: Dict[int, float] = {}
    for node in dfg.topo_order():
        info = op_info(node.op)
        factor = min(
            (densities[vid] for vid in node.inputs), default=1.0
        )
        space = dfg.node_iter_space(node) * factor
        node_work = math.ceil(space / n_pe) * info.cycles
        node_comm = 0.0
        if info.reduce:
            node_comm += _reduction_comm(dfg, node, n_pe, rows, params, factor)
        node_comm += _broadcast_comm(dfg, node, rows, params)
        if params.mapping == "ops_first" and not info.reduce:
            # TABLA-style mapping: operands frequently live on other PEs.
            node_comm += (
                params.shuffle_fraction
                * math.ceil(space / n_pe)
                * params.bus_hop_cycles
            )
        work += node_work
        comm += node_comm
        per_node[node.nid] = node_work + node_comm
    critical = dfg.critical_path_cycles() + params.pipeline_depth
    return ThreadEstimate(work, comm, critical, per_node)


def _reduction_comm(
    dfg: ir.Dfg,
    node: ir.Node,
    n_pe: int,
    rows: int,
    params: CostParams,
    density: float = 1.0,
) -> float:
    """Merge cost of a reduction across the PEs that hold partials.

    With a sparse (one-hot-gated) input only ``width * density`` partials
    are non-zero; the compiler's gather-style schedule merges only those.
    """
    width = math.prod(dfg.extents[a] for a in node.reduce_axes)
    width = max(1, math.ceil(width * density))
    out_count = max(1, dfg.size(dfg.values[node.output]))
    spread = min(width, n_pe)
    if spread <= 1:
        return 0.0
    if params.interconnect == TREE:
        merge = math.ceil(math.log2(spread)) * params.bus_hop_cycles
    else:
        # A flat shared bus serialises every partial transfer.
        merge = (spread - 1) * params.bus_hop_cycles
    # Independent outputs pipeline their merges through the buses; charge
    # full latency once plus an issue slot per extra output.
    return merge + max(0, out_count - 1)


def _broadcast_comm(
    dfg: ir.Dfg, node: ir.Node, rows: int, params: CostParams
) -> float:
    """Scalars fanned out to a shaped operation traverse the buses."""
    out_axes = set(dfg.values[node.output].axes)
    if not out_axes:
        return 0.0
    cost = 0.0
    for vid in node.inputs:
        value = dfg.values[vid]
        if value.category == ir.CONST or value.producer is None:
            continue  # constants/inputs are pre-placed by the memory interface
        if set(value.axes) < out_axes:
            if params.interconnect == TREE:
                cost += (1 + math.ceil(math.log2(max(2, rows)))) * (
                    params.bus_hop_cycles
                )
            else:
                cost += max(2, rows) * params.bus_hop_cycles
    return cost


def _propagate_density(
    dfg: ir.Dfg, density: Mapping[str, float]
) -> Dict[int, float]:
    """Density per value id: sparse operands gate the work they feed.

    A value produced by reducing over any axis becomes dense again (the
    reduction output is a full scalar/vector regardless of input zeros).
    """
    out: Dict[int, float] = {}
    for value in dfg.values.values():
        if value.producer is None:
            if value.category == ir.DATA and value.name in density:
                out[value.vid] = float(density[value.name])
            else:
                out[value.vid] = 1.0
    for node in dfg.topo_order():
        info = op_info(node.op)
        if info.reduce:
            out[node.output] = 1.0
        else:
            out[node.output] = min(
                (out[vid] for vid in node.inputs), default=1.0
            )
    return out


def effective_data_words(
    dfg: ir.Dfg, density: Optional[Mapping[str, float]] = None
) -> float:
    """Words streamed from memory per sample, honouring sparse encodings.

    A sparse input of width ``w`` and density ``d`` streams ``2*w*d`` words
    (index + value pairs), never more than its dense size.
    """
    density = density or {}
    words = 0.0
    for value in dfg.inputs_of_category(ir.DATA):
        size = dfg.size(value)
        d = float(density.get(value.name, 1.0))
        if d >= 1.0:
            words += size
        else:
            words += min(size, max(1.0, 2.0 * size * d))
    return words
