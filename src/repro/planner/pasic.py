"""P-ASIC planning: PE count from an area and power budget (Section 4.4).

"For P-ASICs, the Planner determines the largest number of PEs that fits
in the area and power budget of the target chip. However, this metric
depends on the PE buffer capacity that is decided according to a set of
benchmarks." This module implements that flow: a 45 nm area/power model
per PE (calibrated so Table 2's two design points — 768 PEs at 29 mm^2 /
11 W and 2880 PEs at 105 mm^2 / 37 W — fall out), buffer sizing from a
benchmark set, and the budget solve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Optional

from ..dfg import ir
from ..hw.spec import PASIC, ChipSpec

# 45 nm HVT standard-cell model, calibrated to Table 2:
#   area(n)  = AREA_BASE_MM2  + n * AREA_PER_PE_MM2  (+ buffers)
#   power(n) = POWER_BASE_W   + n * POWER_PER_PE_W
# Solving the two Table 2 points:
#   (2880 - 768) PEs -> (105 - 29) mm^2 => 0.036 mm^2 / PE
#   (2880 - 768) PEs -> (37 - 11) W     => 12.3 mW / PE
AREA_PER_PE_MM2 = (105.0 - 29.0) / (2880 - 768)
AREA_BASE_MM2 = 29.0 - 768 * AREA_PER_PE_MM2
POWER_PER_PE_W = (37.0 - 11.0) / (2880 - 768)
POWER_BASE_W = 11.0 - 768 * POWER_PER_PE_W
#: SRAM macro density at 45 nm (per byte of PE buffer), folded into the
#: per-PE slope above for the default buffer size; extra buffer bytes
#: beyond the default cost this much more.
AREA_PER_BUFFER_BYTE_MM2 = 2.2e-6
DEFAULT_BUFFER_BYTES = 2048


@dataclass(frozen=True)
class PasicBudget:
    """Manufacturing constraints for a custom chip."""

    area_mm2: float
    power_w: float
    frequency_hz: float = 1e9
    bandwidth_bytes: float = 9.6e9
    columns: int = 16

    def __post_init__(self):
        if self.area_mm2 <= AREA_BASE_MM2:
            raise ValueError(
                f"area budget {self.area_mm2} mm^2 cannot fit the "
                f"{AREA_BASE_MM2:.1f} mm^2 uncore"
            )
        if self.power_w <= POWER_BASE_W:
            raise ValueError(
                f"power budget {self.power_w} W cannot feed the "
                f"{POWER_BASE_W:.1f} W uncore"
            )


@dataclass(frozen=True)
class PasicPlan:
    """Outcome of the P-ASIC budget solve."""

    pe_count: int
    buffer_bytes_per_pe: int
    area_mm2: float
    power_w: float
    limited_by: str  # "area" | "power"

    def chip(self, budget: PasicBudget, name: str = "P-ASIC-custom") -> ChipSpec:
        """Materialise the plan as a ChipSpec the stack can target."""
        rows = max(1, self.pe_count // budget.columns)
        return ChipSpec(
            name=name,
            kind=PASIC,
            frequency_hz=budget.frequency_hz,
            bandwidth_bytes=budget.bandwidth_bytes,
            tdp_watts=self.power_w,
            explicit_pes=self.pe_count,
            max_rows=rows,
            columns_override=budget.columns,
            bram_count=self.pe_count,
            bram_bytes=self.buffer_bytes_per_pe,
            technology_nm=45,
        )


def buffer_bytes_for(
    dfgs: Iterable[ir.Dfg], word_bytes: int = 4
) -> int:
    """PE buffer capacity sized from a benchmark set (Section 4.4).

    Each PE must hold its share of the largest benchmark's working set
    when spread over a reference array; rounded up to a power of two as
    SRAM macros come.
    """
    reference_pes = 768
    worst = DEFAULT_BUFFER_BYTES
    for dfg in dfgs:
        words = (
            dfg.model_words() + dfg.live_interim_words() + 2 * dfg.data_words()
        )
        per_pe = math.ceil(words * word_bytes / reference_pes)
        worst = max(worst, per_pe)
    return 1 << math.ceil(math.log2(worst))


def area_mm2(pe_count: int, buffer_bytes: int = DEFAULT_BUFFER_BYTES) -> float:
    extra = max(0, buffer_bytes - DEFAULT_BUFFER_BYTES)
    return (
        AREA_BASE_MM2
        + pe_count * (AREA_PER_PE_MM2 + extra * AREA_PER_BUFFER_BYTE_MM2)
    )


def power_w(pe_count: int) -> float:
    return POWER_BASE_W + pe_count * POWER_PER_PE_W


def plan_pasic(
    budget: PasicBudget,
    benchmark_dfgs: Optional[Iterable[ir.Dfg]] = None,
    word_bytes: int = 4,
) -> PasicPlan:
    """Largest PE count meeting both budgets, row-granular.

    The PE count is rounded down to a whole number of rows
    (``budget.columns`` PEs each) so the 2-D template stays rectangular.
    """
    buffer_bytes = (
        buffer_bytes_for(benchmark_dfgs, word_bytes)
        if benchmark_dfgs is not None
        else DEFAULT_BUFFER_BYTES
    )
    extra = max(0, buffer_bytes - DEFAULT_BUFFER_BYTES)
    per_pe_area = AREA_PER_PE_MM2 + extra * AREA_PER_BUFFER_BYTE_MM2
    by_area = int((budget.area_mm2 - AREA_BASE_MM2) / per_pe_area)
    by_power = int((budget.power_w - POWER_BASE_W) / POWER_PER_PE_W)
    pe_count = max(budget.columns, min(by_area, by_power))
    pe_count -= pe_count % budget.columns
    limited_by = "area" if by_area <= by_power else "power"
    return PasicPlan(
        pe_count=pe_count,
        buffer_bytes_per_pe=buffer_bytes,
        area_mm2=area_mm2(pe_count, buffer_bytes),
        power_w=power_w(pe_count),
        limited_by=limited_by,
    )
