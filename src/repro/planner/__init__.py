"""CoSMIC architecture layer: the Planner and its estimation tool."""

from .estimator import (
    FLAT,
    TREE,
    CostParams,
    ThreadEstimate,
    effective_data_words,
    estimate_thread_cycles,
)
from .pasic import (
    PasicBudget,
    PasicPlan,
    buffer_bytes_for,
    plan_pasic,
)
from .plan import AcceleratorPlan, DesignPoint, Planner, ResourceUsage

__all__ = [
    "AcceleratorPlan",
    "CostParams",
    "DesignPoint",
    "FLAT",
    "PasicBudget",
    "PasicPlan",
    "Planner",
    "ResourceUsage",
    "buffer_bytes_for",
    "plan_pasic",
    "ThreadEstimate",
    "TREE",
    "effective_data_words",
    "estimate_thread_cycles",
]
