"""The Planner (Section 4.4): shaping the multi-threaded template.

The Planner fixes the column count from the off-chip bandwidth, derives
``row_max`` from the DSP budget, bounds the thread count by
``t_max = min(storage bound, row_max, mini-batch size)``, and explores the
pruned (threads x rows-per-thread) design space with the performance
estimation tool, choosing "the smallest, best-performing design point".
For the UltraScale+ VU9P this enumeration yields exactly 27 design points,
as the paper reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..dfg import ir
from ..hw.spec import ChipSpec
from ..perf.tasks import sweep_task, task_call
from .estimator import (
    CostParams,
    ThreadEstimate,
    effective_data_words,
    estimate_thread_cycles,
)

#: Fraction of on-chip storage available to thread buffers; the rest is
#: reserved for the prefetch buffer and memory-interface queues.
_STORAGE_HEADROOM = 0.9


@dataclass(frozen=True)
class DesignPoint:
    """One (threads, rows-per-thread) point of the pruned design space."""

    threads: int
    rows_per_thread: int
    columns: int

    @property
    def pes_per_thread(self) -> int:
        return self.rows_per_thread * self.columns

    @property
    def total_rows(self) -> int:
        return self.threads * self.rows_per_thread

    @property
    def total_pes(self) -> int:
        return self.total_rows * self.columns

    def label(self) -> str:
        """Figure 16's ``TxxRy`` naming."""
        return f"T{self.threads}xR{self.rows_per_thread}"


@dataclass
class ResourceUsage:
    """FPGA resource footprint of a design point (Table 3)."""

    luts: int
    flip_flops: int
    bram_bytes: int
    dsp_slices: int

    def utilization(self, chip: ChipSpec) -> Dict[str, float]:
        return {
            "luts": self.luts / chip.luts if chip.luts else 0.0,
            "flip_flops": (
                self.flip_flops / chip.flip_flops if chip.flip_flops else 0.0
            ),
            "bram": self.bram_bytes / chip.onchip_bytes,
            "dsp": self.dsp_slices / chip.dsp_slices if chip.dsp_slices else 0.0,
        }


@dataclass
class AcceleratorPlan:
    """A fully evaluated accelerator configuration.

    Produced by :meth:`Planner.plan`; consumed by the Compiler (geometry),
    the Constructor (RTL generation), and the runtime (timing).
    """

    chip: ChipSpec
    design: DesignPoint
    thread_estimate: ThreadEstimate
    data_words_per_sample: float
    model_words: int
    gradient_words: int
    minibatch: int
    storage_per_thread_bytes: int
    params: CostParams = CostParams()

    @property
    def cycles_per_sample(self) -> float:
        return self.thread_estimate.cycles

    @property
    def bytes_per_sample(self) -> float:
        return self.data_words_per_sample * self.chip.word_bytes

    @property
    def compute_seconds_per_sample(self) -> float:
        return self.cycles_per_sample / self.chip.frequency_hz

    @property
    def effective_bandwidth(self) -> float:
        return self.chip.bandwidth_bytes * self.params.stream_efficiency

    @property
    def samples_per_second(self) -> float:
        """Roofline throughput: threads hide compute, bandwidth is shared.

        Without a prefetch buffer (``params.overlap_stream=False``) each
        sample's stream time adds to its compute time instead of hiding
        behind it.
        """
        compute_s = self.compute_seconds_per_sample
        stream_s = self.bytes_per_sample / self.effective_bandwidth
        if self.params.overlap_stream:
            compute = self.design.threads / compute_s
            stream = 1.0 / max(stream_s, 1e-30)
            return min(compute, stream)
        serial = compute_s / self.design.threads + stream_s
        return 1.0 / serial

    @property
    def compute_bound(self) -> bool:
        compute = self.design.threads / self.compute_seconds_per_sample
        stream = self.effective_bandwidth / max(1.0, self.bytes_per_sample)
        return compute <= stream

    def model_io_seconds(self) -> float:
        """Per-mini-batch model broadcast plus gradient drain/aggregation."""
        word = self.chip.word_bytes
        broadcast = self.model_words * word / self.chip.bandwidth_bytes
        drain = self.gradient_words * word / self.chip.bandwidth_bytes
        merge_cycles = (
            math.ceil(self.gradient_words / self.design.columns)
            * max(1, math.ceil(math.log2(self.design.threads + 1)))
        )
        return broadcast + drain + merge_cycles / self.chip.frequency_hz

    def seconds_for(self, samples: int) -> float:
        """Wall time to process ``samples`` training vectors plus one
        model broadcast/drain (one local mini-batch step)."""
        if samples <= 0:
            return self.model_io_seconds()
        per_thread = math.ceil(samples / self.design.threads)
        compute = per_thread * self.compute_seconds_per_sample
        stream = samples * self.bytes_per_sample / self.effective_bandwidth
        if self.params.overlap_stream:
            # The prefetch buffer overlaps streaming with computation.
            body = max(compute, stream)
        else:
            body = compute + stream
        return body + self.model_io_seconds()

    def resources(self) -> ResourceUsage:
        """FPGA footprint, calibrated to the scale of Table 3.

        Per-PE costs cover the 5-stage pipeline, buffers and bus ports;
        the non-linear LUT unit is only instantiated where scheduled.
        """
        pes = self.design.total_pes
        rows = self.design.total_rows
        base_luts, per_pe_luts = 88_000, 950
        base_ffs, per_pe_ffs = 76_000, 850
        nlu_luts = 130 if self.thread_estimate.comm_cycles >= 0 else 0
        luts = base_luts + pes * (per_pe_luts + nlu_luts) + rows * 800
        ffs = base_ffs + pes * per_pe_ffs + rows * 700
        dsps = pes * max(1, self.chip.dsp_per_pe) + max(0, rows - 1) * 4
        thread_bytes = self.storage_per_thread_bytes * self.design.threads
        prefetch = int(self.chip.onchip_bytes * (1 - _STORAGE_HEADROOM))
        bram = min(self.chip.onchip_bytes, thread_bytes + prefetch)
        # The memory schedule pads buffers to whole BRAMs.
        bram = min(
            self.chip.onchip_bytes,
            math.ceil(bram / self.chip.bram_bytes) * self.chip.bram_bytes,
        )
        return ResourceUsage(luts, ffs, bram, dsps)


class Planner:
    """Design-space exploration for one DFG on one chip.

    ``executor`` (a :class:`repro.perf.parallel.SweepExecutor`) fans the
    design-point evaluations out; ``None`` keeps the serial reference
    path. Either way the chosen plan is identical — selection folds over
    the points in enumeration order.
    """

    def __init__(
        self,
        chip: ChipSpec,
        params: CostParams = CostParams(),
        executor=None,
    ):
        self._chip = chip
        self._params = params
        self._executor = executor

    @property
    def chip(self) -> ChipSpec:
        return self._chip

    # -- bounds ---------------------------------------------------------
    def storage_per_thread(self, dfg: ir.Dfg) -> int:
        """Bytes of on-chip buffers one worker thread needs.

        Each thread keeps its model replica (gradient updates are applied
        in place per the local-SGD flow of Eq. 3a), live intermediate
        values, and a double-buffered training sample (prefetch).
        """
        words = (
            dfg.model_words()
            + dfg.live_interim_words()
            + 2 * dfg.data_words()
        )
        return words * self._chip.word_bytes

    def max_threads(self, dfg: ir.Dfg, minibatch: int) -> int:
        """``t_max = min(#BRAMs*BRAMsize / DFG.storage(), row_max, b)``."""
        storage = max(1, self.storage_per_thread(dfg))
        by_storage = int(
            self._chip.onchip_bytes * _STORAGE_HEADROOM // storage
        )
        return max(1, min(by_storage, self._chip.row_max, minibatch))

    # -- enumeration ------------------------------------------------------
    def design_space(
        self, dfg: ir.Dfg, minibatch: int
    ) -> List[DesignPoint]:
        """The pruned (threads, rows) space: PE allocation at row
        granularity, thread counts at powers of two plus the max fit."""
        columns = self._chip.columns
        row_max = self._chip.row_max
        t_max = self.max_threads(dfg, minibatch)
        points: List[DesignPoint] = []
        rows = 1
        row_options: List[int] = []
        while rows < row_max:
            row_options.append(rows)
            rows *= 2
        row_options.append(row_max)
        for rows_per_thread in row_options:
            fit = row_max // rows_per_thread
            limit = min(fit, t_max)
            threads = 1
            options = set()
            while threads <= limit:
                options.add(threads)
                threads *= 2
            options.add(limit)
            for count in sorted(options):
                points.append(DesignPoint(count, rows_per_thread, columns))
        return points

    # -- evaluation --------------------------------------------------------
    def evaluate(
        self,
        dfg: ir.Dfg,
        point: DesignPoint,
        minibatch: int,
        density: Optional[Mapping[str, float]] = None,
        stream_words: Optional[float] = None,
    ) -> AcceleratorPlan:
        """Evaluate one design point.

        ``density`` thins only the *memory stream* (the shifter expands a
        sparse encoding into the PE buffers); the static operation
        schedule cannot skip zeros, so compute is always dense — which is
        why the one-hot recommender benchmarks are compute-bound
        (Figure 15) despite their tiny wire format. ``stream_words``
        overrides the per-sample stream size (e.g. Table 1's on-disk
        record sizes).
        """
        estimate = estimate_thread_cycles(
            dfg,
            point.pes_per_thread,
            point.rows_per_thread,
            self._params,
            density=None,
        )
        if stream_words is None:
            stream_words = effective_data_words(dfg, density)
        return AcceleratorPlan(
            chip=self._chip,
            design=point,
            thread_estimate=estimate,
            data_words_per_sample=stream_words,
            model_words=dfg.model_words(),
            gradient_words=dfg.gradient_words(),
            minibatch=minibatch,
            storage_per_thread_bytes=self.storage_per_thread(dfg),
            params=self._params,
        )

    def plan(
        self,
        dfg: ir.Dfg,
        minibatch: int = 10_000,
        density: Optional[Mapping[str, float]] = None,
        stream_words: Optional[float] = None,
    ) -> AcceleratorPlan:
        """Pick the smallest, best-performing design point.

        Memoized in the global artifact cache, keyed by the content of
        every input (chip, cost params, DFG, minibatch, density, stream
        size) — repeated sweeps over identical points skip the whole DSE.
        """
        from ..perf.cache import get_cache, plan_cache_key, plan_to_dict

        key = plan_cache_key(
            self._chip, self._params, dfg, minibatch, density, stream_words
        )
        return get_cache().get_or_compute(
            "plan",
            key,
            lambda: self._plan_uncached(dfg, minibatch, density, stream_words),
            sidecar=plan_to_dict,
        )

    def _plan_uncached(
        self,
        dfg: ir.Dfg,
        minibatch: int,
        density: Optional[Mapping[str, float]],
        stream_words: Optional[float],
    ) -> AcceleratorPlan:
        best: Optional[AcceleratorPlan] = None
        for plan in self._evaluate_all(dfg, minibatch, density, stream_words):
            if best is None or _better(plan, best, minibatch):
                best = plan
        assert best is not None
        return best

    def sweep(
        self,
        dfg: ir.Dfg,
        minibatch: int = 10_000,
        density: Optional[Mapping[str, float]] = None,
        stream_words: Optional[float] = None,
    ) -> Dict[str, AcceleratorPlan]:
        """Evaluate every design point (Figure 16's DSE heat map).

        Memoized like :meth:`plan` — the sweep is a pure function of the
        same inputs, and Figure 16 re-runs it per benchmark.
        """
        from ..perf.cache import get_cache, plan_cache_key

        key = plan_cache_key(
            self._chip, self._params, dfg, minibatch, density, stream_words
        )
        return get_cache().get_or_compute(
            "sweep",
            key,
            lambda: self._sweep_uncached(dfg, minibatch, density, stream_words),
        )

    def _sweep_uncached(
        self,
        dfg: ir.Dfg,
        minibatch: int,
        density: Optional[Mapping[str, float]],
        stream_words: Optional[float],
    ) -> Dict[str, AcceleratorPlan]:
        points = self.design_space(dfg, minibatch)
        plans = self._evaluate_all(
            dfg, minibatch, density, stream_words, points
        )
        return {p.label(): plan for p, plan in zip(points, plans)}

    def _evaluate_all(
        self,
        dfg: ir.Dfg,
        minibatch: int,
        density: Optional[Mapping[str, float]],
        stream_words: Optional[float],
        points: Optional[List[DesignPoint]] = None,
    ) -> List[AcceleratorPlan]:
        """All design points, in enumeration order, optionally parallel.

        The evaluation is a registered sweep task bound via
        :func:`~repro.perf.tasks.task_call`, so the fan-out pickles into
        process-pool and queue-mode workers (chips, cost params, and
        DFGs all pickle) as well as running in threads or serially.
        """
        if points is None:
            points = self.design_space(dfg, minibatch)
        call = task_call(
            _evaluate_design_point,
            self._chip,
            self._params,
            dfg,
            minibatch,
            dict(density) if density is not None else None,
            stream_words,
        )
        if self._executor is None:
            return [call(p) for p in points]
        return self._executor.map(call, points)


@sweep_task("planner.evaluate")
def _evaluate_design_point(
    point: DesignPoint,
    chip: ChipSpec,
    params: CostParams,
    dfg: ir.Dfg,
    minibatch: int,
    density: Optional[Dict[str, float]],
    stream_words: Optional[float],
) -> AcceleratorPlan:
    """Module-level DSE evaluation: picklable for process/queue sweeps."""
    return Planner(chip, params).evaluate(
        dfg, point, minibatch, density, stream_words
    )


def _better(a: AcceleratorPlan, b: AcceleratorPlan, minibatch: int) -> bool:
    """Faster wins; within 1% the smaller design wins (FPGA only keeps the
    needed fabric powered, P-ASIC saves area)."""
    ta = a.seconds_for(minibatch)
    tb = b.seconds_for(minibatch)
    if ta < 0.99 * tb:
        return True
    if tb < 0.99 * ta:
        return False
    return a.design.total_pes < b.design.total_pes
