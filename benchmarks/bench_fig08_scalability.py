"""Figure 8: CoSMIC vs Spark self-relative scalability."""

from repro.bench import figure8


def test_figure8(regen):
    result = regen(figure8, rounds=1)
    # Paper: CoSMIC 1.8x/2.7x, Spark 1.3x/1.8x when scaling 4 -> 8 -> 16.
    assert 1.4 < result.summary["geomean_cosmic8x"] < 2.2
    assert 2.0 < result.summary["geomean_cosmic16x"] < 3.4
    assert 1.1 < result.summary["geomean_spark8x"] < 1.6
    assert 1.4 < result.summary["geomean_spark16x"] < 2.2
    assert (
        result.summary["geomean_cosmic16x"]
        > result.summary["geomean_spark16x"]
    )
    # The gap is widest on the communication-heavy benchmarks.
    rows = {r["name"]: r for r in result.rows}
    assert rows["stock"]["cosmic16x"] > rows["mnist"]["cosmic16x"]
