"""Chaos campaign: recovery cost and graceful degradation under faults.

Not a paper table — the paper evaluates a healthy 16-node cluster — but
the acceptance bar for the fault-tolerant runtime: every canonical fault
scenario (delta/sigma/master crash, crash-then-recover, partition,
random flaky nodes) must finish with a finite time-to-recovery and a
final loss close to the healthy run's, and quorum aggregation must beat
the full barrier when a straggler appears.
"""

from repro.bench import chaos_campaign


def test_chaos_campaign(regen):
    result = regen(chaos_campaign, rounds=1)
    rows = {r["scenario"]: r for r in result.rows}

    # Every scenario terminated (rows exist) and faulty runs recovered in
    # finite, sub-second simulated time.
    for name in ("delta-crash", "sigma-crash", "master-crash",
                 "crash-recover", "partition", "flaky"):
        assert rows[name]["ttr_s"] > 0
        assert rows[name]["ttr_s"] < 1.0

    # Acceptance criterion: killing the master Sigma mid-epoch still
    # converges — final loss within 5% of the uninterrupted run.
    assert result.summary["master_crash_loss_delta_pct"] < 5.0
    for name, row in rows.items():
        assert row["loss_delta_pct"] < 5.0, name

    # Graceful degradation: a 20x straggler costs the barrier most of its
    # throughput; the quorum window keeps nearly all of it.
    assert result.summary["quorum_speedup"] > 2.0
    assert rows["straggler-quorum"]["thr_pct"] > 80
    assert rows["straggler-barrier"]["thr_pct"] < 50
    assert result.summary["quorum_dropped_partials"] > 0
