"""Figure 10: computation-only speedup over the FPGA."""

from repro.bench import figure10


def test_figure10(regen):
    result = regen(figure10, rounds=1)
    rows = {r["name"]: r for r in result.rows}
    # Paper: averages 1.5x (P-ASIC-F), 11.4x (P-ASIC-G), 1.9x (GPU);
    # GPU stands out only on backprop (mnist 20.3x, acoustic 12.8x).
    assert 1.2 < result.summary["geomean_pasic_f_x"] < 3.5
    assert 7 < result.summary["geomean_pasic_g_x"] < 20
    assert 1.2 < result.summary["geomean_gpu_x"] < 3.5
    assert 10 < rows["mnist"]["gpu_x"] < 40
    assert 10 < rows["acoustic"]["gpu_x"] < 40
    for name in ("stock", "texture", "tumor", "cancer1", "face", "cancer2"):
        assert rows[name]["gpu_x"] < 2.5
        assert rows[name]["pasic_f_x"] < 1.2  # same bandwidth, no gain


def test_compute_gain_exceeds_system_gain(regen):
    """The paper's core systems lesson: an 11x compute win shrinks to
    ~2-3x once networking and aggregation are accounted."""
    from repro.bench import figure9, figure10

    names = ["mnist", "stock", "movielens", "tumor"]
    compute = regen(figure10, names, rounds=1)
    system = figure9(names)
    assert (
        compute.summary["geomean_pasic_g_x"]
        > 2 * system.summary["geomean_pasic_g_x"]
    )
