"""Figure 15: sensitivity to the number of PEs and to memory bandwidth."""

from repro.bench import figure15

COMPUTE_BOUND = ("mnist", "acoustic", "movielens", "netflix")
BANDWIDTH_BOUND = ("stock", "texture", "tumor", "cancer1", "face", "cancer2")


def test_figure15(regen):
    result = regen(figure15, rounds=1)
    rows = {r["name"]: r for r in result.rows}
    # (a) PE sweep 192 -> 6144: backprop and collaborative filtering
    # scale; the linear models are flat.
    for name in COMPUTE_BOUND:
        assert rows[name]["pe6144"] > 4 * rows[name]["pe192"]
    for name in BANDWIDTH_BOUND:
        assert rows[name]["pe6144"] < 1.3 * rows[name]["pe192"]
    # (b) bandwidth sweep: the mirror image.
    for name in BANDWIDTH_BOUND:
        assert rows[name]["bw4.0x"] > 8 * rows[name]["bw0.25x"]
    for name in COMPUTE_BOUND:
        assert rows[name]["bw4.0x"] < rows["stock"]["bw4.0x"]
    # Summary statistics capture the dichotomy.
    assert result.summary["compute_bound_pe_scaling"] > 5
    assert result.summary["bandwidth_bound_pe_scaling"] < 1.3
