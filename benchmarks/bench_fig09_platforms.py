"""Figure 9: system-wide speedup of P-ASICs and GPU over 3-FPGA-CoSMIC."""

from repro.bench import figure9


def test_figure9(regen):
    result = regen(figure9, rounds=1)
    # Paper: P-ASIC-F 1.2x, P-ASIC-G 2.3x, GPU 1.5x — modest, because
    # the system software bounds what raw compute can deliver.
    f = result.summary["geomean_pasic_f_x"]
    g = result.summary["geomean_pasic_g_x"]
    gpu = result.summary["geomean_gpu_x"]
    assert 1.0 <= f < 2.2
    assert 1.5 < g < 6.5
    assert 1.0 < gpu < 2.5
    assert g > f
    # Streaming benchmarks gain nothing from P-ASIC-F's clock alone.
    rows = {r["name"]: r for r in result.rows}
    assert rows["stock"]["pasic_f_x"] < 1.1
