"""Convergence-vs-minibatch study: the statistical cost of reducing the
aggregation rate that Section 7.2 cites [74-78] but does not measure."""

from repro.bench import convergence_study


def test_convergence_study(regen):
    result = regen(
        convergence_study,
        rounds=1,
        names=("stock", "tumor"),
        batch_sizes=(8, 32, 128),
        samples=4096,
        epochs=3,
    )
    for name in ("stock", "tumor"):
        rows = [r for r in result.rows if r["name"] == name]
        by_batch = {r["batch"]: r for r in rows}
        # Fewer aggregations -> fewer updates -> no better loss for the
        # same sample budget.
        assert by_batch[8]["final_loss"] <= by_batch[128]["final_loss"] * 1.05
        assert by_batch[8]["iterations"] > by_batch[128]["iterations"]
        # But each aggregation costs wall-clock: large b is faster.
        assert by_batch[128]["sim_seconds"] < by_batch[8]["sim_seconds"]
