"""Figure 14: speedup breakdown between the FPGAs and the specialised
system software (vs the 3-node Spark system)."""

from repro.bench import figure14


def test_figure14(regen):
    result = regen(figure14, rounds=1)
    # Both components contribute on every benchmark (paper: FPGAs 20.7x,
    # system software 28.4x on average).
    for row in result.rows:
        assert row["fpga_x"] > 1.0
        assert row["syssw_x"] > 1.0
    assert result.summary["geomean_fpga_x"] > 3
    assert result.summary["geomean_syssw_x"] > 3
    # Data-transfer-sensitive benchmarks gain relatively more from the
    # system software than from the accelerator (Section 7.2).
    rows = {r["name"]: r for r in result.rows}
    for name in ("stock", "texture", "cancer1", "cancer2"):
        assert rows[name]["syssw_x"] > rows[name]["fpga_x"]
