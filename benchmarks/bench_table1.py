"""Table 1: benchmarks, model sizes, dataset shapes, and DSL LoC."""

from repro.bench import table1

PAPER_MODEL_KB = {
    "mnist": 2432, "acoustic": 1527, "stock": 31, "texture": 64,
    "tumor": 8, "cancer1": 24, "movielens": 1176, "netflix": 2854,
    "face": 7, "cancer2": 28,
}


def test_table1(regen):
    result = regen(table1)
    by_name = {r["name"]: r for r in result.rows}
    assert len(result.rows) == 10
    for name, kb in PAPER_MODEL_KB.items():
        assert by_name[name]["model_kb"] == kb
    for row in result.rows:
        assert 22 <= row["loc_paper"] <= 55
        assert row["loc_ours"] <= row["loc_paper"]
