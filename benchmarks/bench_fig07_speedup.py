"""Figure 7: speedup over the 4-node Spark baseline, 4/8/16 nodes."""

from repro.bench import figure7


def test_figure7(regen):
    result = regen(figure7, rounds=1)
    by_name = {r["name"]: r for r in result.rows}
    # Every configuration beats Spark on every benchmark.
    for row in result.rows:
        for n in (4, 8, 16):
            assert row[f"cosmic{n}x"] > row[f"spark{n}x"]
    # Paper: movielens highest (~100.7x), backprop lowest (mnist 6.8x).
    cosmic16 = {name: r["cosmic16x"] for name, r in by_name.items()}
    assert cosmic16["movielens"] == max(cosmic16.values())
    assert cosmic16["mnist"] == min(cosmic16.values())
    # Paper averages: 12.6x / 23.1x / 33.8x.
    assert 6 < result.summary["geomean_cosmic4x"] < 25
    assert 10 < result.summary["geomean_cosmic8x"] < 40
    assert 18 < result.summary["geomean_cosmic16x"] < 55
