"""Ablation benches: the measured value of each CoSMIC design choice.

Beyond the paper's figures, these quantify the decisions DESIGN.md calls
out — tree bus, data-first mapping, multi-threading, hierarchical
aggregation, the specialised system software — plus a straggler
sensitivity study for the synchronous-aggregation design.
"""

from repro.bench import (
    ablate_aggregation_hierarchy,
    ablate_interconnect,
    ablate_mapping,
    ablate_multithreading,
    ablate_straggler,
    ablate_system_software,
)


def test_ablate_interconnect(regen):
    result = regen(ablate_interconnect, rounds=1)
    assert result.summary["geomean_flat_penalty_x"] >= 1.0
    for row in result.rows:
        assert row["flat_penalty_x"] >= 1.0


def test_ablate_mapping(regen):
    result = regen(ablate_mapping, rounds=1)
    assert result.summary["geomean_penalty_x"] > 1.2


def test_ablate_multithreading(regen):
    result = regen(ablate_multithreading, rounds=1)
    rows = {r["name"]: r for r in result.rows}
    assert rows["mnist"]["gain_x"] > 1.25  # compute-bound: threads pay off
    for row in result.rows:
        assert row["gain_x"] >= 0.99


def test_ablate_aggregation_hierarchy(regen):
    result = regen(ablate_aggregation_hierarchy, rounds=1)
    rows = {r["name"]: r for r in result.rows}
    # Grouping matters for the megabyte-scale model updates.
    assert rows["netflix"]["flat_penalty_x"] > 1.1
    assert result.summary["geomean_flat_penalty_x"] >= 1.0


def test_ablate_system_software(regen):
    result = regen(ablate_system_software, rounds=1)
    assert result.summary["geomean_generic_penalty_x"] > 1.05
    for row in result.rows:
        assert row["generic_penalty_x"] > 1.0


def test_ablate_straggler(regen):
    result = regen(ablate_straggler, ["mnist", "stock", "netflix"], rounds=1)
    for row in result.rows:
        assert row["x1"] == 1.0
        assert row["x8"] > row["x2"]


def test_ablate_sync_vs_async(regen):
    from repro.bench.ablations import ablate_sync_vs_async

    result = regen(
        ablate_sync_vs_async, ["mnist", "stock", "netflix"], rounds=1
    )
    # The barrier costs roughly the straggler factor; async absorbs it.
    assert result.summary["geomean_async_gain_x"] > 2.0


def test_scaling_projection(regen):
    from repro.bench.ablations import project_scaling

    result = regen(project_scaling, rounds=1)
    rows = {r["name"]: r for r in result.rows}
    # Large-V streaming benchmarks keep scaling; mnist's 60k vectors
    # saturate and reverse.
    assert rows["netflix"]["n256"] > 8
    assert rows["mnist"]["n256"] < rows["mnist"]["n16"]
