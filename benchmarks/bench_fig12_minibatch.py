"""Figure 12: CoSMIC vs Spark across the mini-batch sweep (b=500..100k)."""

from repro.bench import figure12


def test_figure12(regen):
    result = regen(figure12, rounds=1)
    # CoSMIC is faster at every mini-batch size (paper: 16.8x at b=500,
    # 9.1x at b=100,000 — the gap narrows as Spark's overheads amortise).
    for row in result.rows:
        for b in (500, 1_000, 10_000, 100_000):
            assert row[f"cosmic_b{b}"] > row[f"spark_b{b}"]
    gap_small = result.summary["geomean_gap_b500"]
    gap_large = result.summary["geomean_gap_b100000"]
    assert gap_small > gap_large
    assert 8 < gap_small < 40
    assert 4 < gap_large < 20
    # Both systems get faster with larger mini-batches.
    for row in result.rows:
        assert row["spark_b100000"] > row["spark_b500"]
        assert row["cosmic_b100000"] > row["cosmic_b500"]
