"""Estimator validation: the Planner's performance-estimation tool vs
the cycle-level simulator (Section 4.4 says the tool "is validated
against the hardware"; ours is validated against the compiled schedules
the simulator executes).

The estimator need not be cycle-exact — it models tree-bus ALU reduction
while the scalar schedule routes partials through PEs — but it must rank
design points the way the schedule does, or the DSE would pick wrong.
"""

import math

from repro.compiler import compile_thread
from repro.dfg import translate
from repro.dsl import parse
from repro.planner import estimate_thread_cycles

PROGRAMS = {
    "linreg": """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
""",
    "logreg": """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
p = sigmoid(sum[i](w[i] * x[i]));
g[i] = (p - y) * x[i];
""",
    "svm": """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
m = sum[i](w[i] * x[i]) * y;
g[i] = (m < 1) ? (-y * x[i]) : 0;
""",
}

GEOMETRIES = [(1, 1), (1, 4), (2, 4), (4, 4), (4, 8)]
WIDTHS = [16, 48, 96, 192]


def _collect():
    pairs = []
    for source in PROGRAMS.values():
        for n in WIDTHS:
            dfg = translate(parse(source), {"n": n}).dfg
            for rows, columns in GEOMETRIES:
                program = compile_thread(
                    dfg, rows=rows, columns=columns, include_stream=False
                )
                estimate = estimate_thread_cycles(
                    dfg, rows * columns, rows
                )
                pairs.append((estimate.cycles, program.cycles))
    return pairs


def _pearson(xs, ys):
    nx = len(xs)
    mx, my = sum(xs) / nx, sum(ys) / nx
    cov = sum((a - mx) * (b - my) for a, b in zip(xs, ys))
    vx = math.sqrt(sum((a - mx) ** 2 for a in xs))
    vy = math.sqrt(sum((b - my) ** 2 for b in ys))
    return cov / (vx * vy)


def test_estimator_tracks_simulated_schedules(benchmark):
    pairs = benchmark.pedantic(_collect, rounds=1, iterations=1)
    est = [math.log(e) for e, s in pairs]
    sim = [math.log(s) for e, s in pairs]
    r = _pearson(est, sim)
    print(f"\nestimator-vs-schedule log-log correlation over "
          f"{len(pairs)} (program, width, geometry) points: r = {r:.3f}")
    # The estimator models tree-bus ALU reduction; the scalar schedule
    # routes partials through PEs, flooring its makespan at high PE
    # counts — so rank correlation is strong but not perfect.
    assert r > 0.75
    # Magnitudes stay within a small constant factor either way.
    ratios = [s / e for e, s in pairs]
    assert 0.2 < min(ratios) and max(ratios) < 10.0
