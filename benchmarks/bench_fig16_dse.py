"""Figure 16: the Planner's (threads x rows) design-space exploration."""

from repro.bench import figure16


def test_figure16(regen):
    result = regen(figure16, rounds=1)
    points = {}
    for row in result.rows:
        if not str(row["point"]).startswith("best"):
            points.setdefault(row["name"], {})[row["point"]] = row["speedup"]
    # Compute-bound benchmarks peak when the whole fabric is used.
    assert result.summary["mnist_best"] > 20
    assert result.summary["movielens_best"] > 20
    # Bandwidth-bound benchmarks saturate early (paper: beyond 16 rows).
    assert result.summary["stock_best"] < 6
    assert result.summary["tumor_best"] < 6
    # "for a fixed number of PE rows, increasing the number of threads
    # improves performance" — the multithreading argument.
    for name in ("mnist", "stock"):
        assert points[name]["T2xR1"] > points[name]["T1xR1"]


def test_design_space_is_27_points():
    """Section 4.4: the pruned UltraScale+ space has 27 design points."""
    from repro.hw import XILINX_VU9P
    from repro.ml import benchmark
    from repro.planner import Planner

    dfg = benchmark("stock").translate().dfg
    space = Planner(XILINX_VU9P).design_space(dfg, 10_000)
    assert len(space) == 27
