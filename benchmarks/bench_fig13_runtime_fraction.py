"""Figure 13: computation vs communication fraction of CoSMIC runtime."""

from repro.bench import figure13


def test_figure13(regen):
    result = regen(figure13, rounds=1)
    # Paper: compute is 12% of runtime at b=500 and 95% at b=100,000.
    assert result.summary["mean_frac_b500"] < 0.5
    assert result.summary["mean_frac_b100000"] > 0.8
    # Monotone per benchmark.
    for row in result.rows:
        fracs = [
            row[f"compute_frac_b{b}"] for b in (500, 1_000, 10_000, 100_000)
        ]
        assert fracs == sorted(fracs)
        assert all(0 < f <= 1 for f in fracs)
    # The recommender models (large updates) stay communication-heavy the
    # longest.
    rows = {r["name"]: r for r in result.rows}
    assert (
        rows["netflix"]["compute_frac_b10000"]
        < rows["stock"]["compute_frac_b10000"]
    )
