"""Figure 17: CoSMIC's template architecture vs TABLA's on UltraScale+."""

from repro.bench import figure17


def test_figure17(regen):
    result = regen(figure17, rounds=1)
    # Paper: 3.9x average; CoSMIC wins on every benchmark thanks to the
    # tree bus, data-first mapping, and multithreading.
    for row in result.rows:
        assert row["speedup"] > 1.0
    assert 1.8 < result.summary["geomean_speedup"] < 8.0
