"""Table 3: chosen thread counts and FPGA resource utilization."""

from repro.bench import table3


def test_table3(regen):
    result = regen(table3)
    rows = {r["name"]: r for r in result.rows}
    # Compute-bound benchmarks use most of the fabric, bandwidth-bound
    # ones a small corner (the paper's utilization dichotomy).
    assert rows["mnist"]["dsp_pct"] > 50
    assert rows["stock"]["dsp_pct"] < 25
    # Everything fits on the chip.
    for row in result.rows:
        for col in ("luts_pct", "ffs_pct", "bram_pct", "dsp_pct"):
            assert 0 < row[col] <= 100
    # Multi-threading is used wherever the model replica allows it.
    assert rows["stock"]["threads"] >= 4
    assert rows["netflix"]["threads"] == 1  # 2.9 MB replica per thread
