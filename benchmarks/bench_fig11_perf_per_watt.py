"""Figure 11: Performance-per-Watt vs the 3-GPU system."""

from repro.bench import figure11


def test_figure11(regen):
    result = regen(figure11, rounds=1)
    # Paper: FPGA 4.2x, P-ASIC-F 6.9x, P-ASIC-G 8.2x better than GPU.
    fpga = result.summary["geomean_fpga_x"]
    f = result.summary["geomean_pasic_f_x"]
    g = result.summary["geomean_pasic_g_x"]
    assert 2.0 < fpga < 7.0
    assert 3.5 < f < 11.0
    assert 5.0 < g < 18.0
    assert fpga < f  # the P-ASICs are strictly more efficient
    # Every accelerated platform beats the GPU on efficiency.
    for row in result.rows:
        assert row["fpga_x"] > 1.0
        assert row["pasic_f_x"] > 1.0
