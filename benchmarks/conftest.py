"""Shared helpers for the figure/table regeneration benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the paper's
Section 7 through :mod:`repro.bench`, times it with pytest-benchmark, and
prints the regenerated rows so the run log doubles as the experiment
record (EXPERIMENTS.md is derived from these outputs).
"""

import pytest


@pytest.fixture
def regen(benchmark, request):
    """Run a harness function under pytest-benchmark and print its table.

    Under ``--benchmark-disable`` the figure benches act as plain smoke
    tests: one round, no timing — kept fast so the functional CI lane
    can include them without paying for repeat regenerations.
    """
    disabled = request.config.getoption("benchmark_disable", default=False)

    def _run(fn, *args, rounds=2, **kwargs):
        if disabled:
            result = fn(*args, **kwargs)
        else:
            result = benchmark.pedantic(
                fn, args=args, kwargs=kwargs, rounds=rounds, iterations=1
            )
        print()
        print(result.to_table())
        return result

    return _run
