"""Scale-out study on the recommender workload (movielens).

movielens is the paper's headline result (100.7x over Spark, Figure 7):
a collaborative-filtering model whose per-rating arithmetic is trivial
for the accelerator yet pathological for MLlib. This example sweeps the
cluster from 4 to 16 nodes for both systems, shows where the time goes,
and trains a scaled-down factor model for real.

Run: ``python examples/recommender_scaleout.py``
"""

import numpy as np

from repro import CosmicSystem, benchmark, platform_for
from repro.baselines import SparkModel
from repro.core import CosmicStack

NODE_COUNTS = (4, 8, 16)


def main():
    bench = benchmark("movielens")
    platform = platform_for(bench, "fpga")
    print(f"benchmark: {bench.name} — {bench.description}")
    print(f"model: {bench.topology} factors "
          f"({bench.model_bytes() / 1024:.0f} KB on the wire)\n")

    print("=== epoch time vs cluster size ===")
    print(f"{'nodes':>5}  {'Spark (s)':>10}  {'CoSMIC (s)':>10}  {'speedup':>8}")
    spark4 = SparkModel(4).epoch_seconds(bench)
    for nodes in NODE_COUNTS:
        spark_s = SparkModel(nodes).epoch_seconds(bench)
        cosmic_s = CosmicSystem(bench, platform, nodes).epoch_seconds()
        print(f"{nodes:>5}  {spark_s:>10.1f}  {cosmic_s:>10.1f}  "
              f"{spark4 / cosmic_s:>7.1f}x")

    system = CosmicSystem(bench, platform, 16)
    timing = system.iteration(10_000)
    print("\n=== one 16-node CoSMIC iteration (b = 10,000 per node) ===")
    print(f"total:           {timing.total_s * 1e3:7.1f} ms")
    print(f"accel compute:   {timing.compute_s * 1e3:7.1f} ms "
          f"({100 * timing.compute_fraction:.0f}%)")
    print(f"gradient collect:{timing.network_s * 1e3:7.1f} ms")
    print(f"model broadcast: {timing.broadcast_s * 1e3:7.1f} ms")

    # -- really train a small factor model --------------------------------
    stack = CosmicStack.from_benchmark(bench)
    dataset = bench.make_dataset(samples=6000, seed=3)
    trainer = stack.trainer(nodes=4, threads_per_node=2)
    # Matrix factorisation must start from a random point: the all-zeros
    # model is a saddle where every factor gradient vanishes.
    result = trainer.train(
        dataset.feeds,
        epochs=25,
        minibatch_per_worker=64,
        loss_fn=dataset.loss,
        learning_rate=1.0,
        model=trainer.initial_model(scale=0.2),
    )
    print("\n=== training the scaled factor model (60 entities x 4) ===")
    print(f"rating MSE: {result.loss_history[0]:.4f} -> {result.final_loss:.4f}")
    assert result.final_loss < 0.5 * result.loss_history[0]
    print("\nrecommender_scaleout OK")


if __name__ == "__main__":
    main()
