"""Hardware/software co-design walkthrough for a custom algorithm.

Shows what the lower layers of the stack do for an algorithm the paper
never shipped — a robust (Huber-style, via a gaussian weight) regression —
demonstrating the "new learning models and algorithmic changes" claim:

1. design-space exploration across (threads x rows) on three chips;
2. Algorithm 1's data-first mapping vs an ops-first alternative;
3. the static schedule executed on the cycle-level simulator, checked
   against the NumPy interpreter;
4. FPGA state-machine RTL vs P-ASIC microcode from the same program.

Run: ``python examples/accelerator_codesign.py``
"""

import numpy as np

from repro.baselines import TABLA_PARAMS
from repro.compiler import compile_thread
from repro.core import CosmicStack
from repro.dfg import Interpreter
from repro.hw import PASIC_F, PASIC_G, ThreadSimulator, XILINX_VU9P
from repro.planner import Planner

ROBUST_REGRESSION = """
minibatch = 4096;
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];

e = sum[i](w[i] * x[i]) - y;
influence = gaussian(e * 0.5);
g[i] = influence * e * x[i];
"""


def main():
    stack = CosmicStack(
        ROBUST_REGRESSION, bindings={"n": 4096}, functional_bindings={"n": 16}
    )
    dfg = stack.translation.dfg

    print("=== 1. design-space exploration across chips ===")
    for chip in (XILINX_VU9P, PASIC_F, PASIC_G):
        plan = Planner(chip).plan(dfg, minibatch=4096)
        print(f"{chip.name:18s} {plan.design.label():8s} "
              f"{plan.samples_per_second:>12,.0f} samples/s "
              f"({'compute' if plan.compute_bound else 'bandwidth'}-bound)")

    print("\n=== 2. mapping quality: data-first (Alg. 1) vs ops-first ===")
    from repro.planner import estimate_thread_cycles

    data_first = estimate_thread_cycles(dfg, 256, 16)
    ops_first = estimate_thread_cycles(dfg, 256, 16, TABLA_PARAMS)
    print(f"data-first: {data_first.cycles:7.0f} cycles/sample "
          f"({data_first.comm_cycles:.0f} on the interconnect)")
    print(f"ops-first:  {ops_first.cycles:7.0f} cycles/sample "
          f"({ops_first.comm_cycles:.0f} on the interconnect)")

    print("\n=== 3. cycle simulator vs NumPy interpreter ===")
    program = compile_thread(stack.functional_translation.dfg, rows=2, columns=4)
    rng = np.random.default_rng(1)
    feeds = {
        "x": rng.normal(size=16),
        "y": np.float64(0.3),
        "w": rng.normal(size=16),
    }
    hw = ThreadSimulator(program).run(feeds)
    sw = Interpreter(stack.functional_translation.dfg).run(feeds)
    err = np.max(np.abs(hw.gradient_vector("g", 16) - sw["g"]))
    print(f"schedule makespan: {program.cycles} cycles "
          f"({len(program.schedule.ops)} scalar ops on 8 PEs)")
    print(f"max |hw - sw| gradient error: {err:.2e}")
    assert err < 1e-9

    print("\n=== 4. one program, two silicon targets ===")
    fpga = stack.rtl(rows=2, columns=4, target="fpga")
    pasic = stack.rtl(rows=2, columns=4, target="pasic")
    print(f"FPGA:   {fpga.fsm_states} control-FSM states "
          f"(no instruction fetch/decode)")
    print(f"P-ASIC: {len(pasic.microcode)} microcode words "
          f"(reprogrammable after tape-out)")
    word = pasic.microcode[0]
    print(f"first micro-op: cycle={word.cycle} pe={word.pe} "
          f"op={word.op_name} encoded=0x{word.encode():016x}")
    print("\naccelerator_codesign OK")


if __name__ == "__main__":
    main()
