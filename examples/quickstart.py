"""Quickstart: the whole CoSMIC stack in one script.

A programmer writes ~20 lines of the mathematical DSL (the gradient, the
aggregation operator, the mini-batch size); CoSMIC does everything else:

1. translate the program to a dataflow graph;
2. plan a multi-threaded accelerator for an UltraScale+ FPGA;
3. compile (map + schedule) a worker thread and emit its RTL;
4. train the model across a simulated 4-node accelerated cluster.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import CosmicStack

# 1. The DSL program: a support vector machine (Equation 4 of the paper).
SVM_PROGRAM = """
minibatch = 512;
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];

s = sum[i](w[i] * x[i]);
m = s * y;
g[i] = (m < 1) ? (-y * x[i]) : 0;

aggregator:
iterator j[0:nodes];
w[i] = sum[j](g[j, i]) / nodes;
"""


def main():
    stack = CosmicStack(
        SVM_PROGRAM,
        bindings={"n": 1740},  # the paper's "face" benchmark width
        functional_bindings={"n": 32},  # reduced width for actual training
    )

    # 2. Architecture layer: the Planner shapes the template.
    plan = stack.plan()
    print("=== Planner (UltraScale+ VU9P) ===")
    print(f"design point:      {plan.design.label()} "
          f"({plan.design.total_pes} PEs over {plan.design.total_rows} rows)")
    print(f"cycles per sample: {plan.cycles_per_sample:.0f}")
    print(f"throughput:        {plan.samples_per_second:,.0f} samples/s")
    print(f"bound by:          "
          f"{'compute' if plan.compute_bound else 'off-chip bandwidth'}")

    # 3. Compilation + circuit layers for one worker thread.
    program = stack.compile(rows=2, columns=4)
    print("\n=== Compiler (one worker thread, 2x4 PEs) ===")
    print(f"scalar operations: {len(program.schedule.ops)}")
    print(f"static makespan:   {program.cycles} cycles")
    print(f"cross-PE operands: {program.cross_pe_operands}")
    design = stack.rtl(rows=2, columns=4, target="fpga")
    print(f"generated modules: {', '.join(design.module_names())}")

    # 4. System layer: distributed training on 4 simulated nodes.
    rng = np.random.default_rng(0)
    n, samples = 32, 4096
    true_w = rng.normal(size=n)
    x = rng.normal(size=(samples, n))
    y = np.sign(x @ true_w)

    def accuracy(model, feeds):
        return float(np.mean(np.sign(feeds["x"] @ model["w"]) == feeds["y"]))

    trainer = stack.trainer(nodes=4, threads_per_node=2)
    result = trainer.train(
        {"x": x, "y": y}, epochs=8, minibatch_per_worker=32, loss_fn=accuracy
    )
    print("\n=== Distributed training (4 nodes x 2 threads) ===")
    print(f"iterations:        {result.iterations}")
    print(f"initial accuracy:  {result.loss_history[0]:.3f}")
    print(f"final accuracy:    {result.final_loss:.3f}")
    assert result.final_loss > 0.95, "training failed to converge"
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
