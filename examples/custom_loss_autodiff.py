"""Write the loss, not the gradient: automatic differentiation.

The paper's programming model asks the user for the partial-gradient
formula. This extension derives it: write the *loss* in the same DSL and
reverse-mode differentiation over the dataflow graph produces the
gradient program — which then plans, compiles, and trains through the
unchanged stack. The demo uses a robust regression loss the paper never
shipped (a Geman-McClure-style bounded penalty via ``gaussian``).

Run: ``python examples/custom_loss_autodiff.py``
"""

import numpy as np

from repro.compiler import compile_thread
from repro.dfg import Interpreter, derive_gradients
from repro.hw import ThreadSimulator, XILINX_VU9P
from repro.planner import Planner
from repro.runtime import DistributedTrainer

# A robust loss: small residuals behave quadratically, outliers saturate.
#   loss = 1 - exp(-(e/2)^2)
ROBUST_LOSS = """
mu = 0.3;
model_input x[n];
model_output y;
model w[n];
iterator i[0:n];
e = sum[i](w[i] * x[i]) - y;
loss = 1 - gaussian(e / 2);
"""


def main():
    n = 16
    derived = derive_gradients(ROBUST_LOSS, {"n": n})
    print("=== derived gradient program ===")
    grads = [v.name for v in derived.dfg.gradient_outputs()]
    print(f"gradient outputs: {grads}")
    print(f"aggregation:      {derived.aggregator.describe()}")
    print(f"graph size:       {len(derived.dfg.nodes)} macro-ops "
          f"(forward + adjoint)")

    # The derived graph is a first-class stack citizen.
    plan = Planner(XILINX_VU9P).plan(derived.dfg, minibatch=1024)
    program = compile_thread(derived.dfg, rows=2, columns=4)
    print(f"\nplanner:          {plan.design.label()}, "
          f"{plan.samples_per_second:,.0f} samples/s")
    print(f"compiled:         {program.cycles}-cycle static schedule")

    # Cycle simulator agrees with the interpreter on the derived math.
    rng = np.random.default_rng(0)
    feeds = {
        "x": rng.normal(size=n),
        "y": np.float64(0.5),
        "w": rng.normal(size=n),
    }
    hw = ThreadSimulator(program).run(feeds).gradient_vector("g_w", n)
    sw = Interpreter(derived.dfg).run(feeds)["g_w"]
    print(f"hw-vs-sw gradient error: {np.max(np.abs(hw - sw)):.2e}")
    assert np.max(np.abs(hw - sw)) < 1e-9

    # Train on data with 10% gross outliers: the robust loss shrugs.
    N = 4096
    true_w = rng.normal(size=n)
    X = rng.normal(size=(N, n))
    Y = X @ true_w + 0.05 * rng.normal(size=N)
    outliers = rng.choice(N, size=N // 10, replace=False)
    Y[outliers] += rng.normal(scale=25.0, size=len(outliers))

    trainer = DistributedTrainer(derived, nodes=4, threads_per_node=2)
    result = trainer.train(
        {"x": X, "y": Y},
        epochs=30,
        minibatch_per_worker=32,
        loss_fn=lambda m, f: float(
            np.median(np.abs(f["x"] @ m["w"] - f["y"]))
        ),
    )
    err = np.linalg.norm(result.model["w"] - true_w)
    print(f"\ntrained across 4 nodes x 2 threads, {result.iterations} iters")
    print(f"median abs residual: {result.loss_history[0]:.3f} -> "
          f"{result.final_loss:.3f}")
    print(f"weight error vs ground truth: {err:.3f}")
    assert err < 0.35, "robust regression failed to recover the weights"
    print("\ncustom_loss_autodiff OK")


if __name__ == "__main__":
    main()
