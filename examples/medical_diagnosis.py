"""Medical diagnosis at scale: the paper's ``tumor`` benchmark end to end.

Trains the gene-expression logistic-regression classifier (Table 1:
2,000 features, 387,944 vectors, 10.4 GB) on a simulated 8-node
FPGA-accelerated cluster, and compares the projected epoch time against
the Spark+MLlib baseline — the Figure 7 experiment for one benchmark,
with the actual learning running on a scaled-down synthetic cohort.

Run: ``python examples/medical_diagnosis.py``
"""

import numpy as np

from repro import CosmicSystem, benchmark, platform_for
from repro.baselines import SparkModel
from repro.core import CosmicStack
from repro.runtime import ClusterSimulator, ClusterSpec

NODES = 8


def main():
    bench = benchmark("tumor")
    print(f"benchmark: {bench.name} — {bench.description}")
    print(f"paper-scale: {bench.features} features, "
          f"{bench.input_vectors:,} vectors, {bench.data_gb} GB\n")

    # -- projected performance at paper scale -----------------------------
    platform = platform_for(bench, "fpga")
    cosmic = CosmicSystem(bench, platform, NODES)
    spark = SparkModel(NODES)
    cosmic_epoch = cosmic.epoch_seconds()
    spark_epoch = spark.epoch_seconds(bench)
    timing = cosmic.iteration(10_000)
    print(f"=== projected epoch time, {NODES} nodes ===")
    print(f"CoSMIC (FPGA): {cosmic_epoch * 1e3:8.1f} ms")
    print(f"Spark+MLlib:   {spark_epoch * 1e3:8.1f} ms")
    print(f"speedup:       {spark_epoch / cosmic_epoch:8.1f}x")
    print(f"compute share of a CoSMIC iteration: "
          f"{100 * timing.compute_fraction:.0f}%\n")

    # -- actual training on a synthetic cohort ----------------------------
    stack = CosmicStack.from_benchmark(bench)
    dataset = bench.make_dataset(samples=4096, seed=42)
    cluster = ClusterSimulator(
        ClusterSpec(nodes=NODES),
        lambda node, samples: platform.compute_seconds(samples),
        update_bytes=bench.model_bytes(),
    )
    trainer = stack.trainer(nodes=NODES, threads_per_node=2, cluster=cluster)
    result = trainer.train(
        dataset.feeds,
        epochs=6,
        minibatch_per_worker=32,
        loss_fn=dataset.loss,
        learning_rate=0.5,
    )

    def diagnosis_accuracy(model):
        scores = dataset.feeds["x"] @ model["w"]
        return float(np.mean((scores > 0) == (dataset.feeds["y"] > 0.5)))

    print("=== training on the synthetic cohort (scaled dims) ===")
    print(f"iterations:       {result.iterations}")
    print(f"cross-entropy:    {result.loss_history[0]:.3f} -> "
          f"{result.final_loss:.3f}")
    print(f"accuracy:         {100 * diagnosis_accuracy(result.model):.1f}%")
    print(f"simulated time:   {result.simulated_seconds * 1e3:.1f} ms "
          f"on the {NODES}-node cluster")
    assert diagnosis_accuracy(result.model) > 0.9
    print("\nmedical_diagnosis OK")


if __name__ == "__main__":
    main()
