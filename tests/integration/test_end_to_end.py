"""Cross-layer integration tests: one small experiment through every
layer of the stack, checking consistency between independent paths.

These are the tests a release would gate on: they do not test one module,
they test that the modules agree with each other.
"""

import numpy as np
import pytest

from repro.baselines import SparkModel
from repro.compiler import compile_thread
from repro.core import CosmicStack, CosmicSystem, platform_for
from repro.dfg import Interpreter
from repro.hw import NodeAccelerator, ThreadSimulator, XILINX_VU9P
from repro.ml import benchmark
from repro.planner import Planner
from repro.runtime import ClusterSimulator, ClusterSpec


class TestThreePathGradientAgreement:
    """The same gradient, three independent ways: NumPy interpreter,
    cycle-level PE simulation, and the reference math."""

    @pytest.mark.parametrize("name", ["stock", "tumor", "face"])
    def test_all_paths_agree(self, name):
        from repro.ml.models import GRADIENTS

        b = benchmark(name)
        t = b.translate(scaled=True)
        n = b.functional_dims["n"]
        rng = np.random.default_rng(42)
        x = rng.normal(size=n)
        y = np.float64(1.0)
        w = rng.normal(size=n)

        interp = Interpreter(t.dfg).run({"x": x, "y": y, "w": w})["g"]
        program = compile_thread(t.dfg, rows=2, columns=4)
        hw = ThreadSimulator(program).run({"x": x, "y": y, "w": w})
        cycle_sim = hw.gradient_vector("g", n)
        ref = GRADIENTS[b.algorithm](
            {"w": w}, {"x": x[None, :], "y": np.array([y])}
        )["g"]

        np.testing.assert_allclose(cycle_sim, interp, rtol=1e-9)
        np.testing.assert_allclose(interp, ref, rtol=1e-9)


class TestNodeVsTrainerAgreement:
    def test_node_accelerator_matches_trainer_step(self):
        """One NodeAccelerator pass equals the trainer's node-level math
        when shards divide evenly."""
        b = benchmark("stock")
        t = b.translate(scaled=True)
        plan = Planner(XILINX_VU9P).plan(t.dfg, 1024)
        accel = NodeAccelerator(t, plan)
        rng = np.random.default_rng(7)
        n = b.functional_dims["n"]
        N = accel.threads * 16
        feeds = {"x": rng.normal(size=(N, n)), "y": rng.normal(size=N)}
        model = {"w": rng.normal(size=n)}
        node_partial = accel.process_partition(feeds, model).partials["g"]
        full_mean = Interpreter(t.dfg).gradients(
            {**feeds, **model}, batch=True
        )["g"].mean(axis=0)
        np.testing.assert_allclose(node_partial, full_mean, rtol=1e-10)


class TestTimingConsistency:
    def test_cluster_uses_platform_times(self):
        """The cluster's reported compute time is exactly the platform
        model's per-node time."""
        b = benchmark("stock")
        platform = platform_for(b, "fpga")
        system = CosmicSystem(b, platform, 4)
        timing = system.iteration(10_000)
        expected = platform.compute_seconds(10_000)
        assert timing.compute_max_s == pytest.approx(expected, rel=1e-9)

    def test_epoch_equals_iterations_times_iteration(self):
        b = benchmark("tumor")  # 387,944 vectors
        platform = platform_for(b, "fpga")
        system = CosmicSystem(b, platform, 4)
        per_iter = system.iteration(10_000).total_s
        full, rem = divmod(b.input_vectors, 40_000)
        expected = full * per_iter + system.cluster().iteration(rem).total_s
        assert system.epoch_seconds() == pytest.approx(expected, rel=1e-9)


class TestMiniFigure7:
    """A shrunken Figure 7 run must preserve the paper's core claims."""

    @pytest.fixture(scope="class")
    def grid(self):
        names = ["mnist", "stock", "movielens"]
        spark, cosmic = {}, {}
        for name in names:
            b = benchmark(name)
            platform = platform_for(b, "fpga")
            spark[name] = {n: SparkModel(n).epoch_seconds(b) for n in (4, 16)}
            cosmic[name] = {
                n: CosmicSystem(b, platform, n).epoch_seconds()
                for n in (4, 16)
            }
        return spark, cosmic

    def test_cosmic_wins_every_cell(self, grid):
        spark, cosmic = grid
        for name in spark:
            for n in (4, 16):
                assert cosmic[name][n] < spark[name][n]

    def test_recommender_gap_largest(self, grid):
        spark, cosmic = grid
        gaps = {
            name: spark[name][4] / cosmic[name][16] for name in spark
        }
        assert gaps["movielens"] > gaps["stock"] > gaps["mnist"]

    def test_cosmic_scales_better_on_comm_heavy(self, grid):
        spark, cosmic = grid
        cosmic_scaling = cosmic["stock"][4] / cosmic["stock"][16]
        spark_scaling = spark["stock"][4] / spark["stock"][16]
        assert cosmic_scaling > spark_scaling


class TestFullStackTraining:
    def test_benchmark_trains_with_cluster_timing(self):
        b = benchmark("cancer1")
        stack = CosmicStack.from_benchmark(b)
        platform = platform_for(b, "fpga")
        cluster = ClusterSimulator(
            ClusterSpec(nodes=4),
            lambda node, samples: platform.compute_seconds(samples),
            update_bytes=b.model_bytes(),
        )
        trainer = stack.trainer(nodes=4, threads_per_node=2, cluster=cluster)
        dataset = b.make_dataset(samples=2048, seed=11)
        result = trainer.train(
            dataset.feeds,
            epochs=8,
            minibatch_per_worker=32,
            loss_fn=dataset.loss,
            learning_rate=0.5,
        )
        assert result.final_loss < 0.6 * result.loss_history[0]
        assert result.simulated_seconds > 0
        assert result.iteration_timing.wire_bytes > 0
