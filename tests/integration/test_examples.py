"""Every shipped example must run to completion (they self-assert)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "OK" in proc.stdout


def test_all_five_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert names == {
        "quickstart",
        "medical_diagnosis",
        "recommender_scaleout",
        "accelerator_codesign",
        "custom_loss_autodiff",
    }
