"""Docs CI gate: every ```python block in docs/*.md must execute.

The guides promise runnable examples; this suite keeps the promise from
rotting. Blocks of one file run top to bottom in a shared namespace
(the guides are written to be pasted into a REPL in order). A block
preceded by an HTML comment containing ``docs-ci: skip`` is not
executed — for fragments and host/network-dependent examples — but it
is still compiled, so skipped blocks cannot hide syntax errors.
"""

import dataclasses
import re
from pathlib import Path

import pytest

from repro.perf.cache import get_cache

DOCS_DIR = Path(__file__).resolve().parents[2] / "docs"

SKIP_MARKER = "docs-ci: skip"

_FENCE_OPEN = re.compile(r"^```python\s*$")
_FENCE_CLOSE = re.compile(r"^```\s*$")


@dataclasses.dataclass
class Block:
    """One fenced python block: where it starts, its code, and whether
    the author marked it execution-exempt."""

    path: Path
    lineno: int  # 1-based line of the opening fence
    code: str
    skipped: bool

    @property
    def label(self) -> str:
        return f"{self.path.name}:{self.lineno}"


def extract_blocks(path: Path):
    """Parse one markdown file into its python blocks, in order.

    The skip marker is an HTML comment on the last non-blank line
    before the opening fence, e.g. ``<!-- docs-ci: skip (why) -->``.
    """
    blocks = []
    lines = path.read_text().splitlines()
    i = 0
    while i < len(lines):
        if _FENCE_OPEN.match(lines[i]):
            preceding = ""
            for back in range(i - 1, -1, -1):
                if lines[back].strip():
                    preceding = lines[back]
                    break
            body = []
            j = i + 1
            while j < len(lines) and not _FENCE_CLOSE.match(lines[j]):
                body.append(lines[j])
                j += 1
            if j == len(lines):
                raise AssertionError(
                    f"{path.name}:{i + 1}: unclosed ```python fence"
                )
            blocks.append(
                Block(
                    path=path,
                    lineno=i + 1,
                    code="\n".join(body) + "\n",
                    skipped=SKIP_MARKER in preceding,
                )
            )
            i = j
        i += 1
    return blocks


def doc_files():
    files = sorted(DOCS_DIR.glob("*.md"))
    assert files, f"no docs found under {DOCS_DIR}"
    return files


@pytest.fixture(autouse=True)
def fresh_cache():
    """Guide examples share the process-wide cache; isolate them from
    the rest of the suite (and from each other across files)."""
    get_cache().clear()
    yield
    get_cache().clear()


class TestExtraction:
    def test_every_guide_is_covered(self):
        names = {p.name for p in doc_files()}
        assert {
            "architecture.md",
            "dsl_reference.md",
            "performance.md",
            "runtime_guide.md",
            "simulation_internals.md",
        } <= names

    def test_the_guides_actually_contain_examples(self):
        counts = {
            p.name: len(extract_blocks(p)) for p in doc_files()
        }
        assert counts["simulation_internals.md"] >= 5
        assert counts["runtime_guide.md"] >= 4

    def test_skip_marker_detected(self):
        blocks = extract_blocks(DOCS_DIR / "dsl_reference.md")
        assert any(b.skipped for b in blocks)


@pytest.mark.parametrize(
    "path", doc_files(), ids=lambda p: p.name
)
class TestDocsExecute:
    def test_python_blocks_run(self, path):
        blocks = extract_blocks(path)
        if not blocks:
            pytest.skip(f"{path.name} has no python blocks")
        namespace = {"__name__": f"docs_{path.stem}"}
        for block in blocks:
            compiled = compile(block.code, block.label, "exec")
            if block.skipped:
                continue  # syntax-checked above, never executed
            try:
                exec(compiled, namespace)
            except Exception as exc:  # pragma: no cover - failure path
                raise AssertionError(
                    f"docs example at {block.label} failed: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
