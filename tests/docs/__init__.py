"""Docs CI gate: the guides' code blocks must execute."""
