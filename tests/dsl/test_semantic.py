"""Unit tests for DSL semantic analysis."""

import pytest

from repro.dsl import SemanticError, analyze, parse, resolve_dims
from repro.dsl.semantic import iterator_extent


def check(source):
    return analyze(parse(source))


GOOD = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


class TestAccepts:
    def test_valid_program(self):
        table = check(GOOD)
        assert table.get("w").kind == "model"
        assert table.get("s").kind == "interim"

    def test_interim_values_inferred(self):
        table = check(GOOD)
        assert "s" in table
        assert not table.get("s").is_iterator

    def test_params_enter_table(self):
        table = check("mu = 0.1;" + GOOD)
        assert table.get("mu").kind == "param"

    def test_aggregator_assigning_model_ok(self):
        # "nodes" is implicitly declared; the runtime binds it (Eq. 3b).
        source = GOOD + "\naggregator:\niterator j[0:nodes];\nw[i] = sum[j](g[j, i]) / nodes;\n"
        check(source)

    def test_nodes_cannot_be_redeclared(self):
        with pytest.raises(SemanticError):
            check("nodes = 3;" + GOOD)


class TestRejects:
    def test_duplicate_declaration(self):
        with pytest.raises(SemanticError):
            check("model w[n]; model w[m]; gradient g; g = 1 + 1;")

    def test_undeclared_identifier(self):
        with pytest.raises(SemanticError):
            check("model w[n]; gradient g; g = w_typo + 1;")

    def test_assign_to_model_input(self):
        with pytest.raises(SemanticError):
            check("model_input x[n]; model w[n]; iterator i[0:n]; x[i] = 1 + 1;")

    def test_assign_to_iterator(self):
        with pytest.raises(SemanticError):
            check("model w[n]; iterator i[0:n]; i = 1 + 1;")

    def test_subscript_not_iterator(self):
        with pytest.raises(SemanticError):
            check("model w[n]; model v[n]; gradient g[n]; iterator i[0:n]; g[v] = 1 + 1;")

    def test_missing_model(self):
        with pytest.raises(SemanticError):
            check("model_input x[n]; gradient g; g = 1 + 1;")

    def test_unassigned_gradient(self):
        with pytest.raises(SemanticError):
            check("model w[n]; gradient g[n]; iterator i[0:n]; s = w[i] * 2;")

    def test_wrong_subscript_arity(self):
        with pytest.raises(SemanticError):
            check("model w[n][m]; gradient g; iterator i[0:n]; w[i] = 1 + 1;")

    def test_empty_iterator_range(self):
        with pytest.raises(SemanticError):
            check("model w[n]; gradient g; iterator i[5:5]; g = 1 + 1;")

    def test_iterator_used_unbound(self):
        with pytest.raises(SemanticError):
            check("model w[n]; gradient g; iterator i[0:n]; g = i * 2;")

    def test_reduce_over_non_iterator(self):
        with pytest.raises(SemanticError):
            check("model w[n]; gradient g; g = sum[w](w);")

    def test_aggregator_cannot_assign_input(self):
        source = GOOD + "\naggregator:\nx = 1 + 1;\n"
        with pytest.raises(SemanticError):
            check(source)


class TestDims:
    def test_resolve_symbolic(self):
        assert resolve_dims(("n", 4, "m"), {"n": 3, "m": 5}) == (3, 4, 5)

    def test_resolve_unbound_raises(self):
        with pytest.raises(SemanticError):
            resolve_dims(("k",), {})

    def test_iterator_extent_range(self):
        table = check(GOOD)
        assert iterator_extent(table.get("i"), {"n": 8}) == (0, 8)

    def test_iterator_extent_size_form(self):
        table = check("model w[n]; gradient g[n]; iterator i[n]; g[i] = w[i] * 1;")
        assert iterator_extent(table.get("i"), {"n": 8}) == (0, 8)

    def test_iterator_extent_on_non_iterator_raises(self):
        table = check(GOOD)
        with pytest.raises(SemanticError):
            iterator_extent(table.get("w"), {"n": 8})
