"""Unit tests for the DSL parser."""

import pytest

from repro.dsl import (
    BinaryOp,
    Call,
    Number,
    ParseError,
    Reduce,
    Subscript,
    Ternary,
    UnaryOp,
    parse,
)

SVM = """
minibatch = 10000;
mu = 0.1;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];

s = sum[i](w[i] * x[i]);
c = s * y;
g[i] = (c < 1) ? (-y * x[i]) : 0;

aggregator:
iterator j[0:nodes];
w[i] = sum[j](g[j, i]) / nodes;
"""


class TestDeclarations:
    def test_declaration_count(self):
        program = parse(SVM)
        assert len(program.declarations) == 6

    def test_symbolic_dims(self):
        program = parse(SVM)
        assert program.declaration("x").dims == ("n",)
        assert program.declaration("w").data_type == "model"

    def test_iterator_range(self):
        program = parse(SVM)
        assert program.declaration("i").dims == (0, "n")

    def test_scalar_declaration_has_no_dims(self):
        program = parse(SVM)
        assert program.declaration("y").dims == ()

    def test_multidim_declaration(self):
        program = parse("model w[n][m]; model v[n, m];")
        assert program.declaration("w").dims == ("n", "m")
        assert program.declaration("v").dims == ("n", "m")


class TestParams:
    def test_minibatch(self):
        assert parse(SVM).minibatch == 10000

    def test_learning_rate(self):
        assert parse(SVM).params["mu"] == pytest.approx(0.1)

    def test_negative_param(self):
        assert parse("mu = -0.5;").params["mu"] == pytest.approx(-0.5)


class TestStatements:
    def test_gradient_section_statements(self):
        program = parse(SVM)
        assert [s.target for s in program.statements] == ["s", "c", "g"]

    def test_aggregator_section(self):
        program = parse(SVM)
        assert len(program.aggregator) == 1
        agg = program.aggregator[0]
        assert agg.target == "w"
        assert agg.indices == ("i",)

    def test_reduce_node(self):
        program = parse(SVM)
        expr = program.statements[0].expr
        assert isinstance(expr, Reduce)
        assert expr.kind == "sum"
        assert expr.iterator == "i"
        assert isinstance(expr.body, BinaryOp)
        assert expr.body.op == "mul"

    def test_ternary_and_unary(self):
        program = parse(SVM)
        expr = program.statements[2].expr
        assert isinstance(expr, Ternary)
        assert isinstance(expr.cond, BinaryOp)
        assert expr.cond.op == "lt"
        # (-y * x[i]) parses as mul(neg(y), x[i]) by precedence.
        assert isinstance(expr.if_true, BinaryOp)
        assert expr.if_true.op == "mul"
        assert isinstance(expr.if_true.left, UnaryOp)
        assert isinstance(expr.if_false, Number)

    def test_multi_index_subscript(self):
        program = parse(SVM)
        # The aggregator expression is sum[j](g[j, i]) / nodes.
        body = program.aggregator[0].expr.left.body
        assert isinstance(body, Subscript)
        assert body.indices == ("j", "i")

    def test_chained_subscript_style(self):
        program = parse("h = w[i][j] * 2;")
        ref = program.statements[0].expr.left
        assert isinstance(ref, Subscript)
        assert ref.indices == ("i", "j")


class TestPrecedence:
    def test_mul_binds_tighter_than_add(self):
        expr = parse("r = a + b * c;").statements[0].expr
        assert expr.op == "add"
        assert expr.right.op == "mul"

    def test_parentheses_override(self):
        expr = parse("r = (a + b) * c;").statements[0].expr
        assert expr.op == "mul"
        assert expr.left.op == "add"

    def test_compare_lowest(self):
        expr = parse("r = a + b > c * d;").statements[0].expr
        assert expr.op == "gt"

    def test_left_associativity(self):
        expr = parse("r = a - b - c;").statements[0].expr
        assert expr.op == "sub"
        assert expr.left.op == "sub"

    def test_unary_minus_folds_literals(self):
        # "r = -3;" alone would be a scalar meta-parameter; force an
        # expression context to observe constant folding.
        expr = parse("r = -3 + a;").statements[0].expr
        assert expr.op == "add"
        assert isinstance(expr.left, Number)
        assert expr.left.value == -3

    def test_division(self):
        expr = parse("r = a / b;").statements[0].expr
        assert expr.op == "div"


class TestCalls:
    def test_sigmoid_call(self):
        expr = parse("h = sigmoid(u);").statements[0].expr
        assert isinstance(expr, Call)
        assert expr.func == "sigmoid"
        assert len(expr.args) == 1

    def test_two_arg_call(self):
        expr = parse("h = max(a, b);").statements[0].expr
        assert len(expr.args) == 2

    def test_pi_reduce(self):
        expr = parse("p = pi[i](x[i]);").statements[0].expr
        assert isinstance(expr, Reduce)
        assert expr.kind == "pi"


class TestLinesOfCode:
    def test_loc_skips_blanks_and_comments(self):
        source = "# header\n\nmodel w[n];\n// c\ns = 1 * 2;\n"
        program = parse(source)
        assert program.lines_of_code == 2

    def test_svm_loc_in_table1_range(self):
        # Table 1 reports 22-55 lines for real programs; our compact SVM
        # example has the same order of magnitude.
        assert 10 <= parse(SVM).lines_of_code <= 55


class TestParseErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "model ;",
            "s = ;",
            "s = a +;",
            "s = sum[](x[i]);",
            "s = (a + b;",
            "model_input x[n]",  # missing semicolon
            "g[i] = a ? b;",  # incomplete ternary
        ],
    )
    def test_malformed_programs_raise(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as err:
            parse("s = a +;")
        assert err.value.line == 1
