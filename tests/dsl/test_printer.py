"""Pretty-printer tests: round-trip fidelity on every shipped program."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import Interpreter, translate
from repro.dsl import parse
from repro.dsl.printer import format_program, format_statement
from repro.ml import BENCHMARKS
from repro.ml.inference import FORWARD_SOURCES


def roundtrip(source: str):
    program = parse(source)
    text = format_program(program)
    return program, parse(text)


class TestRoundTrip:
    @pytest.mark.parametrize("bench", BENCHMARKS, ids=lambda b: b.name)
    def test_benchmark_programs(self, bench):
        original, reparsed = roundtrip(bench.source())
        assert len(original.statements) == len(reparsed.statements)
        assert original.params == reparsed.params
        assert [d.ident for d in original.declarations] == [
            d.ident for d in reparsed.declarations
        ]

    @pytest.mark.parametrize("algorithm", sorted(FORWARD_SOURCES))
    def test_forward_programs(self, algorithm):
        roundtrip(FORWARD_SOURCES[algorithm])

    def test_roundtrip_preserves_semantics(self):
        """The reparsed program computes the same gradients."""
        source = next(b for b in BENCHMARKS if b.name == "face").source()
        original = translate(parse(source), {"n": 8})
        reparsed = translate(parse(format_program(parse(source))), {"n": 8})
        rng = np.random.default_rng(0)
        feeds = {
            "x": rng.normal(size=8),
            "y": np.float64(1.0),
            "w": rng.normal(size=8),
        }
        a = Interpreter(original.dfg).run(feeds)["g"]
        b = Interpreter(reparsed.dfg).run(feeds)["g"]
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_idempotent(self):
        source = BENCHMARKS[0].source()
        once = format_program(parse(source))
        twice = format_program(parse(once))
        assert once == twice


class TestPrecedence:
    @pytest.mark.parametrize(
        "expr",
        [
            "a + b * c",
            "(a + b) * c",
            "a - (b - c)",
            "a - b - c",
            "a / (b / c)",
            "-a * b",
            "a * -b",
            "(a + b) > (c - 1) ? a : b",
            "sum[i](w[i] * x[i]) / n",
        ],
    )
    def test_expression_roundtrip_semantics(self, expr):
        source = (
            "model a; model b; model c; model w[n]; model_input x[n]; "
            f"gradient g_a; n = 4; iterator i[0:n]; g_a = {expr};"
        )
        program = parse(source)
        text = format_program(program)
        reparsed = parse(text)
        t1 = translate(program, {"n": 4})
        t2 = translate(reparsed, {"n": 4})
        rng = np.random.default_rng(1)
        feeds = {
            name: rng.normal(size=t1.dfg.shape(v)) if v.axes else
            np.float64(rng.normal())
            for name, v in (
                (v.name, v)
                for v in t1.dfg.values.values()
                if v.producer is None and v.category in ("DATA", "MODEL")
            )
        }
        out1 = Interpreter(t1.dfg).run(feeds)
        out2 = Interpreter(t2.dfg).run(feeds)
        for key in out1:
            np.testing.assert_allclose(out1[key], out2[key], rtol=1e-12)

    def test_no_redundant_parens_simple(self):
        program = parse("model a; model b; r = a + b;")
        assert format_statement(program.statements[0]) == "r = a + b;"

    def test_parens_preserved_where_needed(self):
        program = parse("model a; model b; model c; r = (a + b) * c;")
        text = format_statement(program.statements[0])
        assert text == "r = (a + b) * c;"


class TestFragments:
    def test_scalar_number_formatting(self):
        program = parse("mu = 0.5; minibatch = 10000; model w[n];")
        text = format_program(program)
        assert "mu = 0.5;" in text
        assert "minibatch = 10000;" in text

    def test_iterator_range_form(self):
        program = parse("model w[n]; iterator i[0:n]; r = 1 + 1;")
        assert "iterator i[0:n];" in format_program(program)

    def test_matrix_declaration(self):
        program = parse("model w[n, m]; r = 1 + 1;")
        assert "model w[n, m];" in format_program(program)


@st.composite
def random_exprs(draw, depth=0):
    if depth > 3 or draw(st.booleans()):
        return draw(st.sampled_from(["a", "b", "c", "2", "0.5"]))
    kind = draw(st.sampled_from(["bin", "neg", "ternary"]))
    if kind == "bin":
        op = draw(st.sampled_from(["+", "-", "*", "/"]))
        return (
            f"({draw(random_exprs(depth=depth + 1))} {op} "
            f"{draw(random_exprs(depth=depth + 1))})"
        )
    if kind == "neg":
        return f"(-{draw(random_exprs(depth=depth + 1))})"
    return (
        f"({draw(random_exprs(depth=depth + 1))} > "
        f"{draw(random_exprs(depth=depth + 1))} ? "
        f"{draw(random_exprs(depth=depth + 1))} : "
        f"{draw(random_exprs(depth=depth + 1))})"
    )


class TestPropertyRoundTrip:
    @given(random_exprs())
    @settings(max_examples=100, deadline=None)
    def test_random_expressions_evaluate_identically(self, expr):
        source = f"model a; model b; model c; gradient g_a; g_a = {expr} + 0;"
        program = parse(source)
        reparsed = parse(format_program(program))
        t1 = translate(program, {})
        t2 = translate(reparsed, {})
        feeds = {"a": np.float64(1.7), "b": np.float64(-0.3),
                 "c": np.float64(2.5)}
        out1 = Interpreter(t1.dfg).run(feeds)
        out2 = Interpreter(t2.dfg).run(feeds)
        # atol: pretty-printing may re-associate float arithmetic, so a
        # value that cancels to exactly 0.0 on one side can come out as
        # ~1e-17 on the other; rtol alone can never accept that at zero.
        np.testing.assert_allclose(
            out1["g_a"], out2["g_a"], rtol=1e-12, atol=1e-12
        )
