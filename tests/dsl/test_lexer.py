"""Unit tests for the DSL tokenizer."""

import pytest

from repro.dsl import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "EOF"

    def test_keywords_are_tagged(self):
        toks = tokenize("model_input model gradient iterator aggregator sum")
        assert all(t.kind == "KEYWORD" for t in toks[:-1])

    def test_functions_are_tagged(self):
        toks = tokenize("sigmoid gaussian log exp sqrt")
        assert all(t.kind == "FUNC" for t in toks[:-1])

    def test_identifiers(self):
        toks = tokenize("w x_1 _tmp Theta")
        assert all(t.kind == "IDENT" for t in toks[:-1])

    def test_integer_and_float_literals(self):
        assert texts("42 3.14 0.5 1e3 2.5e-4") == ["42", "3.14", "0.5", "1e3", "2.5e-4"]
        assert kinds("42 3.14")[:-1] == ["NUMBER", "NUMBER"]

    def test_two_char_operators(self):
        assert texts(">= <= == !=") == [">=", "<=", "==", "!="]

    def test_single_char_operators(self):
        assert texts("+ - * / ( ) [ ] ; , ? : = < >") == list("+-*/()[];,?:=<>")


class TestCommentsAndPositions:
    def test_hash_comment_skipped(self):
        assert texts("a # comment here\nb") == ["a", "b"]

    def test_slash_slash_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_line_numbers_advance(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        toks = tokenize("ab cd")
        assert toks[0].column == 1
        assert toks[1].column == 4


class TestErrors:
    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as err:
            tokenize("ok\n  $")
        assert err.value.line == 2
        assert err.value.column == 3


class TestRealPrograms:
    def test_svm_fragment(self):
        source = "s = sum[i](w[i] * x[i]);"
        assert kinds(source)[:-1] == [
            "IDENT", "OP", "KEYWORD", "OP", "IDENT", "OP", "OP",
            "IDENT", "OP", "IDENT", "OP", "OP", "IDENT", "OP",
            "IDENT", "OP", "OP", "OP",
        ]

    def test_ternary_tokens(self):
        assert texts("g = c > 1 ? 0 : x;") == [
            "g", "=", "c", ">", "1", "?", "0", ":", "x", ";",
        ]
