"""Testbench-generator tests."""

import numpy as np
import pytest

from repro.circuit.testbench import generate_testbench
from repro.compiler import compile_thread
from repro.dfg import Interpreter, translate
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


@pytest.fixture
def setup():
    n = 6
    t = translate(parse(LINREG), {"n": n})
    program = compile_thread(t.dfg, rows=1, columns=3)
    rng = np.random.default_rng(0)
    feeds = {
        "x": rng.normal(size=n),
        "y": np.float64(0.5),
        "w": rng.normal(size=n),
    }
    return t, program, feeds, n


class TestGenerateTestbench:
    def test_structure(self, setup):
        _, program, feeds, _ = setup
        tb = generate_testbench(program, feeds)
        assert tb.startswith("// Self-checking testbench")
        assert "module cosmic_tb;" in tb
        assert tb.rstrip().endswith("endmodule")
        assert f"Expected latency: {program.schedule.makespan} cycles" in tb

    def test_all_stimulus_listed(self, setup):
        _, program, feeds, n = setup
        tb = generate_testbench(program, feeds)
        for i in range(n):
            assert f"x[{i}]" in tb
            assert f"w[{i}]" in tb
        assert "feed y" in tb

    def test_golden_values_match_interpreter(self, setup):
        t, program, feeds, n = setup
        tb = generate_testbench(program, feeds)
        golden = Interpreter(t.dfg).run(feeds)["g"]
        for i in range(n):
            assert f"{golden[i]:+.9e}" in tb

    def test_one_check_per_gradient_element(self, setup):
        _, program, feeds, n = setup
        tb = generate_testbench(program, feeds)
        assert tb.count("FAIL g[") == n
        assert f"gradients checked\", {n});" in tb

    def test_latency_wait_beyond_makespan(self, setup):
        _, program, feeds, _ = setup
        tb = generate_testbench(program, feeds)
        assert f"repeat ({program.schedule.makespan + 8})" in tb
