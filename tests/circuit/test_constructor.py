"""Tests for the Constructor's RTL and microcode generation."""

import pytest

from repro.circuit import construct, decode, encode_microcode, opcode_of
from repro.compiler import compile_thread
from repro.dfg import translate
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""

LOGREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
p = sigmoid(sum[i](w[i] * x[i]));
g[i] = (p - y) * x[i];
"""


def program(source=LINREG, n=8, rows=2, columns=4):
    dfg = translate(parse(source), {"n": n}).dfg
    return compile_thread(dfg, rows=rows, columns=columns)


class TestFpgaTarget:
    def test_modules_present(self):
        design = construct(program(), target="fpga")
        names = design.module_names()
        assert "cosmic_pe" in names
        assert "cosmic_row_bus" in names
        assert "cosmic_tree_bus" in names
        assert "cosmic_mem_interface" in names
        assert "cosmic_control_fsm" in names
        assert "cosmic_accelerator_top" in names

    def test_fsm_states_cover_schedule(self):
        prog = program()
        design = construct(prog, target="fpga")
        assert design.fsm_states == prog.schedule.makespan + 1

    def test_no_microcode_rom_on_fpga(self):
        design = construct(program(), target="fpga")
        assert "cosmic_microcode_rom" not in design.module_names()

    def test_geometry_in_header(self):
        design = construct(program(rows=2, columns=4))
        assert "2 rows x 4 columns" in design.verilog
        assert design.pe_count == 8

    def test_nonlinear_unit_only_when_needed(self):
        plain = construct(program(LINREG))
        nonlin = construct(program(LOGREG))
        assert "nlu_lut" not in plain.verilog
        assert "nlu_lut" in nonlin.verilog


class TestPasicTarget:
    def test_microcode_rom_replaces_fsm(self):
        design = construct(program(), target="pasic")
        names = design.module_names()
        assert "cosmic_microcode_rom" in names
        assert "cosmic_control_fsm" not in names

    def test_microcode_covers_all_ops(self):
        prog = program()
        design = construct(prog, target="pasic")
        assert len(design.microcode) == len(prog.schedule.ops)

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            construct(program(), target="gpu")


class TestMicrocode:
    def test_encode_decode_roundtrip(self):
        prog = program()
        for uop in encode_microcode(prog):
            decoded = decode(uop.encode())
            assert decoded["cycle"] == uop.cycle
            assert decoded["pe"] == uop.pe
            assert decoded["opcode"] == uop.opcode
            assert decoded["writes_gradient"] == uop.writes_gradient

    def test_stream_sorted_by_cycle(self):
        micro = encode_microcode(program())
        cycles = [u.cycle for u in micro]
        assert cycles == sorted(cycles)

    def test_gradient_flag_set(self):
        micro = encode_microcode(program())
        assert any(u.writes_gradient for u in micro)

    def test_opcodes_distinct(self):
        assert opcode_of("add") != opcode_of("mul")
        assert opcode_of("sigmoid") != opcode_of("select")

    def test_opcode_of_unknown_raises(self):
        with pytest.raises(KeyError):
            opcode_of("frobnicate")
