"""Automatic differentiation: derived gradients vs hand-written ones and
vs finite differences."""

import numpy as np
import pytest

from repro.dfg import Interpreter, translate
from repro.dfg.differentiate import (
    DifferentiationError,
    derive_gradients,
)
from repro.dsl import parse

LINREG_LOSS = """
model_input x[n];
model_output y;
model w[n];
iterator i[0:n];
e = sum[i](w[i] * x[i]) - y;
loss = e * e / 2;
"""

LINREG_GRAD = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""

LOGREG_LOSS = """
model_input x[n];
model_output y;
model w[n];
iterator i[0:n];
p = sigmoid(sum[i](w[i] * x[i]));
loss = 0 - (y * log(p) + (1 - y) * log(1 - p));
"""

MLP_LOSS = """
model_input x[n];
model_output y[c];
model w1[n, h];
model w2[h, c];
iterator i[0:n];
iterator j[0:h];
iterator k[0:c];
hid[j] = sigmoid(sum[i](w1[i, j] * x[i]));
out[k] = sigmoid(sum[j](w2[j, k] * hid[j]));
d[k] = out[k] - y[k];
loss = sum[k](d[k] * d[k]) / 2;
"""

HINGE_LOSS = """
model_input x[n];
model_output y;
model w[n];
iterator i[0:n];
m = sum[i](w[i] * x[i]) * y;
loss = max(0, 1 - m);
"""


def numeric_gradient(loss_fn, arr, eps=1e-6):
    grad = np.zeros_like(arr)
    flat = arr.reshape(-1)
    gflat = grad.reshape(-1)
    for idx in range(flat.size):
        orig = flat[idx]
        flat[idx] = orig + eps
        up = loss_fn()
        flat[idx] = orig - eps
        down = loss_fn()
        flat[idx] = orig
        gflat[idx] = (up - down) / (2 * eps)
    return grad


class TestAgainstHandWritten:
    def test_linreg_matches_manual_gradient(self):
        rng = np.random.default_rng(0)
        n = 6
        derived = derive_gradients(LINREG_LOSS, {"n": n})
        manual = translate(parse(LINREG_GRAD), {"n": n})
        feeds = {
            "x": rng.normal(size=n),
            "y": np.float64(0.4),
            "w": rng.normal(size=n),
        }
        g_auto = Interpreter(derived.dfg).run(feeds)["g_w"]
        g_hand = Interpreter(manual.dfg).run(feeds)["g"]
        np.testing.assert_allclose(g_auto, g_hand, rtol=1e-10)

    def test_aggregator_pairs_named(self):
        derived = derive_gradients(LINREG_LOSS, {"n": 4})
        assert derived.aggregator.pairs == (("w", "g_w"),)


class TestAgainstFiniteDifferences:
    @pytest.mark.parametrize(
        "source,shapes",
        [
            (LINREG_LOSS, {"w": (6,)}),
            (LOGREG_LOSS, {"w": (5,)}),
            (HINGE_LOSS, {"w": (4,)}),
        ],
    )
    def test_vector_models(self, source, shapes):
        rng = np.random.default_rng(1)
        n = shapes["w"][0]
        derived = derive_gradients(source, {"n": n})
        interp = Interpreter(derived.dfg)
        w = rng.normal(size=n) * 0.5
        feeds = {"x": rng.normal(size=n), "y": np.float64(1.0), "w": w}

        def loss():
            # Forward value: the derived graph also exposes the loss.
            return _loss_of(derived, {**feeds, "w": w})

        auto = interp.run(feeds)["g_w"]
        numeric = numeric_gradient(loss, w)
        np.testing.assert_allclose(auto, numeric, rtol=1e-5, atol=1e-7)

    def test_mlp_backprop_derived(self):
        """The headline case: reverse-mode over the MLP loss reproduces
        the paper's hand-written backpropagation."""
        rng = np.random.default_rng(2)
        n, h, c = 4, 3, 2
        derived = derive_gradients(MLP_LOSS, {"n": n, "h": h, "c": c})
        interp = Interpreter(derived.dfg)
        w1 = rng.normal(size=(n, h)) * 0.4
        w2 = rng.normal(size=(h, c)) * 0.4
        feeds = {
            "x": rng.normal(size=n),
            "y": rng.random(size=c),
            "w1": w1,
            "w2": w2,
        }
        auto = interp.run(feeds)

        def loss_with(w1v, w2v):
            hid = 1 / (1 + np.exp(-(feeds["x"] @ w1v)))
            out = 1 / (1 + np.exp(-(hid @ w2v)))
            return float(np.sum((out - feeds["y"]) ** 2) / 2)

        num1 = numeric_gradient(lambda: loss_with(w1, w2), w1)
        num2 = numeric_gradient(lambda: loss_with(w1, w2), w2)
        np.testing.assert_allclose(auto["g_w1"], num1, rtol=1e-5, atol=1e-7)
        np.testing.assert_allclose(auto["g_w2"], num2, rtol=1e-5, atol=1e-7)


class TestDerivedGraphsCompile:
    def test_derived_graph_plans_and_compiles(self):
        """The derived gradient DFG is a first-class citizen: it plans,
        compiles, schedules, and simulates like a hand-written one."""
        from repro.compiler import compile_thread
        from repro.hw import ThreadSimulator, XILINX_VU9P
        from repro.planner import Planner

        derived = derive_gradients(LINREG_LOSS, {"n": 8})
        plan = Planner(XILINX_VU9P).plan(derived.dfg, 1000)
        assert plan.samples_per_second > 0
        program = compile_thread(derived.dfg, rows=2, columns=4)
        program.verify()
        rng = np.random.default_rng(3)
        feeds = {
            "x": rng.normal(size=8),
            "y": np.float64(0.2),
            "w": rng.normal(size=8),
        }
        hw = ThreadSimulator(program).run(feeds)
        sw = Interpreter(derived.dfg).run(feeds)
        np.testing.assert_allclose(
            hw.gradient_vector("g_w", 8), sw["g_w"], rtol=1e-9
        )

    def test_derived_translation_trains(self):
        from repro.runtime import DistributedTrainer

        rng = np.random.default_rng(4)
        n, N = 6, 512
        true_w = rng.normal(size=n)
        X = rng.normal(size=(N, n))
        Y = X @ true_w
        derived = derive_gradients("mu = 0.05;" + LINREG_LOSS, {"n": n})
        trainer = DistributedTrainer(derived, nodes=2, threads_per_node=2)
        def mse(m, f):
            return float(np.mean((f["x"] @ m["w"] - f["y"]) ** 2))
        result = trainer.train(
            {"x": X, "y": Y}, epochs=10, minibatch_per_worker=16, loss_fn=mse
        )
        assert result.final_loss < 0.05 * result.loss_history[0]


class TestErrors:
    def test_missing_loss_variable(self):
        with pytest.raises(DifferentiationError):
            derive_gradients("model w[n]; iterator i[0:n]; z = sum[i](w[i]);",
                             {"n": 4})

    def test_non_scalar_loss(self):
        source = """
        model_input x[n];
        model w[n];
        iterator i[0:n];
        loss[i] = w[i] * x[i];
        """
        with pytest.raises(DifferentiationError):
            derive_gradients(source, {"n": 4})

    def test_zero_gradient_for_unused_model(self):
        # v appears in the graph (the dead sum) but cannot influence the
        # loss, so its derived gradient is identically zero.
        source = """
        model_input x[n];
        model w[n];
        model v[n];
        iterator i[0:n];
        dead = sum[i](v[i] * x[i]);
        s = sum[i](w[i] * x[i]);
        loss = s * s;
        """
        derived = derive_gradients(source, {"n": 3})
        out = Interpreter(derived.dfg).run(
            {"x": np.ones(3), "w": np.ones(3), "v": np.ones(3)}
        )
        np.testing.assert_allclose(out["g_v"], np.zeros(3))


def _loss_of(derived, feeds):
    out = Interpreter(derived.dfg).run(feeds)
    return float(out["loss"])
