"""Operation-registry tests: semantics and hardware metadata."""

import numpy as np
import pytest

from repro.dfg import all_ops, is_known_op, op_info


class TestRegistry:
    def test_known_ops(self):
        assert is_known_op("add")
        assert is_known_op("reduce_sum")
        assert not is_known_op("conv2d")

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            op_info("conv2d")

    def test_all_ops_is_copy(self):
        ops = all_ops()
        ops.pop("add")
        assert is_known_op("add")

    def test_arities(self):
        assert op_info("neg").arity == 1
        assert op_info("mul").arity == 2
        assert op_info("select").arity == 3

    def test_reduce_flags(self):
        for name in ("reduce_sum", "reduce_prod", "reduce_min", "reduce_max"):
            assert op_info(name).reduce
        assert not op_info("add").reduce


class TestHardwareMetadata:
    def test_lut_ops_marked_nonlinear(self):
        """Section 5.1: sigmoid, gaussian, divide, logarithm use the LUT."""
        for name in ("sigmoid", "gaussian", "div", "log", "exp", "sqrt"):
            assert op_info(name).nonlinear, name

    def test_alu_ops_single_cycle(self):
        for name in ("add", "sub", "mul", "gt", "min", "select"):
            assert op_info(name).cycles == 1
            assert not op_info(name).nonlinear

    def test_nonlinear_ops_cost_more(self):
        assert op_info("div").cycles > op_info("mul").cycles


class TestNumericalSemantics:
    def test_comparisons_return_masks(self):
        lt = op_info("lt").numpy_fn
        out = lt(np.array([1.0, 3.0]), np.array([2.0, 2.0]))
        np.testing.assert_array_equal(out, [1.0, 0.0])

    def test_comparisons_work_on_python_scalars(self):
        assert float(op_info("gt").numpy_fn(3.0, 1.0)) == 1.0
        assert float(op_info("le").numpy_fn(3.0, 1.0)) == 0.0

    def test_select_routes_by_mask(self):
        sel = op_info("select").numpy_fn
        out = sel(np.array([1.0, 0.0]), np.array([10.0, 10.0]),
                  np.array([20.0, 20.0]))
        np.testing.assert_array_equal(out, [10.0, 20.0])

    def test_sigmoid_saturates_safely(self):
        sig = op_info("sigmoid").numpy_fn
        assert float(sig(np.float64(1000.0))) == pytest.approx(1.0)
        assert float(sig(np.float64(-1000.0))) == pytest.approx(0.0)

    def test_log_clamps_at_zero(self):
        log = op_info("log").numpy_fn
        assert np.isfinite(log(np.float64(0.0)))

    def test_sqrt_clamps_negative(self):
        sqrt = op_info("sqrt").numpy_fn
        assert float(sqrt(np.float64(-1.0))) == 0.0

    def test_gaussian_is_exp_minus_square(self):
        g = op_info("gaussian").numpy_fn
        assert float(g(np.float64(2.0))) == pytest.approx(np.exp(-4.0))

    def test_reduce_sum_over_axis(self):
        fn = op_info("reduce_sum").numpy_fn
        out = fn(np.arange(6.0).reshape(2, 3), axis=(1,))
        np.testing.assert_array_equal(out, [3.0, 12.0])
