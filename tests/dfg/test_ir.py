"""Direct unit tests for the DFG IR (graph construction and invariants)."""

import pytest

from repro.dfg import CONST, DATA, MODEL, Dfg


def small_graph():
    """x[i] * w[i] -> reduce -> +1"""
    dfg = Dfg({"i": 4})
    x = dfg.add_value("x", DATA, ("i",))
    w = dfg.add_value("w", MODEL, ("i",))
    prod = dfg.add_node("mul", [x, w], "prod", ("i",))
    total = dfg.add_node(
        "reduce_sum", [prod], "total", (), reduce_axes=("i",)
    )
    one = dfg.add_value("one", CONST, (), const_value=1.0)
    out = dfg.add_node("add", [total, one], "out", (), is_gradient=True)
    dfg.outputs["out"] = out.vid
    return dfg, (x, w, prod, total, out)


class TestConstruction:
    def test_shapes(self):
        dfg, (x, w, prod, total, out) = small_graph()
        assert dfg.shape(x) == (4,)
        assert dfg.shape(total) == ()
        assert dfg.size(prod) == 4

    def test_unknown_axis_rejected(self):
        dfg = Dfg({"i": 4})
        with pytest.raises(ValueError):
            dfg.add_value("x", DATA, ("j",))

    def test_unknown_category_rejected(self):
        dfg = Dfg()
        with pytest.raises(ValueError):
            dfg.add_value("x", "WEIGHTS")

    def test_unknown_op_rejected(self):
        dfg = Dfg()
        a = dfg.add_value("a", CONST, (), const_value=1.0)
        with pytest.raises(KeyError):
            dfg.add_node("fma", [a], "r", ())

    def test_topo_order_is_creation_order(self):
        dfg, _ = small_graph()
        nids = [n.nid for n in dfg.topo_order()]
        assert nids == sorted(nids)


class TestQueries:
    def test_inputs_by_category(self):
        dfg, _ = small_graph()
        assert [v.name for v in dfg.inputs_of_category(DATA)] == ["x"]
        assert [v.name for v in dfg.inputs_of_category(MODEL)] == ["w"]

    def test_gradient_outputs(self):
        dfg, _ = small_graph()
        assert [v.name for v in dfg.gradient_outputs()] == ["out"]

    def test_consumers(self):
        dfg, (x, w, prod, total, out) = small_graph()
        assert [n.op for n in dfg.consumers(prod)] == ["reduce_sum"]
        assert dfg.consumers(out) == []

    def test_node_iter_space(self):
        dfg, _ = small_graph()
        spaces = [dfg.node_iter_space(n) for n in dfg.topo_order()]
        assert spaces == [4, 4, 1]  # mul, reduce, add

    def test_counts(self):
        dfg, _ = small_graph()
        assert dfg.data_words() == 4
        assert dfg.model_words() == 4
        assert dfg.gradient_words() == 1
        assert dfg.total_scalar_ops() == 9

    def test_depth_and_critical_path(self):
        dfg, _ = small_graph()
        assert dfg.depth() == 3
        assert dfg.critical_path_cycles() >= 3

    def test_live_interim_excludes_reduce_feeds(self):
        dfg, _ = small_graph()
        # prod feeds only a reduce; total feeds the gradient add.
        assert dfg.live_interim_words() == 1

    def test_uses_nonlinear(self):
        dfg, _ = small_graph()
        assert not dfg.uses_nonlinear()
        extra = dfg.add_node(
            "sigmoid", [dfg.values[dfg.outputs["out"]]], "s", ()
        )
        assert dfg.uses_nonlinear()


class TestValidation:
    def test_valid_graph_passes(self):
        dfg, _ = small_graph()
        dfg.validate()

    def test_arity_checked(self):
        dfg = Dfg()
        a = dfg.add_value("a", CONST, (), const_value=1.0)
        out = dfg.add_node("add", [a], "r", ())  # add wants 2 inputs
        with pytest.raises(ValueError, match="inputs"):
            dfg.validate()

    def test_reduce_needs_axes(self):
        dfg = Dfg({"i": 4})
        x = dfg.add_value("x", DATA, ("i",))
        dfg.add_node("reduce_sum", [x], "r", ("i",))  # no reduce_axes
        with pytest.raises(ValueError, match="reduce"):
            dfg.validate()

    def test_reduce_axis_must_exist_on_input(self):
        dfg = Dfg({"i": 4, "j": 2})
        x = dfg.add_value("x", DATA, ("i",))
        dfg.add_node("reduce_sum", [x], "r", ("i",), reduce_axes=("j",))
        with pytest.raises(ValueError):
            dfg.validate()

    def test_dangling_output_reference(self):
        dfg, _ = small_graph()
        dfg.outputs["ghost"] = 999
        with pytest.raises(ValueError, match="missing"):
            dfg.validate()
