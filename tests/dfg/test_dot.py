"""DOT export tests (structure of the generated text)."""

import re

import pytest

from repro.compiler import compile_thread
from repro.dfg import translate
from repro.dfg.dot import program_to_dot, to_dot
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


@pytest.fixture
def dfg():
    return translate(parse(LINREG), {"n": 4}).dfg


class TestToDot:
    def test_valid_digraph_block(self, dfg):
        dot = to_dot(dfg, name="linreg")
        assert dot.startswith("digraph linreg {")
        assert dot.rstrip().endswith("}")
        assert dot.count("{") == dot.count("}")

    def test_inputs_present_with_axes(self, dfg):
        dot = to_dot(dfg)
        assert '"x[i]"' in dot
        assert '"w[i]"' in dot
        assert '"y"' in dot

    def test_every_node_rendered(self, dfg):
        dot = to_dot(dfg)
        for node in dfg.topo_order():
            assert f"n{node.nid} [" in dot

    def test_edges_match_graph(self, dfg):
        dot = to_dot(dfg)
        edges = re.findall(r"(\w+) -> n(\d+);", dot)
        by_node = {}
        for src, dst in edges:
            by_node.setdefault(int(dst), []).append(src)
        for node in dfg.topo_order():
            assert len(by_node[node.nid]) == len(node.inputs)

    def test_gradient_highlighted(self, dfg):
        dot = to_dot(dfg)
        assert "#ffe2b8" in dot  # gradient fill colour

    def test_outputs_doubleoctagon(self, dfg):
        dot = to_dot(dfg)
        assert "doubleoctagon" in dot
        assert "out_g" in dot

    def test_reduce_axes_in_label(self, dfg):
        dot = to_dot(dfg)
        assert "reduce_sum[i]" in dot


class TestProgramToDot:
    def test_placement_annotations(self):
        t = translate(parse(LINREG), {"n": 8})
        program = compile_thread(t.dfg, rows=2, columns=4)
        dot = program_to_dot(program)
        assert re.search(r"pe\d+ t=\d+", dot)

    def test_all_scheduled_ops_annotated(self):
        t = translate(parse(LINREG), {"n": 8})
        program = compile_thread(t.dfg, rows=1, columns=2)
        dot = program_to_dot(program)
        assert dot.count("t=") == len(program.schedule.ops)
