"""Optimisation-pass tests: semantics preserved, work reduced."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import Interpreter, translate
from repro.dfg.differentiate import derive_gradients
from repro.dfg.optimize import optimize
from repro.dsl import parse

CSE_HEAVY = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
a = sum[i](w[i] * x[i]);
b = sum[i](w[i] * x[i]);
g[i] = (a - y) * x[i] + (b - y) * 0;
"""

CONST_HEAVY = """
model_input x[n];
model w[n];
gradient g[n];
iterator i[0:n];
c = 2 * 3 + 4;
d = c / 5;
g[i] = w[i] * x[i] * d;
"""

DEAD_CODE = """
model_input x[n];
model w[n];
gradient g[n];
iterator i[0:n];
unused = sum[i](w[i] + x[i]);
also_unused = unused * 3;
g[i] = w[i] * x[i];
"""


def run_both(source, n, feeds):
    t = translate(parse(source), {"n": n})
    before = Interpreter(t.dfg).run(feeds)
    optimized, report = optimize(t.dfg)
    after = Interpreter(optimized).run(feeds)
    return before, after, report, t.dfg, optimized


@pytest.fixture
def feeds():
    rng = np.random.default_rng(0)
    return {
        "x": rng.normal(size=8),
        "y": np.float64(0.7),
        "w": rng.normal(size=8),
    }


class TestSemanticsPreserved:
    @pytest.mark.parametrize("source", [CSE_HEAVY, CONST_HEAVY, DEAD_CODE])
    def test_outputs_identical(self, source, feeds):
        use = dict(feeds)
        if "model_output" not in source:
            use.pop("y")
        before, after, _, _, _ = run_both(source, 8, use)
        for key in before:
            np.testing.assert_allclose(after[key], before[key], rtol=0)

    def test_benchmark_programs_survive(self):
        from repro.ml import benchmark

        rng = np.random.default_rng(1)
        for name in ("stock", "mnist", "movielens"):
            b = benchmark(name)
            t = b.translate(scaled=True)
            ds = b.make_dataset(samples=4, seed=2)
            model = {k: rng.normal(size=v.shape) for k, v in ds.truth.items()}
            sample = {k: np.asarray(v)[0] for k, v in ds.feeds.items()}
            before = Interpreter(t.dfg).run({**sample, **model})
            optimized, _ = optimize(t.dfg)
            after = Interpreter(optimized).run({**sample, **model})
            for key in before:
                np.testing.assert_allclose(after[key], before[key], rtol=0)


class TestEachPass:
    def test_constant_folding(self, feeds):
        use = {k: v for k, v in feeds.items() if k != "y"}
        _, _, report, before, after = run_both(CONST_HEAVY, 8, use)
        assert report.folded >= 3  # 2*3, +4, /5
        assert report.nodes_after < report.nodes_before

    def test_cse_merges_duplicate_reduction(self, feeds):
        _, _, report, _, _ = run_both(CSE_HEAVY, 8, feeds)
        assert report.cse_merged >= 2  # the mul and the reduce

    def test_dce_removes_unreachable(self, feeds):
        use = {k: v for k, v in feeds.items() if k != "y"}
        _, _, report, _, after = run_both(DEAD_CODE, 8, use)
        assert report.dead_removed >= 2
        names = {v.name for v in after.values.values()}
        assert "unused" not in names

    def test_passes_selectable(self, feeds):
        t = translate(parse(DEAD_CODE), {"n": 8})
        _, report = optimize(t.dfg, passes=("fold",))
        assert report.dead_removed == 0

    def test_unknown_pass_rejected(self):
        t = translate(parse(DEAD_CODE), {"n": 8})
        with pytest.raises(ValueError):
            optimize(t.dfg, passes=("inline",))


class TestDownstreamIntegration:
    def test_optimized_graph_compiles(self, feeds):
        from repro.compiler import compile_thread
        from repro.hw import ThreadSimulator

        t = translate(parse(CSE_HEAVY), {"n": 8})
        optimized, _ = optimize(t.dfg)
        program = compile_thread(optimized, rows=2, columns=4)
        program.verify()
        hw = ThreadSimulator(program).run(feeds)
        sw = Interpreter(optimized).run(feeds)
        np.testing.assert_allclose(
            hw.gradient_vector("g", 8), sw["g"], rtol=1e-9
        )

    def test_autodiff_output_shrinks(self):
        """Derived gradient graphs carry redundancy the passes remove."""
        derived = derive_gradients(
            """
            model_input x[n];
            model_output y;
            model w[n];
            iterator i[0:n];
            e = sum[i](w[i] * x[i]) - y;
            loss = e * e / 2;
            """,
            {"n": 8},
        )
        optimized, report = optimize(derived.dfg)
        assert report.nodes_after <= report.nodes_before
        rng = np.random.default_rng(3)
        feeds = {
            "x": rng.normal(size=8),
            "y": np.float64(0.1),
            "w": rng.normal(size=8),
        }
        a = Interpreter(derived.dfg).run(feeds)["g_w"]
        b = Interpreter(optimized).run(feeds)["g_w"]
        np.testing.assert_allclose(a, b, rtol=0)


class TestPropertyEquivalence:
    @given(
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_optimize_is_identity_on_results(self, n, seed):
        rng = np.random.default_rng(seed)
        t = translate(parse(CSE_HEAVY), {"n": n})
        feeds = {
            "x": rng.normal(size=n),
            "y": np.float64(rng.normal()),
            "w": rng.normal(size=n),
        }
        before = Interpreter(t.dfg).run(feeds)
        optimized, _ = optimize(t.dfg)
        after = Interpreter(optimized).run(feeds)
        for key in before:
            np.testing.assert_allclose(after[key], before[key], rtol=0)
