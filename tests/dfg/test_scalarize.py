"""Scalar expansion tests: structure, sizes, and functional equivalence."""

import numpy as np
import pytest

from repro.dfg import (
    DATA,
    ExpansionTooLarge,
    Interpreter,
    MODEL,
    scalarize,
    translate,
)
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""


def lin(n=4):
    return translate(parse(LINREG), {"n": n}).dfg


class TestStructure:
    def test_scalar_graph_has_no_axes(self):
        exp = scalarize(lin(4))
        assert all(v.axes == () for v in exp.dfg.values.values())

    def test_node_count_matches_macro_estimate(self):
        macro = lin(4)
        exp = scalarize(macro)
        # reduce expands to w-1 adds + 1 identity vs w "applications".
        assert len(exp.dfg.nodes) == pytest.approx(macro.total_scalar_ops(), abs=2)

    def test_elements_enumerated(self):
        exp = scalarize(lin(3))
        names = {(name, idx) for (name, idx) in exp.elements}
        assert ("x", (0,)) in names
        assert ("x", (2,)) in names
        assert ("w", (1,)) in names
        assert ("y", ()) in names

    def test_input_elements_by_category(self):
        exp = scalarize(lin(3))
        data = exp.input_elements(DATA)
        model = exp.input_elements(MODEL)
        assert [name for name, _, _ in model] == ["w", "w", "w"]
        assert {name for name, _, _ in data} == {"x", "y"}

    def test_reduction_tree_is_balanced(self):
        exp = scalarize(lin(8))
        # depth of chain: mul -> 3 tree levels -> sub -> mul -> identity
        assert exp.dfg.depth() <= 1 + 3 + 1 + 1 + 1

    def test_budget_guard(self):
        with pytest.raises(ExpansionTooLarge):
            scalarize(lin(4), max_nodes=3)


class TestEquivalence:
    def test_scalar_outputs_match_macro(self):
        rng = np.random.default_rng(0)
        n = 5
        macro = lin(n)
        exp = scalarize(macro)
        x = rng.normal(size=n)
        y = 0.7
        w = rng.normal(size=n)

        macro_out = Interpreter(macro).run({"x": x, "y": np.float64(y), "w": w})

        feeds = {f"x[{i}]": np.float64(x[i]) for i in range(n)}
        feeds.update({f"w[{i}]": np.float64(w[i]) for i in range(n)})
        feeds["y"] = np.float64(y)
        scalar_out = Interpreter(exp.dfg).run(feeds)
        # The scalar graph exposes a representative element of g: g[0].
        np.testing.assert_allclose(scalar_out["g"], macro_out["g"][0], rtol=1e-12)

    def test_gradient_elements_flagged(self):
        exp = scalarize(lin(3))
        grads = exp.dfg.gradient_outputs()
        assert len(grads) == 3


class TestOddWidths:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 9])
    def test_tree_handles_any_width(self, n):
        exp = scalarize(lin(n))
        exp.dfg.validate()
        rng = np.random.default_rng(n)
        x = rng.normal(size=n)
        w = rng.normal(size=n)
        feeds = {f"x[{i}]": np.float64(x[i]) for i in range(n)}
        feeds.update({f"w[{i}]": np.float64(w[i]) for i in range(n)})
        feeds["y"] = np.float64(0.0)
        out = Interpreter(exp.dfg).run(feeds)
        np.testing.assert_allclose(out["g"], (w @ x) * x[0], rtol=1e-12)
