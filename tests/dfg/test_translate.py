"""Unit tests for the Translator (DSL AST -> DFG)."""

import pytest

from repro.dfg import (
    CONST,
    DATA,
    INTERIM,
    MODEL,
    TranslationError,
    translate,
)
from repro.dsl import parse

LINREG = """
mu = 0.1;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""

SVM = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
m = sum[i](w[i] * x[i]) * y;
g[i] = (m < 1) ? (-y * x[i]) : 0;

aggregator:
iterator j[0:nodes];
w[i] = sum[j](g[j, i]) / nodes;
"""

MLP = """
model_input x[n];
model_output y[c];
model w1[n, h];
model w2[h, c];
gradient g1[n, h];
gradient g2[h, c];
iterator i[0:n];
iterator j[0:h];
iterator k[0:c];
hid[j] = sigmoid(sum[i](w1[i, j] * x[i]));
out[k] = sigmoid(sum[j](w2[j, k] * hid[j]));
d2[k] = (out[k] - y[k]) * out[k] * (1 - out[k]);
g2[j, k] = d2[k] * hid[j];
d1[j] = sum[k](w2[j, k] * d2[k]) * hid[j] * (1 - hid[j]);
g1[i, j] = d1[j] * x[i];
"""


def lin(n=4):
    return translate(parse(LINREG), {"n": n})


class TestCategories:
    def test_data_inputs(self):
        dfg = lin().dfg
        names = {v.name for v in dfg.inputs_of_category(DATA)}
        assert names == {"x", "y"}

    def test_model_inputs(self):
        dfg = lin().dfg
        assert {v.name for v in dfg.inputs_of_category(MODEL)} == {"w"}

    def test_gradient_outputs(self):
        dfg = lin().dfg
        grads = dfg.gradient_outputs()
        assert len(grads) == 1
        assert grads[0].name == "g"
        assert grads[0].axes == ("i",)

    def test_interim_values_exist(self):
        dfg = lin().dfg
        interim = [v for v in dfg.values.values() if v.category == INTERIM]
        assert any(v.name == "s" for v in interim)

    def test_const_values(self):
        dfg = translate(parse(SVM), {"n": 4}).dfg
        consts = [v for v in dfg.values.values() if v.category == CONST]
        assert any(v.const_value == 1.0 for v in consts)


class TestShapes:
    def test_extents_bound(self):
        dfg = lin(7).dfg
        assert dfg.extents == {"i": 7}

    def test_vector_shape(self):
        dfg = lin(7).dfg
        x = next(v for v in dfg.values.values() if v.name == "x")
        assert dfg.shape(x) == (7,)

    def test_matrix_axes(self):
        t = translate(parse(MLP), {"n": 4, "h": 3, "c": 2})
        w1 = next(v for v in t.dfg.values.values() if v.name == "w1")
        assert w1.axes == ("i", "j")
        assert t.dfg.shape(w1) == (4, 3)

    def test_reduce_drops_axis(self):
        dfg = lin().dfg
        s = next(v for v in dfg.values.values() if v.name == "s")
        assert s.axes == ()


class TestStatistics:
    def test_data_words(self):
        # x[4] + y -> 5 words per sample
        assert lin(4).dfg.data_words() == 5

    def test_model_words(self):
        assert lin(4).dfg.model_words() == 4

    def test_gradient_words(self):
        assert lin(4).dfg.gradient_words() == 4

    def test_total_scalar_ops_linreg(self):
        dfg = lin(4).dfg
        # mul(4) + reduce(4) + sub(1) + final mul into g (4)
        assert dfg.total_scalar_ops() == 13

    def test_mlp_op_count_scales_with_topology(self):
        small = translate(parse(MLP), {"n": 4, "h": 3, "c": 2}).dfg
        big = translate(parse(MLP), {"n": 8, "h": 6, "c": 2}).dfg
        # Doubling n and h roughly quadruples the n*h terms.
        assert big.total_scalar_ops() > 2.5 * small.total_scalar_ops()

    def test_depth_positive(self):
        assert lin().dfg.depth() >= 4

    def test_nonlinear_detection(self):
        assert not lin().dfg.uses_nonlinear()
        mlp = translate(parse(MLP), {"n": 4, "h": 3, "c": 2}).dfg
        assert mlp.uses_nonlinear()


class TestAggregator:
    def test_default_is_mean(self):
        agg = lin().aggregator
        assert agg.kind == "mean"
        assert agg.pairs == (("w", "g"),)

    def test_explicit_mean(self):
        agg = translate(parse(SVM), {"n": 4}).aggregator
        assert agg.kind == "mean"
        assert agg.pairs == (("w", "g"),)

    def test_explicit_sum(self):
        source = SVM.replace(" / nodes;", ";")
        agg = translate(parse(source), {"n": 4}).aggregator
        assert agg.kind == "sum"

    def test_mlp_default_pairs_by_name(self):
        source = MLP.replace("gradient g1", "gradient g_w1").replace(
            "g1[i, j]", "g_w1[i, j]"
        ).replace("gradient g2", "gradient g_w2").replace(
            "g2[j, k]", "g_w2[j, k]"
        )
        agg = translate(parse(source), {"n": 4, "h": 3, "c": 2}).aggregator
        assert dict(agg.pairs) == {"w1": "g_w1", "w2": "g_w2"}

    def test_describe_mentions_kind(self):
        assert "mean" in translate(parse(SVM), {"n": 4}).aggregator.describe()


class TestMeta:
    def test_learning_rate(self):
        assert lin().learning_rate == pytest.approx(0.1)

    def test_default_minibatch(self):
        assert lin().minibatch == 10_000


class TestErrors:
    def test_unbound_dimension(self):
        with pytest.raises(Exception):
            translate(parse(LINREG), {})

    def test_inconsistent_subscripts(self):
        source = """
        model_input x[n];
        model w[n];
        gradient g[n];
        iterator i[0:n];
        iterator k[0:n];
        s = sum[i](w[i] * x[i]);
        g[k] = s * x[i];
        """
        with pytest.raises(TranslationError):
            translate(parse(source), {"n": 4})

    def test_extent_mismatch(self):
        source = """
        model_input x[n];
        model w[m];
        gradient g[n];
        iterator i[0:n];
        g[i] = w[i] * x[i];
        """
        with pytest.raises(TranslationError):
            translate(parse(source), {"n": 4, "m": 5})

    def test_reduce_over_constant_body(self):
        source = """
        model w[n];
        gradient g;
        iterator i[0:n];
        g = sum[i](3 * 2);
        """
        with pytest.raises(TranslationError):
            translate(parse(source), {"n": 4})

    def test_graph_validates(self):
        dfg = translate(parse(MLP), {"n": 4, "h": 3, "c": 2}).dfg
        dfg.validate()  # must not raise
