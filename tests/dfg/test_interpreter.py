"""Interpreter correctness against hand-written NumPy math."""

import numpy as np
import pytest

from repro.dfg import Interpreter, InterpreterError, translate
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""

SVM = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
m = sum[i](w[i] * x[i]) * y;
g[i] = (m < 1) ? (-y * x[i]) : 0;
"""

LOGREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
p = sigmoid(sum[i](w[i] * x[i]));
g[i] = (p - y) * x[i];
"""

MLP = """
model_input x[n];
model_output y[c];
model w1[n, h];
model w2[h, c];
gradient g1[n, h];
gradient g2[h, c];
iterator i[0:n];
iterator j[0:h];
iterator k[0:c];
hid[j] = sigmoid(sum[i](w1[i, j] * x[i]));
out[k] = sigmoid(sum[j](w2[j, k] * hid[j]));
d2[k] = (out[k] - y[k]) * out[k] * (1 - out[k]);
g2[j, k] = d2[k] * hid[j];
d1[j] = sum[k](w2[j, k] * d2[k]) * hid[j] * (1 - hid[j]);
g1[i, j] = d1[j] * x[i];
"""


def sigmoid(v):
    return 1.0 / (1.0 + np.exp(-v))


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestLinearRegression:
    def test_gradient_matches_closed_form(self, rng):
        n = 6
        t = translate(parse(LINREG), {"n": n})
        x = rng.normal(size=n)
        y = 1.5
        w = rng.normal(size=n)
        out = Interpreter(t.dfg).run({"x": x, "y": np.float64(y), "w": w})
        expected = (w @ x - y) * x
        np.testing.assert_allclose(out["g"], expected, rtol=1e-12)

    def test_batch_mode(self, rng):
        n, b = 5, 8
        t = translate(parse(LINREG), {"n": n})
        x = rng.normal(size=(b, n))
        y = rng.normal(size=(b,))
        w = rng.normal(size=n)
        out = Interpreter(t.dfg).run({"x": x, "y": y, "w": w}, batch=True)
        expected = (x @ w - y)[:, None] * x
        assert out["g"].shape == (b, n)
        np.testing.assert_allclose(out["g"], expected, rtol=1e-12)


class TestSvm:
    def test_hinge_active(self, rng):
        n = 4
        t = translate(parse(SVM), {"n": n})
        x = np.ones(n)
        w = np.zeros(n)  # margin 0 < 1 -> active
        out = Interpreter(t.dfg).run({"x": x, "y": np.float64(1.0), "w": w})
        np.testing.assert_allclose(out["g"], -x)

    def test_hinge_inactive(self):
        n = 4
        t = translate(parse(SVM), {"n": n})
        x = np.ones(n)
        w = np.ones(n)  # margin 4 > 1 -> zero gradient
        out = Interpreter(t.dfg).run({"x": x, "y": np.float64(1.0), "w": w})
        np.testing.assert_allclose(out["g"], np.zeros(n))

    def test_batch_mixed_margins(self, rng):
        n, b = 3, 10
        t = translate(parse(SVM), {"n": n})
        x = rng.normal(size=(b, n))
        y = np.sign(rng.normal(size=b))
        w = rng.normal(size=n)
        out = Interpreter(t.dfg).run({"x": x, "y": y, "w": w}, batch=True)
        margins = (x @ w) * y
        expected = np.where(
            (margins < 1)[:, None], -y[:, None] * x, 0.0
        )
        np.testing.assert_allclose(out["g"], expected, rtol=1e-12)


class TestLogisticRegression:
    def test_gradient(self, rng):
        n = 5
        t = translate(parse(LOGREG), {"n": n})
        x = rng.normal(size=n)
        w = rng.normal(size=n)
        y = 1.0
        out = Interpreter(t.dfg).run({"x": x, "y": np.float64(y), "w": w})
        expected = (sigmoid(w @ x) - y) * x
        np.testing.assert_allclose(out["g"], expected, rtol=1e-9)


class TestMlpBackprop:
    def test_matches_manual_backprop(self, rng):
        n, h, c = 6, 4, 3
        t = translate(parse(MLP), {"n": n, "h": h, "c": c})
        x = rng.normal(size=n)
        y = rng.random(size=c)
        w1 = rng.normal(size=(n, h)) * 0.3
        w2 = rng.normal(size=(h, c)) * 0.3
        out = Interpreter(t.dfg).run({"x": x, "y": y, "w1": w1, "w2": w2})

        hid = sigmoid(x @ w1)
        o = sigmoid(hid @ w2)
        d2 = (o - y) * o * (1 - o)
        g2 = np.outer(hid, d2)
        d1 = (w2 @ d2) * hid * (1 - hid)
        g1 = np.outer(x, d1)
        np.testing.assert_allclose(out["g2"], g2, rtol=1e-9)
        np.testing.assert_allclose(out["g1"], g1, rtol=1e-9)

    def test_batch_shapes(self, rng):
        n, h, c, b = 5, 4, 2, 7
        t = translate(parse(MLP), {"n": n, "h": h, "c": c})
        feeds = {
            "x": rng.normal(size=(b, n)),
            "y": rng.random(size=(b, c)),
            "w1": rng.normal(size=(n, h)),
            "w2": rng.normal(size=(h, c)),
        }
        out = Interpreter(t.dfg).run(feeds, batch=True)
        assert out["g1"].shape == (b, n, h)
        assert out["g2"].shape == (b, h, c)

    def test_batch_consistent_with_single(self, rng):
        n, h, c, b = 4, 3, 2, 5
        t = translate(parse(MLP), {"n": n, "h": h, "c": c})
        interp = Interpreter(t.dfg)
        x = rng.normal(size=(b, n))
        y = rng.random(size=(b, c))
        w1 = rng.normal(size=(n, h))
        w2 = rng.normal(size=(h, c))
        batched = interp.run({"x": x, "y": y, "w1": w1, "w2": w2}, batch=True)
        for s in range(b):
            single = interp.run({"x": x[s], "y": y[s], "w1": w1, "w2": w2})
            np.testing.assert_allclose(batched["g1"][s], single["g1"], rtol=1e-12)


class TestNonlinearOps:
    @pytest.mark.parametrize(
        "func,ref",
        [
            ("log", lambda v: np.log(v)),
            ("exp", lambda v: np.exp(v)),
            ("sqrt", lambda v: np.sqrt(v)),
            ("abs", lambda v: np.abs(v)),
            ("gaussian", lambda v: np.exp(-(v ** 2))),
        ],
    )
    def test_unary(self, func, ref, rng):
        source = f"""
        model_input x[n];
        model w[n];
        gradient g[n];
        iterator i[0:n];
        g[i] = {func}(x[i]) * w[i];
        """
        t = translate(parse(source), {"n": 5})
        x = rng.random(size=5) + 0.5
        w = np.ones(5)
        out = Interpreter(t.dfg).run({"x": x, "w": w})
        np.testing.assert_allclose(out["g"], ref(x), rtol=1e-9)

    def test_norm_reduce(self, rng):
        source = """
        model_input x[n];
        model w[n];
        gradient g;
        iterator i[0:n];
        g = norm[i](x[i]) + 0 * sum[i](w[i]);
        """
        t = translate(parse(source), {"n": 6})
        x = rng.normal(size=6)
        out = Interpreter(t.dfg).run({"x": x, "w": np.zeros(6)})
        np.testing.assert_allclose(out["g"], np.linalg.norm(x), rtol=1e-12)


class TestGradientsHelper:
    def test_gradients_filters_model_outputs(self, rng):
        t = translate(parse(LINREG), {"n": 3})
        out = Interpreter(t.dfg).gradients(
            {"x": np.ones(3), "y": np.float64(0), "w": np.ones(3)}
        )
        assert set(out) == {"g"}


class TestErrors:
    def test_missing_feed(self):
        t = translate(parse(LINREG), {"n": 3})
        with pytest.raises(InterpreterError):
            Interpreter(t.dfg).run({"x": np.ones(3), "y": np.float64(0)})

    def test_wrong_shape(self):
        t = translate(parse(LINREG), {"n": 3})
        with pytest.raises(InterpreterError):
            Interpreter(t.dfg).run(
                {"x": np.ones(4), "y": np.float64(0), "w": np.ones(3)}
            )

    def test_inconsistent_batch(self):
        t = translate(parse(LINREG), {"n": 3})
        with pytest.raises(InterpreterError):
            Interpreter(t.dfg).run(
                {"x": np.ones((4, 3)), "y": np.ones(5), "w": np.ones(3)},
                batch=True,
            )
