"""Tests for the design-choice ablation studies."""


from repro.bench import (
    ABLATIONS,
    ablate_aggregation_hierarchy,
    ablate_interconnect,
    ablate_mapping,
    ablate_multithreading,
    ablate_straggler,
    ablate_system_software,
)

FAST = ["mnist", "stock", "movielens", "tumor"]


class TestInterconnect:
    def test_flat_bus_never_faster(self):
        result = ablate_interconnect(FAST)
        for row in result.rows:
            assert row["flat_penalty_x"] >= 1.0

    def test_reduction_heavy_benchmarks_hurt_most(self):
        result = ablate_interconnect(["mnist", "stock"])
        rows = {r["name"]: r["flat_penalty_x"] for r in result.rows}
        # mnist's matvec reductions spread over many PEs.
        assert rows["mnist"] > 1.05


class TestMapping:
    def test_ops_first_never_faster(self):
        result = ablate_mapping(FAST)
        for row in result.rows:
            assert row["penalty_x"] >= 1.0
        assert result.summary["geomean_penalty_x"] > 1.2


class TestMultithreading:
    def test_compute_bound_benchmarks_gain(self):
        result = ablate_multithreading(["mnist"])
        assert result.rows[0]["gain_x"] > 1.25
        assert result.rows[0]["threads"] > 1

    def test_never_worse_than_single_thread(self):
        result = ablate_multithreading(FAST)
        for row in result.rows:
            assert row["gain_x"] >= 0.99


class TestHierarchy:
    def test_grouping_helps_large_models_at_scale(self):
        result = ablate_aggregation_hierarchy(["netflix"], nodes=16)
        assert result.rows[0]["flat_penalty_x"] > 1.1

    def test_small_models_insensitive(self):
        result = ablate_aggregation_hierarchy(["face"], nodes=16)
        assert result.rows[0]["flat_penalty_x"] < 1.5


class TestSystemSoftware:
    def test_generic_runtime_always_slower(self):
        result = ablate_system_software(FAST)
        for row in result.rows:
            assert row["generic_penalty_x"] > 1.0

    def test_penalty_larger_for_short_iterations(self):
        """Fixed per-iteration overheads hurt most when the iteration is
        short (stock streams its batch in milliseconds); wire-dominated
        iterations (netflix's 2.8 MB updates) hide them."""
        result = ablate_system_software(["netflix", "stock"])
        rows = {r["name"]: r["generic_penalty_x"] for r in result.rows}
        assert rows["stock"] > rows["netflix"]


class TestStraggler:
    def test_slowdown_tracks_factor_when_compute_bound(self):
        result = ablate_straggler(["mnist"], factors=(1.0, 4.0))
        row = result.rows[0]
        assert 2.0 < row["x4"] <= 4.5

    def test_monotone_in_factor(self):
        result = ablate_straggler(["stock"], factors=(1.0, 2.0, 4.0, 8.0))
        row = result.rows[0]
        assert row["x1"] <= row["x2"] <= row["x4"] <= row["x8"]


class TestSyncVsAsync:
    def test_async_absorbs_straggler(self):
        from repro.bench.ablations import ablate_sync_vs_async

        result = ablate_sync_vs_async(["stock"], straggler_factor=4.0)
        assert result.rows[0]["async_gain_x"] > 2.0

    def test_gain_grows_with_straggler(self):
        from repro.bench.ablations import ablate_sync_vs_async

        mild = ablate_sync_vs_async(["stock"], straggler_factor=2.0)
        severe = ablate_sync_vs_async(["stock"], straggler_factor=8.0)
        assert (
            severe.rows[0]["async_gain_x"] > mild.rows[0]["async_gain_x"]
        )


class TestScalingProjection:
    def test_streaming_benchmarks_keep_scaling(self):
        from repro.bench.ablations import project_scaling

        result = project_scaling(["stock"], node_counts=(4, 64))
        assert result.rows[0]["n64"] > 5

    def test_small_dataset_saturates(self):
        """mnist's 60k vectors cannot feed 256 nodes: aggregation
        overhead eventually wins and scaling reverses."""
        from repro.bench.ablations import project_scaling

        result = project_scaling(["mnist"], node_counts=(4, 16, 256))
        row = result.rows[0]
        assert row["n256"] < row["n16"]


class TestRegistry:
    def test_all_ablations_registered(self):
        assert set(ABLATIONS) == {
            "interconnect",
            "mapping",
            "multithreading",
            "aggregation_hierarchy",
            "system_software",
            "straggler",
            "sync_vs_async",
            "scaling_projection",
        }

    def test_all_return_summaries(self):
        for fn in ABLATIONS.values():
            result = fn(["stock"])
            assert result.summary
            assert result.rows
