"""ExperimentResult container and rendering tests."""

import pytest

from repro.bench import ExperimentResult, geomean


@pytest.fixture
def result():
    r = ExperimentResult(
        "Figure X",
        "A demonstration",
        ["name", "value", "note"],
        paper={"geomean_value": 2.0},
    )
    r.add_row(name="alpha", value=1.5, note="ok")
    r.add_row(name="beta", value=2_000_000.0, note="big")
    r.add_row(name="gamma", value=0.0042, note="small")
    r.summary["geomean_value"] = geomean([1.5, 2.0])
    return r


class TestContainer:
    def test_column_extraction(self, result):
        assert result.column("value") == [1.5, 2_000_000.0, 0.0042]

    def test_column_skips_missing(self, result):
        result.add_row(name="delta")
        assert len(result.column("value")) == 3


class TestRendering:
    def test_header_and_rows(self, result):
        text = result.to_table()
        lines = text.splitlines()
        assert lines[0] == "== Figure X: A demonstration =="
        assert "alpha" in text and "beta" in text

    def test_float_formatting(self, result):
        text = result.to_table()
        assert "1.50" in text  # normal floats: 2 decimals
        assert "2e+06" in text  # large: scientific
        assert "0.0042" in text  # small: scientific/compact

    def test_summary_with_paper_reference(self, result):
        text = result.to_table()
        assert "geomean_value:" in text
        assert "(paper: 2)" in text

    def test_columns_aligned(self, result):
        lines = [
            line for line in result.to_table().splitlines() if line.startswith(("n", "a", "b", "g"))
        ]
        header = next(
            line for line in result.to_table().splitlines() if line.startswith("name")
        )
        # Every data row is as wide as its content; the value column
        # starts at the same offset everywhere.
        offset = header.index("value")
        for row in result.rows:
            line = next(
                line for line in result.to_table().splitlines()
                if line.startswith(str(row["name"]))
            )
            assert line[: offset].strip() == str(row["name"])

    def test_empty_result_renders(self):
        r = ExperimentResult("Empty", "nothing", ["a", "b"])
        text = r.to_table()
        assert "Empty" in text
