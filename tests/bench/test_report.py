"""Report-writer tests."""

import pytest

from repro.bench.report import (
    generate_results,
    render_markdown,
    render_text,
    write_report,
)


class TestGenerate:
    def test_selected_experiments(self):
        results = generate_results(["table1", "figure17"])
        assert [r.experiment for r in results] == ["Table 1", "Figure 17"]

    def test_ablation_by_name(self):
        results = generate_results(["mapping"])
        assert results[0].experiment.startswith("Ablation")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            generate_results(["figure99"])


class TestRenderers:
    @pytest.fixture(scope="class")
    def results(self):
        return generate_results(["table1"])

    def test_text_contains_rows(self, results):
        text = render_text(results)
        assert "mnist" in text
        assert "Table 1" in text

    def test_markdown_table_syntax(self, results):
        md = render_markdown(results)
        assert md.startswith("## Table 1")
        assert "| name |" in md or "| name " in md
        assert "|---|" in md

    def test_markdown_summary_with_paper_values(self):
        md = render_markdown(generate_results(["figure17"]))
        assert "**geomean_speedup**" in md
        assert "(paper: 3.9)" in md


class TestWrite:
    def test_writes_text_file(self, tmp_path):
        out = write_report(tmp_path / "report.txt", ["table1"])
        assert out.exists()
        assert "mnist" in out.read_text()

    def test_writes_markdown_file(self, tmp_path):
        out = write_report(
            tmp_path / "report.md", ["figure17"], fmt="markdown"
        )
        assert out.read_text().startswith("## Figure 17")

    def test_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            write_report(tmp_path / "x", ["table1"], fmt="html")
