"""Shape tests for the experiment harness: the paper's qualitative claims
must hold in every regenerated figure."""

import pytest

from repro.bench import (
    EXPERIMENTS,
    table2,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    geomean,
    table1,
    table3,
)

FAST = ["mnist", "stock", "movielens", "tumor"]


class TestGeomean:
    def test_geomean_basics(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_geomean_skips_nonpositive(self):
        assert geomean([0.0, 4.0]) == pytest.approx(4.0)

    def test_geomean_empty_is_nan(self):
        import math

        assert math.isnan(geomean([]))


class TestTables:
    def test_table1_rows(self):
        t = table1()
        assert len(t.rows) == 10
        assert "model_kb" in t.columns

    def test_table1_loc_within_paper(self):
        for row in table1().rows:
            assert row["loc_ours"] <= row["loc_paper"]

    def test_table2_lists_five_platforms(self):
        t = table2()
        platforms = [r["platform"] for r in t.rows]
        assert platforms == [
            "Xeon E3-1275 v5", "Tesla K40c", "UltraScale+ VU9P",
            "P-ASIC-F", "P-ASIC-G",
        ]
        rows = {r["platform"]: r for r in t.rows}
        assert rows["P-ASIC-F"]["compute_units"] == 768
        assert rows["P-ASIC-G"]["compute_units"] == 2880
        assert rows["Tesla K40c"]["power_w"] == 235.0

    def test_table3_within_budget(self):
        for row in table3().rows:
            for col in ("luts_pct", "ffs_pct", "bram_pct", "dsp_pct"):
                assert 0 < row[col] <= 100.0

    def test_table3_compute_bound_use_more(self):
        rows = {r["name"]: r for r in table3().rows}
        assert rows["mnist"]["dsp_pct"] > 4 * rows["stock"]["dsp_pct"]

    def test_render_has_header(self):
        text = table1().to_table()
        assert "Table 1" in text
        assert "mnist" in text


class TestFigure7and8:
    @pytest.fixture(scope="class")
    def fig7(self):
        return figure7(FAST)

    def test_cosmic_beats_spark_everywhere(self, fig7):
        for row in fig7.rows:
            assert row["cosmic16x"] > row["spark16x"]

    def test_movielens_highest(self):
        full = figure7()
        by_name = {r["name"]: r["cosmic16x"] for r in full.rows}
        assert by_name["movielens"] == max(by_name.values())
        assert by_name["mnist"] == min(by_name.values())

    def test_average_speedup_in_paper_band(self):
        full = figure7()
        s16 = full.summary["geomean_cosmic16x"]
        assert 20 < s16 < 50  # paper: 33.8

    def test_figure8_cosmic_scales_better(self):
        fig8 = figure8()
        assert (
            fig8.summary["geomean_cosmic16x"]
            > fig8.summary["geomean_spark16x"]
        )
        assert 2.0 < fig8.summary["geomean_cosmic16x"] < 3.5  # paper: 2.7
        assert 1.3 < fig8.summary["geomean_spark16x"] < 2.2  # paper: 1.8

    def test_comm_heavy_benchmarks_scale_best(self):
        """Figure 8: the improvement gap is larger for stock-like
        benchmarks than for the compute-bound ones."""
        fig8 = figure8(["stock", "mnist"])
        rows = {r["name"]: r for r in fig8.rows}
        assert rows["stock"]["cosmic16x"] > rows["mnist"]["cosmic16x"]


class TestFigure9to11:
    def test_platform_ordering(self):
        fig9 = figure9(FAST)
        f = fig9.summary["geomean_pasic_f_x"]
        g = fig9.summary["geomean_pasic_g_x"]
        assert 1.0 <= f < g  # P-ASIC-G strictly better than P-ASIC-F

    def test_compute_gains_exceed_system_gains(self):
        """The paper's headline lesson: computation speedup does not
        translate to proportional system-wide improvement."""
        sys9 = figure9(FAST).summary["geomean_pasic_g_x"]
        comp10 = figure10(FAST).summary["geomean_pasic_g_x"]
        assert comp10 > 2 * sys9

    def test_gpu_wins_big_only_on_backprop(self):
        fig10 = figure10()
        rows = {r["name"]: r["gpu_x"] for r in fig10.rows}
        assert rows["mnist"] > 10
        assert rows["acoustic"] > 10
        assert rows["stock"] < 2
        assert rows["movielens"] < 2

    def test_mnist_gpu_near_paper_203(self):
        fig10 = figure10(["mnist"])
        assert 10 < fig10.rows[0]["gpu_x"] < 40  # paper: 20.3

    def test_perf_per_watt_favours_accelerators(self):
        fig11 = figure11(FAST)
        assert fig11.summary["geomean_fpga_x"] > 1.5
        assert (
            fig11.summary["geomean_pasic_f_x"]
            > fig11.summary["geomean_fpga_x"]
        )


class TestFigure12to14:
    def test_gap_narrows_with_minibatch(self):
        """Figure 12: Spark's overheads amortise at large b, so the
        CoSMIC/Spark gap shrinks from b=500 to b=100,000."""
        fig12 = figure12(FAST)
        assert (
            fig12.summary["geomean_gap_b500"]
            > fig12.summary["geomean_gap_b100000"]
        )

    def test_compute_fraction_rises(self):
        fig13 = figure13(FAST)
        assert fig13.summary["mean_frac_b500"] < 0.5
        assert fig13.summary["mean_frac_b100000"] > 0.8

    def test_fraction_monotone_per_benchmark(self):
        fig13 = figure13(["stock"], minibatches=(500, 10_000, 100_000))
        row = fig13.rows[0]
        assert (
            row["compute_frac_b500"]
            < row["compute_frac_b10000"]
            < row["compute_frac_b100000"]
        )

    def test_breakdown_both_components_speed_up(self):
        fig14 = figure14(FAST)
        assert fig14.summary["geomean_fpga_x"] > 1
        assert fig14.summary["geomean_syssw_x"] > 1


class TestFigure15and16:
    @pytest.fixture(scope="class")
    def fig15(self):
        return figure15(
            FAST, pe_counts=(192, 768, 3072), bandwidth_x=(0.5, 1.0, 2.0)
        )

    def test_compute_bound_scale_with_pes(self, fig15):
        rows = {r["name"]: r for r in fig15.rows}
        assert rows["mnist"]["pe3072"] > 3
        assert rows["movielens"]["pe3072"] > 3

    def test_bandwidth_bound_flat_with_pes(self, fig15):
        rows = {r["name"]: r for r in fig15.rows}
        assert rows["stock"]["pe3072"] < 1.2
        assert rows["tumor"]["pe3072"] < 1.2

    def test_bandwidth_bound_scale_with_bandwidth(self, fig15):
        rows = {r["name"]: r for r in fig15.rows}
        assert rows["stock"]["bw2.0x"] > 3
        assert rows["mnist"]["bw2.0x"] < rows["stock"]["bw2.0x"]

    def test_dse_multithreading_helps(self):
        fig16 = figure16(["stock"])
        rows = {
            r["point"]: r["speedup"]
            for r in fig16.rows
            if not str(r["point"]).startswith("best")
        }
        assert rows["T2xR1"] > rows["T1xR1"]

    def test_dse_compute_bound_peaks_at_full_fabric(self):
        fig16 = figure16(["mnist"])
        best = [r for r in fig16.rows if str(r["point"]).startswith("best")]
        label = best[0]["point"]
        # T3xR16 = 48 rows: the whole fabric.
        assert "R16" in label or "R48" in label or "R32" in label


class TestFigure17:
    def test_cosmic_beats_tabla(self):
        fig17 = figure17(FAST)
        for row in fig17.rows:
            assert row["speedup"] > 1.0

    def test_average_in_band(self):
        fig17 = figure17()
        assert 1.5 < fig17.summary["geomean_speedup"] < 8.0  # paper: 3.9


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3",
            "figure7", "figure8", "figure9", "figure10", "figure11",
            "figure12", "figure13", "figure14", "figure15", "figure16",
            "figure17",
        }
