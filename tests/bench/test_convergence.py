"""Tests for the convergence-vs-minibatch study."""

import pytest

from repro.bench.convergence import convergence_study


@pytest.fixture(scope="module")
def study():
    return convergence_study(
        names=("stock",), batch_sizes=(8, 64), samples=2048, epochs=3
    )


class TestConvergenceStudy:
    def test_rows_per_batch_size(self, study):
        assert len(study.rows) == 2

    def test_smaller_batch_more_iterations(self, study):
        by_batch = {r["batch"]: r for r in study.rows}
        assert by_batch[8]["iterations"] > by_batch[64]["iterations"]

    def test_smaller_batch_better_loss(self, study):
        """More updates per sample budget -> lower loss (the statistical-
        efficiency cost of large mini-batches the paper cites)."""
        by_batch = {r["batch"]: r for r in study.rows}
        assert by_batch[8]["final_loss"] <= by_batch[64]["final_loss"]

    def test_simulated_time_positive(self, study):
        for row in study.rows:
            assert row["sim_seconds"] > 0

    def test_summary_ratio(self, study):
        key = "stock_loss_ratio_largest_vs_smallest_b"
        assert study.summary[key] >= 1.0
