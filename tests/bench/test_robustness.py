"""Calibration robustness: the paper's qualitative conclusions must not
hinge on the exact values of the free parameters.

The baseline models have a handful of calibrated constants
(`repro/baselines/calibration.py`). These tests perturb them by +/-25%
and check that every *ordering* claim the reproduction rests on still
holds — if a conclusion flipped under such perturbations it would be an
artifact of tuning, not of the modelled systems.
"""

import pytest

from repro.baselines import calibration as cal


@pytest.fixture(params=[0.75, 1.25], ids=["minus25pct", "plus25pct"])
def perturbed(request, monkeypatch):
    """Scale the Spark free parameters by the factor under test."""
    factor = request.param
    monkeypatch.setattr(
        cal, "SPARK_JOB_OVERHEAD_S", cal.SPARK_JOB_OVERHEAD_S * factor
    )
    monkeypatch.setattr(
        cal, "SPARK_TASK_OVERHEAD_S", cal.SPARK_TASK_OVERHEAD_S * factor
    )
    monkeypatch.setattr(
        cal,
        "SPARK_PER_SAMPLE_OVERHEAD_S",
        {k: v * factor for k, v in cal.SPARK_PER_SAMPLE_OVERHEAD_S.items()},
    )
    monkeypatch.setattr(
        cal,
        "SPARK_EFFICIENCY",
        {k: min(0.95, v / factor) for k, v in cal.SPARK_EFFICIENCY.items()},
    )
    return factor


class TestFigure7Robust:
    def test_cosmic_still_wins_everywhere(self, perturbed):
        from repro.bench import figure7

        result = figure7(["mnist", "stock", "movielens"])
        for row in result.rows:
            assert row["cosmic16x"] > row["spark16x"]

    def test_recommender_still_leads(self, perturbed):
        from repro.bench import figure7

        result = figure7(["mnist", "stock", "movielens"])
        by_name = {r["name"]: r["cosmic16x"] for r in result.rows}
        assert by_name["movielens"] > by_name["stock"] > by_name["mnist"]


class TestFigure8Robust:
    def test_cosmic_still_scales_better(self, perturbed):
        from repro.bench import figure8

        result = figure8(["stock", "tumor", "face"])
        assert (
            result.summary["geomean_cosmic16x"]
            > result.summary["geomean_spark16x"]
        )


class TestFigure12Robust:
    def test_gap_still_narrows_with_minibatch(self, perturbed):
        from repro.bench import figure12

        result = figure12(["stock", "tumor"])
        assert (
            result.summary["geomean_gap_b500"]
            > result.summary["geomean_gap_b100000"]
        )


class TestGpuRobust:
    @pytest.fixture(params=[0.75, 1.25], ids=["minus", "plus"])
    def gpu_perturbed(self, request, monkeypatch):
        factor = request.param
        monkeypatch.setattr(
            cal,
            "GPU_EFFICIENCY",
            {k: min(0.9, v * factor) for k, v in cal.GPU_EFFICIENCY.items()},
        )
        return factor

    def test_gpu_still_wins_only_on_backprop(self, gpu_perturbed):
        from repro.bench import figure10

        result = figure10(["mnist", "stock", "movielens"])
        rows = {r["name"]: r["gpu_x"] for r in result.rows}
        assert rows["mnist"] > 5
        assert rows["stock"] < 2.5
        assert rows["movielens"] < 2.5
