"""Sweep executor: ordering, modes, error propagation."""

import os

import pytest

from repro.perf.parallel import (
    SweepExecutor,
    default_executor,
    set_default_executor,
)


class TestSweepExecutor:
    def test_serial_preserves_order(self):
        ex = SweepExecutor("serial")
        assert ex.map(lambda x: x * x, range(10)) == [
            x * x for x in range(10)
        ]

    def test_thread_preserves_order(self):
        ex = SweepExecutor("thread", max_workers=4)
        items = list(range(50))
        assert ex.map(lambda x: x * 3, items) == [x * 3 for x in items]

    def test_thread_matches_serial(self):
        def fn(x):
            return sum(i * x for i in range(100))
        items = list(range(20))
        serial = SweepExecutor("serial").map(fn, items)
        threaded = SweepExecutor("thread", max_workers=3).map(fn, items)
        assert serial == threaded

    def test_empty_and_single(self):
        ex = SweepExecutor("thread")
        assert ex.map(lambda x: x, []) == []
        assert ex.map(lambda x: x + 1, [41]) == [42]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor("fibers")

    def test_auto_resolves_by_cpu_count(self):
        expected = "thread" if (os.cpu_count() or 1) > 1 else "serial"
        assert SweepExecutor("auto").resolved_mode() == expected

    def test_exceptions_propagate(self):
        def boom(x):
            if x == 3:
                raise RuntimeError("point 3 failed")
            return x

        with pytest.raises(RuntimeError, match="point 3"):
            SweepExecutor("thread", max_workers=2).map(boom, range(6))

    def test_starmap(self):
        ex = SweepExecutor("serial")
        assert ex.starmap(lambda a, b: a + b, [(1, 2), (3, 4)]) == [3, 7]


class TestDefaultExecutor:
    def test_set_and_restore(self):
        original = default_executor()
        pinned = SweepExecutor("serial")
        previous = set_default_executor(pinned)
        try:
            assert previous is original
            assert default_executor() is pinned
        finally:
            set_default_executor(original)
        assert default_executor() is original
