"""Perf-regression harness: payloads, comparator, CLI gate."""

import json


from repro.bench.perf import (
    PerfReport,
    compare_to_baseline,
    load_report,
    measure_figure_sweep,
    measure_quorum_sweep,
    measure_stages,
    render_report,
    write_report,
)
from repro.cli import main
from repro.perf.cache import get_cache


def _report(stages=None, sweep=None, quorum=None):
    return PerfReport(
        stages=stages
        or {"stock": {"translate": 0.01, "plan": 0.02, "compile": 0.03}},
        sweep=sweep
        or {
            "serial_uncached_s": 0.2,
            "cold_cache_s": 0.1,
            "warm_cache_s": 0.02,
            "cold_speedup": 2.0,
            "warm_speedup": 10.0,
            "rows_identical": True,
        },
        quorum=quorum
        or {
            "points": 4,
            "fractions": [0.5, 1.0],
            "deadlines_s": [0.001, 0.02],
            "event_driven_s": 0.02,
            "replay_s": 0.01,
            "speedup": 2.0,
            "rows_identical": True,
        },
        quick=True,
    )


class TestComparator:
    def test_within_tolerance_passes(self):
        assert compare_to_baseline(_report(), _report()) == []

    def test_regressed_stage_flagged(self):
        slow = _report(
            stages={"stock": {"plan": 0.1, "translate": 0.01}}
        )
        problems = compare_to_baseline(slow, _report(), tolerance=2.0)
        assert any("stock/plan" in p for p in problems)

    def test_sub_floor_stages_never_flagged(self):
        base = _report(stages={"stock": {"translate": 0.0001}})
        slow = _report(stages={"stock": {"translate": 0.004}})
        assert compare_to_baseline(slow, base) == []

    def test_unknown_bench_ignored(self):
        current = _report(stages={"brand-new": {"plan": 9.9}})
        assert compare_to_baseline(current, _report()) == []

    def test_collapsed_speedup_flagged(self):
        bad_sweep = dict(_report().sweep, warm_speedup=1.1)
        problems = compare_to_baseline(
            _report(sweep=bad_sweep), _report()
        )
        assert any("speedup" in p for p in problems)

    def test_divergent_rows_flagged(self):
        bad_sweep = dict(_report().sweep, rows_identical=False)
        problems = compare_to_baseline(
            _report(sweep=bad_sweep), _report()
        )
        assert any("identical" in p for p in problems)

    def test_divergent_quorum_rows_flagged(self):
        bad = dict(_report().quorum, rows_identical=False)
        problems = compare_to_baseline(_report(quorum=bad), _report())
        assert any("quorum" in p for p in problems)

    def test_missing_quorum_leg_tolerated(self):
        """Baselines written before the quorum leg existed (and current
        runs without it) must not be flagged for the absence alone."""
        old = _report()
        old.quorum = {}
        assert compare_to_baseline(old, _report()) == []
        assert compare_to_baseline(_report(), old) == []


class TestPayloadRoundTrip:
    def test_write_and_load(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        write_report(_report(), path)
        loaded = load_report(path)
        assert loaded.stages == _report().stages
        assert loaded.sweep == _report().sweep
        assert loaded.quorum == _report().quorum
        assert json.loads(path.read_text())["format_version"] == 1

    def test_pre_quorum_payload_loads(self):
        payload = _report().to_dict()
        del payload["quorum_sweep"]
        assert PerfReport.from_dict(payload).quorum == {}

    def test_render_is_textual(self):
        text = render_report(_report())
        assert "stock" in text
        assert "warm cache" in text
        assert "quorum replay" in text


class TestHarness:
    def test_measure_stages_shape(self):
        stages = measure_stages(["stock"], repeats=1)
        assert set(stages) == {"stock"}
        assert set(stages["stock"]) == {
            "translate", "plan", "compile", "simulate", "epoch",
        }
        assert all(v >= 0 for v in stages["stock"].values())

    def test_figure_sweep_rows_identical(self):
        get_cache().clear()
        sweep = measure_figure_sweep(quick=True)
        assert sweep["rows_identical"] is True
        assert sweep["serial_uncached_s"] > 0
        assert sweep["warm_speedup"] > 1.0

    def test_quorum_sweep_rows_identical(self):
        get_cache().clear()
        quorum = measure_quorum_sweep(quick=True)
        assert quorum["rows_identical"] is True
        assert quorum["points"] == len(quorum["fractions"]) * len(
            quorum["deadlines_s"]
        )
        assert quorum["event_driven_s"] > 0
        assert quorum["replay_s"] > 0
        assert quorum["speedup"] > 0


class TestCli:
    def test_perf_quick_creates_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "BENCH_perf.json"
        code = main(
            [
                "perf", "--quick", "--bench", "stock",
                "--baseline", str(baseline), "--update-baseline",
            ]
        )
        assert code == 0
        assert baseline.is_file()
        # Second run gates against it and passes (same machine).
        code = main(
            [
                "perf", "--quick", "--bench", "stock",
                "--baseline", str(baseline), "--tolerance", "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "within" in out
