"""Queue-backed distributed sweeps: coordinator, workers, chaos."""

import multiprocessing
import socket
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.perf.distributed import (
    QueueCoordinator,
    SweepTaskError,
    SweepTimeout,
    run_worker,
    set_default_coordinator,
)
from repro.perf.parallel import SweepExecutor
from repro.perf.tasks import sweep_task, task_call

@sweep_task("tests.distributed.double")
def _double(item):
    return item * 2


@sweep_task("tests.distributed.flaky")
def _flaky(item, marker_dir):
    """Fails the first time item 2 is attempted, succeeds afterwards."""
    marker = Path(marker_dir) / f"flaky-{item}"
    if item == 2 and not marker.exists():
        marker.write_text("seen")
        raise RuntimeError("transient failure (first attempt)")
    return item + 100


@sweep_task("tests.distributed.always_fails")
def _always_fails(item):
    raise RuntimeError(f"permanent failure for {item}")


@sweep_task("tests.distributed.block_once")
def _block_once(item, marker_dir):
    """Item 2 hangs on its first attempt (the chaos victim's task); any
    retry sees the marker and returns immediately."""
    marker = Path(marker_dir) / f"claimed-{item}"
    if item == 2 and not marker.exists():
        marker.write_text("claimed")
        time.sleep(60)
    return item * 3


_NESTED_COORD = None


@sweep_task("tests.distributed.nested")
def _nested(item):
    """Calls back into the coordinator mid-sweep (a nested DSE shape)."""
    rows = _NESTED_COORD.map(task_call(_double), [item, item + 1])
    return sum(rows)


def _start_thread_worker(coordinator, max_tasks=None):
    """Serve the coordinator from a daemon thread in this process."""
    host, port = coordinator.address
    box = {}

    def serve():
        box["rc"] = run_worker(
            host,
            port,
            coordinator.authkey,
            max_tasks=max_tasks,
            log=lambda msg: None,
        )

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return thread, box


def _wait_for(predicate, timeout_s=15.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


@pytest.fixture
def coordinator():
    c = QueueCoordinator(lease_s=30.0, poll_s=0.02, rescue_idle_s=0.2)
    c.start()
    yield c
    c.shutdown()


class TestCoordinator:
    def test_map_preserves_input_order(self, coordinator):
        for _ in range(2):
            _start_thread_worker(coordinator)
        got = coordinator.map(task_call(_double), range(8), timeout_s=30)
        assert got == [i * 2 for i in range(8)]
        summary = coordinator.last_summary
        assert summary.tasks == 8
        assert summary.attempts == 8
        assert summary.requeued == 0
        assert sum(w.completed for w in summary.workers) == 8

    def test_empty_sweep_returns_immediately(self, coordinator):
        assert coordinator.map(task_call(_double), []) == []

    def test_worker_reported_failure_is_retried(self, coordinator, tmp_path):
        _start_thread_worker(coordinator)
        got = coordinator.map(
            task_call(_flaky, str(tmp_path)), range(4), timeout_s=30
        )
        assert got == [100, 101, 102, 103]
        summary = coordinator.last_summary
        assert summary.attempts == 5  # item 2 ran twice
        assert sum(w.failed for w in summary.workers) == 1

    def test_permanent_failure_raises_with_traceback(self):
        c = QueueCoordinator(max_task_retries=1, poll_s=0.02)
        c.start()
        _start_thread_worker(c)
        try:
            with pytest.raises(SweepTaskError, match="permanent failure"):
                c.map(task_call(_always_fails), [7], timeout_s=30)
        finally:
            c.shutdown()

    def test_unpicklable_callable_rejected_up_front(self, coordinator):
        with pytest.raises(TypeError, match="picklable"):
            coordinator.map(lambda item: item, [1, 2])

    def test_timeout_without_workers(self):
        c = QueueCoordinator(poll_s=0.02)
        c.start()
        try:
            with pytest.raises(SweepTimeout, match="0/2 tasks done"):
                c.map(task_call(_double), [1, 2], timeout_s=0.3)
        finally:
            c.shutdown()

    def test_reentrant_map_falls_back_to_serial(self, coordinator):
        global _NESTED_COORD
        _NESTED_COORD = coordinator
        _start_thread_worker(coordinator)
        try:
            got = coordinator.map(task_call(_nested), [1, 5], timeout_s=30)
        finally:
            _NESTED_COORD = None
        assert got == [1 * 2 + 2 * 2, 5 * 2 + 6 * 2]

    def test_first_result_wins_and_duplicates_counted(self, coordinator):
        """Two workers racing the same task: one result lands, the
        straggler's duplicate is dropped and counted."""
        box = {}

        def run_map():
            box["rows"] = coordinator.map(
                task_call(_double), [10, 11], timeout_s=30
            )

        mapper = threading.Thread(target=run_map, daemon=True)
        mapper.start()
        first = coordinator._work.get(timeout=10)
        second = coordinator._work.get(timeout=10)
        # Both phantom workers answer the first task; the duplicate is
        # queued (and thus processed) before the sweep-completing result.
        for wid, payload in (("w1", 111), ("w2", 222)):
            coordinator._events.put(
                ("result", wid, first.sweep, first.task, first.attempt,
                 0.01, payload)
            )
        coordinator._events.put(
            ("result", "w1", second.sweep, second.task, second.attempt,
             0.01, 333)
        )
        mapper.join(timeout=10)
        assert not mapper.is_alive()
        assert box["rows"] == [111, 333]
        assert coordinator.last_summary.duplicates == 1


class TestWorker:
    def test_authkey_mismatch_returns_3(self, coordinator):
        host, port = coordinator.address
        rc = run_worker(host, port, b"wrong-key", log=lambda msg: None)
        assert rc == 3

    def test_unreachable_coordinator_returns_2(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, port = probe.getsockname()
        probe.close()
        rc = run_worker("127.0.0.1", port, b"any", log=lambda msg: None)
        assert rc == 2

    def test_max_tasks_exits_cleanly_after_serving(self, coordinator):
        thread, box = _start_thread_worker(coordinator, max_tasks=2)
        got = coordinator.map(task_call(_double), [3, 4], timeout_s=30)
        assert got == [6, 8]
        thread.join(timeout=10)
        assert box["rc"] == 0


class TestExecutorIntegration:
    def test_queue_executor_uses_injected_coordinator(self, coordinator):
        _start_thread_worker(coordinator)
        executor = SweepExecutor("queue", coordinator=coordinator)
        assert executor.map(task_call(_double), [1, 2, 3]) == [2, 4, 6]

    def test_default_coordinator_swap_returns_previous(self, coordinator):
        previous = set_default_coordinator(coordinator)
        try:
            _start_thread_worker(coordinator)
            got = SweepExecutor("queue").map(task_call(_double), [4, 5])
        finally:
            assert set_default_coordinator(previous) is coordinator
        assert got == [8, 10]


def _worker_process_main(host, port, authkey):
    sys.exit(run_worker(host, port, authkey, log=lambda msg: None))


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="spawn workers would not inherit this test module's tasks",
)
class TestChaos:
    def _spawn_worker(self, coordinator):
        host, port = coordinator.address
        proc = multiprocessing.Process(
            target=_worker_process_main,
            args=(host, port, coordinator.authkey),
            daemon=True,
        )
        proc.start()
        return proc

    def test_killed_worker_mid_sweep_recovers_identically(self, tmp_path):
        """SIGKILL the worker holding a lease: the coordinator re-enqueues
        its task, a replacement finishes the sweep, and the rows match the
        serial reference — without the coordinator hanging."""
        c = QueueCoordinator(
            lease_s=0.8, poll_s=0.02, rescue_idle_s=0.3
        )
        c.start()
        call = task_call(_block_once, str(tmp_path))
        items = list(range(5))
        box = {}

        def run_map():
            box["rows"] = c.map(call, items, timeout_s=60)

        mapper = threading.Thread(target=run_map, daemon=True)
        mapper.start()
        victim = self._spawn_worker(c)
        rescuer = None
        try:
            marker = tmp_path / "claimed-2"
            assert _wait_for(marker.exists), "victim never claimed task 2"
            assert _wait_for(lambda: 2 in c.current_claims())
            victim.kill()
            victim.join(timeout=10)
            rescuer = self._spawn_worker(c)
            mapper.join(timeout=60)
            assert not mapper.is_alive(), "sweep hung after worker death"
            assert box["rows"] == [i * 3 for i in items]
            assert c.last_summary.requeued >= 1
            assert c.last_summary.attempts > len(items)
        finally:
            c.shutdown()
            for proc in (victim, rescuer):
                if proc is not None and proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)

    def test_authkey_mismatch_rejected_across_processes(self):
        c = QueueCoordinator(authkey=b"right-key")
        c.start()
        host, port = c.address
        try:
            proc = multiprocessing.Process(
                target=_worker_process_main,
                args=(host, port, b"wrong-key"),
                daemon=True,
            )
            proc.start()
            proc.join(timeout=15)
            assert proc.exitcode == 3
        finally:
            c.shutdown()
