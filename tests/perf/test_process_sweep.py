"""Sweep task registry: picklable figure sweeps for process pools."""

import multiprocessing
import os
import pickle

import pytest

from repro.perf.parallel import SweepExecutor, set_default_executor
from repro.perf.tasks import (
    registered_tasks,
    resolve,
    sweep_task,
    task_call,
)


@sweep_task("tests.process_sweep.scale")
def _scale(item, factor):
    return item * factor


class TestRegistry:
    def test_decorator_registers_and_tags(self):
        assert _scale.sweep_task_name == "tests.process_sweep.scale"
        assert registered_tasks()["tests.process_sweep.scale"] is _scale

    def test_reregistering_same_function_is_idempotent(self):
        assert sweep_task("tests.process_sweep.scale")(_scale) is _scale

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            @sweep_task("tests.process_sweep.scale")
            def other(item):  # pragma: no cover - must not register
                return item

    def test_unknown_task_rejected(self):
        with pytest.raises(KeyError, match="unknown sweep task"):
            resolve("tests.process_sweep.no_such_task")

    def test_task_call_requires_registration(self):
        with pytest.raises(TypeError, match="not a registered sweep task"):
            task_call(lambda item: item)

    def test_figure_tasks_registered_on_import(self):
        import repro.bench.figures  # noqa: F401  (registers on import)

        names = registered_tasks()
        for figure in ("epoch_grid", "figure9", "figure13", "figure16"):
            assert f"figures.{figure}" in names


class TestTaskCall:
    def test_call_applies_bound_args(self):
        call = task_call(_scale, 3)
        assert call(7) == 21

    def test_pickle_roundtrip(self):
        call = task_call(_scale, 5)
        clone = pickle.loads(pickle.dumps(call))
        assert clone == call
        assert clone(4) == 20

    def test_works_under_every_executor_mode(self):
        call = task_call(_scale, 2)
        serial = SweepExecutor("serial").map(call, [1, 2, 3])
        threaded = SweepExecutor("thread", max_workers=2).map(call, [1, 2, 3])
        assert serial == threaded == [2, 4, 6]


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="spawn workers would not inherit this test module's tasks",
)
class TestProcessPool:
    def test_task_call_runs_in_process_pool(self):
        call = task_call(_scale, 10)
        got = SweepExecutor("process", max_workers=1).map(call, [1, 2, 3])
        assert got == [10, 20, 30]

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="process-parallel figure sweep needs more than one CPU",
    )
    def test_figure_sweep_identical_across_executors(self):
        from repro.bench.figures import figure13

        serial = figure13(names=["stock", "texture"])
        previous = set_default_executor(
            SweepExecutor("process", max_workers=2)
        )
        try:
            parallel = figure13(names=["stock", "texture"])
        finally:
            set_default_executor(previous)
        assert parallel.rows == serial.rows
        assert parallel.summary == serial.summary
