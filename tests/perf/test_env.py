"""Centralized REPRO_* parsing: typed accessors, validation errors."""

import pytest

from repro.perf import env
from repro.perf.env import EnvError


class TestPrimitives:
    def test_string_default_when_unset_or_empty(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_VAR", raising=False)
        assert env.env_string("REPRO_TEST_VAR", "fallback") == "fallback"
        monkeypatch.setenv("REPRO_TEST_VAR", "")
        assert env.env_string("REPRO_TEST_VAR", "fallback") == "fallback"
        monkeypatch.setenv("REPRO_TEST_VAR", "value")
        assert env.env_string("REPRO_TEST_VAR") == "value"

    def test_int_rejects_non_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "three")
        with pytest.raises(EnvError, match="REPRO_TEST_VAR"):
            env.env_int("REPRO_TEST_VAR")

    def test_int_enforces_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "0")
        with pytest.raises(EnvError, match=">= 1"):
            env.env_int("REPRO_TEST_VAR", minimum=1)

    def test_float_rejects_junk(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "fast")
        with pytest.raises(EnvError, match="not a number"):
            env.env_float("REPRO_TEST_VAR")

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("False", False), ("no", False), ("off", False),
        ("", False),
    ])
    def test_flag_accepted_spellings(self, monkeypatch, raw, expected):
        monkeypatch.setenv("REPRO_TEST_VAR", raw)
        assert env.env_flag("REPRO_TEST_VAR", not expected) is expected

    def test_flag_rejects_junk(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "maybe")
        with pytest.raises(EnvError, match="not a boolean"):
            env.env_flag("REPRO_TEST_VAR", True)

    def test_choice_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_VAR", "warp")
        with pytest.raises(EnvError, match="not a valid choice"):
            env.env_choice("REPRO_TEST_VAR", "a", ("a", "b"))


class TestAddress:
    def test_parses_host_and_port(self):
        assert env.parse_address("10.0.0.7:8765") == ("10.0.0.7", 8765)

    @pytest.mark.parametrize("raw", [
        "8765", ":8765", "host:", "host:not-a-port", "host:70000",
    ])
    def test_rejects_malformed(self, raw):
        with pytest.raises(EnvError):
            env.parse_address(raw, "REPRO_SWEEP_ADDR")

    def test_default_sweep_address_is_loopback_ephemeral(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_ADDR", raising=False)
        assert env.sweep_address() == ("127.0.0.1", 0)


class TestSweepKnobs:
    def test_mode_default_and_validation(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_MODE", raising=False)
        assert env.sweep_mode() == "auto"
        monkeypatch.setenv("REPRO_SWEEP_MODE", "queue")
        assert env.sweep_mode() == "queue"
        monkeypatch.setenv("REPRO_SWEEP_MODE", "cluster")
        with pytest.raises(EnvError, match="REPRO_SWEEP_MODE"):
            env.sweep_mode()

    def test_jobs_must_be_positive_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "three")
        with pytest.raises(EnvError, match="REPRO_SWEEP_JOBS"):
            env.sweep_jobs()
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "0")
        with pytest.raises(EnvError, match=">= 1"):
            env.sweep_jobs()
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "4")
        assert env.sweep_jobs() == 4

    def test_lease_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_LEASE_S", "0.01")
        with pytest.raises(EnvError, match="REPRO_SWEEP_LEASE_S"):
            env.sweep_lease_s()
        monkeypatch.delenv("REPRO_SWEEP_LEASE_S", raising=False)
        assert env.sweep_lease_s() == 30.0

    def test_summary_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_SUMMARY", raising=False)
        assert env.sweep_summary() is True
        monkeypatch.setenv("REPRO_SWEEP_SUMMARY", "0")
        assert env.sweep_summary() is False


class TestAuthkey:
    def test_default_is_well_known_loopback_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_AUTHKEY", raising=False)
        monkeypatch.delenv("REPRO_SWEEP_AUTHKEY_FILE", raising=False)
        assert env.sweep_authkey() == b"cosmic-sweep"

    def test_env_value_used(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_AUTHKEY", "sekrit")
        monkeypatch.delenv("REPRO_SWEEP_AUTHKEY_FILE", raising=False)
        assert env.sweep_authkey() == b"sekrit"

    def test_file_wins_over_env(self, monkeypatch, tmp_path):
        keyfile = tmp_path / "authkey"
        keyfile.write_text("from-file\nsecond line ignored\n")
        monkeypatch.setenv("REPRO_SWEEP_AUTHKEY", "from-env")
        monkeypatch.setenv("REPRO_SWEEP_AUTHKEY_FILE", str(keyfile))
        assert env.sweep_authkey() == b"from-file"

    def test_empty_or_missing_file_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.write_text("\n")
        with pytest.raises(EnvError, match="is empty"):
            env.read_authkey_file(str(empty))
        with pytest.raises(EnvError, match="cannot read"):
            env.read_authkey_file(str(tmp_path / "no-such-file"))


class TestCacheKnobs:
    def test_disable_flag_inverts(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DISABLE", raising=False)
        assert env.cache_enabled() is True
        monkeypatch.setenv("REPRO_CACHE_DISABLE", "1")
        assert env.cache_enabled() is False

    def test_max_bytes_validated(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "lots")
        with pytest.raises(EnvError, match="REPRO_CACHE_MAX_BYTES"):
            env.cache_max_bytes()


class TestLazyDefaultExecutor:
    def test_bad_mode_surfaces_as_env_error(self, monkeypatch):
        import repro.perf.parallel as parallel

        monkeypatch.setenv("REPRO_SWEEP_MODE", "bogus")
        monkeypatch.setattr(parallel, "_DEFAULT", None)
        with pytest.raises(EnvError, match="REPRO_SWEEP_MODE"):
            parallel.default_executor()

    def test_env_mode_and_jobs_applied(self, monkeypatch):
        import repro.perf.parallel as parallel

        monkeypatch.setenv("REPRO_SWEEP_MODE", "thread")
        monkeypatch.setenv("REPRO_SWEEP_JOBS", "3")
        monkeypatch.setattr(parallel, "_DEFAULT", None)
        executor = parallel.default_executor()
        assert executor.mode == "thread"
        assert executor.max_workers == 3
