"""Disk-tier LRU eviction, usage accounting, and the cache CLI."""

import os

import pytest

from repro.cli import main as cli_main
from repro.perf.cache import ArtifactCache


def store(cache, key, payload_bytes=1_000, kind="plan"):
    cache.get_or_compute(kind, key, lambda: b"x" * payload_bytes)
    return cache._disk_path(kind, key)


def age(path, seconds_ago):
    """Stage an entry's mtime into the past (the LRU ordering input)."""
    t = os.stat(path).st_mtime - seconds_ago
    os.utime(path, (t, t))


class TestDiskAccounting:
    def test_disk_entries_and_usage(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        store(cache, "a", 1_000, kind="plan")
        store(cache, "b", 2_000, kind="compile")
        entries = {(e.kind, e.key) for e in cache.disk_entries()}
        assert entries == {("plan", "a"), ("compile", "b")}
        usage = cache.disk_usage()
        assert usage["plan"][0] == 1 and usage["compile"][0] == 1
        assert usage["plan"][1] >= 1_000
        assert usage["compile"][1] >= 2_000

    def test_sidecar_bytes_counted(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.get_or_compute(
            "plan", "k", lambda: b"x" * 100, sidecar=lambda a: {"n": len(a)}
        )
        (entry,) = cache.disk_entries()
        assert entry.bytes > (tmp_path / "plan" / "k.pkl").stat().st_size

    def test_no_disk_dir_is_empty(self):
        cache = ArtifactCache()
        assert cache.disk_entries() == []
        assert cache.disk_usage() == {}


class TestLruEviction:
    def test_store_evicts_oldest_first(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path, max_disk_bytes=2_500)
        a = store(cache, "a")
        b = store(cache, "b")
        age(a, 100)
        age(b, 50)
        c = store(cache, "c")  # pushes the tier over the cap
        assert not a.exists()  # oldest went first
        assert b.exists()
        assert c.exists()  # keep_latest: the triggering store survives
        assert cache.stats.evictions == 1

    def test_disk_hit_refreshes_recency(self, tmp_path):
        writer = ArtifactCache(disk_dir=tmp_path)
        a = store(writer, "a")
        b = store(writer, "b")
        age(a, 100)
        age(b, 50)
        # A fresh instance (new process stand-in) reads "a" from disk,
        # which must promote it over the untouched "b".
        reader = ArtifactCache(disk_dir=tmp_path)
        reader.get_or_compute("plan", "a", lambda: pytest.fail("disk miss"))
        assert reader.stats.disk_hits == 1
        evicted = reader.prune_disk(max_bytes=1_500)
        assert [e.key for e in evicted] == ["b"]
        assert a.exists() and not b.exists()

    def test_prune_zero_clears_everything(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        store(cache, "a")
        cache.get_or_compute(
            "plan", "b", lambda: b"y" * 10, sidecar=lambda a: {"ok": 1}
        )
        evicted = cache.prune_disk(max_bytes=0)
        assert {e.key for e in evicted} == {"a", "b"}
        assert cache.disk_entries() == []
        assert not (tmp_path / "plan" / "b.json").exists()
        assert cache.stats.evictions == 2

    def test_no_cap_is_a_noop(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)  # max_disk_bytes=None
        store(cache, "a")
        assert cache.prune_disk() == []
        assert len(cache.disk_entries()) == 1

    def test_under_cap_evicts_nothing(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path, max_disk_bytes=10**9)
        store(cache, "a")
        store(cache, "b")
        assert cache.prune_disk() == []
        assert len(cache.disk_entries()) == 2

    def test_memory_tier_unaffected_by_eviction(self, tmp_path):
        """Eviction reclaims disk; in-memory artifacts stay live. With a
        zero cap only the latest store survives on disk (keep_latest
        protects the entry whose store triggered the prune)."""
        cache = ArtifactCache(disk_dir=tmp_path, max_disk_bytes=0)
        a = store(cache, "a")
        age(a, 100)
        store(cache, "b")
        assert [e.key for e in cache.disk_entries()] == ["b"]
        for key in ("a", "b"):
            cache.get_or_compute(
                "plan", key, lambda: pytest.fail("memory tier lost an entry")
            )

    def test_env_cap_configures_global_cache(self, tmp_path, monkeypatch):
        import importlib

        import repro.perf.cache as cache_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        reloaded = importlib.reload(cache_mod)
        try:
            assert reloaded.get_cache().max_disk_bytes == 12345
            assert reloaded.get_cache().disk_dir == tmp_path
        finally:
            monkeypatch.delenv("REPRO_CACHE_DIR")
            monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
            importlib.reload(cache_mod)


class TestCacheCli:
    def test_stats_lists_usage(self, tmp_path, capsys):
        cache = ArtifactCache(disk_dir=tmp_path)
        store(cache, "a")
        assert cli_main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "plan" in out and str(tmp_path) in out

    def test_prune_all_clears(self, tmp_path, capsys):
        cache = ArtifactCache(disk_dir=tmp_path)
        store(cache, "a")
        store(cache, "b")
        assert cli_main(["cache", "prune", "--dir", str(tmp_path), "--all"]) == 0
        assert "evicted 2 entries" in capsys.readouterr().out
        assert cache.disk_entries() == []

    def test_prune_max_bytes(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        a = store(cache, "a")
        b = store(cache, "b")
        age(a, 100)
        code = cli_main(
            ["cache", "prune", "--dir", str(tmp_path), "--max-bytes", "1500"]
        )
        assert code == 0
        assert not a.exists() and b.exists()

    def test_prune_without_cap_errors(self, tmp_path, capsys):
        code = cli_main(["cache", "prune", "--dir", str(tmp_path)])
        assert code == 2
        assert "no size cap" in capsys.readouterr().out

    def test_no_disk_cache_message(self, capsys, monkeypatch):
        import repro.perf.cache as cache_mod

        monkeypatch.setattr(
            cache_mod, "_GLOBAL", ArtifactCache(disk_dir=None)
        )
        assert cli_main(["cache", "stats"]) == 0
        assert "no disk cache" in capsys.readouterr().out
