"""Artifact cache: fingerprint stability, tiering, persistence."""

import dataclasses

import pytest

from repro.dfg.translate import translate
from repro.dsl import parse
from repro.hw.spec import PASIC_F, XILINX_VU9P
from repro.ml.benchmarks import benchmark
from repro.perf.cache import (
    ArtifactCache,
    cache_disabled,
    cached_translate,
    dfg_fingerprint,
    fingerprint,
    get_cache,
    plan_from_dict,
    plan_to_dict,
)
from repro.planner import Planner
from repro.planner.estimator import CostParams


@pytest.fixture(autouse=True)
def fresh_cache():
    get_cache().clear()
    yield
    get_cache().clear()


class TestFingerprint:
    def test_deterministic(self):
        assert fingerprint("a", 1, 2.5) == fingerprint("a", 1, 2.5)

    def test_order_sensitive_for_sequences(self):
        assert fingerprint([1, 2]) != fingerprint([2, 1])

    def test_mapping_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_type_distinguished(self):
        # 1 and 1.0 hash Python-equal as dict keys but are different
        # artifacts' inputs; the float path reprs them apart.
        assert fingerprint(1) != fingerprint(1.0)

    def test_dataclasses_fingerprint_by_content(self):
        assert fingerprint(CostParams()) == fingerprint(CostParams())
        tweaked = dataclasses.replace(CostParams(), bus_hop_cycles=99)
        assert fingerprint(CostParams()) != fingerprint(tweaked)

    def test_chip_specs_distinguished(self):
        assert fingerprint(XILINX_VU9P) != fingerprint(PASIC_F)

    def test_unhashable_types_rejected(self):
        with pytest.raises(TypeError):
            fingerprint(object())

    def test_dfg_fingerprint_tracks_content(self):
        lin = "model w; model_input x; gradient g; g = w * x;"
        other = "model w; model_input x; gradient g; g = w + x;"
        a = translate(parse(lin), {})
        b = translate(parse(lin), {})
        c = translate(parse(other), {})
        assert dfg_fingerprint(a.dfg) == dfg_fingerprint(b.dfg)
        assert dfg_fingerprint(a.dfg) != dfg_fingerprint(c.dfg)

    def test_dfg_fingerprint_memoized(self):
        dfg = translate(
            parse("model w; model_input x; gradient g; g = w * x;"), {}
        ).dfg
        first = dfg_fingerprint(dfg)
        assert dfg._perf_fingerprint == first
        assert dfg_fingerprint(dfg) == first


class TestArtifactCache:
    def test_miss_then_hit(self):
        cache = ArtifactCache()
        calls = []
        def build():
            return calls.append(1) or "artifact"
        assert cache.get_or_compute("plan", "k", build) == "artifact"
        assert cache.get_or_compute("plan", "k", build) == "artifact"
        assert len(calls) == 1
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_kinds_are_separate_namespaces(self):
        cache = ArtifactCache()
        cache.get_or_compute("plan", "k", lambda: "p")
        assert cache.get_or_compute("compile", "k", lambda: "c") == "c"

    def test_disabled_always_computes(self):
        cache = ArtifactCache(enabled=False)
        calls = []
        def build():
            return calls.append(1) or "x"
        cache.get_or_compute("plan", "k", build)
        cache.get_or_compute("plan", "k", build)
        assert len(calls) == 2
        assert len(cache) == 0

    def test_clear_resets(self):
        cache = ArtifactCache()
        cache.get_or_compute("plan", "k", lambda: "x")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_disk_roundtrip(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.get_or_compute("plan", "k", lambda: {"deep": [1, 2]})
        assert (tmp_path / "plan" / "k.pkl").is_file()
        # A second cache instance (fresh process stand-in) hits disk.
        other = ArtifactCache(disk_dir=tmp_path)
        got = other.get_or_compute(
            "plan", "k", lambda: pytest.fail("must hit disk")
        )
        assert got == {"deep": [1, 2]}
        assert other.stats.disk_hits == 1

    def test_translations_stay_memory_only(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.get_or_compute("translate", "k", lambda: "t")
        assert not (tmp_path / "translate").exists()

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        (tmp_path / "plan").mkdir()
        (tmp_path / "plan" / "k.pkl").write_bytes(b"not a pickle")
        assert cache.get_or_compute("plan", "k", lambda: "fresh") == "fresh"

    def test_validate_rejects_stale_disk_entry(self, tmp_path):
        """A disk payload the caller's ``validate`` hook rejects is
        deleted (pickle and sidecar) and recomputed — stale artifact
        formats never reach a caller."""
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.get_or_compute(
            "plan",
            "k",
            lambda: {"version": 1},
            sidecar=lambda a: {"version": a["version"]},
        )
        assert (tmp_path / "plan" / "k.pkl").is_file()
        assert (tmp_path / "plan" / "k.json").is_file()
        fresh = ArtifactCache(disk_dir=tmp_path)
        got = fresh.get_or_compute(
            "plan",
            "k",
            lambda: {"version": 2},
            sidecar=lambda a: {"version": a["version"]},
            validate=lambda a: a["version"] == 2,
        )
        assert got == {"version": 2}
        assert fresh.stats.invalidated == 1
        assert fresh.stats.disk_hits == 0
        assert fresh.stats.misses == 1
        # the stale files were replaced by the recomputed artifact
        import json
        import pickle

        with (tmp_path / "plan" / "k.pkl").open("rb") as fh:
            assert pickle.load(fh) == {"version": 2}
        sidecar = json.loads((tmp_path / "plan" / "k.json").read_text())
        assert sidecar["version"] == 2

    def test_validate_accepts_good_disk_entry(self, tmp_path):
        cache = ArtifactCache(disk_dir=tmp_path)
        cache.get_or_compute("plan", "k", lambda: {"version": 2})
        fresh = ArtifactCache(disk_dir=tmp_path)
        got = fresh.get_or_compute(
            "plan",
            "k",
            lambda: pytest.fail("valid entry must hit disk"),
            validate=lambda a: a["version"] == 2,
        )
        assert got == {"version": 2}
        assert fresh.stats.disk_hits == 1
        assert fresh.stats.invalidated == 0

    def test_validate_trusts_memory_tier(self):
        """Memory entries were produced (or already validated) by this
        process; the hook only guards disk loads."""
        cache = ArtifactCache()
        cache.get_or_compute("plan", "k", lambda: "good")
        got = cache.get_or_compute(
            "plan",
            "k",
            lambda: pytest.fail("memory hit expected"),
            validate=lambda a: pytest.fail("validate ran on memory tier"),
        )
        assert got == "good"

    def test_cache_disabled_context(self):
        cache = get_cache()
        cache.get_or_compute("translate", "k", lambda: "x")
        with cache_disabled():
            assert not cache.enabled
            assert (
                cache.get_or_compute("translate", "k", lambda: "y") == "y"
            )
        assert cache.enabled


class TestCachedEntryPoints:
    def test_cached_translate_returns_same_object(self):
        src = benchmark("stock").source()
        dims = benchmark("stock").dims
        assert cached_translate(src, dims) is cached_translate(src, dims)

    def test_cached_translate_distinguishes_bindings(self):
        src = benchmark("stock").source()
        a = cached_translate(src, {"n": 8})
        b = cached_translate(src, {"n": 16})
        assert a is not b
        assert a.dfg.extents != b.dfg.extents

    def test_planner_memoizes_across_instances(self):
        bench = benchmark("stock")
        dfg = bench.translate().dfg
        first = Planner(XILINX_VU9P).plan(dfg, 10_000, bench.density)
        second = Planner(XILINX_VU9P).plan(dfg, 10_000, bench.density)
        assert first is second

    def test_plan_dict_roundtrip(self):
        bench = benchmark("stock")
        plan = Planner(XILINX_VU9P).plan(
            bench.translate().dfg, 10_000, bench.density
        )
        rebuilt = plan_from_dict(plan_to_dict(plan))
        assert rebuilt == plan
        assert rebuilt.seconds_for(10_000) == plan.seconds_for(10_000)

    def test_cluster_iteration_memoized_and_transparent(self):
        from repro.runtime import ClusterSimulator, ClusterSpec

        sim = ClusterSimulator(
            ClusterSpec(nodes=8, groups=2),
            lambda node_id, samples: 1e-6 * samples,
            update_bytes=100_000,
        )
        cache = get_cache()
        cached = sim.iteration(8_000)
        again = sim.iteration(8_000)
        assert cache.stats.hits >= 1
        with cache_disabled():
            uncached = sim.iteration(8_000)
        assert cached == again == uncached
        # Hits hand out private list fields, not the cached instance's.
        again.contributors.append(-1)
        assert sim.iteration(8_000).contributors == cached.contributors

    def test_stateful_compute_fn_defeats_memo(self):
        from repro.runtime import ClusterSimulator, ClusterSpec

        import itertools

        ticks = itertools.count(1)
        sim = ClusterSimulator(
            ClusterSpec(nodes=4),
            lambda node_id, samples: 1e-3 * next(ticks),
            update_bytes=100_000,
        )
        first = sim.iteration(4_000)
        second = sim.iteration(4_000)
        # Different injected compute times -> different keys -> a fresh
        # simulation, not a stale hit.
        assert first.total_s != second.total_s

    def test_plan_disk_persistence(self, tmp_path):
        cache = get_cache()
        cache.disk_dir = tmp_path
        try:
            bench = benchmark("stock")
            plan = Planner(XILINX_VU9P).plan(
                bench.translate().dfg, 10_000, bench.density
            )
            pickles = list((tmp_path / "plan").glob("*.pkl"))
            sidecars = list((tmp_path / "plan").glob("*.json"))
            assert len(pickles) == 1 and len(sidecars) == 1
            # Fresh memory tier: the plan must come back from disk, equal.
            cache.clear()
            again = Planner(XILINX_VU9P).plan(
                bench.translate().dfg, 10_000, bench.density
            )
            assert again == plan
            assert cache.stats.disk_hits == 1
        finally:
            cache.disk_dir = None
