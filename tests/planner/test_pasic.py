"""P-ASIC budget-planning tests, pinned to Table 2's design points."""

import pytest

from repro.ml import benchmark
from repro.planner.pasic import (
    DEFAULT_BUFFER_BYTES,
    PasicBudget,
    area_mm2,
    buffer_bytes_for,
    plan_pasic,
    power_w,
)


class TestCalibration:
    def test_pasic_f_point(self):
        """Table 2: 768 PEs at 29 mm^2 and 11 W."""
        assert area_mm2(768) == pytest.approx(29.0, abs=0.01)
        assert power_w(768) == pytest.approx(11.0, abs=0.01)

    def test_pasic_g_point(self):
        """Table 2: 2880 PEs at 105 mm^2 and 37 W."""
        assert area_mm2(2880) == pytest.approx(105.0, abs=0.01)
        assert power_w(2880) == pytest.approx(37.0, abs=0.01)

    def test_bigger_buffers_cost_area(self):
        assert area_mm2(768, buffer_bytes=8192) > area_mm2(768)


class TestBudgetSolve:
    def test_recovers_pasic_f_from_its_budget(self):
        plan = plan_pasic(PasicBudget(area_mm2=29.0, power_w=11.0))
        assert plan.pe_count == pytest.approx(768, abs=16)

    def test_recovers_pasic_g_from_its_budget(self):
        plan = plan_pasic(
            PasicBudget(area_mm2=105.0, power_w=37.0, columns=64)
        )
        assert plan.pe_count == pytest.approx(2880, abs=64)

    def test_area_limited(self):
        plan = plan_pasic(PasicBudget(area_mm2=30.0, power_w=100.0))
        assert plan.limited_by == "area"
        assert plan.area_mm2 <= 30.0

    def test_power_limited(self):
        plan = plan_pasic(PasicBudget(area_mm2=500.0, power_w=12.0))
        assert plan.limited_by == "power"
        assert plan.power_w <= 12.0

    def test_row_granularity(self):
        plan = plan_pasic(PasicBudget(area_mm2=40.0, power_w=20.0, columns=16))
        assert plan.pe_count % 16 == 0

    def test_impossible_budgets_rejected(self):
        with pytest.raises(ValueError):
            PasicBudget(area_mm2=1.0, power_w=11.0)
        with pytest.raises(ValueError):
            PasicBudget(area_mm2=29.0, power_w=0.5)


class TestBufferSizing:
    def test_default_for_small_benchmarks(self):
        dfgs = [benchmark("face").translate().dfg]
        assert buffer_bytes_for(dfgs) >= DEFAULT_BUFFER_BYTES

    def test_big_model_grows_buffers(self):
        small = buffer_bytes_for([benchmark("face").translate().dfg])
        big = buffer_bytes_for([benchmark("mnist").translate().dfg])
        assert big > small

    def test_power_of_two(self):
        size = buffer_bytes_for([benchmark("mnist").translate().dfg])
        assert size & (size - 1) == 0


class TestChipMaterialisation:
    def test_chip_is_usable_by_the_stack(self):
        from repro.planner import Planner

        budget = PasicBudget(area_mm2=50.0, power_w=25.0)
        plan = plan_pasic(budget)
        chip = plan.chip(budget, name="demo-asic")
        assert chip.max_pes == plan.pe_count
        accel = Planner(chip).plan(
            benchmark("stock").translate().dfg, 10_000
        )
        assert accel.samples_per_second > 0

    def test_bigger_budget_more_throughput_on_compute_bound(self):
        from repro.planner import Planner

        dfg = benchmark("mnist").translate().dfg
        small_b = PasicBudget(area_mm2=35.0, power_w=40.0)
        large_b = PasicBudget(area_mm2=105.0, power_w=40.0)
        small = plan_pasic(small_b).chip(small_b)
        large = plan_pasic(large_b).chip(large_b)
        t_small = Planner(small).plan(dfg, 10_000).samples_per_second
        t_large = Planner(large).plan(dfg, 10_000).samples_per_second
        assert t_large > t_small
