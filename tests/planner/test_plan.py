"""Tests for the Planner's design-space exploration."""

import pytest

from repro.dfg import translate
from repro.dsl import parse
from repro.hw import PASIC_F, PASIC_G, XILINX_VU9P
from repro.planner import DesignPoint, Planner

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""

MLP = """
model_input x[n];
model_output y[c];
model w1[n, h];
model w2[h, c];
gradient g1[n, h];
gradient g2[h, c];
iterator i[0:n];
iterator j[0:h];
iterator k[0:c];
hid[j] = sigmoid(sum[i](w1[i, j] * x[i]));
out[k] = sigmoid(sum[j](w2[j, k] * hid[j]));
d2[k] = (out[k] - y[k]) * out[k] * (1 - out[k]);
g2[j, k] = d2[k] * hid[j];
d1[j] = sum[k](w2[j, k] * d2[k]) * hid[j] * (1 - hid[j]);
g1[i, j] = d1[j] * x[i];
"""


def lin(n=8000):
    return translate(parse(LINREG), {"n": n}).dfg


def mlp():
    return translate(parse(MLP), {"n": 784, "h": 784, "c": 10}).dfg


class TestChipDerivation:
    def test_vu9p_columns_from_bandwidth(self):
        # 9.6 GB/s / (4 B * 150 MHz) = 16 words per cycle.
        assert XILINX_VU9P.columns == 16

    def test_vu9p_row_max(self):
        assert XILINX_VU9P.row_max == 48

    def test_vu9p_max_pes_match_pasic_f(self):
        assert XILINX_VU9P.columns * XILINX_VU9P.row_max == PASIC_F.max_pes

    def test_pasic_geometry_is_frozen(self):
        assert PASIC_F.columns == 16
        assert PASIC_G.columns == 64

    def test_scaled_override(self):
        chip = XILINX_VU9P.scaled(bandwidth_bytes=19.2e9)
        assert chip.columns == 32


class TestDesignSpace:
    def test_vu9p_has_27_design_points(self):
        """Section 4.4: "in UltraScale+, the design space is limited to
        27 design points"."""
        planner = Planner(XILINX_VU9P)
        assert len(planner.design_space(lin(100), 10_000)) == 27

    def test_points_respect_row_budget(self):
        planner = Planner(XILINX_VU9P)
        for point in planner.design_space(lin(), 10_000):
            assert point.total_rows <= XILINX_VU9P.row_max

    def test_minibatch_limits_threads(self):
        planner = Planner(XILINX_VU9P)
        for point in planner.design_space(lin(), minibatch=2):
            assert point.threads <= 2

    def test_storage_limits_threads(self):
        planner = Planner(XILINX_VU9P)
        t_max = planner.max_threads(mlp(), 10_000)
        assert 1 <= t_max <= 4  # ~2.4 MB model replica per thread

    def test_labels(self):
        assert DesignPoint(4, 2, 16).label() == "T4xR2"
        assert DesignPoint(4, 2, 16).total_pes == 128


class TestPlanSelection:
    def test_compute_bound_mlp_uses_all_rows(self):
        plan = Planner(XILINX_VU9P).plan(mlp(), 10_000)
        assert plan.design.total_rows == XILINX_VU9P.row_max
        assert plan.compute_bound

    def test_bandwidth_bound_linreg_stays_small(self):
        plan = Planner(XILINX_VU9P).plan(lin(), 10_000)
        assert not plan.compute_bound
        assert plan.design.total_pes < XILINX_VU9P.max_pes / 2

    def test_plan_is_best_in_sweep(self):
        planner = Planner(XILINX_VU9P)
        dfg = mlp()
        plan = planner.plan(dfg, 10_000)
        sweep = planner.sweep(dfg, 10_000)
        best_time = min(p.seconds_for(10_000) for p in sweep.values())
        assert plan.seconds_for(10_000) <= best_time * 1.011

    def test_multithreading_helps_at_fixed_rows(self):
        """Figure 16: for a fixed rows-per-thread, more threads win."""
        planner = Planner(XILINX_VU9P)
        dfg = lin(2000)
        sweep = planner.sweep(dfg, 10_000)
        t1 = sweep["T1xR1"].seconds_for(10_000)
        t8 = sweep["T8xR1"].seconds_for(10_000)
        assert t8 < t1

    def test_pasic_g_outperforms_fpga_on_compute_bound(self):
        dfg = mlp()
        fpga = Planner(XILINX_VU9P).plan(dfg, 10_000)
        asic = Planner(PASIC_G).plan(dfg, 10_000)
        assert asic.samples_per_second > 5 * fpga.samples_per_second

    def test_pasic_f_no_gain_on_bandwidth_bound(self):
        dfg = lin()
        fpga = Planner(XILINX_VU9P).plan(dfg, 10_000)
        asic = Planner(PASIC_F).plan(dfg, 10_000)
        assert asic.samples_per_second == pytest.approx(
            fpga.samples_per_second, rel=0.25
        )


class TestTiming:
    def test_seconds_scale_with_samples(self):
        plan = Planner(XILINX_VU9P).plan(lin(), 10_000)
        assert plan.seconds_for(20_000) > 1.8 * plan.seconds_for(10_000)

    def test_zero_samples_only_model_io(self):
        plan = Planner(XILINX_VU9P).plan(lin(), 10_000)
        assert plan.seconds_for(0) == pytest.approx(plan.model_io_seconds())

    def test_model_io_positive(self):
        plan = Planner(XILINX_VU9P).plan(lin(), 10_000)
        assert plan.model_io_seconds() > 0


class TestResources:
    def test_utilization_within_chip(self):
        for dfg in (lin(), mlp()):
            plan = Planner(XILINX_VU9P).plan(dfg, 10_000)
            util = plan.resources().utilization(XILINX_VU9P)
            for key, value in util.items():
                assert 0 < value <= 1.0, (key, value)

    def test_compute_bound_uses_more_dsp(self):
        """Table 3: utilization highest for compute-bound benchmarks."""
        small = Planner(XILINX_VU9P).plan(lin(), 10_000)
        big = Planner(XILINX_VU9P).plan(mlp(), 10_000)
        assert (
            big.resources().dsp_slices > 2 * small.resources().dsp_slices
        )

    def test_bram_dominated_by_buffers(self):
        plan = Planner(XILINX_VU9P).plan(mlp(), 10_000)
        util = plan.resources().utilization(XILINX_VU9P)
        assert util["bram"] > 0.5
