"""Tests for the performance estimation tool."""

import pytest

from repro.dfg import translate
from repro.dsl import parse
from repro.planner import (
    FLAT,
    TREE,
    CostParams,
    effective_data_words,
    estimate_thread_cycles,
)

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""


def lin_dfg(n=1024):
    return translate(parse(LINREG), {"n": n}).dfg


class TestScaling:
    def test_more_pes_fewer_cycles(self):
        dfg = lin_dfg()
        small = estimate_thread_cycles(dfg, n_pe=16, rows=1)
        big = estimate_thread_cycles(dfg, n_pe=256, rows=16)
        assert big.cycles < small.cycles

    def test_saturates_with_enough_pes(self):
        dfg = lin_dfg(64)
        huge = estimate_thread_cycles(dfg, n_pe=65536, rows=48)
        huger = estimate_thread_cycles(dfg, n_pe=262144, rows=48)
        assert huger.cycles == huge.cycles
        assert huge.cycles >= huge.critical_path

    def test_work_scales_with_problem_size(self):
        small = estimate_thread_cycles(lin_dfg(512), n_pe=16, rows=1)
        big = estimate_thread_cycles(lin_dfg(2048), n_pe=16, rows=1)
        assert big.work_cycles == pytest.approx(4 * small.work_cycles, rel=0.05)

    def test_single_pe_allowed(self):
        est = estimate_thread_cycles(lin_dfg(64), n_pe=1, rows=1)
        assert est.work_cycles >= 3 * 64  # mul + add-tree + final mul

    def test_zero_pes_rejected(self):
        with pytest.raises(ValueError):
            estimate_thread_cycles(lin_dfg(64), n_pe=0, rows=1)


class TestInterconnect:
    def test_tree_beats_flat_at_scale(self):
        """The structural reason CoSMIC outperforms TABLA (Figure 17)."""
        dfg = lin_dfg(4096)
        tree = estimate_thread_cycles(dfg, 512, 32, CostParams(interconnect=TREE))
        flat = estimate_thread_cycles(dfg, 512, 32, CostParams(interconnect=FLAT))
        assert flat.comm_cycles > 5 * tree.comm_cycles

    def test_gap_grows_with_pes(self):
        dfg = lin_dfg(4096)

        def gap(n_pe, rows):
            tree = estimate_thread_cycles(dfg, n_pe, rows, CostParams(interconnect=TREE))
            flat = estimate_thread_cycles(dfg, n_pe, rows, CostParams(interconnect=FLAT))
            return flat.cycles / tree.cycles

        assert gap(512, 32) > gap(32, 2)

    def test_ops_first_mapping_adds_traffic(self):
        dfg = lin_dfg(4096)
        data_first = estimate_thread_cycles(
            dfg, 256, 16, CostParams(mapping="data_first")
        )
        ops_first = estimate_thread_cycles(
            dfg, 256, 16, CostParams(mapping="ops_first")
        )
        assert ops_first.comm_cycles > data_first.comm_cycles


class TestDensity:
    def test_sparse_input_reduces_work(self):
        dfg = lin_dfg(4096)
        dense = estimate_thread_cycles(dfg, 64, 4)
        sparse = estimate_thread_cycles(dfg, 64, 4, density={"x": 0.01})
        assert sparse.work_cycles < 0.2 * dense.work_cycles

    def test_density_only_affects_gated_nodes(self):
        dfg = lin_dfg(4096)
        est = estimate_thread_cycles(dfg, 64, 4, density={"x": 0.0})
        # The reduction itself still emits its (dense) scalar output.
        assert est.cycles > 0

    def test_effective_data_words_dense(self):
        dfg = lin_dfg(100)
        assert effective_data_words(dfg) == 101  # x[100] + y

    def test_effective_data_words_sparse(self):
        dfg = lin_dfg(1000)
        words = effective_data_words(dfg, {"x": 0.002})
        # 2 * 1000 * 0.002 = 4 index/value words + dense y
        assert words == pytest.approx(5.0)

    def test_sparse_never_exceeds_dense(self):
        dfg = lin_dfg(100)
        assert effective_data_words(dfg, {"x": 0.9}) <= 101


class TestBreakdown:
    def test_per_node_sums_to_total(self):
        dfg = lin_dfg(256)
        est = estimate_thread_cycles(dfg, 64, 4)
        assert sum(est.per_node.values()) == pytest.approx(
            est.work_cycles + est.comm_cycles
        )

    def test_cycles_property_takes_max(self):
        dfg = lin_dfg(64)
        est = estimate_thread_cycles(dfg, 8192, 48)
        assert est.cycles >= est.work_cycles + est.comm_cycles
        assert est.cycles >= est.critical_path
