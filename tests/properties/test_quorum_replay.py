"""Differential property suite for quorum-window replay (format 2).

The contract: for any healthy cluster and any :class:`QuorumConfig`,
replaying the recorded :class:`ScheduleTrace` with the quorum rule
evaluated on the booked arrival arrays is *bit-identical* to the full
event-driven probe/withhold simulation — every field of
:class:`IterationTiming`, including ``contributors`` and ``dropped``,
compared with ``==``, no tolerances. The edge cases the window rule can
hit are pinned deterministically: drop-none (``fraction=1.0`` degenerates
to the barrier), drop-all-but-K (a tiny deadline), and a deadline landing
exactly on an arrival.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.runtime.cluster as cluster_mod
from repro.perf.cache import cache_disabled, get_cache
from repro.runtime import (
    ClusterSimulator,
    ClusterSpec,
    IterationTiming,
    NetworkConfig,
    QuorumConfig,
    record_schedule,
    replay_disabled,
    replay_iteration,
)

network_configs = st.builds(
    NetworkConfig,
    bandwidth_bps=st.sampled_from([1e8, 1e9, 1e10]),
    latency_s=st.sampled_from([0.0, 5e-6, 50e-6]),
    per_message_overhead_s=st.sampled_from([0.0, 37e-6, 200e-6]),
    per_chunk_overhead_s=st.sampled_from([0.0, 5e-6]),
    chunk_bytes=st.sampled_from([4096, 65536, 100_000]),
)

update_sizes = st.sampled_from([7, 4_096, 65_536, 100_000, 333_333])

# Fractions cross the K=1, intermediate-K, and K=N regimes; deadlines
# range from certainly-dropping (0.1 ms) to certainly-waiting (50 ms,
# above the largest compute spread the cluster strategy can draw).
quorum_rules = st.builds(
    QuorumConfig,
    fraction=st.sampled_from([0.3, 0.5, 0.75, 0.9, 1.0]),
    deadline_s=st.sampled_from([1e-4, 1e-3, 5e-3, 5e-2]),
)


@st.composite
def clusters(draw):
    """A ClusterSimulator plus heterogeneous per-node compute times."""
    nodes = draw(st.integers(min_value=1, max_value=12))
    groups = draw(st.integers(min_value=1, max_value=nodes))
    spec = ClusterSpec(
        nodes=nodes, groups=groups, network=draw(network_configs)
    )
    compute = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.05),
            min_size=nodes,
            max_size=nodes,
        )
    )
    sim = ClusterSimulator(
        spec,
        lambda node_id, samples: compute[node_id],
        update_bytes=draw(update_sizes),
    )
    return sim, compute


def assert_bit_identical(a: IterationTiming, b: IterationTiming, label: str):
    for f in dataclasses.fields(IterationTiming):
        left, right = getattr(a, f.name), getattr(b, f.name)
        assert left == right, (
            f"{label}: IterationTiming.{f.name} diverged: "
            f"{left!r} != {right!r}"
        )


def straggler_sim(nodes=8, groups=2, slow=(3, 6), factor=30.0):
    """Deterministic heterogeneous cluster: ``slow`` nodes compute
    ``factor``x slower than the 1 ms baseline."""
    compute = [1e-3 * (factor if n in slow else 1.0) for n in range(nodes)]
    sim = ClusterSimulator(
        ClusterSpec(nodes=nodes, groups=groups),
        lambda node_id, samples: compute[node_id],
        update_bytes=100_000,
    )
    return sim, compute


class TestQuorumReplayDifferential:
    @given(clusters(), quorum_rules)
    @settings(max_examples=25, deadline=None)
    def test_replay_bit_identical_to_event_driven(self, cluster, rule):
        sim, compute = cluster
        event = sim._iteration_uncached(rule, list(compute))
        trace = record_schedule(sim)
        vectorized = replay_iteration(
            trace, sim.spec, list(compute), vectorized=True, quorum=rule
        )
        scalar = replay_iteration(
            trace, sim.spec, list(compute), vectorized=False, quorum=rule
        )
        assert_bit_identical(event, vectorized, "event vs vectorized")
        assert_bit_identical(event, scalar, "event vs scalar")

    @given(
        clusters(),
        quorum_rules,
        st.integers(min_value=1, max_value=50_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_public_iteration_agrees_with_replay_off(
        self, cluster, rule, batch
    ):
        """End-to-end: ``iteration(quorum=...)`` with the replay engine
        active returns exactly what the full simulation returns with the
        ``REPRO_SCHEDULE_REPLAY=0`` kill switch thrown."""
        sim, _ = cluster
        with replay_disabled(), cache_disabled():
            event = sim.iteration(batch, quorum=rule)
        get_cache().clear()
        replayed = sim.iteration(batch, quorum=rule)
        get_cache().clear()
        assert_bit_identical(event, replayed, "iteration() vs kill switch")


class TestQuorumWindowEdges:
    def test_fraction_one_degenerates_to_barrier(self):
        """K=N closes the window at the last arrival regardless of the
        deadline — bit-identical to no quorum at all, nobody dropped."""
        sim, compute = straggler_sim()
        trace = record_schedule(sim)
        barrier = replay_iteration(trace, sim.spec, list(compute))
        for deadline in (1e-6, 10.0):
            rule = QuorumConfig(fraction=1.0, deadline_s=deadline)
            event = sim._iteration_uncached(rule, list(compute))
            replayed = replay_iteration(
                trace, sim.spec, list(compute), quorum=rule
            )
            assert_bit_identical(event, replayed, f"deadline={deadline}")
            assert_bit_identical(barrier, replayed, "vs barrier")
            assert replayed.dropped == []

    def test_tiny_deadline_drops_all_but_quorum(self):
        """drop-all-but-K: with K=1 per window and a deadline far under
        the straggler gap, only the window openers survive."""
        sim, compute = straggler_sim(slow=(1, 2, 3, 5, 6, 7), factor=100.0)
        rule = QuorumConfig(fraction=0.2, deadline_s=1e-4)
        event = sim._iteration_uncached(rule, list(compute))
        trace = record_schedule(sim)
        replayed = replay_iteration(
            trace, sim.spec, list(compute), quorum=rule
        )
        assert_bit_identical(event, replayed, "drop-all-but-K")
        assert len(replayed.dropped) > 0
        # The master opens its own window, so it always survives; a slow
        # delta can only be dropped, never promoted.
        master = sim.topology.master.node_id
        assert master in replayed.contributors
        assert master not in (1, 2, 3, 5, 6, 7)

    def test_deadline_landing_exactly_on_an_arrival(self, monkeypatch):
        """The tie case: a deadline that expires at the very instant a
        partial finishes. The window rule includes ties (``<= close``),
        and replay must resolve the tie the same way event-driven does.

        The exact arrival times are recovered from a capture run through
        ``_close_window`` (shared by both engines), then each observed
        gap is fed back as ``deadline_s`` so the close lands exactly on
        a later contributor's arrival."""
        sim, compute = straggler_sim(slow=(3,), factor=20.0)
        captured = []
        real = cluster_mod._close_window

        def spy(contributions, quorum):
            captured.append(list(contributions))
            return real(contributions, quorum)

        monkeypatch.setattr(cluster_mod, "_close_window", spy)
        sim._iteration_uncached(
            QuorumConfig(fraction=1.0, deadline_s=10.0), list(compute)
        )
        monkeypatch.setattr(cluster_mod, "_close_window", real)

        window = max(captured, key=len)
        times = sorted(t for _, t in window)
        gaps = [t - times[0] for t in times[1:] if t > times[0]]
        assert gaps, "degenerate capture: every contribution tied"

        trace = record_schedule(sim)
        for gap in gaps:
            rule = QuorumConfig(fraction=0.01, deadline_s=gap)
            event = sim._iteration_uncached(rule, list(compute))
            replayed = replay_iteration(
                trace, sim.spec, list(compute), quorum=rule
            )
            assert_bit_identical(event, replayed, f"deadline={gap!r}")
            # the tied arrival itself must be included, not dropped
            tied = [n for n, t in window if t == times[0] + gap]
            assert set(tied) <= set(replayed.contributors)

    def test_memoized_quorum_iterations_stay_distinct(self):
        """The iteration memo key carries the quorum rule: two different
        windows on the same cluster never collide, and a repeat of the
        same window is served from the memo unchanged."""
        get_cache().clear()
        sim, _ = straggler_sim()
        tight = QuorumConfig(fraction=0.5, deadline_s=1e-4)
        loose = QuorumConfig(fraction=1.0, deadline_s=10.0)
        first = sim.iteration(8_000, quorum=tight)
        again = sim.iteration(8_000, quorum=tight)
        barrier = sim.iteration(8_000, quorum=loose)
        assert_bit_identical(first, again, "memo round-trip")
        assert first.total_s < barrier.total_s
        assert first.dropped and not barrier.dropped
        get_cache().clear()
