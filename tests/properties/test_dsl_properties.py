"""Property-based tests for the DSL front end."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import parse, tokenize
from repro.dsl.lexer import FUNCTIONS, KEYWORDS

idents = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=8
).filter(lambda s: s not in KEYWORDS and s not in FUNCTIONS)


@st.composite
def arithmetic_exprs(draw, depth=0):
    """Random well-formed arithmetic over scalars and literals."""
    if depth > 3 or draw(st.booleans()):
        if draw(st.booleans()):
            return str(draw(st.integers(min_value=0, max_value=999)))
        return draw(idents)
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    left = draw(arithmetic_exprs(depth=depth + 1))
    right = draw(arithmetic_exprs(depth=depth + 1))
    return f"({left} {op} {right})"


class TestLexerProperties:
    @given(st.text(alphabet=" \t\n+-*/()[];,?:=<>0123456789abcxyz_", max_size=80))
    @settings(max_examples=200)
    def test_never_crashes_on_benign_charset(self, source):
        tokens = tokenize(source)
        assert tokens[-1].kind == "EOF"

    @given(st.lists(idents, min_size=1, max_size=10))
    def test_identifier_roundtrip(self, names):
        source = " ".join(names)
        tokens = tokenize(source)[:-1]
        assert [t.text for t in tokens] == names

    @given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
    def test_number_roundtrip(self, value):
        text = repr(float(value))
        tokens = tokenize(text)[:-1]
        assert len(tokens) == 1
        assert float(tokens[0].text) == value

    @given(st.text(max_size=60))
    @settings(max_examples=200)
    def test_lexer_total_on_arbitrary_text(self, source):
        """Any input either tokenizes or raises LexError — no crashes."""
        from repro.dsl import LexError

        try:
            tokenize(source)
        except LexError:
            pass


class TestParserProperties:
    @given(arithmetic_exprs())
    @settings(max_examples=150)
    def test_generated_expressions_parse(self, expr):
        program = parse(f"r = {expr} + 0;")
        # The statement exists (or folded into a param if literal-only).
        assert program.statements or program.params

    @given(st.integers(min_value=1, max_value=10_000_000))
    def test_minibatch_roundtrip(self, b):
        assert parse(f"minibatch = {b};").minibatch == b

    @given(idents, idents)
    @settings(max_examples=100)
    def test_declarations_roundtrip(self, a, b):
        if a == b:
            return
        program = parse(f"model {a}[n]; model_input {b}[n];")
        assert program.declaration(a).data_type == "model"
        assert program.declaration(b).data_type == "model_input"

    @given(st.lists(st.sampled_from("+-*/"), min_size=1, max_size=12))
    def test_left_assoc_chains_parse(self, ops):
        expr = "a" + "".join(f" {op} b" for op in ops)
        program = parse(f"model a; model b; r = {expr};")
        assert program.statements[0].target == "r"
