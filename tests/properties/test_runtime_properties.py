"""Property-based tests on runtime invariants: event ordering, buffer
semantics, NIC serialisation, and aggregation correctness."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import translate
from repro.dsl import parse
from repro.runtime import (
    CircularBuffer,
    ClusterSimulator,
    ClusterSpec,
    DistributedTrainer,
    EventLoop,
    Network,
    Resource,
    assign_roles,
)

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


class TestEventLoopProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_execution_order_sorted(self, times):
        loop = EventLoop()
        seen = []
        for t in times:
            loop.at(t, (lambda tt: (lambda: seen.append(tt)))(t))
        loop.run()
        assert seen == sorted(seen)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0.001, max_value=10),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_resource_never_overlaps(self, requests):
        resource = Resource()
        intervals = []
        for earliest, duration in sorted(requests):
            start = resource.acquire(earliest, duration)
            intervals.append((start, start + duration))
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9


class TestCircularBufferProperties:
    @given(
        st.integers(min_value=1, max_value=64),
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=16),
                st.floats(min_value=0.01, max_value=1.0),
            ),
            min_size=1,
            max_size=30,
        ),
    )
    def test_occupancy_never_exceeds_capacity(self, capacity, chunks):
        buf = CircularBuffer(capacity)
        clock = 0.0
        for size, hold in chunks:
            if size > capacity:
                continue
            start = buf.reserve(clock, size, free_time=clock + hold)
            clock = max(clock, start) + 0.001
            assert buf.used_bytes <= capacity
            assert buf.peak_used <= capacity

    @given(st.lists(st.integers(min_value=1, max_value=10), min_size=1, max_size=20))
    def test_fifo_progress(self, sizes):
        """Producers always eventually make progress (no deadlock)."""
        buf = CircularBuffer(10)
        clock = 0.0
        for size in sizes:
            start = buf.reserve(clock, size, free_time=clock + 0.5)
            assert start >= clock - 1e-12
            clock = start + 0.01


class TestNetworkProperties:
    @given(
        st.lists(
            st.integers(min_value=1, max_value=10**6), min_size=1, max_size=10
        )
    )
    @settings(max_examples=30)
    def test_shared_receiver_serialises(self, sizes):
        """Total delivery time to one node is at least the wire time of
        all bytes (the sigma NIC is the bottleneck)."""
        loop = EventLoop()
        net = Network(loop)
        done = 0.0
        for i, nbytes in enumerate(sizes):
            done = max(done, net.send(i + 1, 0, nbytes, 0.0))
        loop.run()
        wire = sum(sizes) * 8 / net.config.bandwidth_bps
        assert done >= wire

    @given(st.integers(min_value=1, max_value=10**7))
    @settings(max_examples=30)
    def test_chunks_conserve_bytes(self, nbytes):
        loop = EventLoop()
        net = Network(loop)
        got = []
        net.send(0, 1, nbytes, 0.0, on_chunk=lambda t, n: got.append(n))
        loop.run()
        assert sum(got) == nbytes


class TestTopologyProperties:
    @given(st.integers(min_value=1, max_value=64), st.data())
    def test_partition_complete_and_disjoint(self, nodes, data):
        groups = data.draw(st.integers(min_value=1, max_value=nodes))
        topo = assign_roles(nodes, groups)
        all_ids = sorted(r.node_id for r in topo.roles)
        assert all_ids == list(range(nodes))
        sigma_count = len(topo.sigmas())
        assert sigma_count == groups
        for role in topo.roles:
            members = topo.group_members(role.group)
            assert role in members

    @given(st.integers(min_value=2, max_value=64))
    def test_exactly_one_master(self, nodes):
        topo = assign_roles(nodes)
        masters = [r for r in topo.roles if r.role == "master_sigma"]
        assert len(masters) == 1
        assert masters[0].node_id == 0


class TestTrainingProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_loss_decreases_for_any_topology(self, nodes, threads, seed):
        rng = np.random.default_rng(seed)
        n, N = 6, 256
        w = rng.normal(size=n)
        X = rng.normal(size=(N, n))
        Y = X @ w
        trainer = DistributedTrainer(
            translate(parse("mu = 0.05;" + LINREG), {"n": n}),
            nodes=nodes,
            threads_per_node=threads,
            seed=seed,
        )
        def mse(m, f):
            return float(np.mean((f["x"] @ m["w"] - f["y"]) ** 2))
        result = trainer.train(
            {"x": X, "y": Y}, epochs=5, minibatch_per_worker=8, loss_fn=mse
        )
        assert result.final_loss < result.loss_history[0]

    @given(st.integers(min_value=1, max_value=24))
    @settings(max_examples=20, deadline=None)
    def test_iteration_time_positive_and_finite(self, nodes):
        sim = ClusterSimulator(
            ClusterSpec(nodes=nodes), lambda nid, s: 1e-4, update_bytes=4096
        )
        timing = sim.iteration(nodes * 100)
        assert 0 < timing.total_s < 10
        assert timing.compute_s <= timing.total_s


class TestChaosProperties:
    """Any fault timeline that leaves survivors must terminate (no
    barrier deadlock) and must replay bit-identically under a fixed
    seed — the fault machinery is deterministic pure data."""

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(min_value=0.1, max_value=0.8),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_surviving_timelines_terminate_deterministically(
        self, seed, crash_probability, recover_fraction
    ):
        from repro.runtime import (
            FaultTimeline,
            FaultToleranceConfig,
            HeartbeatConfig,
            RetryPolicy,
            chaos_train,
        )

        nodes = 6
        spec = ClusterSpec(nodes=nodes, groups=2)
        rng = np.random.default_rng(3)
        n, N = 4, 128
        w = rng.normal(size=n)
        X = rng.normal(size=(N, n))
        translation = translate(parse("mu = 0.05;" + LINREG), {"n": n})
        def compute(nid, s):
            return 2e-3
        it_s = ClusterSimulator(spec, compute, 10_000).iteration(24).total_s
        # The master (node 0) is spared, so survivors always exist.
        timeline = FaultTimeline.random(
            nodes,
            horizon_s=8 * it_s,
            crash_probability=crash_probability,
            recover_fraction=recover_fraction,
            seed=seed,
        )
        config = FaultToleranceConfig(
            heartbeat=HeartbeatConfig(period_s=it_s / 2, timeout_s=2 * it_s),
            retry=RetryPolicy(timeout_s=it_s / 2, max_retries=1),
            checkpoint_every=3,
        )

        def run():
            return chaos_train(
                translation,
                {"x": X, "y": X @ w},
                spec,
                compute,
                10_000,
                timeline=timeline,
                config=config,
                epochs=2,
                minibatch_per_worker=4,
                seed=7,
            )

        a = run()  # terminating at all is the headline property
        b = run()
        assert a.iterations == 2 * (N // (4 * nodes))
        assert np.isfinite(a.simulated_seconds)
        assert a.simulated_seconds == b.simulated_seconds
        assert [(e.kind, e.nodes) for e in a.events] == [
            (e.kind, e.nodes) for e in b.events
        ]
        np.testing.assert_array_equal(a.model["w"], b.model["w"])
