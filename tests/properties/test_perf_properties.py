"""Property-based tests for the perf subsystem's determinism contracts.

Three invariants the whole PR rests on:

* caching is invisible — a cached plan/compile equals the uncached one;
* vectorizing is invisible — the closed-form MIMD batch model equals the
  scalar reference cycle-for-cycle;
* the interpreter's precompiled execution plans equal the dynamic
  reference path bit-for-bit.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stack import CosmicStack
from repro.dfg import Interpreter
from repro.hw.accelerator import MimdTimingModel
from repro.hw.spec import XILINX_VU9P
from repro.ml.benchmarks import benchmark
from repro.perf.cache import cache_disabled, get_cache
from repro.planner import Planner

SMALL_BENCHES = ("stock", "tumor", "face")


class TestCacheTransparency:
    @given(
        name=st.sampled_from(SMALL_BENCHES),
        minibatch=st.sampled_from([1_000, 10_000, 100_000]),
    )
    @settings(max_examples=15, deadline=None)
    def test_cached_plan_equals_uncached(self, name, minibatch):
        bench = benchmark(name)
        dfg = bench.translate().dfg
        get_cache().clear()
        cached = Planner(XILINX_VU9P).plan(dfg, minibatch, bench.density)
        with cache_disabled():
            uncached = Planner(XILINX_VU9P).plan(
                dfg, minibatch, bench.density
            )
        assert cached == uncached
        assert cached.seconds_for(minibatch) == uncached.seconds_for(
            minibatch
        )

    @given(name=st.sampled_from(SMALL_BENCHES))
    @settings(max_examples=6, deadline=None)
    def test_cached_compile_equals_uncached(self, name):
        stack = CosmicStack.from_benchmark(benchmark(name))
        get_cache().clear()
        cached = stack.compile(rows=2, columns=4)
        with cache_disabled():
            uncached = CosmicStack.from_benchmark(benchmark(name)).compile(
                rows=2, columns=4
            )
        assert cached.cycles == uncached.cycles
        assert cached.mapping.pe_of_node == uncached.mapping.pe_of_node
        assert cached.cross_pe_operands == uncached.cross_pe_operands


class TestVectorizedMimdModel:
    @given(
        threads=st.integers(1, 64),
        compute=st.integers(1, 5_000),
        sample_words=st.integers(0, 2_000),
        columns=st.integers(1, 32),
        preload=st.integers(0, 10_000),
        drain=st.integers(0, 2_000),
        samples=st.integers(0, 3_000),
    )
    @settings(max_examples=200, deadline=None)
    def test_vectorized_matches_scalar(
        self, threads, compute, sample_words, columns, preload, drain, samples
    ):
        model = MimdTimingModel(
            threads=threads,
            compute_cycles=compute,
            sample_words=sample_words,
            columns=columns,
            preload_words=preload,
            drain_words=drain,
        )
        fast = model.run_batch(samples, vectorized=True)
        slow = model.run_batch(samples, vectorized=False)
        assert fast == slow


class TestInterpreterPlans:
    @given(
        name=st.sampled_from(SMALL_BENCHES),
        seed=st.integers(0, 2**32 - 1),
        batch=st.integers(1, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_precompiled_matches_reference(self, name, seed, batch):
        from repro.dfg import ir

        bench = benchmark(name)
        dfg = bench.translate(scaled=True).dfg
        rng = np.random.default_rng(seed)
        feeds = {}
        for value in dfg.inputs_of_category(ir.DATA):
            feeds[value.name] = rng.normal(
                size=(batch, *dfg.shape(value))
            )
        for value in dfg.inputs_of_category(ir.MODEL):
            feeds[value.name] = rng.normal(size=dfg.shape(value))
        interp = Interpreter(dfg)
        fast = interp.run(feeds, batch=True)
        slow = interp.run_reference(feeds, batch=True)
        assert fast.keys() == slow.keys()
        for key in fast:
            np.testing.assert_array_equal(fast[key], slow[key])
