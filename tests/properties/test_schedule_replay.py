"""Differential property suite for the schedule-replay engine.

The contract under test: for any healthy, quorum-less cluster, replaying
a recorded :class:`ScheduleTrace` is *bit-identical* to re-running the
full event-driven simulation — every float of every
:class:`IterationTiming` field, compared with ``==``, no tolerances. The
vectorized (NumPy) replayer and the pure-scalar reference replayer must
agree with each other the same way.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.cache import cache_disabled, get_cache
from repro.runtime import (
    ClusterSimulator,
    ClusterSpec,
    IterationTiming,
    NetworkConfig,
    record_schedule,
    replay_disabled,
    replay_iteration,
)

# Sampled (not continuous) parameters keep every example on a realistic
# operating point while still crossing the interesting structural
# boundaries: multi-chunk vs single-chunk messages, zero vs non-zero
# latency/overheads, exact chunk-boundary payloads.
network_configs = st.builds(
    NetworkConfig,
    bandwidth_bps=st.sampled_from([1e8, 1e9, 1e10]),
    latency_s=st.sampled_from([0.0, 5e-6, 50e-6]),
    per_message_overhead_s=st.sampled_from([0.0, 37e-6, 200e-6]),
    per_chunk_overhead_s=st.sampled_from([0.0, 5e-6]),
    chunk_bytes=st.sampled_from([4096, 65536, 100_000]),
)

update_sizes = st.sampled_from([7, 4_096, 65_536, 100_000, 333_333])


@st.composite
def clusters(draw):
    """A ClusterSimulator plus heterogeneous per-node compute times."""
    nodes = draw(st.integers(min_value=1, max_value=12))
    groups = draw(st.integers(min_value=1, max_value=nodes))
    spec = ClusterSpec(
        nodes=nodes, groups=groups, network=draw(network_configs)
    )
    compute = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=0.05),
            min_size=nodes,
            max_size=nodes,
        )
    )
    sim = ClusterSimulator(
        spec,
        lambda node_id, samples: compute[node_id],
        update_bytes=draw(update_sizes),
    )
    return sim, compute


def assert_bit_identical(a: IterationTiming, b: IterationTiming, label: str):
    for f in dataclasses.fields(IterationTiming):
        left, right = getattr(a, f.name), getattr(b, f.name)
        assert left == right, (
            f"{label}: IterationTiming.{f.name} diverged: "
            f"{left!r} != {right!r}"
        )


class TestReplayDifferential:
    @given(clusters())
    @settings(max_examples=25, deadline=None)
    def test_replay_bit_identical_to_event_driven(self, cluster):
        sim, compute = cluster
        event = sim._iteration_uncached(None, list(compute))
        trace = record_schedule(sim)
        vectorized = replay_iteration(
            trace, sim.spec, list(compute), vectorized=True
        )
        scalar = replay_iteration(
            trace, sim.spec, list(compute), vectorized=False
        )
        assert_bit_identical(event, vectorized, "event vs vectorized")
        assert_bit_identical(event, scalar, "event vs scalar")

    @given(clusters())
    @settings(max_examples=10, deadline=None)
    def test_one_trace_retimes_any_compute_profile(self, cluster):
        """The trace is canonical: recorded once (with zero compute), it
        replays bit-identically under compute profiles it never saw."""
        sim, compute = cluster
        trace = record_schedule(sim)
        for scale in (0.0, 1.0, 3.5):
            times = [t * scale for t in compute]
            event = sim._iteration_uncached(None, list(times))
            replayed = replay_iteration(trace, sim.spec, list(times))
            assert_bit_identical(event, replayed, f"scale={scale}")

    @given(clusters(), st.integers(min_value=1, max_value=50_000))
    @settings(max_examples=10, deadline=None)
    def test_public_iteration_agrees_with_replay_off(self, cluster, batch):
        """End-to-end: ``iteration()`` with the replay engine active
        returns exactly what the full simulation returns with the
        ``REPRO_SCHEDULE_REPLAY=0`` kill switch thrown."""
        sim, _ = cluster
        with replay_disabled(), cache_disabled():
            event = sim.iteration(batch)
        get_cache().clear()
        replayed = sim.iteration(batch)
        get_cache().clear()
        assert_bit_identical(event, replayed, "iteration() vs kill switch")
