"""Property-based tests on compiler/mapping/scheduling invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import PeGrid, communication_edges, compile_thread, map_graph
from repro.dfg import Interpreter, scalarize, translate
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""

SVM = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
m = sum[i](w[i] * x[i]) * y;
g[i] = (m < 1) ? (-y * x[i]) : 0;
"""

geometries = st.tuples(
    st.integers(min_value=1, max_value=4),  # rows
    st.sampled_from([1, 2, 4, 8]),  # columns
)
widths = st.integers(min_value=1, max_value=24)


class TestMappingInvariants:
    @given(widths, geometries)
    @settings(max_examples=40, deadline=None)
    def test_every_node_mapped_once(self, n, geometry):
        rows, columns = geometry
        exp = scalarize(translate(parse(LINREG), {"n": n}).dfg)
        mapping = map_graph(exp, PeGrid(rows, columns))
        nodes = {node.nid for node in exp.dfg.topo_order()}
        assert set(mapping.pe_of_node) == nodes
        listed = [
            nid for ops in mapping.operation_map.values() for nid in ops
        ]
        assert sorted(listed) == sorted(nodes)

    @given(widths, geometries)
    @settings(max_examples=40, deadline=None)
    def test_pes_within_grid(self, n, geometry):
        rows, columns = geometry
        exp = scalarize(translate(parse(LINREG), {"n": n}).dfg)
        mapping = map_graph(exp, PeGrid(rows, columns))
        n_pe = rows * columns
        assert all(0 <= pe < n_pe for pe in mapping.pe_of_node.values())
        assert all(0 <= pe < n_pe for pe in mapping.pe_of_value.values())

    @given(widths, geometries)
    @settings(max_examples=30, deadline=None)
    def test_comm_edges_are_cross_pe(self, n, geometry):
        rows, columns = geometry
        exp = scalarize(translate(parse(SVM), {"n": n}).dfg)
        mapping = map_graph(exp, PeGrid(rows, columns))
        for _, _, src, dst in communication_edges(exp.dfg, mapping):
            assert src != dst


class TestScheduleInvariants:
    @given(widths, geometries)
    @settings(max_examples=25, deadline=None)
    def test_schedules_always_verify(self, n, geometry):
        rows, columns = geometry
        dfg = translate(parse(LINREG), {"n": n}).dfg
        program = compile_thread(dfg, rows=rows, columns=columns)
        # deep=True also replays transfers on the structural interconnect.
        program.verify(deep=True)

    @given(widths)
    @settings(max_examples=15, deadline=None)
    def test_makespan_monotone_in_resources(self, n):
        """More PEs never cost more than a bounded communication slack
        (tiny graphs gain nothing but pay a few bus hops)."""
        dfg = translate(parse(LINREG), {"n": n}).dfg
        small = compile_thread(dfg, rows=1, columns=1, include_stream=False)
        large = compile_thread(dfg, rows=2, columns=4, include_stream=False)
        assert large.cycles <= small.cycles + 24


class TestEndToEndFunctional:
    @given(
        widths,
        geometries,
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_simulator_equals_interpreter(self, n, geometry, seed):
        """For any width, geometry, and data: the cycle simulator's
        gradient equals the NumPy interpreter's."""
        from repro.hw import ThreadSimulator

        rows, columns = geometry
        t = translate(parse(SVM), {"n": n})
        program = compile_thread(t.dfg, rows=rows, columns=columns)
        rng = np.random.default_rng(seed)
        feeds = {
            "x": rng.normal(size=n),
            "y": np.float64(rng.choice([-1.0, 1.0])),
            "w": rng.normal(size=n),
        }
        hw = ThreadSimulator(program).run(feeds)
        sw = Interpreter(t.dfg).run(feeds)
        np.testing.assert_allclose(
            hw.gradient_vector("g", n), sw["g"], rtol=1e-9, atol=1e-12
        )
