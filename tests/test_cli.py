"""CLI tests (in-process, asserting on captured stdout)."""

import pytest

from repro.cli import main


class TestBenchmarksCommand:
    def test_lists_all_ten(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        for name in ("mnist", "netflix", "cancer2"):
            assert name in out


class TestExperimentCommand:
    def test_runs_a_figure(self, capsys):
        assert main(["experiment", "figure17"]) == 0
        out = capsys.readouterr().out
        assert "TABLA" in out
        assert "geomean_speedup" in out

    def test_runs_a_table(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "movielens" in capsys.readouterr().out

    def test_unknown_id_fails(self, capsys):
        assert main(["experiment", "figure99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestAblationCommand:
    def test_runs_one(self, capsys):
        assert main(["ablation", "mapping"]) == 0
        assert "ops-first" in capsys.readouterr().out

    def test_unknown_fails(self, capsys):
        assert main(["ablation", "nonsense"]) == 2
        assert "unknown ablation" in capsys.readouterr().err


class TestPlanCommand:
    def test_plan_fpga(self, capsys):
        assert main(["plan", "mnist"]) == 0
        out = capsys.readouterr().out
        assert "UltraScale+" in out
        assert "design point" in out
        assert "compute" in out

    def test_plan_pasic(self, capsys):
        assert main(["plan", "stock", "--chip", "pasic-g"]) == 0
        assert "P-ASIC-G" in capsys.readouterr().out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["plan", "bert"])


class TestRtlCommand:
    def test_emits_verilog(self, capsys):
        assert main(["rtl", "stock", "--rows", "1", "--columns", "2"]) == 0
        out = capsys.readouterr().out
        assert "module cosmic_pe" in out
        assert "cosmic_control_fsm" in out

    def test_pasic_target(self, capsys):
        assert main(["rtl", "stock", "--target", "pasic",
                     "--rows", "1", "--columns", "2"]) == 0
        assert "cosmic_microcode_rom" in capsys.readouterr().out


class TestTrainCommand:
    def test_trains_linear_benchmark(self, capsys):
        code = main([
            "train", "stock", "--nodes", "2", "--threads", "1",
            "--epochs", "3", "--samples", "512",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "loss:" in out
        assert "simulated seconds:" in out

    def test_trains_cf_benchmark(self, capsys):
        code = main([
            "train", "movielens", "--nodes", "2", "--threads", "1",
            "--epochs", "6", "--samples", "512",
        ])
        assert code == 0
        assert "movielens" in capsys.readouterr().out


class TestChaosCommand:
    def test_master_crash_recovers(self, capsys):
        code = main([
            "chaos", "stock", "--scenario", "master-crash",
            "--epochs", "2", "--samples", "256",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "master-crash" in out
        assert "new_master=" in out
        assert "time to recovery:" in out
        assert "throughput kept:" in out

    def test_healthy_scenario_has_no_faults(self, capsys):
        code = main([
            "chaos", "stock", "--scenario", "healthy",
            "--epochs", "1", "--samples", "256",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "(no faults injected)" in out
        assert "time to recovery:   0.0000s" in out

    def test_unknown_scenario_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "stock", "--scenario", "alien-invasion"])
        assert "invalid choice" in capsys.readouterr().err


class TestWorkerCommand:
    def test_malformed_connect_rejected(self, capsys):
        assert main(["worker", "--connect", "no-port-here"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_missing_authkey_file_rejected(self, capsys, tmp_path):
        code = main([
            "worker", "--connect", "127.0.0.1:1",
            "--authkey-file", str(tmp_path / "absent"),
        ])
        assert code == 2
        assert "cannot read authkey file" in capsys.readouterr().err

    def test_unreachable_coordinator_exits_2(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        _, port = probe.getsockname()
        probe.close()
        assert main(["worker", "--connect", f"127.0.0.1:{port}"]) == 2
        assert "cannot reach coordinator" in capsys.readouterr().err

    def test_connect_is_required(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker"])
        assert "--connect" in capsys.readouterr().err


class TestModuleEntry:
    def test_python_dash_m(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "benchmarks"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "mnist" in proc.stdout
