"""Inference-path tests: forward programs and predictors."""

import numpy as np
import pytest

from repro.dfg import Interpreter
from repro.ml import benchmark
from repro.ml.inference import (
    FORWARD_SOURCES,
    forward_translation,
    inference_speedup_vs_training,
    predict,
    quality,
)

ALGOS = sorted(FORWARD_SOURCES)


class TestForwardPrograms:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_translates_and_validates(self, algorithm):
        bindings = {"n": 8, "h": 4, "c": 3, "e": 10, "f": 2}
        t = forward_translation(algorithm, bindings)
        t.dfg.validate()
        assert "pred" in t.dfg.outputs

    @pytest.mark.parametrize(
        "algorithm", ["linear_regression", "logistic_regression", "svm"]
    )
    def test_forward_matches_reference(self, algorithm):
        rng = np.random.default_rng(0)
        n = 7
        t = forward_translation(algorithm, {"n": n})
        w = rng.normal(size=n)
        x = rng.normal(size=n)
        out = Interpreter(t.dfg).run({"x": x, "w": w})["pred"]
        ref = predict(algorithm, {"w": w}, {"x": x[None, :]})[0]
        np.testing.assert_allclose(out, ref, rtol=1e-9)

    def test_mlp_forward_matches_reference(self):
        rng = np.random.default_rng(1)
        n, h, c = 5, 4, 3
        t = forward_translation("backpropagation", {"n": n, "h": h, "c": c})
        model = {
            "w1": rng.normal(size=(n, h)),
            "w2": rng.normal(size=(h, c)),
        }
        x = rng.normal(size=n)
        out = Interpreter(t.dfg).run({"x": x, **model})["pred"]
        ref = predict("backpropagation", model, {"x": x[None, :]})[0]
        np.testing.assert_allclose(out, ref, rtol=1e-9)

    def test_forward_compiles_through_stack(self):
        from repro.compiler import compile_thread

        t = forward_translation("logistic_regression", {"n": 8})
        compile_thread(t.dfg, rows=1, columns=4).verify()

    def test_unknown_algorithm(self):
        with pytest.raises(KeyError):
            forward_translation("kmeans", {})


class TestQualityMetrics:
    def test_truth_scores_best(self):
        """The planted model's quality beats a random model's on every
        benchmark task."""
        rng = np.random.default_rng(2)
        for name in ("stock", "tumor", "face", "mnist", "movielens"):
            b = benchmark(name)
            ds = b.make_dataset(samples=256, seed=3)
            random_model = {
                k: rng.normal(size=v.shape) for k, v in ds.truth.items()
            }
            assert quality(b.algorithm, ds.truth, ds.feeds) >= quality(
                b.algorithm, random_model, ds.feeds
            )

    def test_accuracy_bounded(self):
        b = benchmark("tumor")
        ds = b.make_dataset(samples=128, seed=4)
        q = quality(b.algorithm, ds.truth, ds.feeds)
        assert 0.0 <= q <= 1.0

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            quality("kmeans", {}, {})


class TestInferenceSpeedup:
    @pytest.mark.parametrize("algorithm", ALGOS)
    def test_inference_cheaper_than_training(self, algorithm):
        bindings = {"n": 64, "h": 32, "c": 8, "e": 100, "f": 4}
        speedup = inference_speedup_vs_training(algorithm, bindings)
        assert speedup > 1.3

    def test_backprop_saves_the_backward_pass(self):
        speedup = inference_speedup_vs_training(
            "backpropagation", {"n": 64, "h": 64, "c": 8}
        )
        assert speedup > 2.0  # forward is ~1/3 of fwd+bwd work
