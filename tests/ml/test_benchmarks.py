"""Table 1 fidelity tests for the benchmark definitions."""

import numpy as np
import pytest

from repro.ml import BENCHMARKS, benchmark, benchmark_names, source_for

#: Table 1 "Model Size (KB)" column.
PAPER_MODEL_KB = {
    "mnist": 2432,
    "acoustic": 1527,
    "stock": 31,
    "texture": 64,
    "tumor": 8,
    "cancer1": 24,
    "movielens": 1176,
    "netflix": 2854,
    "face": 7,
    "cancer2": 28,
}


class TestTable1:
    def test_ten_benchmarks(self):
        assert len(BENCHMARKS) == 10

    def test_names(self):
        assert benchmark_names() == [
            "mnist", "acoustic", "stock", "texture", "tumor",
            "cancer1", "movielens", "netflix", "face", "cancer2",
        ]

    @pytest.mark.parametrize("name,kb", sorted(PAPER_MODEL_KB.items()))
    def test_model_sizes_match_paper(self, name, kb):
        b = benchmark(name)
        assert round(b.model_bytes() / 1024) == kb

    def test_five_algorithms_covered(self):
        algs = {b.algorithm for b in BENCHMARKS}
        assert algs == {
            "linear_regression", "logistic_regression", "svm",
            "backpropagation", "collaborative_filtering",
        }

    def test_paper_loc_in_range(self):
        """Table 1: programmers write 22-55 lines."""
        for b in BENCHMARKS:
            assert 22 <= b.loc <= 55

    def test_our_programs_within_paper_loc(self):
        """Our DSL sources are at most as long as the paper's."""
        for b in BENCHMARKS:
            assert b.translate().program.lines_of_code <= b.loc

    def test_cf_density_matches_one_hot(self):
        ml = benchmark("movielens")
        assert ml.density["xu"] == pytest.approx(1 / 30_101)

    def test_cf_streams_sparse(self):
        """Table 1: movielens is 0.6 GB for 24.4M vectors — a few words
        per vector, which only the sparse encoding achieves."""
        assert benchmark("movielens").bytes_per_sample() < 100

    def test_dense_benchmarks_stream_table1_records(self):
        """Table 1 reports stock as 14.7 GB over 130,503 vectors; the wire
        format is that on-disk record, never less than the dense floor."""
        stock = benchmark("stock")
        assert stock.bytes_per_sample() == pytest.approx(
            14.7e9 / 130_503, rel=1e-6
        )
        assert stock.bytes_per_sample() >= 4 * 8001

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            benchmark("resnet")

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            source_for("qlearning")


class TestTranslations:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_paper_scale_translates(self, name):
        t = benchmark(name).translate()
        t.dfg.validate()
        assert t.dfg.gradient_outputs()

    @pytest.mark.parametrize("name", benchmark_names())
    def test_functional_scale_translates(self, name):
        t = benchmark(name).translate(scaled=True)
        t.dfg.validate()

    def test_aggregators_are_mean(self):
        for b in BENCHMARKS:
            assert b.translate().aggregator.kind == "mean"

    def test_compute_intensity_split(self):
        """Backprop/CF are compute-heavy per streamed byte; the linear
        models are not (the Figure 15 dichotomy)."""
        def intensity(name):
            b = benchmark(name)
            dfg = b.translate().dfg
            from repro.planner import estimate_thread_cycles
            est = estimate_thread_cycles(dfg, 256, 16, density=b.density)
            return est.work_cycles / max(1.0, b.bytes_per_sample())

        assert intensity("mnist") > 10 * intensity("stock")
        assert intensity("movielens") > 10 * intensity("stock")


class TestDatasets:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_dataset_shapes(self, name):
        b = benchmark(name)
        ds = b.make_dataset(samples=32, seed=1)
        assert ds.samples == 32
        t = b.translate(scaled=True)
        from repro.dfg import DATA

        for value in t.dfg.inputs_of_category(DATA):
            feed = ds.feeds[value.name]
            assert feed.shape[1:] == t.dfg.shape(value)

    @pytest.mark.parametrize("name", benchmark_names())
    def test_truth_achieves_low_loss(self, name):
        """The planted model must nearly minimise the tracked loss."""
        b = benchmark(name)
        ds = b.make_dataset(samples=256, seed=2)
        zero_model = {
            k: np.zeros_like(v) for k, v in ds.truth.items()
        }
        assert ds.loss(ds.truth, ds.feeds) < ds.loss(zero_model, ds.feeds)

    def test_cf_one_hot(self):
        ds = benchmark("movielens").make_dataset(samples=16)
        assert np.all(ds.feeds["xu"].sum(axis=1) == 1)
        assert np.all(ds.feeds["xi"].sum(axis=1) == 1)
        # users in the first half of the table, items in the second
        assert ds.feeds["xu"].argmax(axis=1).max() < 30
        assert ds.feeds["xi"].argmax(axis=1).min() >= 30

    def test_seeds_reproducible(self):
        a = benchmark("stock").make_dataset(16, seed=5)
        b = benchmark("stock").make_dataset(16, seed=5)
        np.testing.assert_array_equal(a.feeds["x"], b.feeds["x"])

    def test_seeds_differ(self):
        a = benchmark("stock").make_dataset(16, seed=5)
        b = benchmark("stock").make_dataset(16, seed=6)
        assert not np.array_equal(a.feeds["x"], b.feeds["x"])
