"""Cross-validation: DSL-translated gradients vs reference NumPy math."""

import numpy as np
import pytest

from repro.dfg import Interpreter
from repro.ml import benchmark
from repro.ml.models import GRADIENTS, UPDATE_PAIRS, flops_per_sample, sgd_train


@pytest.mark.parametrize(
    "name", ["stock", "tumor", "face", "mnist", "movielens"]
)
class TestDslVsReference:
    def test_batch_gradients_match(self, name):
        """The DSL program's gradient equals the independently-written
        NumPy gradient for every algorithm."""
        b = benchmark(name)
        t = b.translate(scaled=True)
        ds = b.make_dataset(samples=24, seed=3)
        rng = np.random.default_rng(4)
        model = {
            k: rng.normal(scale=0.3, size=v.shape)
            for k, v in ds.truth.items()
        }
        dsl = Interpreter(t.dfg).gradients({**ds.feeds, **model}, batch=True)
        dsl_mean = {k: v.mean(axis=0) for k, v in dsl.items()}
        ref = GRADIENTS[b.algorithm](model, ds.feeds)
        pairs = UPDATE_PAIRS[b.algorithm]
        for gname, ref_grad in ref.items():
            if b.algorithm == "collaborative_filtering":
                dsl_grad = dsl_mean["g"]
            else:
                dsl_grad = dsl_mean[gname]
            np.testing.assert_allclose(dsl_grad, ref_grad, rtol=1e-8, atol=1e-10)


class TestReferenceTraining:
    @pytest.mark.parametrize(
        "name,lr,epochs",
        [
            ("stock", 0.05, 8),
            ("tumor", 0.5, 8),
            ("face", 0.05, 8),
            ("mnist", 0.5, 12),
            ("movielens", 1.0, 40),
        ],
    )
    def test_sgd_reduces_loss(self, name, lr, epochs):
        b = benchmark(name)
        ds = b.make_dataset(samples=512, seed=7)
        init = {
            k: np.random.default_rng(1).normal(scale=0.1, size=v.shape)
            for k, v in ds.truth.items()
        }
        before = ds.loss(init, ds.feeds)
        trained = sgd_train(
            b.algorithm, init, ds.feeds, learning_rate=lr,
            epochs=epochs, batch=32,
        )
        after = ds.loss(trained, ds.feeds)
        assert after < 0.7 * before


class TestFlopsAccounting:
    def test_linear_scales_with_features(self):
        assert flops_per_sample("linear_regression", {"n": 2000}) == pytest.approx(
            flops_per_sample("linear_regression", {"n": 1000}) * 2
        )

    def test_backprop_dominated_by_gemm(self):
        small = flops_per_sample("backpropagation", {"n": 100, "h": 100, "c": 10})
        big = flops_per_sample("backpropagation", {"n": 200, "h": 200, "c": 10})
        assert big > 3.5 * small

    def test_cf_scales_with_entity_table(self):
        """The one-hot factor update is dense over the entity table."""
        a = flops_per_sample("collaborative_filtering", {"e": 1000, "f": 10})
        b = flops_per_sample("collaborative_filtering", {"e": 100000, "f": 10})
        assert b == pytest.approx(100 * a, rel=0.01)

    def test_mnist_is_compute_heavy(self):
        mnist = benchmark("mnist")
        stock = benchmark("stock")
        assert flops_per_sample(
            mnist.algorithm, mnist.dims
        ) > 50 * flops_per_sample(stock.algorithm, stock.dims)

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            flops_per_sample("kmeans", {})
