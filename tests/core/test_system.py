"""Tests for CosmicSystem: platform x cluster assembly."""

import pytest

from repro.core import CosmicSystem, platform_for
from repro.ml import benchmark


class TestPlatforms:
    def test_four_kinds(self):
        b = benchmark("stock")
        for kind in ("fpga", "pasic-f", "pasic-g", "gpu"):
            platform = platform_for(b, kind)
            assert platform.compute_seconds(1000) > 0
            assert platform.node_power_watts() > 0

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            platform_for(benchmark("stock"), "tpu")

    def test_gpu_node_hot(self):
        b = benchmark("stock")
        gpu = platform_for(b, "gpu").node_power_watts()
        fpga = platform_for(b, "fpga").node_power_watts()
        assert gpu > 3 * fpga

    def test_pasic_f_matches_fpga_on_streaming(self):
        """Same PEs + same bandwidth, only frequency differs; streaming
        workloads gain nothing (Figure 10's flat P-ASIC-F bars)."""
        b = benchmark("texture")
        fpga = platform_for(b, "fpga").compute_seconds(10_000)
        asic = platform_for(b, "pasic-f").compute_seconds(10_000)
        assert asic == pytest.approx(fpga, rel=0.3)


class TestSystem:
    def test_epoch_scales_down_with_nodes(self):
        b = benchmark("stock")
        platform = platform_for(b, "fpga")
        four = CosmicSystem(b, platform, 4).epoch_seconds()
        sixteen = CosmicSystem(b, platform, 16).epoch_seconds()
        assert sixteen < four

    def test_iteration_breakdown(self):
        b = benchmark("mnist")
        system = CosmicSystem(b, platform_for(b, "fpga"), 3)
        timing = system.iteration(10_000)
        assert 0 < timing.compute_fraction < 1
        assert timing.total_s > timing.compute_s

    def test_throughput_consistent_with_iteration(self):
        b = benchmark("stock")
        system = CosmicSystem(b, platform_for(b, "fpga"), 3)
        timing = system.iteration(10_000)
        tput = system.throughput_samples_per_second(10_000)
        assert tput == pytest.approx(30_000 / timing.total_s, rel=1e-6)

    def test_system_power(self):
        b = benchmark("stock")
        system = CosmicSystem(b, platform_for(b, "fpga"), 3)
        assert system.system_power_watts() == pytest.approx(
            3 * platform_for(b, "fpga").node_power_watts()
        )

    def test_groups_forwarded(self):
        b = benchmark("stock")
        system = CosmicSystem(b, platform_for(b, "fpga"), 16, groups=4)
        assert system.cluster().topology.groups == 4
