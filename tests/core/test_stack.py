"""Tests for the CosmicStack facade: every layer reachable from one object."""

import numpy as np
import pytest

from repro.core import CosmicStack
from repro.hw import PASIC_F, XILINX_VU9P
from repro.ml import benchmark

SOURCE = """
minibatch = 2000;
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


@pytest.fixture
def stack():
    return CosmicStack(SOURCE, bindings={"n": 256}, functional_bindings={"n": 8})


class TestLayers:
    def test_translation_paper_scale(self, stack):
        assert stack.translation.dfg.extents == {"i": 256}

    def test_functional_translation_scaled(self, stack):
        assert stack.functional_translation.dfg.extents == {"i": 8}

    def test_plan_default_chip(self, stack):
        plan = stack.plan()
        assert plan.chip.name == XILINX_VU9P.name
        assert plan.design.threads >= 1

    def test_plan_cached(self, stack):
        assert stack.plan() is stack.plan()

    def test_plan_other_chip(self, stack):
        plan = stack.plan(PASIC_F)
        assert plan.chip.name == "P-ASIC-F"

    def test_compile_functional_scale(self, stack):
        prog = stack.compile(rows=2, columns=4)
        prog.verify()
        assert prog.grid.n_pe == 8

    def test_rtl_fpga(self, stack):
        design = stack.rtl(rows=1, columns=4, target="fpga")
        assert "cosmic_control_fsm" in design.verilog

    def test_rtl_pasic(self, stack):
        design = stack.rtl(rows=1, columns=4, target="pasic")
        assert "cosmic_microcode_rom" in design.verilog

    def test_trainer_trains(self, stack):
        rng = np.random.default_rng(0)
        n, N = 8, 512
        w = rng.normal(size=n)
        X = rng.normal(size=(N, n))
        Y = X @ w
        trainer = stack.trainer(nodes=2, threads_per_node=2)
        result = trainer.train(
            {"x": X, "y": Y},
            epochs=10,
            minibatch_per_worker=16,
            loss_fn=lambda m, f: float(np.mean((f["x"] @ m["w"] - f["y"]) ** 2)),
        )
        assert result.final_loss < 0.05 * result.loss_history[0]


class TestFromBenchmark:
    @pytest.mark.parametrize("name", ["stock", "mnist", "movielens"])
    def test_all_layers_run(self, name):
        stack = CosmicStack.from_benchmark(benchmark(name))
        assert stack.plan().samples_per_second > 0
        # Functional-scale compile + RTL for one thread.
        design = stack.rtl(rows=1, columns=4)
        assert design.pe_count == 4

    def test_minibatch_from_dsl(self):
        stack = CosmicStack.from_benchmark(benchmark("stock"))
        assert stack.translation.minibatch == 10_000
