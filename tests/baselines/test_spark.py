"""Tests for the Spark+MLlib baseline model."""

import pytest

from repro.baselines import SparkModel
from repro.ml import benchmark


class TestIteration:
    def test_breakdown_sums(self):
        b = benchmark("stock")
        it = SparkModel(4).iteration(b, 10_000)
        assert it.total_s == pytest.approx(
            it.compute_s + it.scheduling_s + it.aggregation_s + it.broadcast_s
        )

    def test_compute_shrinks_with_nodes(self):
        b = benchmark("stock")
        four = SparkModel(4).iteration(b, 10_000)
        sixteen = SparkModel(16).iteration(b, 10_000)
        assert sixteen.compute_s < four.compute_s

    def test_scheduling_does_not_shrink(self):
        """The fixed per-iteration taxes are why Spark scales poorly."""
        b = benchmark("stock")
        four = SparkModel(4).iteration(b, 10_000)
        sixteen = SparkModel(16).iteration(b, 10_000)
        assert sixteen.scheduling_s >= four.scheduling_s

    def test_aggregation_grows_with_model(self):
        small = SparkModel(4).iteration(benchmark("face"), 10_000)
        big = SparkModel(4).iteration(benchmark("netflix"), 10_000)
        assert big.aggregation_s > 10 * small.aggregation_s

    def test_aggregation_grows_with_nodes(self):
        b = benchmark("mnist")
        assert (
            SparkModel(16).aggregation_seconds(b)
            > SparkModel(2).aggregation_seconds(b)
        )

    def test_compute_bound_benchmark_uses_blas_term(self):
        """mnist's per-record time exceeds the linear models' (GEMM work)."""
        mnist = SparkModel(4).compute_seconds(benchmark("mnist"), 1000)
        stock = SparkModel(4).compute_seconds(benchmark("stock"), 1000)
        assert mnist > stock


class TestEpoch:
    def test_epoch_counts_iterations_globally(self):
        """MLlib's iteration count per epoch is dataset/global_batch,
        independent of the cluster size."""
        b = benchmark("stock")  # 130,503 vectors
        model = SparkModel(4)
        t_small_batch = model.epoch_seconds(b, 1_000)
        t_large_batch = model.epoch_seconds(b, 100_000)
        assert t_small_batch > 5 * t_large_batch

    def test_epoch_scaling_sublinear(self):
        """Figure 8(b): 4 -> 16 nodes gives well under 4x."""
        b = benchmark("stock")
        four = SparkModel(4).epoch_seconds(b)
        sixteen = SparkModel(16).epoch_seconds(b)
        assert 1.0 < four / sixteen < 2.5

    def test_remainder_iteration_counted(self):
        b = benchmark("mnist")  # 60,000 vectors
        t = SparkModel(4).epoch_seconds(b, 40_000)
        single = SparkModel(4).iteration(b, 40_000).total_s
        assert t > single  # 1 full + 1 partial

    def test_cf_is_slowest_per_epoch(self):
        """movielens' per-record cost makes it Spark's worst workload."""
        times = {
            name: SparkModel(4).epoch_seconds(benchmark(name))
            for name in ("stock", "mnist", "movielens")
        }
        assert times["movielens"] > 50 * times["stock"]


class TestValidation:
    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            SparkModel(0)
