"""Tests for the GPU roofline and the TABLA comparator."""

import pytest

from repro.baselines import GpuModel, TablaModel, cosmic_vs_tabla_speedup
from repro.hw import XILINX_VU9P
from repro.ml import benchmark
from repro.planner import Planner


class TestGpuModel:
    def test_residency_by_dataset_size(self):
        gpu = GpuModel()
        assert gpu.dataset_resident(benchmark("mnist"))  # 0.4 GB
        assert not gpu.dataset_resident(benchmark("cancer2"))  # 20 GB

    def test_streaming_workload_pcie_bound(self):
        """Non-resident datasets ingest over PCIe — the reason the GPU's
        edge over the FPGA is modest outside backprop (Figure 10)."""
        gpu = GpuModel()
        b = benchmark("stock")
        t = gpu.compute_seconds(b, 10_000)
        pcie_floor = 10_000 * b.bytes_per_sample() / gpu.spec.pcie_bandwidth_bytes
        assert t == pytest.approx(pcie_floor, rel=0.01)

    def test_gemm_workload_flops_bound(self):
        gpu = GpuModel()
        b = benchmark("mnist")
        t = gpu.compute_seconds(b, 10_000)
        pcie_floor = 10_000 * b.bytes_per_sample() / gpu.spec.pcie_bandwidth_bytes
        assert t > pcie_floor  # arithmetic dominates; and it's resident

    def test_mnist_gpu_vs_fpga_near_paper(self):
        """Figure 10 reports 20.3x for mnist."""
        b = benchmark("mnist")
        fpga = Planner(XILINX_VU9P).plan(b.translate().dfg, 10_000)
        fpga_t = fpga.seconds_for(10_000)
        gpu_t = GpuModel().compute_seconds(b, 10_000)
        assert 10 < fpga_t / gpu_t < 40

    def test_throughput_positive(self):
        assert GpuModel().samples_per_second(benchmark("tumor")) > 0

    def test_node_power(self):
        assert GpuModel().node_power_watts() == pytest.approx(80 + 235)


class TestTabla:
    def test_single_threaded_only(self):
        b = benchmark("stock")
        plan = TablaModel().plan(b.translate().dfg)
        assert plan.design.threads == 1

    def test_pinned_pes_respected(self):
        b = benchmark("stock")
        plan = TablaModel().plan(b.translate().dfg, pes=128)
        assert plan.design.total_pes <= 128

    def test_dse_never_worse_than_full_chip(self):
        b = benchmark("tumor")
        dfg = b.translate().dfg
        model = TablaModel()
        best = model.plan(dfg)
        full = model.plan(dfg, pes=XILINX_VU9P.row_max * XILINX_VU9P.columns)
        assert best.seconds_for(10_000) <= full.seconds_for(10_000) * 1.001

    def test_no_stream_overlap(self):
        plan = TablaModel().plan(benchmark("stock").translate().dfg)
        assert not plan.params.overlap_stream

    @pytest.mark.parametrize(
        "name", ["mnist", "stock", "tumor", "face", "movielens"]
    )
    def test_cosmic_always_faster(self, name):
        """Figure 17: CoSMIC wins on every benchmark."""
        b = benchmark(name)
        speedup = cosmic_vs_tabla_speedup(b.translate().dfg, density=b.density)
        assert speedup > 1.0

    def test_average_speedup_in_paper_ballpark(self):
        """Paper reports 3.9x average; our structural model lands in the
        same regime (>2x, <8x)."""
        import math

        speedups = [
            cosmic_vs_tabla_speedup(
                benchmark(n).translate().dfg, density=benchmark(n).density
            )
            for n in ("mnist", "acoustic", "stock", "tumor", "face")
        ]
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        assert 2.0 < geomean < 8.0
