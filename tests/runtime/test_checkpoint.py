"""Checkpoint tests: round-trip fidelity and bit-identical resumption."""

import numpy as np
import pytest

from repro.dfg import translate
from repro.dsl import parse
from repro.runtime import DistributedTrainer
from repro.runtime.checkpoint import (
    Checkpoint,
    checkpoint_trainer,
    restore_trainer,
)

LINREG = """
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


@pytest.fixture
def problem():
    rng = np.random.default_rng(3)
    n, N = 6, 512
    w = rng.normal(size=n)
    X = rng.normal(size=(N, n))
    Y = X @ w
    return translate(parse(LINREG), {"n": n}), {"x": X, "y": Y}


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        ckpt = Checkpoint(
            model={"w": np.arange(4.0), "v": np.ones((2, 3))},
            iterations=17,
            epoch=2,
            loss_history=[1.0, 0.5],
            benchmark="stock",
        )
        path = ckpt.save(tmp_path / "run.npz")
        loaded = Checkpoint.load(path)
        assert loaded.iterations == 17
        assert loaded.epoch == 2
        assert loaded.loss_history == [1.0, 0.5]
        assert loaded.benchmark == "stock"
        np.testing.assert_array_equal(loaded.model["w"], np.arange(4.0))
        np.testing.assert_array_equal(loaded.model["v"], np.ones((2, 3)))

    def test_rng_state_roundtrips(self, tmp_path):
        rng = np.random.default_rng(9)
        rng.random(100)  # advance
        ckpt = Checkpoint(
            model={"w": np.zeros(2)},
            rng_state=Checkpoint.capture_rng(rng),
        )
        loaded = Checkpoint.load(ckpt.save(tmp_path / "r.npz"))
        resumed = loaded.make_rng()
        np.testing.assert_array_equal(resumed.random(5), rng.random(5))

    def test_bad_version_rejected(self, tmp_path):
        import json

        import repro.runtime.checkpoint as cp

        ckpt = Checkpoint(model={"w": np.zeros(1)})
        path = ckpt.save(tmp_path / "v.npz")
        # Tamper with the version field.
        with np.load(path) as archive:
            meta = json.loads(bytes(archive[cp._META_KEY]).decode())
            arrays = {k: archive[k] for k in archive.files}
        meta["format_version"] = 99
        arrays[cp._META_KEY] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(ValueError, match="version"):
            Checkpoint.load(path)


class TestResumption:
    def test_resumed_run_bit_identical(self, problem, tmp_path):
        """Train 4 epochs straight vs 2 + checkpoint + 2: same model."""
        t, feeds = problem

        straight = DistributedTrainer(t, nodes=2, threads_per_node=2, seed=5)
        full = straight.train(feeds, epochs=4, minibatch_per_worker=16)

        part1_trainer = DistributedTrainer(
            t, nodes=2, threads_per_node=2, seed=5
        )
        part1 = part1_trainer.train(feeds, epochs=2, minibatch_per_worker=16)
        ckpt = checkpoint_trainer(part1_trainer, part1, epoch=2)
        path = ckpt.save(tmp_path / "mid.npz")

        resumed_trainer = DistributedTrainer(
            t, nodes=2, threads_per_node=2, seed=999  # wrong seed on purpose
        )
        restored = Checkpoint.load(path)
        model = restore_trainer(resumed_trainer, restored)
        part2 = resumed_trainer.train(
            feeds, epochs=2, minibatch_per_worker=16, model=model
        )
        np.testing.assert_allclose(part2.model["w"], full.model["w"], rtol=0)

    def test_checkpoint_counts(self, problem):
        t, feeds = problem
        trainer = DistributedTrainer(t, nodes=2, threads_per_node=1, seed=0)
        result = trainer.train(feeds, epochs=1, minibatch_per_worker=32)
        ckpt = checkpoint_trainer(trainer, result, epoch=1, benchmark="demo")
        assert ckpt.iterations == result.iterations
        assert ckpt.benchmark == "demo"
