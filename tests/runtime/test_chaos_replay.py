"""Fault-context gating: a faulted cluster must never touch (or
populate) the healthy-run caches — neither the iteration memo nor the
``cluster-schedule`` trace cache — and must never go through the
schedule replayer, whose traces describe only healthy schedules."""

import numpy as np
import pytest

from repro.dfg import translate
from repro.dsl import parse
from repro.perf.cache import get_cache
from repro.runtime import (
    ClusterSimulator,
    ClusterSpec,
    FaultSpec,
    FaultTimeline,
    FaultToleranceConfig,
    HeartbeatConfig,
    NodeCrash,
    RetryPolicy,
    apply_faults,
    chaos_train,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    get_cache().clear()
    yield
    get_cache().clear()


def make_sim(faults=None, nodes=8, groups=2):
    return ClusterSimulator(
        ClusterSpec(nodes=nodes, groups=groups),
        lambda node_id, samples: 1e-3,
        update_bytes=100_000,
        faults=faults,
    )


def schedule_keys():
    return [k for (k, _) in get_cache()._memory if k == "cluster-schedule"]


class TestFaultContextGating:
    def test_faulted_sim_bypasses_memo_and_schedule_cache(self):
        sim = make_sim(faults=FaultSpec(straggler={1: 2.0}))
        cache = get_cache()
        first = sim.iteration(8_000)
        second = sim.iteration(8_000)
        assert first == second  # still deterministic, just uncached
        assert cache.stats.lookups == 0
        assert len(cache) == 0
        assert schedule_keys() == []

    def test_faulted_sim_never_replays(self, monkeypatch):
        import repro.runtime.schedule as schedule_mod

        monkeypatch.setattr(
            schedule_mod,
            "replay_iteration",
            lambda *a, **k: pytest.fail("replay fired for a faulted cluster"),
        )
        make_sim(faults=FaultSpec(straggler={1: 2.0})).iteration(8_000)

    def test_cached_healthy_trace_not_replayed_for_faulted_cluster(
        self, monkeypatch
    ):
        """The dangerous ordering: a healthy run populates the schedule
        cache first, then a faulted clone of the *same* topology runs.
        The faulted run must re-simulate, not re-time the healthy trace."""
        import repro.runtime.schedule as schedule_mod

        healthy = make_sim()
        healthy.iteration(8_000)
        assert len(schedule_keys()) == 1  # trace is sitting right there

        monkeypatch.setattr(
            schedule_mod,
            "replay_iteration",
            lambda *a, **k: pytest.fail("healthy trace replayed for faults"),
        )
        faulted = apply_faults(
            healthy, FaultSpec(straggler={1: 3.0}, link_quality={2: 0.5})
        )
        slow = faulted.iteration(8_000)
        fast = healthy._iteration_uncached(None, [1e-3] * 8)
        assert slow.total_s > fast.total_s

    def test_faulted_quorum_iteration_never_replays(self, monkeypatch):
        """Quorum iterations replay since format 2 — but only on healthy
        clusters. A fault context still trumps the quorum replay path."""
        import repro.runtime.schedule as schedule_mod

        from repro.runtime import QuorumConfig

        monkeypatch.setattr(
            schedule_mod,
            "replay_iteration",
            lambda *a, **k: pytest.fail(
                "replay fired for a faulted quorum iteration"
            ),
        )
        sim = make_sim(faults=FaultSpec(straggler={1: 5.0}))
        timing = sim.iteration(
            8_000, quorum=QuorumConfig(fraction=0.5, deadline_s=1e-3)
        )
        assert timing.total_s > 0
        assert schedule_keys() == []

    def test_apply_faults_sets_fault_context(self):
        spec = FaultSpec(straggler={1: 2.0})
        faulted = apply_faults(make_sim(), spec)
        assert faulted.faults is spec
        assert make_sim().faults is None

    def test_with_topology_preserves_fault_context(self):
        spec = FaultSpec(straggler={1: 2.0})
        sim = make_sim(faults=spec)
        clone = sim.with_topology(sim.topology)
        assert clone.faults is spec


LINREG = """
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


class TestChaosTrainInterplay:
    def _run(self, timeline, monkeypatch=None):
        nodes, n, N = 4, 4, 64
        rng = np.random.default_rng(3)
        w = rng.normal(size=n)
        X = rng.normal(size=(N, n))
        spec = ClusterSpec(nodes=nodes, groups=2)
        def compute(nid, s):
            return 2e-3
        # Fixed fault-tolerance clocks (roughly one iteration ~ 5 ms);
        # deriving them from a healthy simulation here would itself go
        # through the replayer and trip the monkeypatched probes.
        it_s = 5e-3
        config = FaultToleranceConfig(
            heartbeat=HeartbeatConfig(period_s=it_s / 2, timeout_s=2 * it_s),
            retry=RetryPolicy(timeout_s=it_s / 2, max_retries=1),
            checkpoint_every=3,
        )
        return chaos_train(
            translate(parse(LINREG), {"n": n}),
            {"x": X, "y": X @ w},
            spec,
            compute,
            10_000,
            timeline=timeline,
            config=config,
            epochs=1,
            minibatch_per_worker=4,
            seed=7,
        )

    def test_faulted_chaos_run_never_replays(self, monkeypatch):
        import repro.runtime.schedule as schedule_mod

        get_cache().clear()
        monkeypatch.setattr(
            schedule_mod,
            "replay_iteration",
            lambda *a, **k: pytest.fail("replay fired inside chaos_train"),
        )
        timeline = FaultTimeline(crashes=(NodeCrash(node_id=3, at_s=0.01),))
        result = self._run(timeline)
        assert result.iterations > 0
        assert schedule_keys() == []

    def test_healthy_chaos_run_may_replay(self):
        """An empty timeline is no fault context; the healthy chaos run
        goes through the normal cached/replayed path."""
        get_cache().clear()
        result = self._run(FaultTimeline())
        assert result.iterations > 0
        assert len(schedule_keys()) >= 1
