"""Fault-tolerant runtime: detection, failover, quorum, and recovery."""

import numpy as np
import pytest

from repro.dfg import translate
from repro.dsl import parse
from repro.runtime import (
    ClusterSimulator,
    ClusterSpec,
    DistributedTrainer,
    FaultTimeline,
    FaultToleranceConfig,
    HeartbeatConfig,
    HeartbeatMonitor,
    QuorumConfig,
    RetryPolicy,
    assign_roles,
    chaos_train,
    rebuild_topology,
    rehierarchy_seconds,
    scenario_timeline,
)
from repro.runtime.checkpoint import Checkpoint
from repro.runtime.faults import FaultSpec, faulty_compute

LINREG = """
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


@pytest.fixture
def problem():
    rng = np.random.default_rng(3)
    n, N = 6, 512
    w = rng.normal(size=n)
    X = rng.normal(size=(N, n))
    return translate(parse(LINREG), {"n": n}), {"x": X, "y": X @ w}


def mse(model, feeds):
    return float(np.mean((feeds["x"] @ model["w"] - feeds["y"]) ** 2))


SPEC = ClusterSpec(nodes=8, groups=2)
UPDATE_BYTES = 100_000


def flat_compute(node_id, samples):
    return 5e-3


def iteration_seconds():
    return (
        ClusterSimulator(SPEC, flat_compute, UPDATE_BYTES)
        .iteration(64)
        .total_s
    )


def ft_config(iteration_s, **kwargs):
    return FaultToleranceConfig(
        heartbeat=HeartbeatConfig(
            period_s=iteration_s / 2, timeout_s=3 * iteration_s
        ),
        retry=RetryPolicy(timeout_s=iteration_s / 2, max_retries=2),
        checkpoint_every=4,
        **kwargs,
    )


def run_chaos(problem, timeline, config, seed=5, **kwargs):
    translation, feeds = problem
    return chaos_train(
        translation,
        feeds,
        SPEC,
        flat_compute,
        UPDATE_BYTES,
        timeline=timeline,
        config=config,
        epochs=2,
        minibatch_per_worker=8,
        loss_fn=mse,
        seed=seed,
        **kwargs,
    )


class TestHeartbeat:
    def test_detection_bounded_by_period_plus_timeout(self):
        hb = HeartbeatConfig(period_s=0.1, timeout_s=0.5)
        for crash in (0.0, 0.05, 0.1, 0.33, 1.27):
            at = hb.detection_at(crash)
            assert at >= crash
            assert hb.detection_delay(crash) <= hb.period_s + hb.timeout_s
            # Detection happens on a heartbeat tick.
            assert at == pytest.approx(
                round(at / hb.period_s) * hb.period_s
            )

    def test_crash_on_tick(self):
        hb = HeartbeatConfig(period_s=0.1, timeout_s=0.5)
        # Last beat at 0.2, silent past 0.7, declared on the 0.7 tick.
        assert hb.detection_at(0.2) == pytest.approx(0.7)

    def test_timeout_shorter_than_period_rejected(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(period_s=0.2, timeout_s=0.1)
        with pytest.raises(ValueError):
            HeartbeatConfig(period_s=0.0)

    def test_monitor_suspects_silent_nodes(self):
        monitor = HeartbeatMonitor(
            HeartbeatConfig(period_s=0.1, timeout_s=0.5), nodes=[0, 1, 2]
        )
        monitor.beat(0, 1.0)
        monitor.beat(1, 0.7)
        assert monitor.suspects(1.1) == [2]
        assert monitor.suspects(1.3) == [1, 2]
        monitor.forget(2)
        assert monitor.suspects(1.3) == [1]
        monitor.watch(2, 1.3)  # rejoined: silence counts from now
        assert monitor.suspects(1.4) == [1]
        with pytest.raises(KeyError):
            monitor.beat(99, 1.0)


class TestRebuildTopology:
    def test_delta_death_keeps_sigmas(self):
        base = assign_roles(8, 2)
        dead_delta = base.deltas_of(base.sigmas()[1].node_id)[0].node_id
        topo = rebuild_topology(base, set(range(8)) - {dead_delta})
        assert topo.nodes == 7
        assert topo.master.node_id == base.master.node_id
        assert {s.node_id for s in topo.sigmas()} == {
            s.node_id for s in base.sigmas()
        }

    def test_sigma_death_promotes_lowest_survivor(self):
        base = assign_roles(8, 2)
        sigma = next(
            s for s in base.sigmas() if s.node_id != base.master.node_id
        )
        orphans = [d.node_id for d in base.deltas_of(sigma.node_id)]
        topo = rebuild_topology(base, set(range(8)) - {sigma.node_id})
        replacement = next(
            s for s in topo.sigmas() if s.group == sigma.group
        )
        assert replacement.node_id == min(orphans)
        assert topo.master.node_id == base.master.node_id

    def test_master_death_promotes_a_new_master(self):
        base = assign_roles(8, 2)
        master = base.master.node_id
        topo = rebuild_topology(base, set(range(8)) - {master})
        assert master not in {r.node_id for r in topo.roles}
        # The role goes to the lowest-id group Sigma of the re-formed
        # hierarchy — here the promoted survivor of the master's group.
        new_master = topo.master
        assert new_master.node_id == min(
            s.node_id for s in topo.sigmas()
        )
        assert new_master.group == base.master.group

    def test_whole_group_death_dissolves_group(self):
        base = assign_roles(8, 2)
        doomed = {r.node_id for r in base.group_members(1)}
        topo = rebuild_topology(base, set(range(8)) - doomed)
        assert topo.nodes == 8 - len(doomed)
        assert {r.group for r in topo.roles} == {0}

    def test_no_survivors_raises(self):
        with pytest.raises(ValueError):
            rebuild_topology(assign_roles(4), set())

    def test_prefer_master_stickiness(self):
        base = assign_roles(8, 2)
        master = base.master.node_id
        promoted = rebuild_topology(base, set(range(8)) - {master})
        new_master = promoted.master.node_id
        # The old master rejoins: the promoted one keeps the role.
        rejoined = rebuild_topology(
            base, set(range(8)), prefer_master=new_master
        )
        assert rejoined.master.node_id == new_master

    def test_rehierarchy_cost_scales_with_survivors(self):
        net = SPEC.network
        small = rehierarchy_seconds(2, net, SPEC.management_overhead_s)
        large = rehierarchy_seconds(16, net, SPEC.management_overhead_s)
        assert 0 < small < large
        with pytest.raises(ValueError):
            rehierarchy_seconds(0, net, SPEC.management_overhead_s)


class TestQuorum:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuorumConfig(fraction=0.0)
        with pytest.raises(ValueError):
            QuorumConfig(fraction=1.5)
        with pytest.raises(ValueError):
            QuorumConfig(deadline_s=0.0)
        assert QuorumConfig(fraction=0.75).quorum(4) == 3
        assert QuorumConfig(fraction=0.5).quorum(1) == 1

    def test_hashable_and_fingerprintable(self):
        """QuorumConfig composes with the artifact-cache key machinery:
        hashable (frozen dataclass), fingerprintable, and its
        cache_token distinguishes configs exactly when they differ."""
        from repro.perf.cache import fingerprint

        a = QuorumConfig(fraction=0.5, deadline_s=1e-3)
        same = QuorumConfig(fraction=0.5, deadline_s=1e-3)
        other = QuorumConfig(fraction=0.5, deadline_s=2e-3)
        assert hash(a) == hash(same)
        assert a == same and a != other
        assert fingerprint("q", a) == fingerprint("q", same)
        assert fingerprint("q", a) != fingerprint("q", other)
        assert fingerprint("q", a) != fingerprint("q", None)
        assert a.cache_token() == same.cache_token()
        assert a.cache_token() != other.cache_token()
        # tokens round-trip the floats exactly
        assert float(a.cache_token()[1]) == a.fraction
        assert float(a.cache_token()[2]) == a.deadline_s

    def test_straggler_dropped_and_iteration_shortened(self):
        healthy = iteration_seconds()
        slow = faulty_compute(
            flat_compute, FaultSpec.single_straggler(7, 20.0)
        )
        sim = ClusterSimulator(SPEC, slow, UPDATE_BYTES)
        quorum = QuorumConfig(fraction=0.5, deadline_s=2 * healthy)
        q = sim.iteration(64, quorum=quorum)
        barrier = sim.iteration(64)
        assert q.dropped == [7]
        assert 7 not in q.contributors
        # The closed window must not wait for (or queue behind) the
        # straggler's partial: the whole iteration beats the barrier.
        assert q.total_s < barrier.total_s / 3
        assert q.total_s < healthy * 1.1

    def test_no_straggler_quorum_matches_barrier(self):
        sim = ClusterSimulator(SPEC, flat_compute, UPDATE_BYTES)
        quorum = QuorumConfig(fraction=0.5, deadline_s=1.0)
        q = sim.iteration(64, quorum=quorum)
        assert q.dropped == []
        assert q.total_s == sim.iteration(64).total_s

    def test_dropped_shards_change_the_mathematics(self, problem):
        it_s = iteration_seconds()
        quorum = QuorumConfig(fraction=0.5, deadline_s=2 * it_s)
        straggler = faulty_compute(
            flat_compute, FaultSpec.single_straggler(7, 20.0)
        )
        translation, feeds = problem
        degraded = chaos_train(
            translation,
            feeds,
            SPEC,
            straggler,
            UPDATE_BYTES,
            config=ft_config(it_s, quorum=quorum),
            epochs=1,
            minibatch_per_worker=8,
            loss_fn=mse,
        )
        full = run_chaos(problem, FaultTimeline(), ft_config(it_s), seed=0)
        assert degraded.dropped_partials > 0
        # Excluded shards mean a genuinely different (but converging) run.
        assert degraded.loss_history != full.loss_history[: len(
            degraded.loss_history
        )]
        assert degraded.final_loss < degraded.loss_history[0]


class TestChaosTrain:
    def test_healthy_run_matches_plain_trainer(self, problem):
        translation, feeds = problem
        config = ft_config(iteration_seconds())
        res = run_chaos(problem, FaultTimeline(), config, seed=5)
        plain = DistributedTrainer(translation, nodes=8, seed=5).train(
            feeds, epochs=2, minibatch_per_worker=8, loss_fn=mse
        )
        assert res.events == []
        assert res.loss_history == plain.loss_history
        np.testing.assert_array_equal(res.model["w"], plain.model["w"])

    def test_master_kill_recovers_within_bounds(self, problem):
        it_s = iteration_seconds()
        config = ft_config(it_s)
        topology = assign_roles(8, 2)
        healthy = run_chaos(problem, FaultTimeline(), config)
        res = run_chaos(
            problem, scenario_timeline("master-crash", topology, it_s), config
        )
        assert res.iterations == healthy.iterations
        (event,) = [e for e in res.events if e.kind != "rejoin"]
        assert event.kind == "crash"
        assert event.nodes == [topology.master.node_id]
        assert event.promoted_master is not None
        assert event.rollback_iterations > 0
        # Finite, accounted time-to-recovery; no hang, no free lunch.
        assert 0 < res.time_to_recovery_s < 1.0
        assert res.simulated_seconds > healthy.simulated_seconds
        assert np.isfinite(res.simulated_seconds)
        # Acceptance: final loss within 5% of the uninterrupted run.
        delta = abs(res.final_loss - healthy.final_loss) / healthy.final_loss
        assert delta < 0.05

    def test_delta_crash_redistributes_shards(self, problem):
        it_s = iteration_seconds()
        topology = assign_roles(8, 2)
        timeline = scenario_timeline("delta-crash", topology, it_s)
        res = run_chaos(problem, timeline, ft_config(it_s))
        (event,) = res.events
        assert event.kind == "crash"
        assert event.rollback_iterations == 0  # no master state lost
        assert res.topology.nodes == 7
        assert res.iterations == 16  # full run completed on survivors

    def test_crash_recover_rejoins(self, problem):
        it_s = iteration_seconds()
        topology = assign_roles(8, 2)
        timeline = scenario_timeline("crash-recover", topology, it_s)
        res = run_chaos(problem, timeline, ft_config(it_s))
        kinds = [e.kind for e in res.events]
        assert "crash" in kinds and "rejoin" in kinds
        assert res.topology.nodes == 8  # back to full strength
        rejoin = next(e for e in res.events if e.kind == "rejoin")
        assert rejoin.total_s > 0  # state transfer is not free

    def test_partition_heals(self, problem):
        it_s = iteration_seconds()
        topology = assign_roles(8, 2)
        timeline = scenario_timeline("partition", topology, it_s)
        res = run_chaos(problem, timeline, ft_config(it_s))
        assert any(e.kind == "partition" for e in res.events)
        assert any(e.kind == "rejoin" for e in res.events)
        assert res.topology.nodes == 8

    def test_deterministic_replay(self, problem):
        it_s = iteration_seconds()
        topology = assign_roles(8, 2)
        timeline = scenario_timeline("flaky", topology, it_s)
        a = run_chaos(problem, timeline, ft_config(it_s))
        b = run_chaos(problem, timeline, ft_config(it_s))
        assert a.loss_history == b.loss_history
        assert a.simulated_seconds == b.simulated_seconds
        assert [(e.kind, e.nodes, e.time_s) for e in a.events] == [
            (e.kind, e.nodes, e.time_s) for e in b.events
        ]
        np.testing.assert_array_equal(a.model["w"], b.model["w"])

    def test_all_nodes_dead_raises(self, problem):
        it_s = iteration_seconds()
        timeline = FaultTimeline.from_iterations(
            it_s, crashes={n: 1.5 for n in range(8)}
        )
        with pytest.raises(RuntimeError):
            run_chaos(problem, timeline, ft_config(it_s))

    def test_scenario_names_validated(self):
        with pytest.raises(ValueError):
            scenario_timeline("meteor-strike", assign_roles(4), 0.01)

    def test_checkpoints_written_to_disk(self, problem, tmp_path):
        it_s = iteration_seconds()
        config = ft_config(it_s, checkpoint_dir=tmp_path)
        run_chaos(problem, FaultTimeline(), config)
        files = sorted(tmp_path.glob("ckpt_*.npz"))
        assert [Checkpoint.load(f).iterations for f in files] == [4, 8, 12, 16]


class TestAutoCheckpointResume:
    """A crash mid-epoch, restored from the latest auto-checkpoint, must
    continue bit-identically with the uninterrupted run."""

    def test_resume_is_bit_identical(self, problem, tmp_path):
        translation, feeds = problem

        def fresh():
            return DistributedTrainer(translation, nodes=4, seed=11)

        full = fresh().train(
            feeds, epochs=2, minibatch_per_worker=16, loss_fn=mse
        )
        assert full.iterations == 16
        # The "crash": the run dies mid-second-epoch at iteration 11,
        # having auto-checkpointed every 3 iterations.
        fresh().train(
            feeds,
            epochs=2,
            minibatch_per_worker=16,
            loss_fn=mse,
            checkpoint_every=3,
            checkpoint_dir=tmp_path,
            max_iterations=11,
        )
        latest = Checkpoint.load(sorted(tmp_path.glob("ckpt_*.npz"))[-1])
        assert latest.iterations == 9  # mid-epoch: epoch 1 spans 8..16
        resumed = fresh().train(
            feeds,
            epochs=2,
            minibatch_per_worker=16,
            loss_fn=mse,
            resume_from=latest,
        )
        assert resumed.iterations == 16
        assert resumed.loss_history == full.loss_history
        np.testing.assert_array_equal(resumed.model["w"], full.model["w"])

    def test_resume_from_epoch_boundary(self, problem, tmp_path):
        translation, feeds = problem

        def fresh():
            return DistributedTrainer(translation, nodes=4, seed=11)

        full = fresh().train(
            feeds, epochs=2, minibatch_per_worker=16, loss_fn=mse
        )
        fresh().train(
            feeds,
            epochs=2,
            minibatch_per_worker=16,
            loss_fn=mse,
            checkpoint_every=8,
            checkpoint_dir=tmp_path,
            max_iterations=9,
        )
        boundary = Checkpoint.load(tmp_path / "ckpt_000008.npz")
        assert boundary.iterations == 8  # exactly one full epoch
        resumed = fresh().train(
            feeds,
            epochs=2,
            minibatch_per_worker=16,
            loss_fn=mse,
            resume_from=boundary,
        )
        assert resumed.loss_history == full.loss_history
        np.testing.assert_array_equal(resumed.model["w"], full.model["w"])
