"""Schedule recording, trace caching, and the replay gating rules."""

import dataclasses

import pytest

from repro.perf.cache import cache_disabled, get_cache
from repro.runtime import (
    ClusterSimulator,
    ClusterSpec,
    QuorumConfig,
    record_schedule,
    replay_disabled,
    replay_enabled,
    replay_iteration,
)
from repro.runtime.schedule import (
    GATHER_PHASE,
    REDUCE_PHASE,
    SCHEDULE_FORMAT,
    ScheduleRecorder,
    schedule_cache_key,
    trace_sidecar,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    get_cache().clear()
    yield
    get_cache().clear()


def make_sim(nodes=8, groups=2, update_bytes=100_000, compute=1e-3):
    return ClusterSimulator(
        ClusterSpec(nodes=nodes, groups=groups),
        lambda node_id, samples: compute,
        update_bytes=update_bytes,
    )


class TestRecording:
    def test_trace_structure_matches_topology(self):
        sim = make_sim(nodes=9, groups=3, update_bytes=12_345)
        trace = record_schedule(sim)
        topo = sim.topology
        deltas = topo.nodes - len(topo.sigmas())
        assert trace.format_version == SCHEDULE_FORMAT
        assert trace.nodes == 9
        assert trace.groups == 3
        assert trace.update_bytes == 12_345
        # gather: every delta to its sigma; reduce: every non-master
        # sigma to the master; broadcast: master->sigmas + sigma->deltas.
        assert len(trace.gather_sends) == deltas
        assert len(trace.reduce_sends) == len(topo.sigmas()) - 1
        assert len(trace.broadcast_sends) == (
            len(topo.sigmas()) - 1
        ) + deltas
        assert trace.wire_messages == (
            len(trace.gather_sends)
            + len(trace.reduce_sends)
            + len(trace.broadcast_sends)
        )
        assert all(nb == 12_345 for _, _, nb in trace.gather_sends)
        assert trace.topology().roles == list(topo.roles)

    def test_single_node_trace_is_empty(self):
        trace = record_schedule(make_sim(nodes=1, groups=1))
        assert trace.wire_messages == 0
        assert trace.arrival_points == ()

    def test_arrival_points_cover_every_aggregation_point(self):
        sim = make_sim(nodes=9, groups=3, update_bytes=200_000)
        trace = record_schedule(sim)
        topo = sim.topology
        gather = trace.points_for(GATHER_PHASE)
        reduce_ = trace.points_for(REDUCE_PHASE)
        # One gather point per sigma with deltas, one reduce point at the
        # master, and nothing else.
        assert len(trace.arrival_points) == len(gather) + len(reduce_)
        assert {p.node_id for p in gather} == {
            s.node_id for s in topo.sigmas()
        }
        (master_point,) = reduce_
        assert master_point.node_id == topo.master.node_id
        master_id = topo.master.node_id
        assert sorted(master_point.senders) == sorted(
            s.node_id for s in topo.sigmas() if s.node_id != master_id
        )
        for point in gather:
            sigma = next(
                s for s in topo.sigmas() if s.node_id == point.node_id
            )
            expected = {
                r.node_id
                for r in topo.roles
                if r.group == sigma.group and r.node_id != sigma.node_id
            }
            assert set(point.senders) == expected

    def test_arrival_point_chunks_match_recorded_bookings(self):
        import math

        sim = make_sim(nodes=6, groups=2, update_bytes=200_000)
        trace = record_schedule(sim)
        chunk_bytes = sim.spec.network.chunk_bytes
        for point in trace.arrival_points:
            for src, count, arrivals, tx_starts in zip(
                point.senders,
                point.chunk_counts,
                point.recorded_arrivals,
                point.recorded_tx_starts,
            ):
                nbytes = next(
                    nb
                    for s, d, nb in (
                        trace.gather_sends + trace.reduce_sends
                    )
                    if s == src and d == point.node_id
                )
                assert count == math.ceil(nbytes / chunk_bytes)
                assert len(arrivals) == count
                assert len(tx_starts) == count
                assert list(arrivals) == sorted(arrivals)
                # every chunk lands after its TX chain started
                assert all(a > t for a, t in zip(arrivals, tx_starts))

    def test_arrival_point_senders_ordered_by_completion(self):
        trace = record_schedule(make_sim(nodes=8, groups=2))
        for point in trace.arrival_points:
            finals = [a[-1] for a in point.recorded_arrivals]
            assert finals == sorted(finals)

    def test_sidecar_is_json_serialisable(self):
        import json

        trace = record_schedule(make_sim())
        payload = json.loads(json.dumps(trace_sidecar(trace)))
        assert payload["nodes"] == 8
        assert len(payload["gather_sends"]) == len(trace.gather_sends)
        assert len(payload["arrival_points"]) == len(trace.arrival_points)
        assert {p["phase"] for p in payload["arrival_points"]} <= {
            "gather",
            "reduce",
        }

    def test_cache_key_tracks_schedule_inputs(self):
        a, b = make_sim(nodes=8, groups=2), make_sim(nodes=8, groups=4)
        assert schedule_cache_key(
            a.topology, a.update_bytes
        ) != schedule_cache_key(b.topology, b.update_bytes)
        assert schedule_cache_key(
            a.topology, 100_000
        ) != schedule_cache_key(a.topology, 200_000)

    def test_recorder_rejects_send_before_phase(self):
        recorder = ScheduleRecorder()
        with pytest.raises(RuntimeError, match="before the first phase"):
            recorder.on_send(0, 1, 100, 0.0, 1)

    def test_recorder_rejects_extra_phases(self):
        recorder = ScheduleRecorder()
        for _ in range(3):
            recorder.on_phase()
        with pytest.raises(RuntimeError, match="more than 3"):
            recorder.on_phase()


class TestTraceCaching:
    def test_trace_recorded_once_across_minibatches(self, monkeypatch):
        import repro.runtime.schedule as schedule_mod

        recordings = []
        real = schedule_mod.record_schedule
        monkeypatch.setattr(
            schedule_mod,
            "record_schedule",
            lambda sim: recordings.append(1) or real(sim),
        )
        sim = make_sim()
        sim.iteration(8_000)
        sim.iteration(16_000)
        sim.iteration(24_000)
        assert len(recordings) == 1
        keys = [k for (k, _) in get_cache()._memory if k == "cluster-schedule"]
        assert len(keys) == 1

    def test_stale_disk_trace_invalidated_and_rerecorded(self, tmp_path):
        """A persisted trace whose format predates this replayer is
        deleted on load (the ``validate=`` hook) and re-recorded — it
        must never reach ``replay_iteration``."""
        cache = get_cache()
        cache.disk_dir = tmp_path
        try:
            sim = make_sim()
            stale = dataclasses.replace(
                record_schedule(sim), format_version=SCHEDULE_FORMAT - 1
            )
            key = schedule_cache_key(sim.topology, sim.update_bytes)
            cache.get_or_compute("cluster-schedule", key, lambda: stale)
            cache.clear()  # drop the memory tier; the stale pickle stays
            timing = sim.iteration(8_000)
            assert timing.total_s > 0
            assert cache.stats.invalidated == 1
            fresh = cache.get_or_compute(
                "cluster-schedule", key, lambda: pytest.fail("not re-stored")
            )
            assert fresh.format_version == SCHEDULE_FORMAT
        finally:
            cache.disk_dir = None

    def test_mismatched_cached_trace_is_rejected(self):
        sim = make_sim(update_bytes=100_000)
        wrong = record_schedule(make_sim(update_bytes=999))
        key = schedule_cache_key(sim.topology, sim.update_bytes)
        get_cache().get_or_compute("cluster-schedule", key, lambda: wrong)
        with pytest.raises(RuntimeError, match="different cluster"):
            sim.iteration(8_000)


class TestReplayGating:
    def test_kill_switch_forces_event_driven(self, monkeypatch):
        import repro.runtime.schedule as schedule_mod

        monkeypatch.setattr(
            schedule_mod,
            "replay_iteration",
            lambda *a, **k: pytest.fail("replay fired with the kill switch"),
        )
        monkeypatch.setenv("REPRO_SCHEDULE_REPLAY", "0")
        timing = make_sim().iteration(8_000)
        assert timing.total_s > 0

    def test_quorum_iterations_replay(self, monkeypatch):
        """Since format 2 the quorum gate is lifted: a quorum iteration
        goes through the replayer (and receives the quorum rule)."""
        import repro.runtime.schedule as schedule_mod

        calls = []
        real = schedule_mod.replay_iteration
        monkeypatch.setattr(
            schedule_mod,
            "replay_iteration",
            lambda *a, **k: calls.append(k.get("quorum")) or real(*a, **k),
        )
        rule = QuorumConfig(fraction=0.5)
        timing = make_sim().iteration(8_000, quorum=rule)
        assert timing.total_s > 0
        assert calls == [rule]

    def test_kill_switch_covers_quorum_iterations(self, monkeypatch):
        import repro.runtime.schedule as schedule_mod

        monkeypatch.setattr(
            schedule_mod,
            "replay_iteration",
            lambda *a, **k: pytest.fail("replay fired with the kill switch"),
        )
        monkeypatch.setenv("REPRO_SCHEDULE_REPLAY", "0")
        timing = make_sim().iteration(
            8_000, quorum=QuorumConfig(fraction=0.5)
        )
        assert timing.total_s > 0

    def test_replay_enabled_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCHEDULE_REPLAY", raising=False)
        assert replay_enabled()
        for off in ("0", "false", "FALSE"):
            monkeypatch.setenv("REPRO_SCHEDULE_REPLAY", off)
            assert not replay_enabled()
        monkeypatch.setenv("REPRO_SCHEDULE_REPLAY", "1")
        assert replay_enabled()

    def test_replay_disabled_restores_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCHEDULE_REPLAY", "1")
        with replay_disabled():
            assert not replay_enabled()
        assert replay_enabled()
        monkeypatch.delenv("REPRO_SCHEDULE_REPLAY")
        with replay_disabled():
            assert not replay_enabled()
        import os

        assert "REPRO_SCHEDULE_REPLAY" not in os.environ


class TestReplayValidation:
    def test_format_version_mismatch_rejected(self):
        sim = make_sim()
        trace = record_schedule(sim)
        stale = dataclasses.replace(trace, format_version=SCHEDULE_FORMAT + 1)
        with pytest.raises(RuntimeError, match="re-record"):
            replay_iteration(stale, sim.spec, [1e-3] * 8)

    def test_compute_times_length_checked(self):
        sim = make_sim(nodes=4, groups=2)
        trace = record_schedule(sim)
        with pytest.raises(ValueError, match="compute times"):
            replay_iteration(trace, sim.spec, [1e-3] * 3)


class TestEndToEnd:
    def test_epoch_seconds_identical_with_and_without_replay(self):
        sim = make_sim(nodes=6, groups=2)
        with replay_disabled(), cache_disabled():
            reference = sim.epoch_seconds(10_000, 128)
        get_cache().clear()
        assert sim.epoch_seconds(10_000, 128) == reference

    def test_replay_used_on_the_cached_path(self, monkeypatch):
        """Positive control for the gating tests: on the healthy cached
        path the replayer genuinely is the engine that runs."""
        import repro.runtime.schedule as schedule_mod

        calls = []
        real = schedule_mod.replay_iteration
        monkeypatch.setattr(
            schedule_mod,
            "replay_iteration",
            lambda *a, **k: calls.append(1) or real(*a, **k),
        )
        make_sim().iteration(8_000)
        assert len(calls) == 1
