"""Tests for the NIC/switch network model."""

import pytest

from repro.runtime import EventLoop, Network, NetworkConfig


def make(bandwidth=1e9, chunk=64 * 1024):
    loop = EventLoop()
    net = Network(loop, NetworkConfig(bandwidth_bps=bandwidth, chunk_bytes=chunk))
    return loop, net


class TestTransferTime:
    def test_large_message_dominated_by_wire_time(self):
        loop, net = make()
        nbytes = 10 * 1024 * 1024  # 10 MB at 1 Gbps ~= 80 ms
        done = net.send(0, 1, nbytes, start=0.0)
        loop.run()
        assert done == pytest.approx(nbytes * 8 / 1e9, rel=0.1)

    def test_higher_bandwidth_faster(self):
        _, slow = make(bandwidth=1e9)
        _, fast = make(bandwidth=10e9)
        nbytes = 4 * 1024 * 1024
        assert fast.send(0, 1, nbytes, 0.0) < slow.send(0, 1, nbytes, 0.0)

    def test_latency_floor_for_tiny_messages(self):
        loop, net = make()
        done = net.send(0, 1, 64, start=0.0)
        cfg = net.config
        assert done >= cfg.latency_s + cfg.per_message_overhead_s


class TestContention:
    def test_receiver_nic_serialises_two_senders(self):
        """Two nodes sending to one sigma take ~2x one sender's time."""
        loop, net = make()
        nbytes = 8 * 1024 * 1024
        one = net.send(1, 0, nbytes, 0.0)
        loop2, net2 = make()
        net2.send(1, 0, nbytes, 0.0)
        two = net2.send(2, 0, nbytes, 0.0)
        assert two > 1.8 * one

    def test_distinct_receivers_parallel(self):
        """The switch backplane is non-blocking: different destinations
        do not contend."""
        loop, net = make()
        nbytes = 8 * 1024 * 1024
        a = net.send(0, 1, nbytes, 0.0)
        loop2, net2 = make()
        net2.send(0, 1, nbytes, 0.0)
        # different source, different destination: fully parallel
        b = net2.send(2, 3, nbytes, 0.0)
        assert b == pytest.approx(a, rel=0.01)

    def test_full_duplex(self):
        """TX and RX of one NIC are independent directions."""
        loop, net = make()
        nbytes = 8 * 1024 * 1024
        out_done = net.send(0, 1, nbytes, 0.0)
        in_done = net.send(1, 0, nbytes, 0.0)
        solo = make()[1].send(0, 1, nbytes, 0.0)
        assert out_done == pytest.approx(solo, rel=0.05)
        assert in_done == pytest.approx(solo, rel=0.05)


class TestChunking:
    def test_chunks_delivered_incrementally(self):
        loop, net = make(chunk=1024)
        arrivals = []
        net.send(0, 1, 10 * 1024, 0.0, on_chunk=lambda t, n: arrivals.append((t, n)))
        loop.run()
        assert len(arrivals) == 10
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        assert sum(n for _, n in arrivals) == 10 * 1024

    def test_first_chunk_before_message_done(self):
        loop, net = make(chunk=64 * 1024)
        first = []
        done = net.send(
            0, 1, 4 * 1024 * 1024, 0.0, on_chunk=lambda t, n: first.append(t)
        )
        loop.run()
        assert first[0] < done / 4

    def test_on_done_fires_at_completion(self):
        loop, net = make()
        done_times = []
        reported = net.send(0, 1, 256 * 1024, 0.0, on_done=done_times.append)
        loop.run()
        assert done_times == [reported]


class TestAccounting:
    def test_bytes_and_messages_counted(self):
        loop, net = make()
        net.send(0, 1, 1000, 0.0)
        net.send(1, 2, 2000, 0.0)
        assert net.bytes_sent == 3000
        assert net.messages_sent == 2

    def test_rejects_loopback(self):
        _, net = make()
        with pytest.raises(ValueError):
            net.send(0, 0, 100, 0.0)

    def test_rejects_empty(self):
        _, net = make()
        with pytest.raises(ValueError):
            net.send(0, 1, 0, 0.0)
