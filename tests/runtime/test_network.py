"""Tests for the NIC/switch network model."""

import pytest

from repro.runtime import EventLoop, Network, NetworkConfig, RetryPolicy


def make(bandwidth=1e9, chunk=64 * 1024):
    loop = EventLoop()
    net = Network(loop, NetworkConfig(bandwidth_bps=bandwidth, chunk_bytes=chunk))
    return loop, net


class TestTransferTime:
    def test_large_message_dominated_by_wire_time(self):
        loop, net = make()
        nbytes = 10 * 1024 * 1024  # 10 MB at 1 Gbps ~= 80 ms
        done = net.send(0, 1, nbytes, start=0.0)
        loop.run()
        assert done == pytest.approx(nbytes * 8 / 1e9, rel=0.1)

    def test_higher_bandwidth_faster(self):
        _, slow = make(bandwidth=1e9)
        _, fast = make(bandwidth=10e9)
        nbytes = 4 * 1024 * 1024
        assert fast.send(0, 1, nbytes, 0.0) < slow.send(0, 1, nbytes, 0.0)

    def test_latency_floor_for_tiny_messages(self):
        loop, net = make()
        done = net.send(0, 1, 64, start=0.0)
        cfg = net.config
        assert done >= cfg.latency_s + cfg.per_message_overhead_s


class TestContention:
    def test_receiver_nic_serialises_two_senders(self):
        """Two nodes sending to one sigma take ~2x one sender's time."""
        loop, net = make()
        nbytes = 8 * 1024 * 1024
        one = net.send(1, 0, nbytes, 0.0)
        loop2, net2 = make()
        net2.send(1, 0, nbytes, 0.0)
        two = net2.send(2, 0, nbytes, 0.0)
        assert two > 1.8 * one

    def test_distinct_receivers_parallel(self):
        """The switch backplane is non-blocking: different destinations
        do not contend."""
        loop, net = make()
        nbytes = 8 * 1024 * 1024
        a = net.send(0, 1, nbytes, 0.0)
        loop2, net2 = make()
        net2.send(0, 1, nbytes, 0.0)
        # different source, different destination: fully parallel
        b = net2.send(2, 3, nbytes, 0.0)
        assert b == pytest.approx(a, rel=0.01)

    def test_full_duplex(self):
        """TX and RX of one NIC are independent directions."""
        loop, net = make()
        nbytes = 8 * 1024 * 1024
        out_done = net.send(0, 1, nbytes, 0.0)
        in_done = net.send(1, 0, nbytes, 0.0)
        solo = make()[1].send(0, 1, nbytes, 0.0)
        assert out_done == pytest.approx(solo, rel=0.05)
        assert in_done == pytest.approx(solo, rel=0.05)


class TestChunking:
    def test_chunks_delivered_incrementally(self):
        loop, net = make(chunk=1024)
        arrivals = []
        net.send(0, 1, 10 * 1024, 0.0, on_chunk=lambda t, n: arrivals.append((t, n)))
        loop.run()
        assert len(arrivals) == 10
        times = [t for t, _ in arrivals]
        assert times == sorted(times)
        assert sum(n for _, n in arrivals) == 10 * 1024

    def test_first_chunk_before_message_done(self):
        loop, net = make(chunk=64 * 1024)
        first = []
        done = net.send(
            0, 1, 4 * 1024 * 1024, 0.0, on_chunk=lambda t, n: first.append(t)
        )
        loop.run()
        assert first[0] < done / 4

    def test_on_done_fires_at_completion(self):
        loop, net = make()
        done_times = []
        reported = net.send(0, 1, 256 * 1024, 0.0, on_done=done_times.append)
        loop.run()
        assert done_times == [reported]


class TestAccounting:
    def test_bytes_and_messages_counted(self):
        loop, net = make()
        net.send(0, 1, 1000, 0.0)
        net.send(1, 2, 2000, 0.0)
        assert net.bytes_sent == 3000
        assert net.messages_sent == 2

    def test_rejects_loopback(self):
        _, net = make()
        with pytest.raises(ValueError):
            net.send(0, 0, 100, 0.0)

    def test_rejects_empty(self):
        _, net = make()
        with pytest.raises(ValueError):
            net.send(0, 1, 0, 0.0)


class TestRetryPolicy:
    def test_attempt_schedule(self):
        policy = RetryPolicy(timeout_s=0.1, max_retries=2, backoff=2.0)
        assert policy.attempt_timeouts() == pytest.approx([0.1, 0.2, 0.4])
        assert policy.give_up_after_s() == pytest.approx(0.7)

    def test_no_retries_is_one_attempt(self):
        policy = RetryPolicy(timeout_s=0.3, max_retries=0)
        assert policy.attempt_timeouts() == [0.3]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0.0},
            {"timeout_s": -1.0},
            {"max_retries": -1},
            {"backoff": 0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestSendReliable:
    def test_reachable_peer_sends_immediately(self):
        loop, net = make()
        plain = net.send(0, 1, 10_000, start=0.0)
        _, net2 = make()
        reliable = net2.send_reliable(
            0, 1, 10_000, start=0.0, reachable=lambda t: True
        )
        assert reliable == plain
        assert net2.retries == 0
        assert net2.messages_failed == 0

    def test_backoff_until_peer_returns(self):
        loop, net = make()
        policy = RetryPolicy(timeout_s=0.1, max_retries=3, backoff=2.0)
        # Peer comes back at t=0.25: attempts at 0, 0.1, 0.3 succeed on
        # the third try, after two timeouts (0.1 + 0.2) of backoff.
        done = net.send_reliable(
            0, 1, 10_000, start=0.0,
            reachable=lambda t: t >= 0.25, policy=policy,
        )
        assert done is not None
        assert done > 0.3
        assert net.retries == 2
        assert net.messages_failed == 0

    def test_gives_up_on_dead_peer(self):
        loop, net = make()
        policy = RetryPolicy(timeout_s=0.1, max_retries=2, backoff=2.0)
        done = net.send_reliable(
            0, 1, 10_000, start=0.0,
            reachable=lambda t: False, policy=policy,
        )
        assert done is None
        assert net.retries == 3  # every attempt burned its timeout
        assert net.messages_failed == 1
        assert net.messages_sent == 0  # nothing ever hit the wire
