"""Tests for role assignment and whole-cluster iteration timing."""

import pytest

from repro.runtime import (
    ClusterSimulator,
    ClusterSpec,
    ROLE_MASTER_SIGMA,
    ROLE_SIGMA,
    assign_roles,
    default_groups,
)


class TestDirector:
    def test_single_node(self):
        topo = assign_roles(1)
        assert topo.roles[0].role == ROLE_MASTER_SIGMA
        assert topo.groups == 1

    def test_sixteen_nodes_two_groups(self):
        topo = assign_roles(16)
        assert topo.groups == 2
        sigmas = topo.sigmas()
        assert len(sigmas) == 2
        assert sigmas[0].role == ROLE_MASTER_SIGMA
        assert sigmas[1].role == ROLE_SIGMA

    def test_deltas_report_to_group_sigma(self):
        topo = assign_roles(8, groups=2)
        for delta in topo.deltas_of(0):
            assert delta.group == 0
        for delta in topo.deltas_of(4):
            assert delta.group == 1

    def test_every_node_has_exactly_one_role(self):
        topo = assign_roles(13, groups=3)
        assert sorted(r.node_id for r in topo.roles) == list(range(13))

    def test_uneven_split(self):
        topo = assign_roles(5, groups=2)
        sizes = [len(topo.group_members(g)) for g in range(2)]
        assert sorted(sizes) == [2, 3]

    def test_default_groups_scale(self):
        assert default_groups(4) == 1
        assert default_groups(8) == 1
        assert default_groups(16) == 2

    @pytest.mark.parametrize("nodes,groups", [(0, None), (4, 0), (4, 5)])
    def test_invalid_configs(self, nodes, groups):
        with pytest.raises(ValueError):
            assign_roles(nodes, groups)


def simulator(nodes, compute_s=1e-3, update_bytes=40_000, **spec_kw):
    spec = ClusterSpec(nodes=nodes, **spec_kw)
    return ClusterSimulator(spec, lambda nid, s: compute_s, update_bytes)


class TestIterationTiming:
    def test_total_exceeds_compute(self):
        timing = simulator(4).iteration(4000)
        assert timing.total_s > timing.compute_s
        assert timing.compute_fraction < 1.0

    def test_more_nodes_more_aggregation_time(self):
        small = simulator(2).iteration(4000)
        big = simulator(16).iteration(4000)
        assert big.network_s > small.network_s

    def test_single_node_has_no_network(self):
        timing = simulator(1).iteration(1000)
        assert timing.network_s < 1e-3  # only the local fold

    def test_communication_grows_with_model_size(self):
        small = simulator(4, update_bytes=10_000).iteration(4000)
        big = simulator(4, update_bytes=10_000_000).iteration(4000)
        assert big.communication_s > 10 * small.communication_s

    def test_compute_fraction_rises_with_batch(self):
        """Figure 13: larger mini-batches shift runtime into compute."""
        sim = ClusterSimulator(
            ClusterSpec(nodes=3),
            lambda nid, samples: samples * 2e-6,
            update_bytes=500_000,
        )
        low = sim.iteration(3 * 500)
        high = sim.iteration(3 * 100_000)
        assert high.compute_fraction > low.compute_fraction
        assert low.compute_fraction < 0.5
        assert high.compute_fraction > 0.85

    def test_hierarchy_beats_flat_at_scale(self):
        """Grouped aggregation keeps the master NIC from serialising all
        fifteen peers' updates."""
        flat = ClusterSimulator(
            ClusterSpec(nodes=16, groups=1),
            lambda nid, s: 1e-3,
            update_bytes=2_000_000,
        ).iteration(16_000)
        grouped = ClusterSimulator(
            ClusterSpec(nodes=16, groups=4),
            lambda nid, s: 1e-3,
            update_bytes=2_000_000,
        ).iteration(16_000)
        assert grouped.total_s < flat.total_s

    def test_aggregation_busy_scales_with_senders(self):
        a = simulator(4).iteration(4000)
        b = simulator(8).iteration(8000)
        assert b.aggregation_busy_s > a.aggregation_busy_s

    def test_rejects_empty_update(self):
        with pytest.raises(ValueError):
            ClusterSimulator(ClusterSpec(nodes=2), lambda n, s: 0.0, 0)


class TestEpoch:
    def test_epoch_is_iterations_times_iteration(self):
        sim = simulator(4)
        timing = sim.iteration(4 * 1000)
        epoch = sim.epoch_seconds(40_000, minibatch_per_node=1000)
        assert epoch == pytest.approx(10 * timing.total_s, rel=1e-6)

    def test_larger_minibatch_fewer_iterations(self):
        sim = simulator(4, update_bytes=4_000_000)
        fast = sim.epoch_seconds(400_000, minibatch_per_node=100_000)
        slow = sim.epoch_seconds(400_000, minibatch_per_node=500)
        assert fast < slow
