"""Functional correctness of distributed training (Eq. 3)."""

import numpy as np
import pytest

from repro.dfg import translate
from repro.dsl import parse
from repro.runtime import ClusterSimulator, ClusterSpec, DistributedTrainer

LINREG = """
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""

LOGREG = """
mu = 0.5;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
p = sigmoid(sum[i](w[i] * x[i]));
g[i] = (p - y) * x[i];
"""


@pytest.fixture
def linreg_data():
    rng = np.random.default_rng(1)
    n, N = 8, 1024
    true_w = rng.normal(size=n)
    X = rng.normal(size=(N, n))
    Y = X @ true_w + 0.01 * rng.normal(size=N)
    return X, Y, true_w


def mse(model, feeds):
    return float(np.mean((feeds["x"] @ model["w"] - feeds["y"]) ** 2))


class TestConvergence:
    def test_linreg_converges(self, linreg_data):
        X, Y, true_w = linreg_data
        trainer = DistributedTrainer(
            translate(parse(LINREG), {"n": 8}), nodes=4, threads_per_node=2
        )
        result = trainer.train(
            {"x": X, "y": Y}, epochs=15, minibatch_per_worker=16, loss_fn=mse
        )
        assert result.final_loss < 0.01 * result.loss_history[0]
        assert np.linalg.norm(result.model["w"] - true_w) < 0.1

    def test_logreg_separates(self):
        rng = np.random.default_rng(2)
        n, N = 6, 1024
        true_w = rng.normal(size=n)
        X = rng.normal(size=(N, n))
        Y = (X @ true_w > 0).astype(float)
        trainer = DistributedTrainer(
            translate(parse(LOGREG), {"n": n}), nodes=2, threads_per_node=2
        )

        def accuracy(model, feeds):
            pred = (feeds["x"] @ model["w"]) > 0
            return float(np.mean(pred == (feeds["y"] > 0.5)))

        result = trainer.train(
            {"x": X, "y": Y}, epochs=20, minibatch_per_worker=32,
            loss_fn=accuracy,
        )
        assert result.final_loss > 0.95  # loss_fn here is accuracy

    def test_more_workers_same_direction(self, linreg_data):
        """Eq. 3: aggregated parallel training still descends."""
        X, Y, _ = linreg_data
        for nodes, threads in [(1, 1), (4, 4), (8, 2)]:
            trainer = DistributedTrainer(
                translate(parse(LINREG), {"n": 8}),
                nodes=nodes,
                threads_per_node=threads,
            )
            result = trainer.train(
                {"x": X, "y": Y}, epochs=10, minibatch_per_worker=8,
                loss_fn=mse,
            )
            assert result.final_loss < 0.1 * result.loss_history[0]

    def test_local_sgd_mode_converges(self, linreg_data):
        X, Y, _ = linreg_data
        trainer = DistributedTrainer(
            translate(parse(LINREG), {"n": 8}), nodes=2, threads_per_node=2
        )
        result = trainer.train(
            {"x": X[:256], "y": Y[:256]}, epochs=4,
            minibatch_per_worker=16, loss_fn=mse, mode="local_sgd",
        )
        assert result.final_loss < 0.1 * result.loss_history[0]

    def test_single_worker_minibatch_matches_manual_sgd(self, linreg_data):
        """One worker, mean aggregation == plain mini-batch SGD."""
        X, Y, _ = linreg_data
        n = 8
        t = translate(parse(LINREG), {"n": n})
        trainer = DistributedTrainer(t, nodes=1, threads_per_node=1, seed=7)
        result = trainer.train(
            {"x": X, "y": Y}, epochs=1, minibatch_per_worker=64
        )
        # Manual replication with the same shuffling.
        rng = np.random.default_rng(7)
        order = rng.permutation(len(X))
        w = np.zeros(n)
        for start in range(0, len(X) - 64 + 1, 64):
            idx = order[start : start + 64]
            grad = ((X[idx] @ w - Y[idx])[:, None] * X[idx]).mean(axis=0)
            w -= 0.05 * grad
        np.testing.assert_allclose(result.model["w"], w, rtol=1e-10)


class TestMechanics:
    def test_iterations_counted(self, linreg_data):
        X, Y, _ = linreg_data
        trainer = DistributedTrainer(
            translate(parse(LINREG), {"n": 8}), nodes=2, threads_per_node=2
        )
        result = trainer.train({"x": X, "y": Y}, epochs=2, minibatch_per_worker=64)
        assert result.iterations == 2 * (1024 // 256)

    def test_default_minibatch_from_dsl(self):
        t = translate(parse("minibatch = 64;" + LINREG), {"n": 8})
        trainer = DistributedTrainer(t, nodes=2, threads_per_node=2)
        rng = np.random.default_rng(0)
        X = rng.normal(size=(128, 8))
        Y = rng.normal(size=128)
        result = trainer.train({"x": X, "y": Y}, epochs=1)
        assert result.iterations == 2  # 64 per iteration over 128 samples

    def test_cluster_timing_attached(self, linreg_data):
        X, Y, _ = linreg_data
        cluster = ClusterSimulator(
            ClusterSpec(nodes=2), lambda nid, s: 1e-4, update_bytes=64
        )
        trainer = DistributedTrainer(
            translate(parse(LINREG), {"n": 8}),
            nodes=2,
            threads_per_node=1,
            cluster=cluster,
        )
        result = trainer.train({"x": X, "y": Y}, epochs=1, minibatch_per_worker=64)
        assert result.simulated_seconds > 0
        assert result.iteration_timing is not None

    def test_initial_model_shapes(self):
        t = translate(parse(LINREG), {"n": 8})
        trainer = DistributedTrainer(t, nodes=1, threads_per_node=1)
        model = trainer.initial_model()
        assert model["w"].shape == (8,)
        assert np.all(model["w"] == 0)

    def test_mismatched_feeds_rejected(self):
        t = translate(parse(LINREG), {"n": 8})
        trainer = DistributedTrainer(t, nodes=1, threads_per_node=1)
        with pytest.raises(ValueError):
            trainer.train({"x": np.ones((10, 8)), "y": np.ones(9)})

    def test_unknown_mode_rejected(self):
        t = translate(parse(LINREG), {"n": 8})
        trainer = DistributedTrainer(t, nodes=1, threads_per_node=1)
        with pytest.raises(ValueError):
            trainer.train(
                {"x": np.ones((4, 8)), "y": np.ones(4)}, mode="magic"
            )

    def test_invalid_topology_rejected(self):
        t = translate(parse(LINREG), {"n": 8})
        with pytest.raises(ValueError):
            DistributedTrainer(t, nodes=0, threads_per_node=1)
