"""Fault-injection tests: stragglers dominate synchronous aggregation."""

import pytest

from repro.runtime import ClusterSimulator, ClusterSpec
from repro.runtime.faults import (
    FaultTimeline,
    NodeCrash,
    Partition,
    FaultSpec,
    apply_faults,
    degraded_network_seconds,
    faulty_compute,
    straggler_slowdown,
)


def healthy(nodes=8, compute_s=10e-3, update_bytes=100_000):
    return ClusterSimulator(
        ClusterSpec(nodes=nodes), lambda nid, s: compute_s, update_bytes
    )


class TestFaultSpec:
    def test_defaults_are_healthy(self):
        spec = FaultSpec()
        assert spec.compute_factor(0) == 1.0
        assert spec.network_factor(0) == 1.0
        assert spec.expected_retransmit_s(0) == 0.0

    def test_single_straggler_factory(self):
        spec = FaultSpec.single_straggler(3, 4.0)
        assert spec.compute_factor(3) == 4.0
        assert spec.compute_factor(0) == 1.0

    def test_uniform_jitter_seeded(self):
        a = FaultSpec.uniform_jitter(8, sigma=0.2, seed=1)
        b = FaultSpec.uniform_jitter(8, sigma=0.2, seed=1)
        assert a.straggler == b.straggler
        assert all(f >= 1.0 for f in a.straggler.values())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"straggler": {0: 0.5}},
            {"link_quality": {0: 0.0}},
            {"link_quality": {0: 1.5}},
            {"drop_rate": {0: 1.0}},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_retransmit_expectation(self):
        spec = FaultSpec(drop_rate={0: 0.5}, retransmit_timeout_s=0.1)
        assert spec.expected_retransmit_s(0) == pytest.approx(0.1)


class TestInjection:
    def test_straggler_dominates_iteration(self):
        """Synchronous aggregation is a barrier: one 4x node costs ~4x
        compute time regardless of the other seven healthy nodes."""
        base = healthy().iteration(8 * 1000)
        slowed = apply_faults(
            healthy(), FaultSpec.single_straggler(5, 4.0)
        ).iteration(8 * 1000)
        assert slowed.compute_max_s == pytest.approx(4 * base.compute_max_s)
        assert straggler_slowdown(slowed.total_s, base.total_s) > 1.5

    def test_straggler_on_sigma_same_as_delta(self):
        """The barrier makes the straggler's role irrelevant."""
        on_sigma = apply_faults(
            healthy(), FaultSpec.single_straggler(0, 3.0)
        ).iteration(8000)
        on_delta = apply_faults(
            healthy(), FaultSpec.single_straggler(7, 3.0)
        ).iteration(8000)
        assert on_sigma.total_s == pytest.approx(on_delta.total_s, rel=0.25)

    def test_degraded_link_slows_aggregation(self):
        base = healthy(update_bytes=2_000_000).iteration(8000)
        bad = apply_faults(
            healthy(update_bytes=2_000_000), FaultSpec(link_quality={2: 0.25})
        ).iteration(8000)
        assert bad.total_s > 1.5 * base.total_s

    def test_drop_rate_adds_latency(self):
        base = healthy().iteration(8000)
        flaky = apply_faults(
            healthy(), FaultSpec(drop_rate={1: 0.2})
        ).iteration(8000)
        assert flaky.total_s > base.total_s

    def test_no_faults_identity(self):
        sim = healthy()
        assert apply_faults(sim, None) is sim

    def test_faulty_compute_wrapper(self):
        fn = faulty_compute(lambda nid, s: 1.0, FaultSpec.single_straggler(2, 5.0))
        assert fn(2, 10) == 5.0
        assert fn(0, 10) == 1.0

    def test_degraded_network_seconds(self):
        spec = FaultSpec(link_quality={1: 0.5}, drop_rate={1: 0.1})
        t = degraded_network_seconds(0.01, 1, spec)
        assert t > 0.02  # halved bandwidth + retransmit expectation


class TestFleetJitter:
    def test_jitter_cost_grows_with_cluster(self):
        """With log-normal node variability, the max over nodes — and so
        the synchronous iteration time — grows with the fleet size.

        Compute-dominated parameters so the barrier effect is measured:
        at wire-dominated scale a straggler's extra compute hides under
        the aggregation/broadcast tail (sends are served in the order
        they reach the wire), which is correct but not what this test is
        about."""
        def slowdown(nodes):
            sim = healthy(nodes=nodes, compute_s=50e-3)
            base = sim.iteration(nodes * 1000).total_s
            jit = apply_faults(
                healthy(nodes=nodes, compute_s=50e-3),
                FaultSpec.uniform_jitter(nodes, sigma=0.3, seed=7),
            ).iteration(nodes * 1000).total_s
            return jit / base

        assert slowdown(16) >= slowdown(2) * 0.95


class TestFaultTimeline:
    def test_empty_timeline_is_falsy(self):
        assert not FaultTimeline()
        assert FaultTimeline(crashes=(NodeCrash(1, 1.0),))

    def test_permanent_crash(self):
        tl = FaultTimeline(crashes=(NodeCrash(2, 1.0),))
        assert tl.alive(2, 0.99)
        assert not tl.alive(2, 1.0)
        assert not tl.alive(2, 100.0)
        assert tl.alive(3, 100.0)

    def test_crash_then_recover(self):
        tl = FaultTimeline(crashes=(NodeCrash(2, 1.0, recover_s=3.0),))
        assert not tl.alive(2, 2.0)
        assert tl.alive(2, 3.0)

    def test_partition_isolates_one_side(self):
        tl = FaultTimeline(
            partitions=(Partition(frozenset({4, 5}), 1.0, 2.0),)
        )
        assert tl.isolated(4, 0, 1.5)
        assert not tl.isolated(4, 5, 1.5)  # same island
        assert not tl.isolated(4, 0, 2.0)  # healed (half-open window)
        assert tl.reachable(4, 5, 1.5)
        assert not tl.reachable(4, 0, 1.5)
        assert not tl.up(4, 1.5, anchor=0)
        assert tl.up(4, 1.5, anchor=5)

    def test_change_times_and_first_outage(self):
        tl = FaultTimeline(
            crashes=(NodeCrash(1, 2.0, recover_s=5.0),),
            partitions=(Partition(frozenset({3}), 4.0, 6.0),),
        )
        assert tl.change_times() == [2.0, 4.0, 5.0, 6.0]
        assert tl.changes_in(2.0, 5.0) == [4.0, 5.0]  # (t0, t1]
        assert tl.first_outage_in(0.0, 3.0, 1, anchor=0) == 2.0
        assert tl.first_outage_in(0.0, 3.0, 3, anchor=0) is None
        assert tl.first_outage_in(3.0, 6.0, 3, anchor=0) == 4.0

    def test_from_iterations(self):
        tl = FaultTimeline.from_iterations(
            0.5,
            crashes={1: 2.0, 2: 4.0},
            recoveries={2: 6.0},
            partitions=[((3, 4), 1.0, 3.0)],
        )
        assert not tl.alive(1, 1.0)
        assert tl.alive(2, 3.1)  # recovered at 3.0s
        assert not tl.alive(2, 2.5)
        assert tl.isolated(3, 0, 1.0)

    def test_random_is_seeded_and_spares(self):
        a = FaultTimeline.random(16, 10.0, crash_probability=0.5, seed=4)
        b = FaultTimeline.random(16, 10.0, crash_probability=0.5, seed=4)
        assert a == b
        assert a != FaultTimeline.random(
            16, 10.0, crash_probability=0.5, seed=5
        )
        spared = FaultTimeline.random(
            8, 10.0, crash_probability=1.0, seed=4, spare=(0, 3)
        )
        crashed = {c.node_id for c in spared.crashes}
        assert crashed == set(range(8)) - {0, 3}

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: NodeCrash(0, -1.0),
            lambda: NodeCrash(0, 2.0, recover_s=1.0),
            lambda: Partition(frozenset(), 0.0, 1.0),
            lambda: Partition(frozenset({1}), 2.0, 1.0),
            lambda: FaultTimeline(
                crashes=(NodeCrash(0, 1.0), NodeCrash(0, 2.0))
            ),
            lambda: FaultTimeline.from_iterations(0.0, crashes={1: 1.0}),
            lambda: FaultTimeline.from_iterations(1.0, recoveries={1: 2.0}),
        ],
    )
    def test_invalid_timelines_rejected(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_nonpositive_retransmit_timeout_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(retransmit_timeout_s=0.0)
        with pytest.raises(ValueError):
            FaultSpec(retransmit_timeout_s=-0.5)
