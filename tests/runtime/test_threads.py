"""Tests for thread pools, the circular buffer, and the Sigma pipeline."""

import pytest

from repro.runtime import CircularBuffer, PoolConfig, SigmaPipeline, WorkerPool


class TestWorkerPool:
    def test_parallel_up_to_size(self):
        pool = WorkerPool("p", 2)
        a = pool.dispatch(0.0, 1.0)
        b = pool.dispatch(0.0, 1.0)
        c = pool.dispatch(0.0, 1.0)
        assert a == 1.0 and b == 1.0
        assert c == 2.0  # third item waits for a worker

    def test_reuses_earliest_free_worker(self):
        pool = WorkerPool("p", 2)
        pool.dispatch(0.0, 5.0)
        pool.dispatch(0.0, 1.0)
        assert pool.dispatch(0.0, 1.0) == 2.0

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            WorkerPool("p", 0)

    def test_busy_seconds(self):
        pool = WorkerPool("p", 2)
        pool.dispatch(0.0, 1.0)
        pool.dispatch(0.0, 2.0)
        assert pool.busy_seconds() == 3.0


class TestCircularBuffer:
    def test_reserve_when_space(self):
        buf = CircularBuffer(100)
        assert buf.reserve(0.0, 60, free_time=5.0) == 0.0
        assert buf.used_bytes == 60

    def test_backpressure_stalls_producer(self):
        buf = CircularBuffer(100)
        buf.reserve(0.0, 80, free_time=10.0)
        start = buf.reserve(1.0, 80, free_time=20.0)
        assert start == 10.0  # waited for the first chunk to drain
        assert buf.stall_seconds == pytest.approx(9.0)

    def test_drain_frees_space(self):
        buf = CircularBuffer(100)
        buf.reserve(0.0, 50, free_time=1.0)
        assert buf.reserve(2.0, 80, free_time=3.0) == 2.0
        assert buf.used_bytes == 80

    def test_peak_tracking(self):
        buf = CircularBuffer(100)
        buf.reserve(0.0, 40, free_time=10.0)
        buf.reserve(0.0, 40, free_time=10.0)
        assert buf.peak_used == 80

    def test_oversized_chunk_rejected(self):
        buf = CircularBuffer(100)
        with pytest.raises(ValueError):
            buf.reserve(0.0, 200, free_time=1.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            CircularBuffer(0)


class TestSigmaPipeline:
    def test_chunks_overlap_copy_and_aggregate(self):
        """Aggregation of chunk k overlaps the copy of chunk k+1 — the
        producer-consumer design of Figure 2."""
        cfg = PoolConfig(copy_bytes_per_s=1e6, aggregate_bytes_per_s=1e6)
        pipe = SigmaPipeline(cfg)
        chunk = 64 * 1024
        sequential = 2 * chunk / 1e6  # copy then aggregate, no overlap
        finish = 0.0
        arrivals = [i * chunk / 1e6 for i in range(8)]
        for t in arrivals:
            finish = max(finish, pipe.on_chunk(t, chunk))
        # 8 chunks, overlapped: far less than 8x the sequential time.
        assert finish < 8 * sequential * 0.75

    def test_aggregation_tracks_bytes(self):
        pipe = SigmaPipeline(PoolConfig())
        pipe.on_chunk(0.0, 1000)
        pipe.on_chunk(0.0, 2000)
        assert pipe.bytes_aggregated == 3000

    def test_drained_at_monotonic(self):
        pipe = SigmaPipeline(PoolConfig())
        t1 = pipe.on_chunk(0.0, 64 * 1024)
        t2 = pipe.on_chunk(t1, 64 * 1024)
        assert pipe.drained_at == max(t1, t2)

    def test_limited_pool_becomes_bottleneck(self):
        slow = PoolConfig(
            networking_threads=1,
            aggregation_threads=1,
            copy_bytes_per_s=1e6,
            aggregate_bytes_per_s=1e5,
        )
        fast = PoolConfig(
            networking_threads=1,
            aggregation_threads=4,
            copy_bytes_per_s=1e6,
            aggregate_bytes_per_s=1e5,
        )
        def run(cfg):
            pipe = SigmaPipeline(cfg)
            finish = 0.0
            for i in range(8):
                finish = max(finish, pipe.on_chunk(i * 0.01, 32 * 1024))
            return finish

        assert run(fast) < run(slow)
