"""Observability tests: wire accounting and Sigma receive pressure."""


from repro.runtime import ClusterSimulator, ClusterSpec


def simulator(nodes, groups=None, update_bytes=500_000):
    return ClusterSimulator(
        ClusterSpec(nodes=nodes, groups=groups),
        lambda nid, s: 1e-3,
        update_bytes,
    )


class TestWireAccounting:
    def test_bytes_counted(self):
        timing = simulator(4).iteration(4000)
        # 3 deltas up + 3 broadcasts down, one group.
        assert timing.wire_bytes == 6 * 500_000
        assert timing.wire_messages == 6

    def test_hierarchy_adds_inter_sigma_traffic(self):
        flat = simulator(8, groups=1).iteration(8000)
        grouped = simulator(8, groups=2).iteration(8000)
        # Grouped: 6 delta->sigma + 1 sigma->master + broadcast legs.
        assert grouped.wire_messages >= flat.wire_messages

    def test_single_node_no_wire(self):
        timing = simulator(1).iteration(1000)
        assert timing.wire_bytes == 0
        assert timing.wire_messages == 0


class TestSigmaPressure:
    def test_rx_utilization_bounded(self):
        timing = simulator(8).iteration(8000)
        assert 0.0 <= timing.sigma_rx_utilization() <= 1.0

    def test_flat_aggregation_hotter_sigma(self):
        """One master receiving 15 peers saturates its NIC more than the
        grouped hierarchy's sigmas do."""
        flat = simulator(16, groups=1, update_bytes=2_000_000)
        grouped = simulator(16, groups=4, update_bytes=2_000_000)
        assert (
            flat.iteration(16_000).sigma_rx_utilization()
            > grouped.iteration(16_000).sigma_rx_utilization()
        )

    def test_rx_busy_scales_with_model(self):
        small = simulator(8, update_bytes=10_000).iteration(8000)
        big = simulator(8, update_bytes=5_000_000).iteration(8000)
        assert big.sigma_rx_busy_s > 10 * small.sigma_rx_busy_s
