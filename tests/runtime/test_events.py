"""Tests for the discrete-event engine."""

import pytest

from repro.runtime import EventLoop, Resource


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.at(2.0, lambda: seen.append("b"))
        loop.at(1.0, lambda: seen.append("a"))
        loop.at(3.0, lambda: seen.append("c"))
        loop.run()
        assert seen == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        loop = EventLoop()
        seen = []
        loop.at(1.0, lambda: seen.append(1))
        loop.at(1.0, lambda: seen.append(2))
        loop.run()
        assert seen == [1, 2]

    def test_now_advances(self):
        loop = EventLoop()
        times = []
        loop.at(0.5, lambda: times.append(loop.now))
        loop.at(1.5, lambda: times.append(loop.now))
        end = loop.run()
        assert times == [0.5, 1.5]
        assert end == 1.5

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        seen = []

        def first():
            seen.append("first")
            loop.after(1.0, lambda: seen.append("second"))

        loop.at(1.0, first)
        loop.run()
        assert seen == ["first", "second"]
        assert loop.now == 2.0

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.at(5.0, lambda: loop.at(1.0, lambda: None))
        with pytest.raises(ValueError):
            loop.run()

    def test_run_until(self):
        loop = EventLoop()
        seen = []
        loop.at(1.0, lambda: seen.append(1))
        loop.at(10.0, lambda: seen.append(2))
        loop.run(until=5.0)
        assert seen == [1]
        assert loop.pending() == 1

    def test_not_reentrant(self):
        loop = EventLoop()
        loop.at(1.0, lambda: loop.run())
        with pytest.raises(RuntimeError):
            loop.run()


class TestResource:
    def test_serialises_overlapping_requests(self):
        r = Resource("nic")
        assert r.acquire(0.0, 1.0) == 0.0
        assert r.acquire(0.5, 1.0) == 1.0
        assert r.acquire(3.0, 1.0) == 3.0

    def test_busy_accounting(self):
        r = Resource()
        r.acquire(0.0, 2.0)
        r.acquire(0.0, 3.0)
        assert r.busy_seconds == 5.0
        assert r.utilization(10.0) == 0.5

    def test_utilization_clamped(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        assert r.utilization(1.0) == 1.0
        assert r.utilization(0.0) == 0.0
