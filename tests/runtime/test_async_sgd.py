"""Stale-gradient training tests: functional convergence and timing."""

import numpy as np
import pytest

from repro.dfg import translate
from repro.dsl import parse
from repro.runtime.async_sgd import (
    async_batch_seconds,
    stale_train,
    sync_batch_seconds,
)
from repro.runtime.faults import FaultSpec

LINREG = """
mu = 0.05;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(5)
    n, N = 8, 1024
    w = rng.normal(size=n)
    X = rng.normal(size=(N, n))
    Y = X @ w
    t = translate(parse(LINREG), {"n": n})
    def mse(m, f):
        return float(np.mean((f["x"] @ m["w"] - f["y"]) ** 2))
    return t, {"x": X, "y": Y}, mse


class TestFunctional:
    def test_zero_staleness_converges(self, problem):
        t, feeds, mse = problem
        result = stale_train(
            t, feeds, workers=4, staleness=0, epochs=8, loss_fn=mse
        )
        assert result.final_loss < 0.05 * result.loss_history[0]

    def test_bounded_staleness_still_converges(self, problem):
        t, feeds, mse = problem
        result = stale_train(
            t, feeds, workers=4, staleness=3, epochs=8, loss_fn=mse
        )
        assert result.final_loss < 0.2 * result.loss_history[0]

    def test_staleness_costs_convergence(self, problem):
        """At aggressive learning rates, stale gradients destabilise the
        trajectory — the classic staleness/learning-rate trade-off."""
        t, feeds, mse = problem
        fresh = stale_train(
            t, feeds, workers=4, staleness=0, epochs=6, loss_fn=mse,
            seed=1, learning_rate=0.5,
        )
        stale = stale_train(
            t, feeds, workers=4, staleness=3, epochs=6, loss_fn=mse,
            seed=1, learning_rate=0.5,
        )
        assert stale.final_loss > 10 * fresh.final_loss

    def test_zero_staleness_matches_sync_trainer(self, problem):
        """staleness=0 is exactly the synchronous mini-batch step."""
        from repro.runtime import DistributedTrainer

        t, feeds, mse = problem
        stale = stale_train(
            t, feeds, workers=4, staleness=0, epochs=1,
            minibatch_per_worker=32, seed=9,
        )
        sync = DistributedTrainer(t, nodes=4, threads_per_node=1, seed=9).train(
            feeds, epochs=1, minibatch_per_worker=32
        )
        np.testing.assert_allclose(
            stale.model["w"], sync.model["w"], rtol=1e-10
        )

    def test_invalid_args(self, problem):
        t, feeds, _ = problem
        with pytest.raises(ValueError):
            stale_train(t, feeds, workers=0, staleness=0)
        with pytest.raises(ValueError):
            stale_train(t, feeds, workers=2, staleness=-1)


class TestTiming:
    def test_equal_nodes_same_time(self):
        compute = {i: 0.01 for i in range(8)}
        sync = sync_batch_seconds(compute, 100_000)
        asyn = async_batch_seconds(compute, 100_000)
        assert asyn <= sync * 1.01

    def test_straggler_hurts_sync_more(self):
        """The async fleet absorbs a 8x straggler; the barrier cannot."""
        compute = {i: 0.01 for i in range(8)}
        faults = FaultSpec.single_straggler(7, 8.0)
        sync = sync_batch_seconds(compute, 100_000, faults=faults)
        asyn = async_batch_seconds(compute, 100_000, faults=faults)
        assert sync > 3 * asyn

    def test_async_never_faster_than_fastest_node(self):
        compute = {0: 0.01, 1: 0.02}
        assert async_batch_seconds(compute, 1000) >= 0.01

    def test_wire_bound_when_model_large(self):
        compute = {i: 1e-5 for i in range(4)}
        t = async_batch_seconds(compute, update_bytes=10_000_000)
        assert t >= 10_000_000 * 8 / 1e9 * 0.9

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            async_batch_seconds({}, 1000)
        with pytest.raises(ValueError):
            sync_batch_seconds({}, 1000)
