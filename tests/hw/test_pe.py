"""Direct unit tests for the PE model and chip specifications."""

import pytest

from repro.hw import (
    PASIC_F,
    PASIC_G,
    PIPELINE_DEPTH,
    PIPELINE_STAGES,
    Pe,
    XILINX_VU9P,
)


class TestPipelineConstants:
    def test_five_stages(self):
        """Figure 6: read, register, select, ALU, write-back."""
        assert PIPELINE_DEPTH == 5
        assert PIPELINE_STAGES == (
            "read", "register", "select", "alu", "writeback",
        )


class TestPeBuffers:
    def test_partitioned_storage(self):
        pe = Pe(0)
        pe.store("DATA", 1, 0.5)
        pe.store("MODEL", 2, 1.5)
        pe.store("INTERIM", 3, 2.5)
        assert pe.buffers.data == {1: 0.5}
        assert pe.buffers.model == {2: 1.5}
        assert pe.buffers.interim == {3: 2.5}
        assert pe.buffers.words() == 3

    def test_load_searches_partitions(self):
        pe = Pe(0)
        pe.store("MODEL", 7, 3.25)
        assert pe.load(7) == 3.25
        assert pe.load(99) is None


class TestExecution:
    def test_alu_op(self):
        pe = Pe(3)
        assert pe.execute("add", [1.5, 2.5], out_vid=10) == 4.0
        assert pe.buffers.interim[10] == 4.0
        assert pe.ops_executed == 1

    def test_nonlinear_requires_lut_unit(self):
        plain = Pe(0, has_nonlinear_unit=False)
        with pytest.raises(RuntimeError, match="non-linear"):
            plain.execute("sigmoid", [0.0], out_vid=1)
        lut = Pe(1, has_nonlinear_unit=True)
        assert lut.execute("sigmoid", [0.0], out_vid=1) == pytest.approx(0.5)

    def test_alu_ops_never_need_lut(self):
        plain = Pe(0, has_nonlinear_unit=False)
        assert plain.execute("mul", [3.0, 4.0], out_vid=2) == 12.0


class TestChipSpecs:
    def test_vu9p_derivations(self):
        assert XILINX_VU9P.max_pes == 855  # 6840 DSPs / 8 per PE
        assert XILINX_VU9P.columns == 16
        assert XILINX_VU9P.row_max == 48
        assert XILINX_VU9P.onchip_bytes == 2160 * 4608  # 9720 KB

    def test_pasic_explicit_pes(self):
        assert PASIC_F.max_pes == 768
        assert PASIC_G.max_pes == 2880

    def test_pasic_frozen_geometry(self):
        assert PASIC_F.columns == 16
        assert PASIC_G.columns == 64

    def test_scaled_preserves_other_fields(self):
        doubled = XILINX_VU9P.scaled(bandwidth_bytes=19.2e9)
        assert doubled.dsp_slices == XILINX_VU9P.dsp_slices
        assert doubled.columns == 32

    def test_words_per_cycle_floor(self):
        tiny = XILINX_VU9P.scaled(bandwidth_bytes=1.0)
        assert tiny.words_per_cycle == 1

    def test_table2_power(self):
        assert XILINX_VU9P.tdp_watts == 42.0
        assert PASIC_F.tdp_watts == 11.0
        assert PASIC_G.tdp_watts == 37.0
