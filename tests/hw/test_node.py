"""NodeAccelerator tests: Figure 1's per-node flow."""

import numpy as np
import pytest

from repro.dfg import translate
from repro.dsl import parse
from repro.hw import XILINX_VU9P
from repro.hw.node import NodeAccelerator
from repro.planner import Planner

LINREG = """
minibatch = 1024;
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


@pytest.fixture
def node():
    t = translate(parse(LINREG), {"n": 16})
    plan = Planner(XILINX_VU9P).plan(t.dfg, 1024)
    return NodeAccelerator(t, plan), t


class TestFunctional:
    def test_partial_equals_full_batch_mean(self, node):
        """Splitting across threads and mean-folding the partials equals
        the whole-partition mean gradient (gradient linearity, Eq. 3)."""
        accel, t = node
        rng = np.random.default_rng(0)
        N, n = 64, 16
        feeds = {"x": rng.normal(size=(N, n)), "y": rng.normal(size=N)}
        model = {"w": rng.normal(size=n)}
        result = accel.process_partition(feeds, model)
        expected = (
            (feeds["x"] @ model["w"] - feeds["y"])[:, None] * feeds["x"]
        ).mean(axis=0)
        # Thread shards may differ in size by one; tolerance covers the
        # resulting tiny weighting difference in the mean-of-means.
        np.testing.assert_allclose(result.partials["g"], expected, atol=1e-2)

    def test_exact_when_shards_even(self, node):
        accel, t = node
        rng = np.random.default_rng(1)
        N = accel.threads * 8  # divisible
        feeds = {"x": rng.normal(size=(N, 16)), "y": rng.normal(size=N)}
        model = {"w": rng.normal(size=16)}
        result = accel.process_partition(feeds, model)
        expected = (
            (feeds["x"] @ model["w"] - feeds["y"])[:, None] * feeds["x"]
        ).mean(axis=0)
        np.testing.assert_allclose(result.partials["g"], expected, rtol=1e-10)

    def test_threads_get_balanced_shards(self, node):
        accel, _ = node
        rng = np.random.default_rng(2)
        N = 37
        feeds = {"x": rng.normal(size=(N, 16)), "y": rng.normal(size=N)}
        result = accel.process_partition(feeds, {"w": np.zeros(16)})
        sizes = list(result.thread_samples.values())
        assert sum(sizes) == N
        assert max(sizes) - min(sizes) <= 1

    def test_rejects_empty_partition(self, node):
        accel, _ = node
        with pytest.raises(ValueError):
            accel.process_partition(
                {"x": np.zeros((0, 16)), "y": np.zeros(0)}, {"w": np.zeros(16)}
            )

    def test_rejects_ragged_feeds(self, node):
        accel, _ = node
        with pytest.raises(ValueError):
            accel.process_partition(
                {"x": np.zeros((4, 16)), "y": np.zeros(5)}, {"w": np.zeros(16)}
            )


class TestTiming:
    def test_seconds_scale_with_partition(self, node):
        accel, _ = node
        assert accel.seconds_for(2048) > 1.8 * accel.seconds_for(1024)

    def test_timing_attached_to_result(self, node):
        accel, _ = node
        rng = np.random.default_rng(3)
        feeds = {"x": rng.normal(size=(32, 16)), "y": rng.normal(size=32)}
        result = accel.process_partition(feeds, {"w": np.zeros(16)})
        assert result.cycles > 0
        assert result.seconds == pytest.approx(
            result.cycles / accel.plan.chip.frequency_hz
        )

    def test_multithreading_beats_single_thread_on_compute(self):
        """A compute-bound DFG processes a partition faster with the
        planned multi-threaded design than forced single-threading."""
        from repro.planner import DesignPoint

        MLP = """
        model_input x[n];
        model_output y[c];
        model w1[n, h];
        model w2[h, c];
        gradient g1[n, h];
        gradient g2[h, c];
        iterator i[0:n];
        iterator j[0:h];
        iterator k[0:c];
        hid[j] = sigmoid(sum[i](w1[i, j] * x[i]));
        out[k] = sigmoid(sum[j](w2[j, k] * hid[j]));
        d2[k] = (out[k] - y[k]) * out[k] * (1 - out[k]);
        g2[j, k] = d2[k] * hid[j];
        d1[j] = sum[k](w2[j, k] * d2[k]) * hid[j] * (1 - hid[j]);
        g1[i, j] = d1[j] * x[i];
        """
        t = translate(parse(MLP), {"n": 784, "h": 784, "c": 10})
        planner = Planner(XILINX_VU9P)
        multi = planner.plan(t.dfg, 10_000)
        single_point = DesignPoint(1, multi.design.rows_per_thread, 16)
        single = planner.evaluate(t.dfg, single_point, 10_000)
        a = NodeAccelerator(t, multi)
        b = NodeAccelerator(t, single)
        assert a.seconds_for(1000) < b.seconds_for(1000)
