"""Structural interconnect tests: topology rules and schedule replay."""

import pytest

from repro.compiler import PeGrid, compile_thread
from repro.compiler.scheduling import (
    NEIGHBOR_LATENCY,
    ROW_BUS_LATENCY,
    Transfer,
    tree_bus_latency,
)
from repro.dfg import translate
from repro.dsl import parse
from repro.hw.interconnect import (
    InterconnectError,
    NeighborLinks,
    RowBus,
    TreeBus,
    replay_transfers,
)

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


class TestNeighborLinks:
    def test_adjacent_ok(self):
        links = NeighborLinks(PeGrid(2, 4))
        links.carry(0, 1, 0, NEIGHBOR_LATENCY)
        links.carry(5, 4, 3, NEIGHBOR_LATENCY)
        assert links.transfers == 2

    def test_cross_row_rejected(self):
        links = NeighborLinks(PeGrid(2, 4))
        with pytest.raises(InterconnectError):
            links.carry(0, 4, 0, NEIGHBOR_LATENCY)

    def test_non_adjacent_rejected(self):
        links = NeighborLinks(PeGrid(1, 4))
        with pytest.raises(InterconnectError):
            links.carry(0, 2, 0, NEIGHBOR_LATENCY)

    def test_wrong_latency_rejected(self):
        links = NeighborLinks(PeGrid(1, 4))
        with pytest.raises(InterconnectError):
            links.carry(0, 1, 0, NEIGHBOR_LATENCY + 1)


class TestRowBus:
    def test_single_grant_per_cycle(self):
        bus = RowBus(0)
        bus.carry(3, ROW_BUS_LATENCY)
        with pytest.raises(InterconnectError):
            bus.carry(3, ROW_BUS_LATENCY)
        bus.carry(4, ROW_BUS_LATENCY)
        assert bus.transfers == 2


class TestTreeBus:
    def test_levels_logarithmic(self):
        assert TreeBus(2).levels == 1
        assert TreeBus(16).levels == 4
        assert TreeBus(48).levels == 6

    def test_latency_checked(self):
        tree = TreeBus(8)
        tree.carry(0, tree_bus_latency(8))
        with pytest.raises(InterconnectError):
            tree.carry(1, 1)

    def test_reduction_alus(self):
        tree = TreeBus(4)
        assert tree.reduce([1.0, 2.0, 3.0]) == 6.0
        assert tree.reduce([2.0, 3.0], op="prod") == 6.0
        assert tree.reductions == 2
        with pytest.raises(InterconnectError):
            tree.reduce([1.0], op="max")


class TestReplay:
    @pytest.mark.parametrize("rows,columns", [(1, 4), (2, 4), (4, 4)])
    def test_compiled_schedules_replay_clean(self, rows, columns):
        """Every schedule the compiler emits books real, conflict-free
        interconnect resources."""
        dfg = translate(parse(LINREG), {"n": 16}).dfg
        program = compile_thread(dfg, rows=rows, columns=columns)
        fabric = replay_transfers(program.schedule)
        summary = fabric.traffic_summary()
        assert sum(summary.values()) == len(program.schedule.transfers)

    def test_multirow_uses_tree_bus(self):
        dfg = translate(parse(LINREG), {"n": 32}).dfg
        program = compile_thread(dfg, rows=4, columns=4)
        fabric = replay_transfers(program.schedule)
        assert fabric.traffic_summary()["tree_bus"] > 0

    def test_single_row_never_uses_tree(self):
        dfg = translate(parse(LINREG), {"n": 16}).dfg
        program = compile_thread(dfg, rows=1, columns=4)
        fabric = replay_transfers(program.schedule)
        assert fabric.traffic_summary()["tree_bus"] == 0

    def test_tampered_transfer_caught(self):
        dfg = translate(parse(LINREG), {"n": 16}).dfg
        program = compile_thread(dfg, rows=2, columns=4)
        bad = Transfer(
            value=0, src_pe=0, dst_pe=1, start=0, latency=99,
            resource="neighbor",
        )
        program.schedule.transfers.append(bad)
        with pytest.raises(InterconnectError):
            replay_transfers(program.schedule)

    def test_unknown_resource_caught(self):
        dfg = translate(parse(LINREG), {"n": 8}).dfg
        program = compile_thread(dfg, rows=1, columns=2)
        program.schedule.transfers.append(
            Transfer(0, 0, 1, 0, 1, resource="noc_mesh")
        )
        with pytest.raises(InterconnectError):
            replay_transfers(program.schedule)

    def test_same_row_tree_routing_caught(self):
        dfg = translate(parse(LINREG), {"n": 8}).dfg
        program = compile_thread(dfg, rows=2, columns=4)
        program.schedule.transfers.append(
            Transfer(0, 0, 2, 1000, tree_bus_latency(2), "tree_bus")
        )
        with pytest.raises(InterconnectError):
            replay_transfers(program.schedule)
