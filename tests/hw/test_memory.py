"""Memory-interface model tests: DRAM, shifter, prefetch, scheduling tie-in."""

import numpy as np
import pytest

from repro.compiler import compile_thread
from repro.compiler.memsched import build_thread_index_table
from repro.compiler.scheduling import SHIFTER_LATENCY
from repro.dfg import DATA, translate
from repro.dsl import parse
from repro.hw.memory import Dram, MemoryInterface, PrefetchBuffer, Shifter

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


def make_program(n=12, rows=2, columns=4):
    dfg = translate(parse(LINREG), {"n": n}).dfg
    return compile_thread(dfg, rows=rows, columns=columns)


class TestDram:
    def test_layout_from_samples(self):
        dram = Dram.from_samples([np.arange(3.0), np.arange(3.0) + 10])
        np.testing.assert_array_equal(
            dram.words, [0, 1, 2, 10, 11, 12]
        )

    def test_read_window(self):
        dram = Dram(np.arange(10.0))
        np.testing.assert_array_equal(dram.read(3, 4), [3, 4, 5, 6])

    def test_out_of_bounds(self):
        dram = Dram(np.arange(4.0))
        with pytest.raises(IndexError):
            dram.read(2, 4)


class TestShifter:
    def test_aligned_burst_passthrough(self):
        s = Shifter(4)
        lanes = s.align(np.array([1.0, 2.0, 3.0, 4.0]), source_lane=0)
        assert lanes == [1.0, 2.0, 3.0, 4.0]
        assert s.rotations == 0

    def test_rotation(self):
        s = Shifter(4)
        lanes = s.align(np.array([1.0, 2.0]), source_lane=3, target_lane=1)
        # shift = (1 - 3) % 4 = 2 -> words land on lanes (3+0+2)%4=1, (3+1+2)%4=2
        assert lanes == [None, 1.0, 2.0, None]
        assert s.rotations == 1

    def test_burst_too_wide(self):
        with pytest.raises(ValueError):
            Shifter(2).align(np.zeros(3), 0)

    def test_zero_columns_rejected(self):
        with pytest.raises(ValueError):
            Shifter(0)


class TestPrefetchBuffer:
    def test_put_drain(self):
        buf = PrefetchBuffer(capacity_words=4)
        buf.put(1, 0.5)
        buf.put(2, 1.5)
        assert buf.occupancy == 2
        assert buf.drain() == [(1, 0.5), (2, 1.5)]
        assert buf.occupancy == 0

    def test_peak_tracked(self):
        buf = PrefetchBuffer(capacity_words=4)
        for i in range(3):
            buf.put(i, 0.0)
        buf.drain()
        assert buf.peak_words == 3

    def test_overrun(self):
        buf = PrefetchBuffer(capacity_words=1)
        buf.put(0, 0.0)
        with pytest.raises(OverflowError):
            buf.put(1, 0.0)


class TestMemoryInterface:
    def test_stream_delivers_all_elements(self):
        prog = make_program()
        n = 12
        sample = np.concatenate([np.arange(n, dtype=float), [99.0]])  # x + y
        dram = Dram.from_samples([sample])
        delivered = {}
        mi = MemoryInterface(prog)
        arrivals = mi.stream_sample(
            dram, 0, lambda pe, vid, w: delivered.__setitem__(vid, (pe, w))
        )
        elements = prog.expansion.input_elements(DATA)
        assert len(arrivals) == len(elements)
        for position, (name, index, vid) in enumerate(elements):
            pe, word = delivered[vid]
            assert word == float(sample[position])
            assert pe == prog.mapping.pe_of_value[vid]

    def test_arrivals_match_scheduler_assumption(self):
        """The hardware's delivery cycles equal the gates the static
        scheduler used — schedule and memory system cannot drift."""
        from repro.compiler.scheduling import _data_arrivals

        prog = make_program()
        n = 12
        dram = Dram.from_samples(
            [np.concatenate([np.arange(n, dtype=float), [0.0]])]
        )
        mi = MemoryInterface(prog)
        arrivals = mi.stream_sample(dram, 0, lambda pe, vid, w: None)
        assert arrivals == _data_arrivals(prog.mapping)

    def test_second_sample_offsets_address(self):
        prog = make_program()
        n = 12
        s0 = np.concatenate([np.zeros(n), [0.0]])
        s1 = np.concatenate([np.arange(n, dtype=float) + 100, [7.0]])
        dram = Dram.from_samples([s0, s1])
        got = {}
        MemoryInterface(prog).stream_sample(
            dram, 1, lambda pe, vid, w: got.__setitem__(vid, w)
        )
        elements = prog.expansion.input_elements(DATA)
        x_first = next(vid for nm, idx, vid in elements if nm == "x" and idx == (0,))
        assert got[x_first] == 100.0

    def test_thread_offset_shifts_pes(self):
        prog = make_program(rows=1, columns=4)
        table = build_thread_index_table(
            threads=2, rows_per_thread=1, columns=4, words_per_thread=13
        )
        dram = Dram(np.arange(26.0))
        pes0, pes1 = set(), set()
        MemoryInterface(prog, table, thread=0).stream_sample(
            dram, 0, lambda pe, vid, w: pes0.add(pe)
        )
        MemoryInterface(prog, table, thread=1).stream_sample(
            dram, 0, lambda pe, vid, w: pes1.add(pe)
        )
        assert {p + 4 for p in pes0} == pes1  # PE Offset applied

    def test_thread_memory_region(self):
        prog = make_program(rows=1, columns=4)
        table = build_thread_index_table(2, 1, 4, words_per_thread=13)
        dram = Dram(np.arange(26.0))
        got = {}
        MemoryInterface(prog, table, thread=1).stream_sample(
            dram, 0, lambda pe, vid, w: got.__setitem__(vid, w)
        )
        assert min(got.values()) >= 13.0  # reads the second region

    def test_preload_broadcast(self):
        prog = make_program()
        from repro.dfg import MODEL

        elements = prog.expansion.input_elements(MODEL)
        model_words = {vid: float(i) for i, (_, _, vid) in enumerate(elements)}
        delivered = {}
        cycles = MemoryInterface(prog).preload_model(
            model_words, lambda pe, vid, w: delivered.__setitem__(vid, w)
        )
        assert delivered == model_words
        assert cycles >= len(prog.memory.preload)

    def test_invalid_thread(self):
        prog = make_program()
        with pytest.raises(ValueError):
            MemoryInterface(prog, thread=3)

    def test_drain_collects_full_gradient(self):
        """End-to-end: stream + preload + execute + drain through the
        memory interface yields the interpreter's gradient."""
        from repro.dfg import Interpreter
        from repro.hw import ThreadSimulator

        n = 12
        prog = make_program(n=n)
        rng = np.random.default_rng(4)
        feeds = {
            "x": rng.normal(size=n),
            "y": np.float64(0.3),
            "w": rng.normal(size=n),
        }
        sim = ThreadSimulator(prog)
        sim.run(feeds)  # loads via the interface and executes
        mi = MemoryInterface(prog)
        drained = mi.drain_gradients(
            lambda pe, vid: sim._pes[pe].buffers.interim[vid]
        )
        assert len(drained) == n
        t = translate(parse(LINREG), {"n": n})
        expected = Interpreter(t.dfg).run(feeds)["g"]
        dfg = prog.expansion.dfg
        for value in dfg.gradient_outputs():
            # g[i] element names encode their index.
            index = int(value.name.split("[")[1].rstrip("]"))
            assert drained[value.vid] == pytest.approx(expected[index])

    def test_shifter_latency_included(self):
        prog = make_program()
        dram = Dram(np.arange(13.0))
        arrivals = MemoryInterface(prog).stream_sample(
            dram, 0, lambda pe, vid, w: None
        )
        assert min(arrivals.values()) >= 1 + SHIFTER_LATENCY
