"""Cycle simulator tests: functional equivalence with the interpreter and
MIMD timing behaviour."""

import numpy as np
import pytest

from repro.compiler import compile_thread
from repro.dfg import Interpreter, translate
from repro.dsl import parse
from repro.hw import MimdTimingModel, ThreadSimulator

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""

SVM = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
m = sum[i](w[i] * x[i]) * y;
g[i] = (m < 1) ? (-y * x[i]) : 0;
"""

LOGREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
p = sigmoid(sum[i](w[i] * x[i]));
g[i] = (p - y) * x[i];
"""


def build(source, n, rows=2, columns=4):
    t = translate(parse(source), {"n": n})
    prog = compile_thread(t.dfg, rows=rows, columns=columns)
    return t, prog


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("source", [LINREG, SVM, LOGREG])
    def test_simulator_matches_interpreter(self, source):
        rng = np.random.default_rng(3)
        n = 12
        t, prog = build(source, n)
        sim = ThreadSimulator(prog)
        feeds = {
            "x": rng.normal(size=n),
            "y": np.float64(1.0),
            "w": rng.normal(size=n),
        }
        hw = sim.run(feeds)
        sw = Interpreter(t.dfg).run(feeds)
        np.testing.assert_allclose(
            hw.gradient_vector("g", n), sw["g"], rtol=1e-9
        )

    @pytest.mark.parametrize("rows,columns", [(1, 1), (1, 8), (4, 4)])
    def test_equivalence_across_geometries(self, rows, columns):
        rng = np.random.default_rng(11)
        n = 10
        t, prog = build(LINREG, n, rows, columns)
        feeds = {
            "x": rng.normal(size=n),
            "y": np.float64(-0.5),
            "w": rng.normal(size=n),
        }
        hw = ThreadSimulator(prog).run(feeds)
        sw = Interpreter(t.dfg).run(feeds)
        np.testing.assert_allclose(
            hw.gradient_vector("g", n), sw["g"], rtol=1e-9
        )

    def test_missing_feed_raises(self):
        _, prog = build(LINREG, 8)
        with pytest.raises(KeyError):
            ThreadSimulator(prog).run({"x": np.ones(8)})


class TestPeAccounting:
    def test_ops_counted(self):
        _, prog = build(LINREG, 8)
        result = ThreadSimulator(prog).run(
            {"x": np.ones(8), "y": np.float64(0), "w": np.ones(8)}
        )
        assert sum(result.ops_per_pe.values()) == len(prog.expansion.dfg.nodes)

    def test_buffers_loaded(self):
        _, prog = build(LINREG, 8)
        result = ThreadSimulator(prog).run(
            {"x": np.ones(8), "y": np.float64(0), "w": np.ones(8)}
        )
        # 8 x's + 1 y + 8 w's land in PE buffers (interims added later).
        assert sum(result.buffer_words_per_pe.values()) >= 17

    def test_cycles_match_schedule(self):
        _, prog = build(LINREG, 8)
        result = ThreadSimulator(prog).run(
            {"x": np.ones(8), "y": np.float64(0), "w": np.ones(8)}
        )
        assert result.cycles == prog.schedule.makespan


class TestEstimatorValidation:
    """Section 4.4 says the estimator is validated against hardware; we
    validate it against the cycle simulator on small instances."""

    @pytest.mark.parametrize("n,rows,columns", [(16, 1, 4), (32, 2, 4), (64, 2, 8)])
    def test_estimator_within_factor_of_schedule(self, n, rows, columns):
        from repro.planner import estimate_thread_cycles

        t, prog = build(LINREG, n, rows, columns)
        est = estimate_thread_cycles(t.dfg, rows * columns, rows)
        # The scalar schedule routes reduction partials through PEs while
        # the estimator models tree-bus ALU reduction; agreement within a
        # small factor is expected, exact equality is not.
        ratio = prog.cycles / est.cycles
        assert 0.3 < ratio < 6.0

    def test_estimator_tracks_scaling_trend(self):
        from repro.planner import estimate_thread_cycles

        t16, p16 = build(LINREG, 64, 2, 8)
        t1, p1 = build(LINREG, 64, 1, 1)
        est16 = estimate_thread_cycles(t16.dfg, 16, 2)
        est1 = estimate_thread_cycles(t1.dfg, 1, 1)
        assert (p1.cycles > p16.cycles) == (est1.cycles > est16.cycles)


class TestMimdTiming:
    def test_compute_bound_scales_with_threads(self):
        def total(threads):
            model = MimdTimingModel(
                threads=threads,
                compute_cycles=1000,
                sample_words=8,
                columns=16,
            )
            return model.run_batch(64).total_cycles

        assert total(4) < total(1) / 3

    def test_bandwidth_bound_does_not_scale(self):
        def total(threads):
            model = MimdTimingModel(
                threads=threads,
                compute_cycles=10,
                sample_words=1600,
                columns=16,
            )
            return model.run_batch(64).total_cycles

        assert total(8) > 0.9 * total(2)

    def test_stream_cycles_accounted(self):
        model = MimdTimingModel(2, 100, 32, 16)
        result = model.run_batch(10)
        assert result.stream_cycles == 10 * 2

    def test_preload_and_drain_added(self):
        bare = MimdTimingModel(2, 100, 32, 16).run_batch(4).total_cycles
        loaded = MimdTimingModel(
            2, 100, 32, 16, preload_words=160, drain_words=160
        ).run_batch(4).total_cycles
        assert loaded > bare

    def test_empty_batch(self):
        model = MimdTimingModel(2, 100, 32, 16, preload_words=32)
        assert model.run_batch(0).total_cycles == 2

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            MimdTimingModel(0, 1, 1, 1)

    def test_throughput_roofline(self):
        """Throughput never exceeds the streaming bound."""
        model = MimdTimingModel(16, 10, 160, 16)
        tput = model.throughput_samples_per_cycle(256)
        assert tput <= 16 / 160 + 1e-9
