"""Ablation of the scheduler's longest-dependence-chain priority."""

import pytest

from repro.compiler import PeGrid, map_graph, schedule_graph, verify_schedule
from repro.dfg import scalarize, translate
from repro.dsl import parse

# Two independent chains of different depths share PEs with a wide
# elementwise stage: a naive FIFO schedule can starve the deep chain.
MIXED = """
model_input x[n];
model_output y;
model w[n];
model v[n];
gradient g_w[n];
iterator i[0:n];
deep = sigmoid(sigmoid(sigmoid(sum[i](w[i] * x[i]))));
wide[i] = v[i] * x[i] + v[i];
g_w[i] = (deep - y) * wide[i];
"""


def schedules(n=24, rows=2, columns=4):
    exp = scalarize(translate(parse(MIXED), {"n": n}).dfg)
    mapping = map_graph(exp, PeGrid(rows, columns))
    chain = schedule_graph(exp.dfg, mapping, priority="longest_chain")
    exp2 = scalarize(translate(parse(MIXED), {"n": n}).dfg)
    mapping2 = map_graph(exp2, PeGrid(rows, columns))
    fifo = schedule_graph(exp2.dfg, mapping2, priority="source_order")
    return (exp, mapping, chain), (exp2, mapping2, fifo)


class TestPriorityPolicy:
    def test_both_policies_legal(self):
        (exp, mapping, chain), (exp2, mapping2, fifo) = schedules()
        verify_schedule(exp.dfg, mapping, chain)
        verify_schedule(exp2.dfg, mapping2, fifo)

    def test_longest_chain_not_worse(self):
        (_, _, chain), (_, _, fifo) = schedules()
        assert chain.makespan <= fifo.makespan

    def test_unknown_policy_rejected(self):
        exp = scalarize(translate(parse(MIXED), {"n": 8}).dfg)
        mapping = map_graph(exp, PeGrid(1, 4))
        with pytest.raises(ValueError):
            schedule_graph(exp.dfg, mapping, priority="random")
