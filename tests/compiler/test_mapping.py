"""Tests for Algorithm 1 (minimum-communication mapping)."""


from repro.compiler import PeGrid, communication_edges, map_graph
from repro.dfg import DATA, MODEL, scalarize, translate
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""


def expansion(n=16):
    return scalarize(translate(parse(LINREG), {"n": n}).dfg)


class TestGrid:
    def test_indexing_roundtrip(self):
        grid = PeGrid(rows=4, columns=8)
        for pe in range(grid.n_pe):
            row, col = grid.position(pe)
            assert grid.pe_of(row, col) == pe

    def test_stream_pe_follows_columns(self):
        grid = PeGrid(rows=2, columns=4)
        assert grid.stream_pe(0) == 0
        assert grid.stream_pe(3) == 3
        assert grid.stream_pe(4) == 4  # wraps to row 1, col 0
        assert grid.stream_pe(8) == 0  # wraps back to row 0


class TestDataPlacement:
    def test_every_data_element_placed(self):
        exp = expansion()
        mapping = map_graph(exp, PeGrid(2, 4))
        for _, _, vid in exp.input_elements(DATA):
            assert vid in mapping.pe_of_value

    def test_data_pinned_to_stream_column(self):
        """Step 1: data lands on the PE of the column that streams it."""
        exp = expansion()
        grid = PeGrid(2, 4)
        mapping = map_graph(exp, grid)
        for vid, pos in mapping.stream_position.items():
            assert mapping.pe_of_value[vid] == grid.stream_pe(pos)

    def test_stream_positions_dense(self):
        exp = expansion(8)
        mapping = map_graph(exp, PeGrid(2, 4))
        positions = sorted(mapping.stream_position.values())
        assert positions == list(range(len(positions)))


class TestOperationMapping:
    def test_every_node_mapped_exactly_once(self):
        exp = expansion()
        mapping = map_graph(exp, PeGrid(2, 4))
        nodes = [n.nid for n in exp.dfg.topo_order()]
        assert sorted(mapping.pe_of_node) == sorted(nodes)
        listed = [nid for ops in mapping.operation_map.values() for nid in ops]
        assert sorted(listed) == sorted(nodes)

    def test_ops_with_data_operand_run_on_data_pe(self):
        """Step 3 of Algorithm 1."""
        exp = expansion()
        mapping = map_graph(exp, PeGrid(2, 4))
        dfg = exp.dfg
        for node in dfg.topo_order():
            for vid in node.inputs:
                value = dfg.values[vid]
                if value.category == DATA and value.producer is None:
                    assert (
                        mapping.pe_of_node[node.nid]
                        == mapping.pe_of_value[vid]
                    )
                    break

    def test_model_colocated_with_consumer(self):
        """Steps 3-4: model parameters live where their op runs."""
        exp = expansion()
        mapping = map_graph(exp, PeGrid(2, 4))
        dfg = exp.dfg
        for node in dfg.topo_order():
            has_data = any(
                dfg.values[v].category == DATA and dfg.values[v].producer is None
                for v in node.inputs
            )
            if not has_data:
                continue
            for vid in node.inputs:
                value = dfg.values[vid]
                if value.category == MODEL and value.producer is None:
                    assert (
                        mapping.pe_of_value[vid]
                        == mapping.pe_of_node[node.nid]
                    )

    def test_single_pe_grid(self):
        exp = expansion(4)
        mapping = map_graph(exp, PeGrid(1, 1))
        assert set(mapping.pe_of_node.values()) == {0}


class TestCommunicationMinimisation:
    def test_first_level_muls_are_local(self):
        """w[i] * x[i] never crosses PEs: data-first mapping puts the
        model weight next to its data element."""
        exp = expansion(32)
        mapping = map_graph(exp, PeGrid(2, 4))
        dfg = exp.dfg
        edges = communication_edges(dfg, mapping)
        # Nodes whose operands are exactly one DATA element and one MODEL
        # parameter are the w[i]*x[i] products; data-first mapping makes
        # them fully local.
        local_muls = set()
        for n in dfg.topo_order():
            cats = sorted(dfg.values[v].category for v in n.inputs)
            if n.op == "mul" and cats == [DATA, MODEL]:
                local_muls.add(n.nid)
        assert local_muls
        for nid, _, _, _ in edges:
            assert nid not in local_muls

    def test_fewer_pes_less_communication(self):
        exp = expansion(32)
        small = map_graph(exp, PeGrid(1, 2))
        exp2 = expansion(32)
        large = map_graph(exp2, PeGrid(4, 8))
        assert len(communication_edges(exp.dfg, small)) <= len(
            communication_edges(exp2.dfg, large)
        )

    def test_no_communication_on_one_pe(self):
        exp = expansion(8)
        mapping = map_graph(exp, PeGrid(1, 1))
        assert communication_edges(exp.dfg, mapping) == []


class TestRoundRobin:
    def test_model_only_graph_spreads_over_pes(self):
        source = """
        model w[n];
        model_input x[n];
        gradient g[n];
        iterator i[0:n];
        g[i] = w[i] * 0.5 + x[i] * 0;
        """
        exp = scalarize(translate(parse(source), {"n": 8}).dfg)
        mapping = map_graph(exp, PeGrid(1, 4))
        used = {pe for pe, ops in mapping.operation_map.items() if ops}
        assert len(used) > 1
