"""Tests for the static list scheduler and its legality checker."""

import pytest

from repro.compiler import (
    compile_thread,
    tree_bus_latency,
    verify_schedule,
)
from repro.dfg import translate
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
e = s - y;
g[i] = e * x[i];
"""

LOGREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
p = sigmoid(sum[i](w[i] * x[i]));
g[i] = (p - y) * x[i];
"""


def program(source=LINREG, n=16, rows=2, columns=4, **kw):
    dfg = translate(parse(source), {"n": n}).dfg
    return compile_thread(dfg, rows=rows, columns=columns, **kw)


class TestLegality:
    @pytest.mark.parametrize("rows,columns", [(1, 1), (1, 4), (2, 4), (4, 8)])
    def test_schedule_verifies(self, rows, columns):
        program(rows=rows, columns=columns).verify()

    def test_nonlinear_program_verifies(self):
        program(LOGREG).verify()

    def test_every_op_scheduled(self):
        prog = program()
        assert len(prog.schedule.ops) == len(prog.expansion.dfg.nodes)

    def test_pe_exclusivity(self):
        prog = program(rows=2, columns=2)
        for pe in range(prog.grid.n_pe):
            ops = prog.schedule.ops_on_pe(pe)
            for a, b in zip(ops, ops[1:]):
                assert b.start >= a.end

    def test_verify_catches_tampering(self):
        prog = program()
        # Pull the last-finishing op (which has dependencies) back to 0.
        nid = max(prog.schedule.ops, key=lambda k: prog.schedule.ops[k].start)
        bad = prog.schedule.ops[nid]
        prog.schedule.ops[nid] = type(bad)(bad.nid, bad.pe, 0, 1)
        with pytest.raises(ValueError):
            verify_schedule(prog.expansion.dfg, prog.mapping, prog.schedule)


class TestMakespan:
    def test_more_pes_not_slower_per_sample(self):
        fast = program(n=64, rows=4, columns=8, include_stream=False)
        slow = program(n=64, rows=1, columns=1, include_stream=False)
        assert fast.cycles < slow.cycles

    def test_single_pe_serialises_everything(self):
        prog = program(n=16, rows=1, columns=1, include_stream=False)
        # All ops run back to back on one PE: makespan >= weighted work.
        total = sum(
            op.end - op.start for op in prog.schedule.ops.values()
        )
        assert prog.cycles >= total

    def test_streaming_gates_start(self):
        with_stream = program(n=64, rows=2, columns=4)
        without = program(n=64, rows=2, columns=4, include_stream=False)
        assert with_stream.cycles >= without.cycles


class TestInterconnectModel:
    def test_tree_latency_logarithmic(self):
        assert tree_bus_latency(2) == 4
        assert tree_bus_latency(4) == 6
        assert tree_bus_latency(16) == 10
        assert tree_bus_latency(48) < tree_bus_latency(2) * 4

    def test_row_bus_serialisation(self):
        """Two transfers on one row bus cannot start in the same cycle."""
        prog = program(n=32, rows=1, columns=8)
        starts = {}
        for t in prog.schedule.transfers:
            if t.resource.startswith("row_bus"):
                key = (t.resource, t.start)
                assert key not in starts, "row bus double-granted"
                starts[key] = t

    def test_transfers_only_cross_pe(self):
        prog = program(n=32, rows=2, columns=4)
        for t in prog.schedule.transfers:
            assert t.src_pe != t.dst_pe


class TestPriorities:
    def test_critical_chain_scheduled_early(self):
        """The reduction chain (longest path) should not be starved."""
        prog = program(n=32, rows=2, columns=4, include_stream=False)
        dfg = prog.expansion.dfg
        # The final gradient ops depend on the full reduction; they must
        # appear after it but the overall makespan should stay near the
        # reduction depth, not the total op count.
        assert prog.cycles < len(dfg.nodes)


class TestMemorySchedule:
    def test_sample_words_match_data(self):
        prog = program(n=16)
        assert prog.memory.sample_words == 17  # x[16] + y

    def test_preload_words_match_model(self):
        prog = program(n=16)
        assert prog.memory.preload_words == 16

    def test_drain_words_match_gradient(self):
        prog = program(n=16)
        assert prog.memory.drain_words == 16

    def test_preload_entries_broadcast(self):
        prog = program(n=16)
        assert all(e.broadcast for e in prog.memory.preload)
        assert all(not e.broadcast for e in prog.memory.per_sample)

    def test_burst_sizes_bounded_by_columns(self):
        prog = program(n=16, rows=2, columns=4)
        for entry in prog.memory.per_sample:
            assert 1 <= entry.size <= 4

    def test_directions(self):
        prog = program(n=16)
        assert all(e.direction == "RD" for e in prog.memory.per_sample)
        assert all(e.direction == "WR" for e in prog.memory.drain)


class TestThreadIndexTable:
    def test_offsets(self):
        from repro.compiler import build_thread_index_table

        table = build_thread_index_table(
            threads=3, rows_per_thread=2, columns=4, words_per_thread=100
        )
        assert [e.pe_offset for e in table] == [0, 8, 16]
        assert [e.mem_addr for e in table] == [0, 100, 200]
        assert [e.thread for e in table] == [0, 1, 2]
