"""Artifact serialization round-trip tests."""

import json

import pytest

from repro.compiler import compile_thread
from repro.compiler.serialize import (
    memory_schedule_from_dict,
    program_to_dict,
    program_to_json,
    schedule_from_dict,
    verify_artifact,
)
from repro.dfg import translate
from repro.dsl import parse

LINREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
s = sum[i](w[i] * x[i]);
g[i] = (s - y) * x[i];
"""


@pytest.fixture
def program():
    dfg = translate(parse(LINREG), {"n": 12}).dfg
    return compile_thread(dfg, rows=2, columns=4)


class TestRoundTrip:
    def test_json_is_valid(self, program):
        payload = json.loads(program_to_json(program))
        assert payload["format_version"] == 1
        assert payload["grid"] == {"rows": 2, "columns": 4}

    def test_schedule_roundtrip(self, program):
        payload = program_to_dict(program)
        schedule = schedule_from_dict(payload)
        assert schedule.makespan == program.schedule.makespan
        assert len(schedule.ops) == len(program.schedule.ops)
        for nid, op in program.schedule.ops.items():
            assert schedule.ops[nid] == op
        assert schedule.transfers == program.schedule.transfers

    def test_memory_schedule_roundtrip(self, program):
        payload = program_to_dict(program)
        memory = memory_schedule_from_dict(payload)
        assert memory.preload == program.memory.preload
        assert memory.per_sample == program.memory.per_sample
        assert memory.drain == program.memory.drain

    def test_deterministic(self, program):
        assert program_to_json(program) == program_to_json(program)

    def test_operations_sorted_by_start(self, program):
        ops = program_to_dict(program)["operations"]
        starts = [o["start"] for o in ops]
        assert starts == sorted(starts)


class TestVerification:
    def test_matching_artifact_passes(self, program):
        verify_artifact(program, program_to_dict(program))

    def test_tampered_artifact_fails(self, program):
        payload = program_to_dict(program)
        payload["makespan"] += 1
        with pytest.raises(ValueError, match="makespan"):
            verify_artifact(program, payload)

    def test_tampered_schedule_fails(self, program):
        payload = program_to_dict(program)
        payload["operations"][0]["pe"] ^= 1
        with pytest.raises(ValueError):
            verify_artifact(program, payload)

    def test_wrong_version_rejected(self, program):
        payload = program_to_dict(program)
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            schedule_from_dict(payload)


class TestReproducibleBuilds:
    def test_recompilation_produces_identical_artifact(self):
        dfg_a = translate(parse(LINREG), {"n": 12}).dfg
        dfg_b = translate(parse(LINREG), {"n": 12}).dfg
        a = compile_thread(dfg_a, rows=2, columns=4)
        b = compile_thread(dfg_b, rows=2, columns=4)
        assert program_to_dict(a) == program_to_dict(b)

    def test_different_geometry_different_artifact(self):
        dfg = translate(parse(LINREG), {"n": 12}).dfg
        a = compile_thread(dfg, rows=2, columns=4)
        dfg2 = translate(parse(LINREG), {"n": 12}).dfg
        b = compile_thread(dfg2, rows=1, columns=4)
        assert program_to_dict(a) != program_to_dict(b)
