"""Gantt-rendering tests."""

import pytest

from repro.compiler import compile_thread
from repro.compiler.gantt import render_gantt, utilization_by_pe
from repro.dfg import translate
from repro.dsl import parse

LOGREG = """
model_input x[n];
model_output y;
model w[n];
gradient g[n];
iterator i[0:n];
p = sigmoid(sum[i](w[i] * x[i]));
g[i] = (p - y) * x[i];
"""


@pytest.fixture
def program():
    dfg = translate(parse(LOGREG), {"n": 8}).dfg
    return compile_thread(dfg, rows=2, columns=4)


class TestRenderGantt:
    def test_one_row_per_pe(self, program):
        text = render_gantt(program)
        for pe in range(program.grid.n_pe):
            assert f"pe{pe} |" in text

    def test_rows_span_makespan(self, program):
        text = render_gantt(program)
        row = next(line for line in text.splitlines() if line.startswith("pe0 |"))
        body = row.split("|")[1]
        assert len(body) == program.schedule.makespan

    def test_glyphs_match_ops(self, program):
        text = render_gantt(program)
        assert "S" in text  # sigmoid scheduled somewhere
        assert "S=sigmoid" in text

    def test_busy_cells_match_schedule(self, program):
        text = render_gantt(program)
        rows = {
            int(line.split("|")[0].strip()[2:]): line.split("|")[1]
            for line in text.splitlines()
            if line.startswith("pe")
        }
        busy_cells = sum(
            sum(1 for ch in body if ch != " ") for body in rows.values()
        )
        scheduled = sum(
            op.end - op.start for op in program.schedule.ops.values()
        )
        assert busy_cells == scheduled

    def test_max_cycles_truncates(self, program):
        text = render_gantt(program, max_cycles=10)
        row = next(line for line in text.splitlines() if line.startswith("pe0 |"))
        assert len(row.split("|")[1]) == 10
        assert "showing first 10" in text

    def test_transfers_listed(self, program):
        text = render_gantt(program)
        if program.schedule.transfers:
            assert "transfers (" in text
            assert "via " in text

    def test_transfers_can_be_hidden(self, program):
        text = render_gantt(program, show_transfers=False)
        assert "transfers (" not in text


class TestUtilization:
    def test_fractions_bounded(self, program):
        util = utilization_by_pe(program)
        assert len(util) == program.grid.n_pe
        for value in util.values():
            assert 0.0 <= value <= 1.0

    def test_some_pe_is_busy(self, program):
        util = utilization_by_pe(program)
        assert max(util.values()) > 0.1
